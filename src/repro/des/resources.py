"""Shared-resource primitives: FIFO/priority resources, stores, containers.

These model the contended hardware in the simulator: a CPU core is a
:class:`PriorityResource` (softirqs outrank application work), the
inter-core interconnect and NIC are capacity-1 :class:`Resource`\\ s, queues
of packets/requests are :class:`Store`\\ s.
"""

from __future__ import annotations

import dataclasses
import typing as t
from collections import deque
from heapq import heappop, heappush
from itertools import count

from ..errors import SimulationError
from .events import Event

if t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .environment import Environment

__all__ = [
    "Resource",
    "PriorityResource",
    "PreemptiveResource",
    "Preempted",
    "Request",
    "Store",
    "Container",
    "Barrier",
]


class Request(Event):
    """A claim on a :class:`Resource` slot.

    Usable as a context manager::

        with core.request(priority=5) as req:
            yield req                 # wait for the slot
            yield env.timeout(work)   # hold it
        # slot released on exit

    Exiting before the request was granted cancels it; exiting after
    being preempted (see :class:`PreemptiveResource`) is a no-op.
    """

    __slots__ = (
        "resource",
        "priority",
        "key",
        "cancelled",
        "process",
        "granted_at",
        "preempted",
    )

    def __init__(self, resource: "Resource", priority: int = 0) -> None:
        super().__init__(resource.env)
        self.resource = resource
        self.priority = priority
        self.key = (priority, resource.env.now, next(resource._seq))
        self.cancelled = False
        #: The process that issued the request (preemption target).
        self.process = resource.env.active_process
        #: When the slot was granted (None while waiting).
        self.granted_at: float | None = None
        #: Set when a PreemptiveResource revoked the slot.
        self.preempted = False
        resource._do_request(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc_info: t.Any) -> None:
        if self.preempted:
            return  # the slot was already revoked
        if self.triggered and self._ok:
            self.resource.release(self)
        elif not self.triggered:
            self.cancel()

    def cancel(self) -> None:
        """Withdraw a not-yet-granted request from the wait queue."""
        if self.triggered:
            raise SimulationError("cannot cancel a granted request; release it")
        self.cancelled = True


class Resource:
    """A FIFO-queued resource with ``capacity`` identical slots.

    ``inline_grant=True`` grants requests that find a free slot
    *synchronously*: the request is born already processed, so the
    requester's ``yield req`` continues in the same calendar event instead
    of paying a same-time grant event.  The requester's continuation then
    runs before other already-queued same-time events rather than after
    them, which is observable — opt in only where that reordering is
    acceptable (CPU core slots, whose goldens pin the behaviour).
    Contended grants (at release time) always go through the calendar.
    """

    def __init__(
        self,
        env: "Environment",
        capacity: int = 1,
        inline_grant: bool = False,
    ) -> None:
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.inline_grant = inline_grant
        self.users: list[Request] = []
        self._waiting: deque[Request] = deque()
        self._seq = count()

    # -- public API ---------------------------------------------------------

    def request(self, priority: int = 0) -> Request:
        """Ask for a slot.  ``priority`` is ignored by the FIFO base class."""
        return Request(self, priority)

    def release(self, request: Request) -> None:
        """Give back a granted slot and wake the next waiter, if any."""
        try:
            self.users.remove(request)
        except ValueError:
            raise SimulationError("releasing a request that does not hold a slot")
        self._grant_waiters()

    @property
    def in_use(self) -> int:
        """Number of currently-held slots."""
        return len(self.users)

    @property
    def queue_length(self) -> int:
        """Number of ungranted (live) requests waiting."""
        return sum(1 for req in self._waiting if not req.cancelled)

    # -- internals ------------------------------------------------------------

    def _do_request(self, request: Request) -> None:
        if len(self.users) < self.capacity:
            if self.inline_grant:
                # The request was constructed this instant, so nothing can
                # have subscribed to it yet: complete it in place and let
                # the requester's ``yield req`` fall straight through.
                self.users.append(request)
                request.granted_at = self.env.now
                request._ok = True
                request._value = None
                request.callbacks = None
            else:
                self._grant(request)
        else:
            self._enqueue(request)

    def _enqueue(self, request: Request) -> None:
        self._waiting.append(request)

    def _next_waiter(self) -> Request | None:
        while self._waiting:
            request = self._waiting.popleft()
            if not request.cancelled:
                return request
        return None

    def _grant_waiters(self) -> None:
        while len(self.users) < self.capacity:
            request = self._next_waiter()
            if request is None:
                return
            self._grant(request)

    def _grant(self, request: Request) -> None:
        self.users.append(request)
        request.granted_at = self.env.now
        request.succeed()


class PriorityResource(Resource):
    """A resource whose wait queue is ordered by ``priority`` (lower first).

    Ties resolve by request time, then insertion order, so behaviour is
    deterministic.  Used for CPU cores where softirq work (priority 0) must
    run ahead of queued application work (priority 10).
    """

    def __init__(
        self,
        env: "Environment",
        capacity: int = 1,
        inline_grant: bool = False,
    ) -> None:
        super().__init__(env, capacity, inline_grant)
        self._heap: list[tuple[tuple[int, float, int], Request]] = []

    def _enqueue(self, request: Request) -> None:
        heappush(self._heap, (request.key, request))

    def _next_waiter(self) -> Request | None:
        while self._heap:
            _key, request = heappop(self._heap)
            if not request.cancelled:
                return request
        return None

    @property
    def queue_length(self) -> int:
        return sum(1 for _k, req in self._heap if not req.cancelled)


@dataclasses.dataclass(frozen=True)
class Preempted:
    """Interrupt cause delivered to a preempted slot holder."""

    #: The request that took the slot.
    by: Request
    #: How long the victim had held the slot.
    usage: float


class PreemptiveResource(PriorityResource):
    """A priority resource where urgent requests evict lesser holders.

    If a request arrives with a *strictly* better (lower) priority than
    the worst current holder while the resource is full, that holder's
    slot is revoked: its request is marked ``preempted`` and its owning
    process receives an :class:`~repro.des.process.Interrupt` whose cause
    is a :class:`Preempted` record.  The victim's context-manager exit is
    then a no-op; it may re-request to resume.

    Equal priorities never preempt (FIFO applies), matching the usual
    preemptive-priority queueing discipline.
    """

    def _do_request(self, request: Request) -> None:
        if len(self.users) >= self.capacity:
            victim = max(self.users, key=lambda held: held.key)
            if victim.priority > request.priority:
                self._preempt(victim, request)
        super()._do_request(request)

    def _preempt(self, victim: Request, by: Request) -> None:
        self.users.remove(victim)
        victim.preempted = True
        granted_at = (
            victim.granted_at if victim.granted_at is not None else self.env.now
        )
        usage = self.env.now - granted_at
        if victim.process is not None and victim.process.is_alive:
            victim.process.interrupt(Preempted(by=by, usage=usage))


class Store:
    """An unbounded (or bounded) FIFO queue of Python objects.

    ``put`` returns an event that fires when the item is accepted (always
    immediately for unbounded stores); ``get`` returns an event that fires
    with the next item.
    """

    def __init__(
        self,
        env: "Environment",
        capacity: float = float("inf"),
        inline_wakeup: bool = False,
    ) -> None:
        if capacity <= 0:
            raise SimulationError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        #: :meth:`put_nowait` into a waiting getter delivers the item by
        #: running the getter's callbacks *synchronously* instead of via a
        #: same-time calendar event.  The consumer's continuation then runs
        #: inside the producer's event, ahead of other already-queued
        #: same-time events — observable, so opt in only where that
        #: ordering is acceptable (the softirq queues, pinned by goldens).
        self.inline_wakeup = inline_wakeup
        self.items: deque[t.Any] = deque()
        self._getters: deque[Event] = deque()
        self._putters: deque[tuple[Event, t.Any]] = deque()

    def put(self, item: t.Any) -> Event:
        """Offer ``item``; the returned event fires when it is stored."""
        event = Event(self.env)
        self._putters.append((event, item))
        self._dispatch()
        return event

    def put_nowait(self, item: t.Any) -> None:
        """Store ``item`` immediately with no acknowledgement event.

        For producers that never await the put (IRQ-style enqueues): on an
        unbounded store — or one with free space and no queued putters —
        the acknowledgement event of :meth:`put` fires instantly and runs
        zero callbacks, so skipping it is unobservable and saves one
        calendar event per item.  A full store (or one with waiting
        putters, to keep FIFO put order) falls back to the event-based
        path with the acknowledgement discarded.
        """
        if self._putters or len(self.items) >= self.capacity:
            self.put(item)
            return
        self.items.append(item)
        if not self._getters:
            return
        if not self.inline_wakeup:
            self._dispatch()
            return
        # Synchronous hand-off: complete the oldest get in place and run
        # its subscribers now, saving the same-time wake-up event.
        event = self._getters.popleft()
        event._ok = True
        event._value = self.items.popleft()
        callbacks = event.callbacks
        event.callbacks = None
        for callback in callbacks:
            callback(event)

    def get(self) -> Event:
        """The returned event fires with the oldest available item."""
        event = Event(self.env)
        self._getters.append(event)
        self._dispatch()
        return event

    def __len__(self) -> int:
        return len(self.items)

    def _dispatch(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._putters and len(self.items) < self.capacity:
                event, item = self._putters.popleft()
                self.items.append(item)
                event.succeed()
                progressed = True
            if self._getters and self.items:
                event = self._getters.popleft()
                event.succeed(self.items.popleft())
                progressed = True


class Barrier:
    """A cyclic rendezvous for a fixed party count.

    Each participant yields the event from :meth:`wait`; all of them fire
    together once the last party arrives, and the barrier resets for the
    next cycle.  Models MPI-style collective synchronization (e.g. the
    implicit sync of MPI-IO collective reads).
    """

    def __init__(self, env: "Environment", parties: int) -> None:
        if parties < 1:
            raise SimulationError(f"parties must be >= 1, got {parties}")
        self.env = env
        self.parties = parties
        self._waiting: list[Event] = []
        self.cycles = 0

    @property
    def n_waiting(self) -> int:
        """Parties currently blocked at the barrier."""
        return len(self._waiting)

    def wait(self) -> Event:
        """Arrive at the barrier; the event fires when everyone has.

        The event's value is the (0-based) cycle number that completed.
        """
        event = Event(self.env)
        self._waiting.append(event)
        if len(self._waiting) >= self.parties:
            cycle, self.cycles = self.cycles, self.cycles + 1
            waiters, self._waiting = self._waiting, []
            for waiter in waiters:
                waiter.succeed(cycle)
        return event


class Container:
    """A homogeneous quantity (e.g. buffer bytes) with blocking put/get."""

    def __init__(
        self,
        env: "Environment",
        capacity: float = float("inf"),
        init: float = 0.0,
    ) -> None:
        if capacity <= 0:
            raise SimulationError(f"capacity must be positive, got {capacity}")
        if not 0 <= init <= capacity:
            raise SimulationError(f"init {init} outside [0, {capacity}]")
        self.env = env
        self.capacity = capacity
        self._level = float(init)
        self._getters: deque[tuple[Event, float]] = deque()
        self._putters: deque[tuple[Event, float]] = deque()

    @property
    def level(self) -> float:
        """Current stored amount."""
        return self._level

    def put(self, amount: float) -> Event:
        """Add ``amount``; fires when it fits under ``capacity``."""
        if amount <= 0:
            raise SimulationError(f"amount must be positive, got {amount}")
        event = Event(self.env)
        self._putters.append((event, amount))
        self._dispatch()
        return event

    def get(self, amount: float) -> Event:
        """Remove ``amount``; fires once that much is available."""
        if amount <= 0:
            raise SimulationError(f"amount must be positive, got {amount}")
        event = Event(self.env)
        self._getters.append((event, amount))
        self._dispatch()
        return event

    def _dispatch(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._putters:
                event, amount = self._putters[0]
                if self._level + amount <= self.capacity:
                    self._putters.popleft()
                    self._level += amount
                    event.succeed()
                    progressed = True
            if self._getters:
                event, amount = self._getters[0]
                if self._level >= amount:
                    self._getters.popleft()
                    self._level -= amount
                    event.succeed()
                    progressed = True
