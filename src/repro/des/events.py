"""Event primitives for the DES kernel.

An :class:`Event` is a one-shot future on an :class:`Environment`'s calendar.
It starts *pending*, becomes *triggered* when given a value (or an error) and
scheduled, and becomes *processed* once the environment has invoked its
callbacks.  Processes wait on events by ``yield``-ing them.
"""

from __future__ import annotations

import typing as t
from heapq import heappush

from ..errors import SimulationError

if t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .environment import Environment

__all__ = [
    "Event",
    "Timeout",
    "Callback",
    "ConditionEvent",
    "AllOf",
    "AnyOf",
    "PENDING",
]

#: Sentinel for "this event has no value yet".
PENDING: t.Any = object()

#: Scheduling priority classes: URGENT events at a timestamp are processed
#: before NORMAL ones.  Used internally (interrupt delivery) — ordinary user
#: events are NORMAL.
URGENT = 0
NORMAL = 1


class Event:
    """A one-shot future that fires at a point in virtual time.

    Parameters
    ----------
    env:
        The environment whose calendar the event lives on.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        #: Callables invoked (with the event) when the event is processed.
        #: Becomes ``None`` once processed.
        self.callbacks: list[t.Callable[["Event"], None]] | None = []
        self._value: t.Any = PENDING
        self._ok: bool = True
        self._defused: bool = False

    def __repr__(self) -> str:
        state = (
            "processed"
            if self.processed
            else ("triggered" if self.triggered else "pending")
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"

    # -- state ------------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has a value (or error) and is scheduled."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only meaningful once triggered."""
        if not self.triggered:
            raise SimulationError("value of untriggered event is not available")
        return self._ok

    @property
    def value(self) -> t.Any:
        """The event's value (or the exception it failed with)."""
        if self._value is PENDING:
            raise SimulationError("value of untriggered event is not available")
        return self._value

    @property
    def defused(self) -> bool:
        """True if a failure was delivered to (and absorbed by) a waiter."""
        return self._defused

    def defuse(self) -> None:
        """Mark a failed event as handled so it won't crash the simulation."""
        self._defused = True

    # -- triggering -------------------------------------------------------

    def succeed(self, value: t.Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception is thrown into any waiting process; if nothing waits,
        the simulation stops with the exception (unless :meth:`defuse`\\ d).
        """
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self


class Timeout(Event):
    """An event that fires ``delay`` seconds of virtual time after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: t.Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        # Fast construct: a Timeout is born triggered, so the generic
        # Event init + succeed + Environment.schedule round-trip is pure
        # overhead on the kernel's hottest allocation path.  Inline all
        # three (the scheduling tuple must match Environment.schedule's
        # exactly: (time, priority, insertion id, event)).
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._defused = False
        self.delay = delay
        heappush(
            env._queue, (env._now + delay, NORMAL, next(env._eid), self)
        )


def _invoke_callback(event: "Callback") -> None:
    """The single callback every :class:`Callback` event carries."""
    event.fn(event.arg)


class Callback(Event):
    """Internal event that runs ``fn(arg)`` when processed.

    Created and recycled exclusively by
    :meth:`~repro.des.environment.Environment.call_at`: the environment
    keeps finished instances on a free list and re-arms them, so the
    steady state allocates no event objects at all.  Never exposed to
    model code — nothing may wait on one or keep a reference.
    """

    __slots__ = ("fn", "arg")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks = [_invoke_callback]
        self._value = None
        self._ok = True
        self._defused = False
        self.fn: t.Callable[[t.Any], None] | None = None
        self.arg: t.Any = None


class ConditionEvent(Event):
    """Base for events that fire when a condition over child events holds.

    The value of a condition event is a dict mapping each *fired* child
    event to its value, in firing order.
    """

    __slots__ = ("events", "_fired")

    def __init__(self, env: "Environment", events: t.Sequence[Event]) -> None:
        super().__init__(env)
        self.events = tuple(events)
        self._fired: list[Event] = []
        for event in self.events:
            if event.env is not env:
                raise SimulationError("cannot mix events from different environments")
        if self._check(0, len(self.events)):
            # Degenerate case (e.g. AllOf([])) fires immediately.
            self.succeed({})
            return
        for event in self.events:
            if event.callbacks is None:
                self._on_child(event)
                if self.triggered:
                    break
            else:
                event.callbacks.append(self._on_child)

    def _check(self, fired: int, total: int) -> bool:
        raise NotImplementedError

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event.defuse()
            self.fail(event._value)
            return
        self._fired.append(event)
        if self._check(len(self._fired), len(self.events)):
            self.succeed({ev: ev._value for ev in self._fired})


class AllOf(ConditionEvent):
    """Fires when *all* child events have fired (or fails on first failure)."""

    __slots__ = ()

    def _check(self, fired: int, total: int) -> bool:
        return fired == total


class AnyOf(ConditionEvent):
    """Fires when *any* child event has fired (or fails on first failure)."""

    __slots__ = ()

    def _check(self, fired: int, total: int) -> bool:
        return fired >= 1 and total >= 1
