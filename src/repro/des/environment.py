"""The simulation environment: virtual clock plus event calendar."""

from __future__ import annotations

import typing as t
from heapq import heappop, heappush
from itertools import count

from ..errors import SimulationError
from .events import NORMAL, Callback, Event, Timeout, _invoke_callback

if t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .process import Process

__all__ = ["Environment", "WindowStop"]


class WindowStop:
    """A persistent stop-flag subscription for repeated window runs.

    :meth:`Environment.run_window` with an :class:`~repro.des.Event`
    stop subscribes and unsubscribes a callback on *every* call; a shard
    runtime advancing thousands of windows against the same workload
    AllOf pays that list churn each round.  ``env.window_stop(event)``
    subscribes once and returns this latch; pass it as ``stop=`` to any
    number of ``run_window`` calls with no per-call subscription work.
    """

    __slots__ = ("fired",)

    def __init__(self) -> None:
        self.fired = False

    def __call__(self, _event: "Event") -> None:
        self.fired = True

_GeneratorT = t.Generator[Event, t.Any, t.Any]

#: Upper bound on recycled :class:`~repro.des.events.Callback` events kept
#: per environment.  Past this the free list stops growing; overflow events
#: are simply garbage-collected.
_CB_POOL_LIMIT = 256


class _EmptyCalendar(Exception):
    """Internal: raised by :meth:`Environment.step` when nothing is left."""


class Environment:
    """Owns the virtual clock and executes events in timestamp order.

    Ties are broken by scheduling priority (URGENT before NORMAL) and then
    by insertion order, which makes runs fully deterministic.

    >>> env = Environment()
    >>> def hello(env):
    ...     yield env.timeout(3.0)
    ...     return "done"
    >>> proc = env.process(hello(env))
    >>> env.run()
    >>> env.now
    3.0
    >>> proc.value
    'done'
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._eid = count()
        self.active_process: "Process | None" = None
        #: Events popped off the calendar and dispatched so far.  This is
        #: the DES cost metric the bench subsystem records: wall time per
        #: run is dominated by event count times constant factor.
        self.events_processed = 0
        # Free list of recycled Callback events (see :meth:`call_at`).
        self._cb_pool: list[Callback] = []

    # -- clock ------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    # -- event factories ----------------------------------------------------

    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: t.Any = None) -> Timeout:
        """Create an event firing ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(
        self,
        generator: _GeneratorT,
        *,
        quiet: bool = False,
        start_delay: float = 0.0,
        start_at: float | None = None,
    ) -> "Process":
        """Start ``generator`` as a new simulation process.

        ``quiet`` marks an internal process nobody awaits: if it finishes
        successfully with no subscribed callbacks, its completion is
        recorded in place instead of via a calendar event (failures still
        schedule, so an unawaited crash stops the world as always).

        ``start_delay`` defers the generator's first resumption by that
        much virtual time — equivalent to an immediate process whose body
        starts with ``yield env.timeout(start_delay)``, minus one event.

        ``start_at`` starts the generator at an absolute virtual time
        instead (mutually exclusive with ``start_delay``).  The sharded
        runtime uses this to re-create a remote spawn at the exact float
        instant the single-calendar run computed.
        """
        from .process import Process

        return Process(
            self,
            generator,
            quiet=quiet,
            start_delay=start_delay,
            start_at=start_at,
        )

    # -- scheduling ---------------------------------------------------------

    def schedule(self, event: Event, priority: int = NORMAL, delay: float = 0.0) -> None:
        """Put a triggered event on the calendar ``delay`` from now."""
        if event.callbacks is None:
            raise SimulationError(
                f"cannot schedule {event!r}: it has already been processed"
            )
        heappush(self._queue, (self._now + delay, priority, next(self._eid), event))

    def call_at(self, when: float, fn: t.Callable[[t.Any], None], arg: t.Any = None) -> None:
        """Run ``fn(arg)`` at absolute virtual time ``when``.

        Internal fast path for model code that needs a plain deferred call
        with no waiters: the carrying :class:`~repro.des.events.Callback`
        events come from (and return to) a per-environment free list, so
        steady-state scheduling allocates nothing.  Callers must not hold
        references to the underlying event — there is deliberately no way
        to get one.
        """
        pool = self._cb_pool
        if pool:
            ev = pool.pop()
            ev.callbacks = [_invoke_callback]
            ev._defused = False
        else:
            ev = Callback(self)
        ev.fn = fn
        ev.arg = arg
        heappush(self._queue, (when, NORMAL, next(self._eid), ev))

    def schedule_at(self, event: Event, when: float, priority: int = NORMAL) -> None:
        """Put a triggered event on the calendar at absolute time ``when``.

        Unlike ``schedule(delay=when - now)`` this pushes the exact float
        ``when`` — re-deriving the delay and adding it back to ``now``
        can land one ulp off, which is fatal to the sharded runtime's
        byte-identity guarantee (see :mod:`repro.shard`).
        """
        if event.callbacks is None:
            raise SimulationError(
                f"cannot schedule {event!r}: it has already been processed"
            )
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at {when} which is before now={self._now}"
            )
        heappush(self._queue, (when, priority, next(self._eid), event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the single next event (advancing the clock to it)."""
        try:
            when, _, _, event = heappop(self._queue)
        except IndexError:
            raise _EmptyCalendar() from None
        self._now = when
        callbacks = event.callbacks
        if callbacks is None:
            raise SimulationError(f"{event!r} processed twice")
        event.callbacks = None
        self.events_processed += 1
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            # A failure that no process absorbed: stop the world so bugs in
            # models cannot silently vanish.
            exc = event._value
            raise exc
        if event.__class__ is Callback and len(self._cb_pool) < _CB_POOL_LIMIT:
            self._cb_pool.append(event)

    def run(self, until: float | Event | None = None) -> t.Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None``
                run until the calendar is empty;
            a number
                run until that virtual time (the clock lands exactly on
                it).  Events scheduled *at* the horizon — including ones
                scheduled by callbacks of the final step — still run
                before the clock is pinned;
            an :class:`Event`
                run until that event is processed and return its value.
        """
        if until is None or isinstance(until, Event):
            return self._run_loop(until)

        horizon = float(until)
        if horizon < self._now:
            raise SimulationError(
                f"cannot run until {horizon} which is before now={self._now}"
            )
        while self._queue and self._queue[0][0] <= horizon:
            self.step()
        self._now = horizon
        return None

    def _run_loop(self, until: Event | None) -> t.Any:
        """Hot loop for ``run(None)`` / ``run(Event)``: :meth:`step` inlined
        with the heap operation and counters bound to locals.  Every
        simulation spends nearly all of its wall time here."""
        stop = until
        flag: list[bool] = []
        if stop is not None:
            if stop.callbacks is None:  # already processed
                return stop._value
            stop.callbacks.append(flag.append)
        queue = self._queue
        pop = heappop
        pool = self._cb_pool
        dispatched = 0
        try:
            while queue and not flag:
                when, _, _, event = pop(queue)
                self._now = when
                callbacks = event.callbacks
                if callbacks is None:
                    raise SimulationError(f"{event!r} processed twice")
                event.callbacks = None
                dispatched += 1
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused:
                    raise event._value
                if event.__class__ is Callback and len(pool) < _CB_POOL_LIMIT:
                    pool.append(event)
        finally:
            self.events_processed += dispatched
        if stop is None:
            return None
        if not flag:
            raise SimulationError(
                "simulation ended before the awaited event fired"
            )
        if not stop._ok:
            stop.defuse()
            raise stop._value
        return stop._value

    def window_stop(self, stop: Event) -> WindowStop:
        """Subscribe a persistent :class:`WindowStop` latch to ``stop``.

        The returned latch can be passed as ``stop=`` to any number of
        :meth:`run_window` calls; unlike passing the event itself, no
        per-call subscribe/unsubscribe work happens.  A latch for an
        already-processed event comes back pre-fired.
        """
        latch = WindowStop()
        if stop.callbacks is None:  # already processed
            latch.fired = True
        else:
            stop.callbacks.append(latch)
        return latch

    def run_window(
        self,
        bound: float,
        stop: "Event | WindowStop | None" = None,
        stamp: list[float] | None = None,
    ) -> bool:
        """Dispatch every event *strictly* before ``bound``; stop early if
        ``stop`` is processed.  Returns True once ``stop`` has fired.

        This is the conservative-synchronization primitive used by
        :mod:`repro.shard`: a shard owns one environment and advances it
        window by window, where each window bound is the global
        lower-bound-on-timestamp plus the lookahead.  The clock is *not*
        pinned to ``bound`` (it stays on the last dispatched event), so
        ``peek`` afterwards reports the first event at or beyond the
        bound — exactly what the coordinator needs for the next LBTS.

        ``stop`` may be an :class:`~repro.des.events.Event` (subscribed
        for this window only) or a :class:`WindowStop` latch from
        :meth:`window_stop` (persistent across windows — the cheap form
        for a runtime advancing thousands of windows).

        ``stamp``, when given, receives the timestamp of every event
        dispatched in this window (appended in dispatch order).  The
        coordinator uses it to discount events a terminating window
        overran past the global end time.
        """
        if type(stop) is WindowStop:
            return self._run_window_latched(bound, stop, stamp)
        flag: list[bool] = []
        if stop is not None:
            if stop.callbacks is None:  # already processed in a prior window
                return True
            stop.callbacks.append(flag.append)
        queue = self._queue
        pop = heappop
        pool = self._cb_pool
        dispatched = 0
        try:
            while queue and not flag and queue[0][0] < bound:
                when, _, _, event = pop(queue)
                self._now = when
                callbacks = event.callbacks
                if callbacks is None:
                    raise SimulationError(f"{event!r} processed twice")
                event.callbacks = None
                dispatched += 1
                if stamp is not None:
                    stamp.append(when)
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused:
                    raise event._value
                if event.__class__ is Callback and len(pool) < _CB_POOL_LIMIT:
                    pool.append(event)
        finally:
            self.events_processed += dispatched
        if flag:
            return True
        if stop is not None and stop.callbacks is not None:
            # Leave no dangling subscription between windows: the flag list
            # dies here, so a later window must re-subscribe a fresh one.
            stop.callbacks.remove(flag.append)
        return False

    def _run_window_latched(
        self,
        bound: float,
        latch: WindowStop,
        stamp: list[float] | None,
    ) -> bool:
        """The :meth:`run_window` loop for a persistent stop latch."""
        if latch.fired:
            return True
        queue = self._queue
        pop = heappop
        pool = self._cb_pool
        dispatched = 0
        try:
            while queue and not latch.fired and queue[0][0] < bound:
                when, _, _, event = pop(queue)
                self._now = when
                callbacks = event.callbacks
                if callbacks is None:
                    raise SimulationError(f"{event!r} processed twice")
                event.callbacks = None
                dispatched += 1
                if stamp is not None:
                    stamp.append(when)
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused:
                    raise event._value
                if event.__class__ is Callback and len(pool) < _CB_POOL_LIMIT:
                    pool.append(event)
        finally:
            self.events_processed += dispatched
        return latch.fired
