"""The simulation environment: virtual clock plus event calendar."""

from __future__ import annotations

import typing as t
from heapq import heappop, heappush
from itertools import count

from ..errors import SimulationError
from .events import NORMAL, Event, Timeout

if t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .process import Process

__all__ = ["Environment"]

_GeneratorT = t.Generator[Event, t.Any, t.Any]


class _EmptyCalendar(Exception):
    """Internal: raised by :meth:`Environment.step` when nothing is left."""


class Environment:
    """Owns the virtual clock and executes events in timestamp order.

    Ties are broken by scheduling priority (URGENT before NORMAL) and then
    by insertion order, which makes runs fully deterministic.

    >>> env = Environment()
    >>> def hello(env):
    ...     yield env.timeout(3.0)
    ...     return "done"
    >>> proc = env.process(hello(env))
    >>> env.run()
    >>> env.now
    3.0
    >>> proc.value
    'done'
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._eid = count()
        self.active_process: "Process | None" = None

    # -- clock ------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    # -- event factories ----------------------------------------------------

    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: t.Any = None) -> Timeout:
        """Create an event firing ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: _GeneratorT) -> "Process":
        """Start ``generator`` as a new simulation process."""
        from .process import Process

        return Process(self, generator)

    # -- scheduling ---------------------------------------------------------

    def schedule(self, event: Event, priority: int = NORMAL, delay: float = 0.0) -> None:
        """Put a triggered event on the calendar ``delay`` from now."""
        heappush(self._queue, (self._now + delay, priority, next(self._eid), event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the single next event (advancing the clock to it)."""
        try:
            when, _, _, event = heappop(self._queue)
        except IndexError:
            raise _EmptyCalendar() from None
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        assert callbacks is not None, "event processed twice"
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            # A failure that no process absorbed: stop the world so bugs in
            # models cannot silently vanish.
            exc = event._value
            raise exc

    def run(self, until: float | Event | None = None) -> t.Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None``
                run until the calendar is empty;
            a number
                run until that virtual time (the clock lands exactly on it);
            an :class:`Event`
                run until that event is processed and return its value.
        """
        if until is None:
            try:
                while True:
                    self.step()
            except _EmptyCalendar:
                return None

        if isinstance(until, Event):
            stop = until
            if stop.callbacks is None:  # already processed
                return stop._value
            flag: list[bool] = []
            stop.callbacks.append(lambda _ev: flag.append(True))
            try:
                while not flag:
                    self.step()
            except _EmptyCalendar:
                raise SimulationError(
                    "simulation ended before the awaited event fired"
                ) from None
            if not stop._ok:
                stop.defuse()
                raise stop._value
            return stop._value

        horizon = float(until)
        if horizon < self._now:
            raise SimulationError(
                f"cannot run until {horizon} which is before now={self._now}"
            )
        try:
            while self._queue and self._queue[0][0] <= horizon:
                self.step()
        except _EmptyCalendar:  # pragma: no cover - guarded by loop condition
            pass
        self._now = horizon
        return None
