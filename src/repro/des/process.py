"""Generator-based simulation processes.

A :class:`Process` drives a Python generator: each event the generator
``yield``\\ s suspends it until the event fires, at which point the event's
value is sent back in (or its exception thrown in).  A process is itself an
:class:`~repro.des.events.Event` that fires when the generator returns, with
the generator's return value.
"""

from __future__ import annotations

import typing as t

from ..errors import SimulationError
from .events import NORMAL, PENDING, URGENT, Event

if t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .environment import Environment

__all__ = ["Process", "Interrupt"]


class Interrupt(Exception):
    """Thrown into a process's generator by :meth:`Process.interrupt`."""

    @property
    def cause(self) -> t.Any:
        """The cause passed to :meth:`Process.interrupt`."""
        return self.args[0] if self.args else None


class Process(Event):
    """A running generator on the simulation calendar.

    Fires (as an event) when the generator finishes; its value is the
    generator's return value.  If the generator raises, the process fails
    with that exception, which propagates to waiters or stops the run.
    """

    __slots__ = ("_generator", "_target", "_quiet")

    def __init__(
        self,
        env: "Environment",
        generator: t.Generator,
        *,
        quiet: bool = False,
        start_delay: float = 0.0,
        start_at: float | None = None,
    ) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        #: The event this process currently waits on (None while running).
        self._target: Event | None = None
        #: Internal fire-and-forget process: a successful finish with no
        #: subscribed callbacks completes in place, skipping the calendar.
        self._quiet = quiet
        # Kick the generator off via an immediately-scheduled init event.
        # An immediate start is URGENT (spawned work begins ahead of other
        # same-time NORMAL events, as it always has); a *delayed* start is
        # NORMAL so it is ordered exactly like the `yield env.timeout(d)`
        # first line it replaces.  ``start_at`` is the absolute-time form
        # of a delayed start (also NORMAL): the calendar entry carries the
        # caller's float verbatim, never a re-derived now+delay.
        init = Event(env)
        init._ok = True
        init._value = None
        init.callbacks.append(self._resume)
        if start_at is not None:
            if start_delay:
                raise SimulationError(
                    "start_delay and start_at are mutually exclusive"
                )
            env.schedule_at(init, start_at, priority=NORMAL)
        elif start_delay > 0.0:
            env.schedule(init, priority=NORMAL, delay=start_delay)
        else:
            env.schedule(init, priority=URGENT)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._value is PENDING

    @property
    def target(self) -> Event | None:
        """The event this process is currently suspended on, if any."""
        return self._target

    def interrupt(self, cause: t.Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        The interrupt is delivered via an urgent event so that the victim's
        state is consistent when it receives the exception.  Interrupting a
        finished process is an error; interrupting a process that completes
        at the same timestamp is silently dropped.
        """
        if not self.is_alive:
            raise SimulationError(f"{self!r} has terminated and cannot be interrupted")
        if self is self.env.active_process:
            raise SimulationError("a process is not allowed to interrupt itself")
        _Interruption(self, cause)

    def _resume(self, event: Event) -> None:
        """Advance the generator with ``event``'s outcome."""
        env = self.env
        # Save/restore rather than reset: an inline wake-up (see
        # Store.inline_wakeup) can resume one process from inside
        # another's callback, and the outer process must still be the
        # active one when control returns to it.
        previous = env.active_process
        env.active_process = self
        self._target = None
        while True:
            try:
                if event._ok:
                    next_target = self._generator.send(event._value)
                else:
                    # The waiter absorbs the failure.
                    event.defuse()
                    next_target = self._generator.throw(event._value)
            except StopIteration as stop:
                self._ok = True
                self._value = stop.value
                if self._quiet and not self.callbacks:
                    # Nobody subscribed to a fire-and-forget process: its
                    # completion event would run zero callbacks, so record
                    # the completion in place.  (`processed` flips a
                    # micro-tick early at the same timestamp — observable
                    # only by polling, which nothing internal does.)
                    self.callbacks = None
                else:
                    env.schedule(self)
                break
            except BaseException as exc:  # noqa: BLE001 - process death path
                self._ok = False
                self._value = exc
                env.schedule(self)
                break

            if not isinstance(next_target, Event):
                exc = SimulationError(
                    f"process yielded a non-event: {next_target!r}"
                )
                self._ok = False
                self._value = exc
                env.schedule(self)
                break
            if next_target.env is not env:
                exc = SimulationError("yielded an event from a foreign environment")
                self._ok = False
                self._value = exc
                env.schedule(self)
                break

            if next_target.callbacks is not None:
                # Still pending or triggered-but-unprocessed: subscribe.
                next_target.callbacks.append(self._resume)
                self._target = next_target
                break
            # Already processed: consume its value immediately.
            event = next_target
        env.active_process = previous


class _Interruption(Event):
    """Internal urgent event that delivers an :class:`Interrupt`."""

    __slots__ = ("process",)

    def __init__(self, process: Process, cause: t.Any) -> None:
        super().__init__(process.env)
        self.process = process
        self._ok = False
        self._value = Interrupt(cause)
        self._defused = True  # delivery below hands it to the generator
        self.callbacks = [self._deliver]
        self.env.schedule(self, priority=URGENT)

    def _deliver(self, _event: Event) -> None:
        process = self.process
        if not process.is_alive:
            return  # finished in the meantime; drop silently
        target = process._target
        if target is not None and target.callbacks is not None:
            # Unsubscribe the victim from what it was waiting on.
            try:
                target.callbacks.remove(process._resume)
            except ValueError:  # pragma: no cover - defensive
                pass
        process._resume(self)
