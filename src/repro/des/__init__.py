"""A small, deterministic discrete-event simulation (DES) kernel.

This package is the substrate the whole SAIs reproduction runs on.  It is a
from-scratch generator-based DES in the style popularized by SimPy:

* :class:`~repro.des.environment.Environment` owns the virtual clock and the
  event calendar;
* :class:`~repro.des.events.Event` is a one-shot future that carries a value
  or an exception;
* :class:`~repro.des.process.Process` wraps a Python generator; the
  generator ``yield``\\ s events to wait on them and may be interrupted;
* :mod:`~repro.des.resources` provides FIFO and priority-queued resources,
  object stores and level containers used to model cores, buses, NICs and
  disks.

The kernel is fully deterministic: events that fire at the same virtual time
are processed in schedule order (FIFO within a priority class), so identical
seeds yield identical traces.
"""

from .environment import Environment, WindowStop
from .events import AllOf, AnyOf, Callback, Event, Timeout
from .process import Interrupt, Process
from .resources import (
    Barrier,
    Container,
    Preempted,
    PreemptiveResource,
    PriorityResource,
    Resource,
    Store,
)

__all__ = [
    "Environment",
    "WindowStop",
    "Event",
    "Timeout",
    "Callback",
    "AllOf",
    "AnyOf",
    "Process",
    "Interrupt",
    "Resource",
    "PriorityResource",
    "PreemptiveResource",
    "Preempted",
    "Container",
    "Store",
    "Barrier",
]
