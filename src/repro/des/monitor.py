"""Measurement probes for simulations.

Two kinds of instruments:

* :class:`Counter` — monotonically accumulating event counts / byte totals;
* :class:`TimeWeighted` — a piecewise-constant signal (queue length, busy
  state) whose time-average matters.

Both are cheap (O(1) per update) and deterministic.  The hardware models in
:mod:`repro.hw` expose their statistics through these.
"""

from __future__ import annotations

import typing as t

from ..errors import SimulationError

if t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .environment import Environment

__all__ = ["Counter", "TimeWeighted", "IntervalAccumulator"]


class Counter:
    """A named monotonic counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def add(self, amount: float = 1.0) -> None:
        """Increment by ``amount`` (must be non-negative)."""
        if amount < 0:
            raise SimulationError(f"counter {self.name}: negative add {amount}")
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class TimeWeighted:
    """Time-weighted average of a piecewise-constant signal.

    >>> from repro.des import Environment
    >>> env = Environment()
    >>> sig = TimeWeighted(env, initial=0.0)
    >>> env.run(until=2.0); sig.set(1.0)
    >>> env.run(until=4.0)
    >>> sig.mean()          # 0 for 2s then 1 for 2s
    0.5
    """

    __slots__ = ("env", "_value", "_last_change", "_area", "_start")

    def __init__(self, env: "Environment", initial: float = 0.0) -> None:
        self.env = env
        self._value = float(initial)
        self._last_change = env.now
        self._area = 0.0
        self._start = env.now

    @property
    def value(self) -> float:
        """Current signal value."""
        return self._value

    def set(self, value: float) -> None:
        """Change the signal value at the current time."""
        now = self.env.now
        self._area += self._value * (now - self._last_change)
        self._last_change = now
        self._value = float(value)

    def add(self, delta: float) -> None:
        """Shift the signal by ``delta`` at the current time."""
        self.set(self._value + delta)

    def mean(self, until: float | None = None) -> float:
        """Time-average of the signal from creation to ``until`` (or now)."""
        end = self.env.now if until is None else until
        span = end - self._start
        if span <= 0:
            return self._value
        area = self._area + self._value * (end - self._last_change)
        return area / span


class IntervalAccumulator:
    """Accumulates total *busy time* from explicit begin/end marks.

    Supports nesting-free overlapping use via a depth counter: the interval
    counts as busy while at least one mark is open.  Used for per-core
    busy-cycle accounting (``CPU_CLK_UNHALTED``).
    """

    __slots__ = ("env", "_depth", "_opened_at", "total")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self._depth = 0
        self._opened_at = 0.0
        self.total = 0.0

    @property
    def active(self) -> bool:
        """True while at least one mark is open."""
        return self._depth > 0

    def begin(self) -> None:
        """Open a busy mark."""
        if self._depth == 0:
            self._opened_at = self.env.now
        self._depth += 1

    def end(self) -> None:
        """Close a busy mark."""
        if self._depth <= 0:
            raise SimulationError("IntervalAccumulator.end() without begin()")
        self._depth -= 1
        if self._depth == 0:
            self.total += self.env.now - self._opened_at

    def current_total(self) -> float:
        """Busy time accumulated so far, including a still-open interval."""
        if self._depth > 0:
            return self.total + (self.env.now - self._opened_at)
        return self.total
