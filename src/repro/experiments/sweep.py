"""The ``sweep`` experiment family: generated-scenario campaigns.

Each sweep experiment samples N scenarios from a
:class:`~repro.scenarios.ScenarioSpec` (the built-in cookbook specs, or
— for ``sweep_custom`` — whatever ``sais-repro sweep --spec`` installed
as the ambient request) and scores every scenario with one
baseline-vs-treatment A/B comparison.  The decomposition is the
standard one: the *grid* is the pure generator expansion (cheap,
pickleable :class:`~repro.scenarios.Scenario` specs), the *point* is
one deterministic A/B simulation, and *assemble* folds the comparisons
into a per-scenario table with the topology features the aggregate
report buckets on (:mod:`repro.scenarios.report`).

Because generation is byte-reproducible from ``(spec, seed)`` and every
point key is content-addressed over the resolved config, sweeps ride
the runner's cache and cross-experiment dedup exactly like the figure
experiments — growing ``--samples`` re-runs only the new scenarios
(DESIGN.md §11).
"""

from __future__ import annotations

import dataclasses
import functools
import typing as t

from ..cluster.simulation import PolicyComparison, compare_policies
from ..faults.ambient import apply_ambient_faults
from ..scenarios.ambient import ambient_sweep
from ..scenarios.generate import Scenario, generate_scenarios
from ..scenarios.report import SWEEP_HEADERS
from ..scenarios.spec import BUILTIN_SPECS
from ..units import MiB, format_size
from .base import ExperimentResult, register_grid_experiment, resolve_scale
from .grids import comparison_point_key

__all__ = [
    "SWEEP_FAMILY",
    "CUSTOM_SWEEP_ID",
    "ALL_SWEEP_IDS",
    "SWEEP_SEED",
    "SWEEP_SAMPLES",
    "run_scenario_point",
    "scenario_point_key",
    "sweep_grid",
]

#: Generator seed of the pinned family (the committed goldens).
SWEEP_SEED = 1

#: Scenarios per sweep by scale.  Quick stays golden/CI-cheap; full is
#: the mega-sweep setting ("hundreds" comes from running several family
#: members and seeds through the shared cache).
SWEEP_SAMPLES = {"quick": 3, "default": 12, "full": 48}

#: The pinned family: one experiment per built-in cookbook spec.
SWEEP_FAMILY = ("sweep_homogeneous", "sweep_heterogeneous", "sweep_leafspine")

#: The ambient-request-driven experiment behind ``sweep --spec``.
CUSTOM_SWEEP_ID = "sweep_custom"

ALL_SWEEP_IDS = SWEEP_FAMILY + (CUSTOM_SWEEP_ID,)


def _with_ambient_faults(scenarios: t.Sequence[Scenario]) -> tuple[Scenario, ...]:
    """Degrade every scenario's config under the ambient fault plan.

    The same ``--fault-plan`` contract as the figure grids: point keys
    hash the *faulted* config, so degraded runs never alias clean ones.
    """
    return tuple(
        dataclasses.replace(
            scenario, config=apply_ambient_faults(scenario.config)
        )
        for scenario in scenarios
    )


def sweep_grid(spec_name: str, scale: str) -> tuple[Scenario, ...]:
    """The pinned grid of one family member: pure generator expansion."""
    scale = resolve_scale(scale)
    return _with_ambient_faults(
        generate_scenarios(
            BUILTIN_SPECS[spec_name], SWEEP_SAMPLES[scale], SWEEP_SEED, scale
        )
    )


def _custom_grid(scale: str) -> tuple[Scenario, ...]:
    """``sweep_custom``'s grid: whatever request is ambient (CLI --spec)."""
    request = ambient_sweep()
    return _with_ambient_faults(
        generate_scenarios(
            request.spec, request.samples, request.seed, resolve_scale(scale)
        )
    )


@functools.lru_cache(maxsize=1024)
def _run_pair(
    config: t.Any, baseline: str, treatment: str
) -> PolicyComparison:
    return compare_policies(config, baseline=baseline, treatment=treatment)


def run_scenario_point(scenario: Scenario) -> PolicyComparison:
    """One scenario's A/B comparison (deterministic, memoized in-process)."""
    return _run_pair(scenario.config, scenario.baseline, scenario.treatment)


def scenario_point_key(scenario: Scenario) -> str:
    """Content-addressed cell name; reuses the figure families' ``cmp:``
    namespace for the default policy pair so identical cells dedup
    across experiments within one runner invocation."""
    if (scenario.baseline, scenario.treatment) == (
        "irqbalance",
        "source_aware",
    ):
        return comparison_point_key(scenario.config)
    from ..runner.cache import config_digest

    return (
        f"cmp:{scenario.baseline}->{scenario.treatment}:"
        f"{config_digest(scenario.config)}"
    )


def _assemble(
    exp_id: str, title: str
) -> t.Callable[[str, t.Sequence[Scenario], t.Sequence[PolicyComparison]], ExperimentResult]:
    def assemble(
        scale: str,
        specs: t.Sequence[Scenario],
        rows: t.Sequence[PolicyComparison],
    ) -> ExperimentResult:
        table: list[tuple[t.Any, ...]] = []
        deltas: list[float] = []
        for scenario, cmp in zip(specs, rows):
            features = scenario.features
            delta = round(cmp.bandwidth_speedup * 100, 2)
            deltas.append(delta)
            table.append(
                (
                    scenario.index,
                    features.klass,
                    features.n_clients,
                    features.n_servers,
                    features.fan_in,
                    features.tiers,
                    features.oversubscription,
                    features.link_ratio,
                    features.mss_label,
                    format_size(scenario.config.workload.transfer_size),
                    features.operation,
                    round(cmp.baseline.bandwidth / MiB, 1),
                    round(cmp.treatment.bandwidth / MiB, 1),
                    delta,
                )
            )
        wins = sum(1 for delta in deltas if delta > 0)
        measured = {
            "n_scenarios": float(len(deltas)),
            "win_rate": round(wins / len(deltas), 4) if deltas else 0.0,
            "mean_delta_pct": (
                round(sum(deltas) / len(deltas), 2) if deltas else 0.0
            ),
            "min_delta_pct": min(deltas) if deltas else 0.0,
            "max_delta_pct": max(deltas) if deltas else 0.0,
        }
        return ExperimentResult(
            exp_id=exp_id,
            title=title,
            headers=SWEEP_HEADERS,
            rows=tuple(table),
            paper={},
            measured=measured,
            notes=(
                "delta_pct is the treatment's goodput gain over the "
                "baseline at each generated scenario; aggregate win-rate "
                "tables come from `sais-repro sweep` "
                "(repro.scenarios.report).",
            ),
        )

    return assemble


def _register(exp_id: str, spec_name: str, title: str) -> None:
    register_grid_experiment(
        exp_id,
        grid=functools.partial(sweep_grid, spec_name),
        run_point=run_scenario_point,
        assemble=_assemble(exp_id, title),
        point_key=scenario_point_key,
    )


_register(
    "sweep_homogeneous",
    "homogeneous",
    "scenario sweep: homogeneous paper-testbed clusters",
)
_register(
    "sweep_heterogeneous",
    "heterogeneous",
    "scenario sweep: heterogeneous client classes + mixed links",
)
_register(
    "sweep_leafspine",
    "leafspine",
    "scenario sweep: oversubscribed leaf-spine fabrics",
)

register_grid_experiment(
    CUSTOM_SWEEP_ID,
    grid=_custom_grid,
    run_point=run_scenario_point,
    assemble=_assemble(
        CUSTOM_SWEEP_ID, "scenario sweep: ambient --spec request"
    ),
    point_key=scenario_point_key,
)
