"""Modern NIC-steering policy competition (beyond the paper's schemes).

The paper compares source-aware interrupt scheduling against the
conventional balancers of its era.  The design space that followed —
hardware flow hashing (RSS), NIC flow-affinity tables (Intel Flow
Director/ATR), software steering (Linux RPS/RFS) and interrupt-free
RDMA-style placement — attacks the same data-locality problem from
different layers.  Two experiments put them all on the paper's workload:

* ``steering_comparison`` — *every* registered policy on the Fig. 5
  48-server / 3-Gigabit point.  The grid enumerates the live policy
  registry, so registering a new policy without regenerating the golden
  snapshot fails loudly rather than silently shrinking coverage.
* ``steering_reorder_pathology`` — the Flow Director packet-reordering
  pathology (arXiv 1106.0443): with MSS-segmented flows and consumer
  migration, ATR repoints the flow's core while segments are in flight
  and one strip's segments complete on two cores out of order.  TCP
  sees out-of-order segments and duplicate ACKs under ``flow_director``
  while ``rss`` — same workload, same hash — stays at exactly zero.
"""

from __future__ import annotations

from ..config import ClusterConfig, NetworkConfig, WorkloadConfig
from ..core.policy import available_policies
from ..units import KiB, MiB
from .base import ExperimentResult, register_grid_experiment, resolve_scale
from .grids import nic_config, run_single_point, single_point_key

__all__ = ["run_steering_comparison", "run_steering_reorder_pathology"]

#: Policies that bypass the interrupt path entirely (no APIC deliveries).
_INTERRUPT_FREE = ("rdma_zerointr",)


def _workload(scale: str) -> WorkloadConfig:
    file_size = {"quick": 4 * MiB, "default": 8 * MiB, "full": 32 * MiB}[
        resolve_scale(scale)
    ]
    return WorkloadConfig(
        n_processes=8, transfer_size=1 * MiB, file_size=file_size
    )


# -- steering_comparison -----------------------------------------------


def _grid_comparison(scale: str) -> tuple[ClusterConfig, ...]:
    """One Fig. 5 point per *registered* policy.

    Enumerating the registry (not a frozen list) is deliberate: a new
    policy immediately appears in this grid, so the golden snapshot and
    the coverage test in ``tests/core/test_policy_invariants.py`` both
    fail until the new policy's rows are generated and reviewed.
    """
    config = ClusterConfig(
        n_servers=48, client=nic_config(3), workload=_workload(scale)
    )
    return tuple(
        config.with_policy(policy) for policy in available_policies()
    )


def _assemble_comparison(scale, specs, metrics_list) -> ExperimentResult:
    results = {
        config.policy: metrics for config, metrics in zip(specs, metrics_list)
    }
    baseline_bw = results["irqbalance"].bandwidth
    rows = tuple(
        (
            policy,
            f"{metrics.bandwidth / MiB:.1f}",
            f"{metrics.bandwidth / baseline_bw - 1:+.2%}",
            metrics.migrations,
            metrics.rps_handoffs,
            metrics.steering_migrations,
            sum(metrics.clients[0].interrupts_per_core),
        )
        for policy, metrics in results.items()
    )
    rdma = results["rdma_zerointr"]
    rps = results["rps_rfs"]
    interrupting_best = max(
        m.bandwidth
        for policy, m in results.items()
        if policy not in _INTERRUPT_FREE
    )
    return ExperimentResult(
        exp_id="steering_comparison",
        title=(
            "NIC-steering policy competition — Fig. 5 point, 48 servers, "
            "3-Gigabit NIC"
        ),
        headers=(
            "policy",
            "MB/s",
            "vs irqbalance",
            "strip migrations",
            "RPS handoffs",
            "flow repoints",
            "interrupts",
        ),
        rows=rows,
        paper={
            # RDMA-style NIC placement is the zero-interrupt upper bound:
            # no strip ever lands in the wrong cache, and nothing
            # interrupting should beat it.
            "rdma_zerointr_strip_migrations": 0.0,
            "rdma_zerointr_interrupts": 0.0,
            # RFS steers the softirq to the consumer before protocol
            # processing, so the data never needs a c2c migration either
            # — it pays per-packet handoffs instead.
            "rps_rfs_strip_migrations": 0.0,
        },
        measured={
            "rdma_zerointr_strip_migrations": float(rdma.migrations),
            "rdma_zerointr_interrupts": float(
                sum(rdma.clients[0].interrupts_per_core)
            ),
            "rps_rfs_strip_migrations": float(rps.migrations),
            "rps_rfs_handoffs": float(rps.rps_handoffs),
            "rdma_vs_best_interrupting_pct": (
                rdma.bandwidth / interrupting_best - 1
            )
            * 100,
        },
        notes=(
            "The grid enumerates the live policy registry: register a new "
            "policy and this experiment's golden goes stale until "
            "regenerated.",
        ),
    )


#: Every registered policy on the Fig. 5 (48-server, 3-Gigabit) point.
run_steering_comparison = register_grid_experiment(
    "steering_comparison",
    grid=_grid_comparison,
    run_point=run_single_point,
    assemble=_assemble_comparison,
    point_key=single_point_key,
)


# -- steering_reorder_pathology ----------------------------------------

#: The two hardware-steering schemes whose only difference is the
#: affinity table: same Toeplitz hash, but ATR lets TX traffic repoint it.
_PATHOLOGY_POLICIES = ("rss", "flow_director")


def _grid_pathology(scale: str) -> tuple[ClusterConfig, ...]:
    file_size = {"quick": 2 * MiB, "default": 4 * MiB, "full": 16 * MiB}[
        resolve_scale(scale)
    ]
    workload = WorkloadConfig(
        n_processes=8,
        transfer_size=512 * KiB,
        file_size=file_size,
        # Consumers hop cores while blocked: every hop re-samples the
        # flow's TX core, repointing the ATR table mid-flight.
        migrate_during_io=0.5,
    )
    config = ClusterConfig(
        n_servers=8,
        client=nic_config(3),
        # Standard-frame MSS: each 64 KiB strip travels as 46 segments,
        # each steered independently — the wider the segment train, the
        # more reordering windows an ATR repoint can land in.
        network=NetworkConfig(mss=1448),
        workload=workload,
    )
    return tuple(
        config.with_policy(policy) for policy in _PATHOLOGY_POLICIES
    )


def _assemble_pathology(scale, specs, metrics_list) -> ExperimentResult:
    results = {
        config.policy: metrics for config, metrics in zip(specs, metrics_list)
    }
    rss = results["rss"]
    fdir = results["flow_director"]
    rows = tuple(
        (
            policy,
            f"{metrics.bandwidth / MiB:.1f}",
            metrics.out_of_order_segments,
            metrics.dup_acks,
            metrics.fast_retransmits,
            metrics.steering_migrations,
        )
        for policy, metrics in results.items()
    )
    return ExperimentResult(
        exp_id="steering_reorder_pathology",
        title=(
            "Flow Director ATR reordering pathology — MSS-segmented flows "
            "with consumer migration (8 servers)"
        ),
        headers=(
            "policy",
            "MB/s",
            "out-of-order segs",
            "dup ACKs",
            "fast rtx",
            "flow repoints",
        ),
        rows=rows,
        paper={
            # arXiv 1106.0443: ATR's flow-table repoints reorder packets
            # of in-flight flows; pure RSS hashing cannot (one flow, one
            # core, FIFO softirq queue).
            "flow_director_sees_reordering": 1.0,
            "rss_reordering_free": 1.0,
        },
        measured={
            "flow_director_sees_reordering": (
                1.0 if fdir.out_of_order_segments > 0 else 0.0
            ),
            "rss_reordering_free": (
                1.0 if rss.out_of_order_segments == 0 else 0.0
            ),
            "flow_director_out_of_order": float(fdir.out_of_order_segments),
            "flow_director_dup_acks": float(fdir.dup_acks),
            "rss_out_of_order": float(rss.out_of_order_segments),
        },
        notes=(
            "Reordering is pure observability: assembly buffers any "
            "order, so both policies account identical goodput bytes.",
        ),
    )


#: RSS vs Flow Director on the segmented-flow + migration workload.
run_steering_reorder_pathology = register_grid_experiment(
    "steering_reorder_pathology",
    grid=_grid_pathology,
    run_point=run_single_point,
    assemble=_assemble_pathology,
    point_key=single_point_key,
)
