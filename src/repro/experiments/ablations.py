"""Ablation experiments for the design choices DESIGN.md calls out.

* ``ablation_policies`` — Sec. III lists four scheduling policies; the
  paper implements (i) and argues (ii) would be nearly identical because
  processes rarely migrate during blocking I/O.  We run all of them (plus
  round-robin) on the Fig. 5 workload.
* ``ablation_costmodel`` — sensitivity of the SAIs advantage to the M/P
  ratio and the NIC bandwidth: the paper's claim is that the advantage
  needs both M >> P and network headroom.
* ``ablation_migration`` — unpin the processes and let them hop cores
  while blocked: policy (i)'s wire hint goes stale, policy (ii)'s process
  locator keeps up.  Quantifies the "rescheduling may occur during I/O
  blocking" caveat of Sec. III.
* ``ablation_write_path`` — the paper scopes the problem to reads
  ("there is not a data locality issue associated with ... write
  operations"); running the write workload under both policies verifies
  that claim in the model.
"""

from __future__ import annotations

import dataclasses

from ..config import ClusterConfig, CostModel, WorkloadConfig
from ..units import KiB, MiB
from .base import ExperimentResult, register_grid_experiment, resolve_scale
from .grids import (
    comparison_point_key,
    nic_config,
    run_comparison_point,
    run_single_point,
    single_point_key,
)

__all__ = ["run_ablation_policies", "run_ablation_costmodel"]

_POLICIES = (
    "irqbalance",
    "round_robin",
    "dedicated",
    "least_loaded",
    "source_aware",
    "source_aware_process",
)


def _workload(scale: str) -> WorkloadConfig:
    file_size = {"quick": 4 * MiB, "default": 8 * MiB, "full": 32 * MiB}[
        resolve_scale(scale)
    ]
    return WorkloadConfig(
        n_processes=8, transfer_size=1 * MiB, file_size=file_size
    )


# -- ablation_policies -------------------------------------------------


def _grid_policies(scale: str) -> tuple[ClusterConfig, ...]:
    config = ClusterConfig(
        n_servers=48, client=nic_config(3), workload=_workload(scale)
    )
    return tuple(config.with_policy(policy) for policy in _POLICIES)


def _assemble_policies(scale, specs, metrics_list) -> ExperimentResult:
    results = {
        config.policy: metrics for config, metrics in zip(specs, metrics_list)
    }
    baseline_bw = results["irqbalance"].bandwidth
    rows = tuple(
        (
            policy,
            f"{metrics.bandwidth / MiB:.1f}",
            f"{metrics.bandwidth / baseline_bw - 1:+.2%}",
            f"{metrics.l2_miss_rate:.2%}",
            f"{metrics.clients[0].interrupt_spread:.0%}",
        )
        for policy, metrics in results.items()
    )
    sa = results["source_aware"].bandwidth
    sa_process = results["source_aware_process"].bandwidth
    conventional_best = max(
        results[p].bandwidth
        for p in ("irqbalance", "round_robin", "dedicated", "least_loaded")
    )
    return ExperimentResult(
        exp_id="ablation_policies",
        title="Sec. III policies — bandwidth at 48 servers, 3-Gigabit NIC",
        headers=(
            "policy",
            "MB/s",
            "vs irqbalance",
            "L2 miss rate",
            "cores hit by IRQs",
        ),
        rows=rows,
        paper={
            # Sec. III: "the expected performance difference between the
            # first two policies is trivial".
            "policy_i_vs_ii_gap_pct_max": 2.0,
            "source_aware_beats_conventional": 1.0,
        },
        measured={
            "policy_i_vs_ii_gap_pct_max": abs(sa / sa_process - 1) * 100,
            "source_aware_beats_conventional": (
                1.0 if min(sa, sa_process) > conventional_best else 0.0
            ),
        },
    )


#: All registered scheduling policies on the Fig. 5 (48-server) point.
run_ablation_policies = register_grid_experiment(
    "ablation_policies",
    grid=_grid_policies,
    run_point=run_single_point,
    assemble=_assemble_policies,
    point_key=single_point_key,
)


# -- ablation_migration ------------------------------------------------

_MIGRATION_PROBABILITIES = (0.0, 0.1, 0.3, 0.6)


def _grid_migration(scale: str) -> tuple[ClusterConfig, ...]:
    specs = []
    for probability in _MIGRATION_PROBABILITIES:
        workload = dataclasses.replace(
            _workload(scale), migrate_during_io=probability
        )
        config = ClusterConfig(
            n_servers=16, client=nic_config(3), workload=workload
        )
        specs.append(config.with_policy("source_aware"))
        specs.append(config.with_policy("source_aware_process"))
    return tuple(specs)


def _assemble_migration(scale, specs, metrics_list) -> ExperimentResult:
    rows = []
    gains = {}
    pairs = list(zip(metrics_list[0::2], metrics_list[1::2]))
    for probability, (policy_i, policy_ii) in zip(
        _MIGRATION_PROBABILITIES, pairs
    ):
        gain = policy_ii.bandwidth / policy_i.bandwidth - 1
        gains[probability] = gain
        rows.append(
            (
                f"{probability:.0%}",
                f"{policy_i.bandwidth / MiB:.1f}",
                f"{policy_ii.bandwidth / MiB:.1f}",
                f"{gain:+.2%}",
                policy_i.migrations,
                policy_ii.migrations,
            )
        )
    return ExperimentResult(
        exp_id="ablation_migration",
        title="Sec. III — policy (i) vs (ii) under migration during blocking I/O",
        headers=(
            "P(migrate)",
            "policy (i) MB/s",
            "policy (ii) MB/s",
            "(ii) gain",
            "(i) strip migrations",
            "(ii) strip migrations",
        ),
        rows=tuple(rows),
        paper={
            # "since the process migration rarely happens during a blocking
            # I/O, the expected performance difference ... is trivial"
            "gap_trivial_when_migration_rare_pct": 1.0,
        },
        measured={
            "gap_trivial_when_migration_rare_pct": abs(gains[0.0]) * 100,
            "gain_at_30pct_migration_pct": gains[0.3] * 100,
            "gain_at_60pct_migration_pct": gains[0.6] * 100,
        },
        notes=(
            "Policy (ii) carries zero strip migrations at any migration "
            "rate because the locator always targets the process's "
            "current core.",
        ),
    )


#: Policy (i) vs (ii) as migration-during-I/O becomes common.
run_ablation_migration = register_grid_experiment(
    "ablation_migration",
    grid=_grid_migration,
    run_point=run_single_point,
    assemble=_assemble_migration,
    point_key=single_point_key,
)


# -- ablation_write_path -----------------------------------------------

_WRITE_SERVER_COUNTS = (16, 48)


def _grid_write(scale: str) -> tuple[ClusterConfig, ...]:
    workload = dataclasses.replace(_workload(scale), operation="write")
    specs = []
    for n_servers in _WRITE_SERVER_COUNTS:
        config = ClusterConfig(
            n_servers=n_servers, client=nic_config(3), workload=workload
        )
        specs.append(config.with_policy("irqbalance"))
        specs.append(config.with_policy("source_aware"))
    return tuple(specs)


def _assemble_write(scale, specs, metrics_list) -> ExperimentResult:
    rows = []
    speedups = {}
    pairs = list(zip(metrics_list[0::2], metrics_list[1::2]))
    for n_servers, (baseline, treatment) in zip(_WRITE_SERVER_COUNTS, pairs):
        speedup = treatment.bandwidth / baseline.bandwidth - 1
        speedups[n_servers] = speedup
        rows.append(
            (
                n_servers,
                f"{baseline.bandwidth / MiB:.1f}",
                f"{treatment.bandwidth / MiB:.1f}",
                f"{speedup:+.2%}",
                baseline.migrations,
            )
        )
    return ExperimentResult(
        exp_id="ablation_write_path",
        title="Write path — interrupt scheduling cannot matter for writes",
        headers=(
            "servers",
            "irqbalance MB/s",
            "SAIs MB/s",
            "speed-up",
            "strip migrations",
        ),
        rows=tuple(rows),
        paper={"write_speedup_pct": 0.0},
        measured={
            "write_speedup_pct": max(abs(s) for s in speedups.values()) * 100,
        },
        notes=(
            "Only tiny acknowledgements interrupt the client on writes, so "
            "no data-bearing strips ever migrate between caches.",
        ),
    )


#: The write workload under both policies: the paper's scoping claim.
run_ablation_write = register_grid_experiment(
    "ablation_write_path",
    grid=_grid_write,
    run_point=run_single_point,
    assemble=_assemble_write,
    point_key=single_point_key,
)


# -- ablation_stripsize ------------------------------------------------

_STRIP_SIZES = (16 * KiB, 32 * KiB, 64 * KiB, 128 * KiB, 256 * KiB)


def _grid_stripsize(scale: str) -> tuple[ClusterConfig, ...]:
    return tuple(
        ClusterConfig(
            n_servers=32,
            client=nic_config(3),
            workload=_workload(scale),
            strip_size=strip_size,
        )
        for strip_size in _STRIP_SIZES
    )


def _assemble_stripsize(scale, specs, comparisons) -> ExperimentResult:
    """Sensitivity to the PVFS strip size (the paper fixes 64 KiB).

    Larger strips mean fewer, bigger interrupts: per-strip fixed costs
    amortize, but each migration holds the serialized fill path longer.
    Because both the migration time M and the NIC inter-arrival scale
    linearly with strip size, the *saturation structure* — and therefore
    the SAIs advantage — is roughly strip-size-invariant, which is why
    the paper could fix 64 KiB without loss of generality.
    """
    rows = []
    speedups = {}
    for strip_size, comparison in zip(_STRIP_SIZES, comparisons):
        speedups[strip_size] = comparison.bandwidth_speedup
        rows.append(
            (
                f"{strip_size // KiB}K",
                f"{comparison.baseline.bandwidth / MiB:.1f}",
                f"{comparison.treatment.bandwidth / MiB:.1f}",
                f"{comparison.bandwidth_speedup:+.2%}",
                comparison.baseline.migrations,
            )
        )
    client_bound = {
        size: value for size, value in speedups.items() if size >= 32 * KiB
    }
    return ExperimentResult(
        exp_id="ablation_stripsize",
        title="Ablation — SAIs advantage vs PVFS strip size (32 servers, 3 Gb)",
        headers=("strip", "irqbalance MB/s", "SAIs MB/s", "speed-up", "migrations"),
        rows=tuple(rows),
        paper={
            # Implicit in the paper's fixed 64 KiB: the conclusion should
            # not hinge on the strip size (within the client-bound regime).
            "speedup_positive_at_client_bound_sizes": 1.0,
        },
        measured={
            "speedup_positive_at_client_bound_sizes": (
                1.0 if all(s > 0.02 for s in client_bound.values()) else 0.0
            ),
            "speedup_spread_pct": (
                max(client_bound.values()) - min(client_bound.values())
            )
            * 100,
            "speedup_at_16k_pct": speedups[16 * KiB] * 100,
        },
        notes=(
            "At 16 KiB strips the 4x increase in per-strip server requests "
            "makes the storage tier (positioning costs) the bottleneck and "
            "the policies tie — the win needs the client to be the "
            "contended side, consistent with the rest of the analysis.",
        ),
    )


#: Sensitivity to the PVFS strip size (the paper fixes 64 KiB).
run_ablation_stripsize = register_grid_experiment(
    "ablation_stripsize",
    grid=_grid_stripsize,
    run_point=run_comparison_point,
    assemble=_assemble_stripsize,
    point_key=comparison_point_key,
)


# -- ablation_costmodel ------------------------------------------------

#: (c2c scale, label) rows of the cost-model sensitivity sweep.
_COSTMODEL_SCALES = ((8.0, "M~P"), (2.0, "M=4P"), (1.0, "M=8P (default)"))
_COSTMODEL_GIGABITS = (1, 3)


def _grid_costmodel(scale: str) -> tuple[ClusterConfig, ...]:
    workload = _workload(scale)
    base = CostModel()
    specs = []
    for c2c_scale, _ in _COSTMODEL_SCALES:
        costs = dataclasses.replace(base, c2c_rate=base.c2c_rate * c2c_scale)
        for gigabits in _COSTMODEL_GIGABITS:
            specs.append(
                ClusterConfig(
                    n_servers=48,
                    client=nic_config(gigabits),
                    workload=workload,
                    costs=costs,
                )
            )
    return tuple(specs)


def _assemble_costmodel(scale, specs, comparisons) -> ExperimentResult:
    rows = []
    speedups: dict[tuple[float, int], float] = {}
    comparison_iter = iter(zip(specs, comparisons))
    for c2c_scale, label in _COSTMODEL_SCALES:
        for gigabits in _COSTMODEL_GIGABITS:
            config, comparison = next(comparison_iter)
            costs = config.costs
            m_over_p = costs.strip_migration_time(
                65536
            ) / costs.strip_processing_time(65536)
            speedup = comparison.bandwidth_speedup
            speedups[(c2c_scale, gigabits)] = speedup
            rows.append(
                (
                    label,
                    f"{m_over_p:.1f}",
                    f"{gigabits} Gb",
                    f"{comparison.baseline.bandwidth / MiB:.1f}",
                    f"{comparison.treatment.bandwidth / MiB:.1f}",
                    f"{speedup:+.2%}",
                )
            )
    return ExperimentResult(
        exp_id="ablation_costmodel",
        title="Ablation — SAIs advantage vs M/P ratio and NIC bandwidth",
        headers=("cost model", "M/P", "NIC", "irqbalance MB/s", "SAIs MB/s", "speed-up"),
        rows=tuple(rows),
        paper={
            # Sec. VI: effectiveness "depends on the assumption ... that
            # the system has plenty of network bandwidth" and on M >> P.
            "advantage_needs_m_much_greater_p": 1.0,
            "advantage_needs_bandwidth": 1.0,
        },
        measured={
            "advantage_needs_m_much_greater_p": (
                1.0 if speedups[(1.0, 3)] > speedups[(8.0, 3)] + 0.02 else 0.0
            ),
            "advantage_needs_bandwidth": (
                1.0 if speedups[(1.0, 3)] > speedups[(1.0, 1)] + 0.02 else 0.0
            ),
        },
    )


#: SAIs advantage vs the M/P ratio and the NIC bandwidth.
run_ablation_costmodel = register_grid_experiment(
    "ablation_costmodel",
    grid=_grid_costmodel,
    run_point=run_comparison_point,
    assemble=_assemble_costmodel,
    point_key=comparison_point_key,
)
