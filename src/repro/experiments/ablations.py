"""Ablation experiments for the design choices DESIGN.md calls out.

* ``ablation_policies`` — Sec. III lists four scheduling policies; the
  paper implements (i) and argues (ii) would be nearly identical because
  processes rarely migrate during blocking I/O.  We run all of them (plus
  round-robin) on the Fig. 5 workload.
* ``ablation_costmodel`` — sensitivity of the SAIs advantage to the M/P
  ratio and the NIC bandwidth: the paper's claim is that the advantage
  needs both M >> P and network headroom.
* ``ablation_migration`` — unpin the processes and let them hop cores
  while blocked: policy (i)'s wire hint goes stale, policy (ii)'s process
  locator keeps up.  Quantifies the "rescheduling may occur during I/O
  blocking" caveat of Sec. III.
* ``ablation_write_path`` — the paper scopes the problem to reads
  ("there is not a data locality issue associated with ... write
  operations"); running the write workload under both policies verifies
  that claim in the model.
"""

from __future__ import annotations

import dataclasses

from ..cluster.simulation import compare_policies, run_experiment
from ..config import ClusterConfig, CostModel, WorkloadConfig
from ..units import MiB
from .base import ExperimentResult, register_experiment
from .grids import nic_config

__all__ = ["run_ablation_policies", "run_ablation_costmodel"]

_POLICIES = (
    "irqbalance",
    "round_robin",
    "dedicated",
    "least_loaded",
    "source_aware",
    "source_aware_process",
)


def _workload(scale: str) -> WorkloadConfig:
    file_size = {"quick": 4 * MiB, "default": 8 * MiB, "full": 32 * MiB}[scale]
    return WorkloadConfig(
        n_processes=8, transfer_size=1 * MiB, file_size=file_size
    )


@register_experiment("ablation_policies")
def run_ablation_policies(scale: str = "default") -> ExperimentResult:
    """All registered scheduling policies on the Fig. 5 (48-server) point."""
    config = ClusterConfig(
        n_servers=48, client=nic_config(3), workload=_workload(scale)
    )
    results = {
        policy: run_experiment(config.with_policy(policy))
        for policy in _POLICIES
    }
    baseline_bw = results["irqbalance"].bandwidth
    rows = tuple(
        (
            policy,
            f"{metrics.bandwidth / MiB:.1f}",
            f"{metrics.bandwidth / baseline_bw - 1:+.2%}",
            f"{metrics.l2_miss_rate:.2%}",
            f"{metrics.clients[0].interrupt_spread:.0%}",
        )
        for policy, metrics in results.items()
    )
    sa = results["source_aware"].bandwidth
    sa_process = results["source_aware_process"].bandwidth
    conventional_best = max(
        results[p].bandwidth
        for p in ("irqbalance", "round_robin", "dedicated", "least_loaded")
    )
    return ExperimentResult(
        exp_id="ablation_policies",
        title="Sec. III policies — bandwidth at 48 servers, 3-Gigabit NIC",
        headers=(
            "policy",
            "MB/s",
            "vs irqbalance",
            "L2 miss rate",
            "cores hit by IRQs",
        ),
        rows=rows,
        paper={
            # Sec. III: "the expected performance difference between the
            # first two policies is trivial".
            "policy_i_vs_ii_gap_pct_max": 2.0,
            "source_aware_beats_conventional": 1.0,
        },
        measured={
            "policy_i_vs_ii_gap_pct_max": abs(sa / sa_process - 1) * 100,
            "source_aware_beats_conventional": (
                1.0 if min(sa, sa_process) > conventional_best else 0.0
            ),
        },
    )


@register_experiment("ablation_migration")
def run_ablation_migration(scale: str = "default") -> ExperimentResult:
    """Policy (i) vs (ii) as migration-during-I/O becomes common."""
    rows = []
    gains = {}
    for probability in (0.0, 0.1, 0.3, 0.6):
        workload = dataclasses.replace(
            _workload(scale), migrate_during_io=probability
        )
        config = ClusterConfig(
            n_servers=16, client=nic_config(3), workload=workload
        )
        policy_i = run_experiment(config.with_policy("source_aware"))
        policy_ii = run_experiment(config.with_policy("source_aware_process"))
        gain = policy_ii.bandwidth / policy_i.bandwidth - 1
        gains[probability] = gain
        rows.append(
            (
                f"{probability:.0%}",
                f"{policy_i.bandwidth / MiB:.1f}",
                f"{policy_ii.bandwidth / MiB:.1f}",
                f"{gain:+.2%}",
                policy_i.migrations,
                policy_ii.migrations,
            )
        )
    return ExperimentResult(
        exp_id="ablation_migration",
        title="Sec. III — policy (i) vs (ii) under migration during blocking I/O",
        headers=(
            "P(migrate)",
            "policy (i) MB/s",
            "policy (ii) MB/s",
            "(ii) gain",
            "(i) strip migrations",
            "(ii) strip migrations",
        ),
        rows=tuple(rows),
        paper={
            # "since the process migration rarely happens during a blocking
            # I/O, the expected performance difference ... is trivial"
            "gap_trivial_when_migration_rare_pct": 1.0,
        },
        measured={
            "gap_trivial_when_migration_rare_pct": abs(gains[0.0]) * 100,
            "gain_at_30pct_migration_pct": gains[0.3] * 100,
            "gain_at_60pct_migration_pct": gains[0.6] * 100,
        },
        notes=(
            "Policy (ii) carries zero strip migrations at any migration "
            "rate because the locator always targets the process's "
            "current core.",
        ),
    )


@register_experiment("ablation_write_path")
def run_ablation_write(scale: str = "default") -> ExperimentResult:
    """The write workload under both policies: the paper's scoping claim."""
    workload = dataclasses.replace(_workload(scale), operation="write")
    rows = []
    speedups = {}
    for n_servers in (16, 48):
        config = ClusterConfig(
            n_servers=n_servers, client=nic_config(3), workload=workload
        )
        baseline = run_experiment(config.with_policy("irqbalance"))
        treatment = run_experiment(config.with_policy("source_aware"))
        speedup = treatment.bandwidth / baseline.bandwidth - 1
        speedups[n_servers] = speedup
        rows.append(
            (
                n_servers,
                f"{baseline.bandwidth / MiB:.1f}",
                f"{treatment.bandwidth / MiB:.1f}",
                f"{speedup:+.2%}",
                baseline.migrations,
            )
        )
    return ExperimentResult(
        exp_id="ablation_write_path",
        title="Write path — interrupt scheduling cannot matter for writes",
        headers=(
            "servers",
            "irqbalance MB/s",
            "SAIs MB/s",
            "speed-up",
            "strip migrations",
        ),
        rows=tuple(rows),
        paper={"write_speedup_pct": 0.0},
        measured={
            "write_speedup_pct": max(abs(s) for s in speedups.values()) * 100,
        },
        notes=(
            "Only tiny acknowledgements interrupt the client on writes, so "
            "no data-bearing strips ever migrate between caches.",
        ),
    )


@register_experiment("ablation_stripsize")
def run_ablation_stripsize(scale: str = "default") -> ExperimentResult:
    """Sensitivity to the PVFS strip size (the paper fixes 64 KiB).

    Larger strips mean fewer, bigger interrupts: per-strip fixed costs
    amortize, but each migration holds the serialized fill path longer.
    Because both the migration time M and the NIC inter-arrival scale
    linearly with strip size, the *saturation structure* — and therefore
    the SAIs advantage — is roughly strip-size-invariant, which is why
    the paper could fix 64 KiB without loss of generality.
    """
    from ..units import KiB

    rows = []
    speedups = {}
    for strip_size in (16 * KiB, 32 * KiB, 64 * KiB, 128 * KiB, 256 * KiB):
        config = ClusterConfig(
            n_servers=32,
            client=nic_config(3),
            workload=_workload(scale),
            strip_size=strip_size,
        )
        comparison = compare_policies(config)
        speedups[strip_size] = comparison.bandwidth_speedup
        rows.append(
            (
                f"{strip_size // KiB}K",
                f"{comparison.baseline.bandwidth / MiB:.1f}",
                f"{comparison.treatment.bandwidth / MiB:.1f}",
                f"{comparison.bandwidth_speedup:+.2%}",
                comparison.baseline.migrations,
            )
        )
    from ..units import KiB as _KiB

    client_bound = {
        size: value for size, value in speedups.items() if size >= 32 * _KiB
    }
    return ExperimentResult(
        exp_id="ablation_stripsize",
        title="Ablation — SAIs advantage vs PVFS strip size (32 servers, 3 Gb)",
        headers=("strip", "irqbalance MB/s", "SAIs MB/s", "speed-up", "migrations"),
        rows=tuple(rows),
        paper={
            # Implicit in the paper's fixed 64 KiB: the conclusion should
            # not hinge on the strip size (within the client-bound regime).
            "speedup_positive_at_client_bound_sizes": 1.0,
        },
        measured={
            "speedup_positive_at_client_bound_sizes": (
                1.0 if all(s > 0.02 for s in client_bound.values()) else 0.0
            ),
            "speedup_spread_pct": (
                max(client_bound.values()) - min(client_bound.values())
            )
            * 100,
            "speedup_at_16k_pct": speedups[16 * _KiB] * 100,
        },
        notes=(
            "At 16 KiB strips the 4x increase in per-strip server requests "
            "makes the storage tier (positioning costs) the bottleneck and "
            "the policies tie — the win needs the client to be the "
            "contended side, consistent with the rest of the analysis.",
        ),
    )


@register_experiment("ablation_costmodel")
def run_ablation_costmodel(scale: str = "default") -> ExperimentResult:
    """SAIs advantage vs the M/P ratio and the NIC bandwidth."""
    workload = _workload(scale)
    rows = []
    speedups: dict[tuple[float, int], float] = {}
    base = CostModel()
    for c2c_scale, label in ((8.0, "M~P"), (2.0, "M=4P"), (1.0, "M=8P (default)")):
        costs = dataclasses.replace(base, c2c_rate=base.c2c_rate * c2c_scale)
        m_over_p = costs.strip_migration_time(65536) / costs.strip_processing_time(
            65536
        )
        for gigabits in (1, 3):
            config = ClusterConfig(
                n_servers=48,
                client=nic_config(gigabits),
                workload=workload,
                costs=costs,
            )
            baseline = run_experiment(config.with_policy("irqbalance"))
            treatment = run_experiment(config.with_policy("source_aware"))
            speedup = treatment.bandwidth / baseline.bandwidth - 1
            speedups[(c2c_scale, gigabits)] = speedup
            rows.append(
                (
                    label,
                    f"{m_over_p:.1f}",
                    f"{gigabits} Gb",
                    f"{baseline.bandwidth / MiB:.1f}",
                    f"{treatment.bandwidth / MiB:.1f}",
                    f"{speedup:+.2%}",
                )
            )
    return ExperimentResult(
        exp_id="ablation_costmodel",
        title="Ablation — SAIs advantage vs M/P ratio and NIC bandwidth",
        headers=("cost model", "M/P", "NIC", "irqbalance MB/s", "SAIs MB/s", "speed-up"),
        rows=tuple(rows),
        paper={
            # Sec. VI: effectiveness "depends on the assumption ... that
            # the system has plenty of network bandwidth" and on M >> P.
            "advantage_needs_m_much_greater_p": 1.0,
            "advantage_needs_bandwidth": 1.0,
        },
        measured={
            "advantage_needs_m_much_greater_p": (
                1.0 if speedups[(1.0, 3)] > speedups[(8.0, 3)] + 0.02 else 0.0
            ),
            "advantage_needs_bandwidth": (
                1.0 if speedups[(1.0, 3)] > speedups[(1.0, 1)] + 0.02 else 0.0
            ),
        },
    )
