"""Extensions — how real-world receive/workload mechanisms interact
with source-aware scheduling.

* ``extension_napi`` — Linux NAPI (adaptive interrupt coalescing)
  batches packet processing on the polling core; batching partially
  concentrates the baseline's handling and competes with per-packet
  steering.  The question: does the SAIs win survive NAPI?
* ``extension_collective`` — MPI-IO collective transfers synchronize
  the IOR processes per iteration; the NIC idles during the collective
  merge/compute phase, moving the system away from the saturation point
  the SAIs win depends on.
"""

from __future__ import annotations

import dataclasses

from ..config import ClientConfig, ClusterConfig, WorkloadConfig
from ..units import MiB
from .base import ExperimentResult, register_grid_experiment, resolve_scale
from .grids import comparison_point_key, run_comparison_point

__all__ = ["run_napi", "run_collective"]


def _workload(scale: str) -> WorkloadConfig:
    file_size = {"quick": 4 * MiB, "default": 8 * MiB, "full": 32 * MiB}[
        resolve_scale(scale)
    ]
    return WorkloadConfig(
        n_processes=8, transfer_size=1 * MiB, file_size=file_size
    )


# -- extension_napi ----------------------------------------------------


def _grid_napi(scale: str) -> tuple[ClusterConfig, ...]:
    return tuple(
        ClusterConfig(
            n_servers=32,
            client=ClientConfig(nic_ports=3, napi=napi),
            workload=_workload(scale),
        )
        for napi in (False, True)
    )


def _assemble_napi(scale, specs, comparisons) -> ExperimentResult:
    rows = []
    speedups = {}
    for config, comparison in zip(specs, comparisons):
        napi = config.client.napi
        speedups[napi] = comparison.bandwidth_speedup
        rows.append(
            (
                "NAPI" if napi else "per-strip IRQ",
                f"{comparison.baseline.bandwidth / MiB:.1f}",
                f"{comparison.treatment.bandwidth / MiB:.1f}",
                f"{comparison.bandwidth_speedup:+.2%}",
            )
        )
    return ExperimentResult(
        exp_id="extension_napi",
        title="Extension — SAIs advantage with NAPI adaptive coalescing",
        headers=("rx mode", "irqbalance MB/s", "SAIs MB/s", "speed-up"),
        rows=tuple(rows),
        paper={
            # Qualitative expectation: batching helps the baseline a
            # little but cannot substitute for source-aware placement.
            "win_survives_napi": 1.0,
        },
        measured={
            "win_survives_napi": 1.0 if speedups[True] > 0.05 else 0.0,
            "speedup_without_napi_pct": speedups[False] * 100,
            "speedup_with_napi_pct": speedups[True] * 100,
        },
        notes=(
            "NAPI concentrates each poll's packets on one core, which "
            "shaves a little off the baseline's scatter — but the "
            "consumer-side migrations remain, so the win persists.",
        ),
    )


#: SAIs vs irqbalance with and without NAPI coalescing.
run_napi = register_grid_experiment(
    "extension_napi",
    grid=_grid_napi,
    run_point=run_comparison_point,
    assemble=_assemble_napi,
    point_key=comparison_point_key,
)


# -- extension_collective ----------------------------------------------


def _grid_collective(scale: str) -> tuple[ClusterConfig, ...]:
    return tuple(
        ClusterConfig(
            n_servers=32,
            client=ClientConfig(nic_ports=3),
            workload=dataclasses.replace(
                _workload(scale), collective=collective
            ),
        )
        for collective in (False, True)
    )


def _assemble_collective(scale, specs, comparisons) -> ExperimentResult:
    rows = []
    results = {}
    for config, comparison in zip(specs, comparisons):
        collective = config.workload.collective
        results[collective] = comparison
        rows.append(
            (
                "collective" if collective else "independent",
                f"{comparison.baseline.bandwidth / MiB:.1f}",
                f"{comparison.treatment.bandwidth / MiB:.1f}",
                f"{comparison.bandwidth_speedup:+.2%}",
            )
        )
    return ExperimentResult(
        exp_id="extension_collective",
        title="Extension — independent vs collective MPI-IO transfers",
        headers=("I/O mode", "irqbalance MB/s", "SAIs MB/s", "speed-up"),
        rows=tuple(rows),
        paper={
            # Barrier idle time is policy-independent; both absolute
            # bandwidths drop, the win shrinks but stays positive.
            "collective_costs_bandwidth": 1.0,
            "win_survives_collective": 1.0,
        },
        measured={
            "collective_costs_bandwidth": (
                1.0
                if results[True].treatment.bandwidth
                < results[False].treatment.bandwidth
                else 0.0
            ),
            "win_survives_collective": (
                1.0 if results[True].bandwidth_speedup > 0.03 else 0.0
            ),
            "independent_speedup_pct": results[False].bandwidth_speedup * 100,
            "collective_speedup_pct": results[True].bandwidth_speedup * 100,
        },
    )


#: Independent vs collective MPI-IO transfers under both policies.
run_collective = register_grid_experiment(
    "extension_collective",
    grid=_grid_collective,
    run_point=run_comparison_point,
    assemble=_assemble_collective,
    point_key=comparison_point_key,
)
