"""Resilience sweeps: how much of the SAIs win survives a faulty fabric.

The paper evaluates SAIs on a healthy cluster.  These two experiments ask
the robustness question its deployment story raises: source-aware steering
depends on an IP-options side channel and on the request/reply pairing
staying intact, so what happens when the fabric drops packets, middleboxes
strip or corrupt the options, or an I/O server straggles/blinks?

* ``resilience_loss_sweep`` — sweeps a combined fault level ``p`` applied
  as packet loss, option stripping and packet reordering (with an MSS so
  strips travel as segment trains and reassembly is actually exercised),
  and reports each policy's bandwidth retention relative to its own
  fault-free run plus the recovery counters.
* ``resilience_straggler_sweep`` — slows one server down by a factor and,
  at the top level, takes it briefly offline, exercising the client-side
  strip-retry watchdog.

Both report *retention* (bandwidth at fault level / bandwidth at level 0,
per policy) rather than raw speed-up: the claim under test is that SAIs
degrades gracefully — no worse than the baseline — not that it keeps its
healthy-fabric advantage.
"""

from __future__ import annotations

from ..config import ClusterConfig, NetworkConfig, WorkloadConfig
from ..faults.plan import FaultPlan
from ..units import KiB, MiB
from .base import ExperimentResult, register_grid_experiment, resolve_scale
from .grids import comparison_point_key, nic_config, run_comparison_point

__all__ = ["run_resilience_loss", "run_resilience_straggler"]

#: Combined loss / strip / reorder probability levels per scale.
_LOSS_LEVELS = {
    "quick": (0.0, 0.02, 0.05),
    "default": (0.0, 0.005, 0.02, 0.05),
    "full": (0.0, 0.005, 0.01, 0.02, 0.05, 0.1),
}

#: Straggler slowdown factors per scale (1.0 = the fault-free reference).
_STRAGGLER_LEVELS = {
    "quick": (1.0, 4.0, 8.0),
    "default": (1.0, 2.0, 4.0, 8.0),
    "full": (1.0, 2.0, 4.0, 8.0, 16.0),
}

_FILE_SIZE = {"quick": 2 * MiB, "default": 4 * MiB, "full": 16 * MiB}

#: Deterministic fault-plan seed for both sweeps (the per-packet draws are
#: hash-keyed off it, so this one integer pins every fault decision).
_FAULT_SEED = 20120521  # IPPS 2012


def _base_config(scale: str, faults: FaultPlan | None, mss: int | None) -> ClusterConfig:
    """One resilience cell: modest 8-server point, 3-Gigabit client."""
    return ClusterConfig(
        n_servers=8,
        client=nic_config(3),
        network=NetworkConfig(mss=mss),
        workload=WorkloadConfig(
            n_processes=4,
            transfer_size=512 * KiB,
            file_size=_FILE_SIZE[scale],
        ),
        faults=faults,
    )


def _loss_plan(p: float) -> FaultPlan | None:
    if p == 0.0:
        # The retention base runs on the genuinely fault-free stack —
        # same build as every other experiment, strict tripwires and all.
        return None
    return FaultPlan(
        loss_prob=p,
        strip_option_prob=p,
        reorder_prob=p,
        reorder_window=300e-6,
        seed=_FAULT_SEED,
        # Simulation timescales are microseconds; a fast first retransmit
        # keeps recovery on the same order as serialization.
        retransmit_timeout=100e-6,
        retransmit_cap=5e-3,
    )


def _loss_grid(scale: str) -> tuple[ClusterConfig, ...]:
    scale = resolve_scale(scale)
    # Jumbo-frame MSS: strips travel as multi-segment trains, so loss and
    # reordering hit mid-strip and TCP reassembly does real work.
    return tuple(
        _base_config(scale, _loss_plan(p), mss=8960)
        for p in _LOSS_LEVELS[scale]
    )


def _straggler_plan(slowdown: float, top: bool) -> FaultPlan | None:
    if slowdown <= 1.0:
        return None
    return FaultPlan(
        straggler_servers=(0,),
        straggler_slowdown=slowdown,
        # At the top level the straggler also blinks: offline for the
        # first 2 ms, so every first-wave request to it simply vanishes
        # and only the retry watchdog recovers it.
        server_failure_windows=(((0, 0.0, 2e-3),) if top else ()),
        seed=_FAULT_SEED,
        strip_retry_timeout=20e-3,
        strip_retry_backoff=2.0,
        max_strip_retries=5,
    )


def _straggler_grid(scale: str) -> tuple[ClusterConfig, ...]:
    scale = resolve_scale(scale)
    levels = _STRAGGLER_LEVELS[scale]
    return tuple(
        _base_config(
            scale, _straggler_plan(s, top=(s == levels[-1])), mss=None
        )
        for s in levels
    )


def _fault_level(config: ClusterConfig) -> float:
    return 0.0 if config.faults is None else config.faults.loss_prob


def _slowdown_level(config: ClusterConfig) -> float:
    return 1.0 if config.faults is None else config.faults.straggler_slowdown


def _retention(bandwidth: float, base: float) -> float:
    return bandwidth / base if base > 0 else 0.0


def _resilience_cells(comparison):
    """Counter columns shared by both sweeps' tables."""
    res = comparison.treatment.resilience
    if res is None:
        return ("0", "0", "0", "1.000")
    return (
        str(res.retransmits),
        str(res.strip_retries),
        str(res.fallback_steered),
        f"{res.goodput_ratio:.3f}",
    )


def _assemble_loss(scale, specs, comparisons) -> ExperimentResult:
    base = comparisons[0]
    rows = []
    for spec, comparison in zip(specs, comparisons):
        p = _fault_level(spec)
        base_ret = _retention(
            comparison.baseline.bandwidth, base.baseline.bandwidth
        )
        sais_ret = _retention(
            comparison.treatment.bandwidth, base.treatment.bandwidth
        )
        rows.append(
            (
                f"{p:.3f}",
                f"{comparison.baseline.bandwidth / MiB:.1f}",
                f"{comparison.treatment.bandwidth / MiB:.1f}",
                f"{base_ret:.3f}",
                f"{sais_ret:.3f}",
                *_resilience_cells(comparison),
            )
        )
    worst = comparisons[-1]
    worst_base_ret = _retention(
        worst.baseline.bandwidth, base.baseline.bandwidth
    )
    worst_sais_ret = _retention(
        worst.treatment.bandwidth, base.treatment.bandwidth
    )
    worst_res = worst.treatment.resilience
    return ExperimentResult(
        exp_id="resilience_loss_sweep",
        title=(
            "Resilience — bandwidth retention under packet loss + option "
            "stripping + reordering (irqbalance vs SAIs)"
        ),
        headers=(
            "fault p",
            "irqbalance MB/s",
            "SAIs MB/s",
            "irqbalance retention",
            "SAIs retention",
            "retransmits",
            "strip retries",
            "fallback steered",
            "goodput ratio",
        ),
        rows=tuple(rows),
        paper={},
        measured={
            "baseline_retention_at_worst": worst_base_ret,
            "sais_retention_at_worst": worst_sais_ret,
            "retention_gap_pct": (worst_sais_ret - worst_base_ret) * 100,
            "fallback_steered_at_worst": float(
                worst_res.fallback_steered if worst_res else 0
            ),
            "goodput_ratio_at_worst": (
                worst_res.goodput_ratio if worst_res else 1.0
            ),
        },
        notes=(
            "The paper reports no faulty-fabric numbers; the claim under "
            "test is graceful degradation — option-less packets fall back "
            "to round-robin steering instead of failing, so SAIs retention "
            "should track the baseline's.",
            "Loss costs both policies the same retransmission stalls; the "
            "SAIs-specific fault is option stripping, visible in the "
            "fallback-steered column.",
        ),
    )


def _assemble_straggler(scale, specs, comparisons) -> ExperimentResult:
    base = comparisons[0]
    rows = []
    for spec, comparison in zip(specs, comparisons):
        s = _slowdown_level(spec)
        base_ret = _retention(
            comparison.baseline.bandwidth, base.baseline.bandwidth
        )
        sais_ret = _retention(
            comparison.treatment.bandwidth, base.treatment.bandwidth
        )
        res = comparison.treatment.resilience
        rows.append(
            (
                f"{s:g}x",
                f"{comparison.baseline.bandwidth / MiB:.1f}",
                f"{comparison.treatment.bandwidth / MiB:.1f}",
                f"{base_ret:.3f}",
                f"{sais_ret:.3f}",
                str(res.requests_dropped if res else 0),
                str(res.strip_retries if res else 0),
                str(res.duplicate_strips if res else 0),
            )
        )
    worst = comparisons[-1]
    worst_base_ret = _retention(
        worst.baseline.bandwidth, base.baseline.bandwidth
    )
    worst_sais_ret = _retention(
        worst.treatment.bandwidth, base.treatment.bandwidth
    )
    worst_res = worst.treatment.resilience
    return ExperimentResult(
        exp_id="resilience_straggler_sweep",
        title=(
            "Resilience — bandwidth retention with one straggling / "
            "transiently-failing I/O server (irqbalance vs SAIs)"
        ),
        headers=(
            "slowdown",
            "irqbalance MB/s",
            "SAIs MB/s",
            "irqbalance retention",
            "SAIs retention",
            "requests dropped",
            "strip retries",
            "duplicate strips",
        ),
        rows=tuple(rows),
        paper={},
        measured={
            "baseline_retention_at_worst": worst_base_ret,
            "sais_retention_at_worst": worst_sais_ret,
            "retention_gap_pct": (worst_sais_ret - worst_base_ret) * 100,
            "requests_dropped_at_worst": float(
                worst_res.requests_dropped if worst_res else 0
            ),
            "strip_retries_at_worst": float(
                worst_res.strip_retries if worst_res else 0
            ),
        },
        notes=(
            "IOR's synchronous rounds serialize on the slowest strip, so "
            "one straggler drags both policies toward 1/slowdown alike; "
            "the interesting outcome is that the transient-failure window "
            "at the top level recovers through retries rather than hanging.",
        ),
    )


#: Bandwidth retention under combined loss / stripping / reordering.
run_resilience_loss = register_grid_experiment(
    "resilience_loss_sweep",
    grid=_loss_grid,
    run_point=run_comparison_point,
    assemble=_assemble_loss,
    point_key=comparison_point_key,
)

#: Bandwidth retention with one slow (and briefly dead) I/O server.
run_resilience_straggler = register_grid_experiment(
    "resilience_straggler_sweep",
    grid=_straggler_grid,
    run_point=run_comparison_point,
    assemble=_assemble_straggler,
    point_key=comparison_point_key,
)
