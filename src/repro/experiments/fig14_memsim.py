"""Fig. 14 — the memory-backed simulation sweep (NIC bottleneck removed).

Paper claims: Si-SAIs peaks at **3576.58 MB/s** (~27.94 Gb/s) with a
**53.23%** speed-up over Si-Irqbalance and a **51.37%** L2 miss-rate
reduction; once applications saturate the cores both schemes sustain
about **2500 MB/s** (~19.53 Gb/s).
"""

from __future__ import annotations

import typing as t

from ..memsim import MemsimConfig, run_memsim_point
from ..memsim.experiment import SCHEMES
from ..units import MiB
from .base import ExperimentResult, register_grid_experiment, resolve_scale

__all__ = ["run_fig14", "APP_COUNTS"]

#: Application-pair counts swept on the 8-core head node.
APP_COUNTS = (1, 2, 3, 4, 6, 8, 12, 16)

#: One grid cell: (scheme, application count, config).
MemsimSpec = t.Tuple[str, int, MemsimConfig]


def _counts(scale: str) -> tuple[int, ...]:
    return APP_COUNTS if resolve_scale(scale) != "quick" else (1, 4, 8, 16)


def _config(scale: str) -> MemsimConfig:
    per_app = {"quick": 8 * MiB, "default": 16 * MiB, "full": 64 * MiB}[
        resolve_scale(scale)
    ]
    return MemsimConfig(per_app_bytes=per_app)


def _grid(scale: str) -> tuple[MemsimSpec, ...]:
    config = _config(scale)
    return tuple(
        (scheme, n_apps, config)
        for scheme in SCHEMES
        for n_apps in _counts(scale)
    )


def _run_point(spec: MemsimSpec):
    scheme, n_apps, config = spec
    return run_memsim_point(scheme, n_apps, config)


def _point_key(spec: MemsimSpec) -> str:
    from ..runner.cache import config_digest

    scheme, n_apps, config = spec
    return f"memsim:{scheme}:{n_apps}:{config_digest(config)}"


def _assemble(scale, specs, metrics) -> ExperimentResult:
    config = _config(scale)
    by_scheme: dict[str, list] = {scheme: [] for scheme in SCHEMES}
    for (scheme, _, _), point in zip(specs, metrics):
        by_scheme[scheme].append(point)
    results = by_scheme

    rows = []
    speedups = []
    miss_reductions = []
    for sais, irq in zip(results["si_sais"], results["si_irqbalance"]):
        speedup = sais.bandwidth / irq.bandwidth - 1.0
        speedups.append(speedup)
        miss_reductions.append(1.0 - sais.l2_miss_rate / irq.l2_miss_rate)
        rows.append(
            (
                sais.n_apps,
                f"{irq.bandwidth / MiB:.0f}",
                f"{sais.bandwidth / MiB:.0f}",
                f"{speedup:+.2%}",
                f"{irq.cpu_utilization:.2%}",
                f"{sais.cpu_utilization:.2%}",
            )
        )

    peak_index = max(range(len(speedups)), key=speedups.__getitem__)
    sais_points = results["si_sais"]
    saturated = [
        (sais, irq)
        for sais, irq in zip(results["si_sais"], results["si_irqbalance"])
        if sais.n_apps >= config.n_cores
    ]
    converged = sum(
        s.bandwidth + i.bandwidth for s, i in saturated
    ) / (2 * len(saturated))

    return ExperimentResult(
        exp_id="fig14_memsim",
        title="Fig. 14 — memory simulation: Si-SAIs vs Si-Irqbalance",
        headers=(
            "apps",
            "Si-Irqbalance MB/s",
            "Si-SAIs MB/s",
            "speed-up",
            "irq util",
            "sais util",
        ),
        rows=tuple(rows),
        paper={
            "peak_sais_mbs": 3576.58,
            "peak_speedup_pct": 53.23,
            "miss_reduction_at_peak_pct": 51.37,
            "converged_mbs": 2500.0,
        },
        measured={
            "peak_sais_mbs": max(p.bandwidth for p in sais_points) / MiB,
            "peak_speedup_pct": max(speedups) * 100,
            "miss_reduction_at_peak_pct": miss_reductions[peak_index] * 100,
            "converged_mbs": converged / MiB,
        },
    )


#: Regenerate Fig. 14: Si-SAIs vs Si-Irqbalance bandwidth sweep.
run_fig14 = register_grid_experiment(
    "fig14_memsim",
    grid=_grid,
    run_point=_run_point,
    assemble=_assemble,
    point_key=_point_key,
)
