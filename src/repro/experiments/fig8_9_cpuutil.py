"""Figs. 8 and 9 — CPU utilization under the two scheduling schemes.

Paper claims:

* Fig. 8 (1 Gb, single application): utilization stays low — at most
  **15.13%** — because the NIC, not the CPU, is the bottleneck.
* Fig. 9 (3 Gb): irqbalance burns visibly more CPU cycles on data
  movement than SAIs; utilization scales roughly linearly with NIC speed.
"""

from __future__ import annotations

from .base import ExperimentResult, register_grid_experiment
from .grids import run_sweep_point, sweep_fig5_specs, sweep_point_key

__all__ = ["run_fig8", "run_fig9"]


def _util_rows(points):
    rows = []
    for point in points:
        comparison = point.comparison
        rows.append(
            (
                point.transfer_label,
                point.n_servers,
                f"{comparison.baseline.cpu_utilization:.2%}",
                f"{comparison.treatment.cpu_utilization:.2%}",
            )
        )
    return rows


def _assemble_fig8(scale, specs, points) -> ExperimentResult:
    max_util = max(
        max(
            p.comparison.baseline.cpu_utilization,
            p.comparison.treatment.cpu_utilization,
        )
        for p in points
    )
    return ExperimentResult(
        exp_id="fig8_cpuutil_1g",
        title="Fig. 8 — CPU utilization, single application, 1-Gigabit NIC",
        headers=("transfer", "servers", "irqbalance util", "SAIs util"),
        rows=tuple(_util_rows(points)),
        paper={"max_util_pct": 15.13},
        measured={"max_util_pct": max_util * 100},
        notes=(
            "The paper's point: utilization stays far below saturation "
            "because the 1-Gigabit NIC gates the data; more efficient "
            "interrupt handling cannot be offset by parallel handling.",
        ),
    )


def _grid_fig9(scale):
    # Fig. 9 compares against the 1 Gb campaign for the "utilization is
    # roughly linear in NIC speed" claim, so its grid is both sweeps;
    # the shared point keys mean the cells still run once per invocation.
    return sweep_fig5_specs(scale, nic_gigabits=3) + sweep_fig5_specs(
        scale, nic_gigabits=1
    )


def _assemble_fig9(scale, specs, rows) -> ExperimentResult:
    half = len(rows) // 2
    points, one_g = rows[:half], rows[half:]
    irq_always_higher = all(
        p.comparison.baseline.cpu_utilization
        > p.comparison.treatment.cpu_utilization
        for p in points
    )
    mean_util_3g = sum(
        p.comparison.baseline.cpu_utilization for p in points
    ) / len(points)
    mean_util_1g = sum(
        p.comparison.baseline.cpu_utilization for p in one_g
    ) / len(one_g)
    return ExperimentResult(
        exp_id="fig9_cpuutil_3g",
        title="Fig. 9 — CPU utilization, 3-Gigabit NIC",
        headers=("transfer", "servers", "irqbalance util", "SAIs util"),
        rows=tuple(_util_rows(points)),
        paper={
            "irqbalance_higher_everywhere": 1.0,
            # "a possible linear relation between CPU capacity and network
            # speed": 3x the NIC should give roughly 3x the busy cycles.
            "util_ratio_3g_over_1g": 3.0,
        },
        measured={
            "irqbalance_higher_everywhere": 1.0 if irq_always_higher else 0.0,
            "util_ratio_3g_over_1g": (
                mean_util_3g / mean_util_1g if mean_util_1g > 0 else float("nan")
            ),
        },
    )


#: Regenerate Fig. 8: single application, 1-Gigabit NIC.
run_fig8 = register_grid_experiment(
    "fig8_cpuutil_1g",
    grid=lambda scale: sweep_fig5_specs(scale, nic_gigabits=1, n_processes=1),
    run_point=run_sweep_point,
    assemble=_assemble_fig8,
    point_key=sweep_point_key,
)

#: Regenerate Fig. 9: 3-Gigabit NIC, irqbalance burns more CPU.
run_fig9 = register_grid_experiment(
    "fig9_cpuutil_3g",
    grid=_grid_fig9,
    run_point=run_sweep_point,
    assemble=_assemble_fig9,
    point_key=sweep_point_key,
)
