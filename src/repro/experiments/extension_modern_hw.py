"""Extension — the paper's conclusion, re-run on later hardware.

The paper closes: SAIs "may serve well as a complement of existing
processor scheduling schemes for datacenters with high-speed networks
connections and for data intensive applications."  This experiment
re-asks the headline question across hardware generations: NICs grew
25-100x between 2008 and the 2020s while per-line coherence latency
improved only ~3x, so the serialized migration path becomes *more*
dominant, not less.

History agrees: Linux later shipped RFS (Receive Flow Steering) and XPS,
which steer packet processing to the consuming task's core — the same
source-aware principle with a kernel-side flow table instead of an IP
option.
"""

from __future__ import annotations

import typing as t

from ..config import ClusterConfig
from ..presets import generation_configs
from ..units import MiB
from .base import ExperimentResult, register_grid_experiment, resolve_scale
from .grids import comparison_point_key, run_comparison_point

__all__ = ["run_modern_hw"]

#: One grid cell: (generation label, config).
GenerationSpec = t.Tuple[str, ClusterConfig]


def _grid(scale: str) -> tuple[GenerationSpec, ...]:
    specs = []
    for label, config in generation_configs().items():
        if resolve_scale(scale) == "quick":
            config = config.replace(
                workload=config.workload.__class__(
                    n_processes=config.workload.n_processes,
                    transfer_size=config.workload.transfer_size,
                    file_size=max(
                        4 * MiB, config.workload.file_size // 4
                    ),
                )
            )
        specs.append((label, config))
    return tuple(specs)


def _run_point(spec: GenerationSpec):
    return run_comparison_point(spec[1])


def _point_key(spec: GenerationSpec) -> str:
    return comparison_point_key(spec[1])


def _assemble(scale, specs, comparisons) -> ExperimentResult:
    rows = []
    speedups: dict[str, float] = {}
    for (label, config), comparison in zip(specs, comparisons):
        speedups[label] = comparison.bandwidth_speedup
        rows.append(
            (
                label,
                f"{config.client.nic_bandwidth * 8 / 1e9:.0f} Gb/s",
                f"{comparison.baseline.bandwidth / MiB:.0f}",
                f"{comparison.treatment.bandwidth / MiB:.0f}",
                f"{comparison.bandwidth_speedup:+.1%}",
            )
        )
    labels = list(speedups)
    monotone = all(
        speedups[labels[i + 1]] >= speedups[labels[i]] - 0.02
        for i in range(len(labels) - 1)
    )
    return ExperimentResult(
        exp_id="extension_modern_hw",
        title="Extension — source-aware win across hardware generations",
        headers=("generation", "NIC", "balanced MB/s", "source-aware MB/s", "speed-up"),
        rows=tuple(rows),
        paper={
            # The conclusion's qualitative claim: the faster the network,
            # the more the approach matters.
            "win_grows_with_network_speed": 1.0,
        },
        measured={
            "win_grows_with_network_speed": 1.0 if monotone else 0.0,
            "paper_era_speedup_pct": speedups[labels[0]] * 100,
            "modern_25g_speedup_pct": speedups[labels[-1]] * 100,
        },
        notes=(
            "Linux's later RFS/XPS features steer packet processing to the "
            "consuming task's core — the same source-aware principle, with "
            "a kernel flow table instead of the IP-options hint.",
        ),
    )


#: Bandwidth speed-up of source-aware delivery per hardware generation.
run_modern_hw = register_grid_experiment(
    "extension_modern_hw",
    grid=_grid,
    run_point=_run_point,
    assemble=_assemble,
    point_key=_point_key,
)
