"""Fig. 12 — multi-client scalability: 8 servers, 4..56 client nodes.

Paper claims: aggregate bandwidth speed-up peaks at **20.46% with 8
clients**, then decays as the 8 I/O servers saturate (fewer requests per
client -> smaller NR -> smaller SAIs advantage, per eq. (5)/(6)); SAIs
never hurts, even in the overloaded cases.
"""

from __future__ import annotations

from ..config import ClusterConfig, ServerConfig, WorkloadConfig
from ..units import Gbit, MiB
from .base import ExperimentResult, register_grid_experiment, resolve_scale
from .grids import comparison_point_key, nic_config, run_comparison_point

__all__ = ["run_fig12", "CLIENT_COUNTS"]

#: The paper's client-count sweep.
CLIENT_COUNTS = (4, 8, 16, 24, 32, 48, 56)

#: Servers in the multi-client experiment run page-cache-hot: the paper
#: averages at least three repeated reads of the same file, and 10 GB
#: spread over 8 servers fits their 8 GB-RAM nodes' caches — which is how
#: 8 servers sustain the multi-gigabyte aggregate rates Fig. 12 shows.
#: Compute nodes have three 1-Gigabit ports, bonded like the client's.
_FIG12_SERVER = ServerConfig(cache_hit_ratio=0.98, nic_bandwidth=3 * Gbit)


def _workload(scale: str) -> WorkloadConfig:
    per_process = {"quick": 2 * MiB, "default": 4 * MiB, "full": 16 * MiB}[
        resolve_scale(scale)
    ]
    return WorkloadConfig(
        n_processes=4, transfer_size=1 * MiB, file_size=per_process
    )


def _grid(scale: str) -> tuple[ClusterConfig, ...]:
    counts = CLIENT_COUNTS if resolve_scale(scale) != "quick" else (4, 8, 24)
    return tuple(
        ClusterConfig(
            n_servers=8,
            n_clients=n_clients,
            client=nic_config(3),
            server=_FIG12_SERVER,
            workload=_workload(scale),
        )
        for n_clients in counts
    )


def _assemble(scale, specs, comparisons) -> ExperimentResult:
    rows = []
    speedups = {}
    for config, comparison in zip(specs, comparisons):
        speedups[config.n_clients] = comparison.bandwidth_speedup
        rows.append(
            (
                config.n_clients,
                f"{comparison.baseline.bandwidth / MiB:.1f}",
                f"{comparison.treatment.bandwidth / MiB:.1f}",
                f"{comparison.bandwidth_speedup:+.2%}",
            )
        )
    peak_clients = max(speedups, key=lambda k: speedups[k])
    return ExperimentResult(
        exp_id="fig12_multiclient",
        title="Fig. 12 — aggregate I/O bandwidth vs client count (8 servers)",
        headers=("clients", "irqbalance MB/s", "SAIs MB/s", "speed-up"),
        rows=tuple(rows),
        paper={
            "peak_speedup_pct": 20.46,
            "peak_at_clients": 8,
            "min_speedup_pct": 1.39,
        },
        measured={
            "peak_speedup_pct": max(speedups.values()) * 100,
            "peak_at_clients": float(peak_clients),
            "min_speedup_pct": min(speedups.values()) * 100,
        },
        notes=(
            "Past the saturation point the per-client request rate NR "
            "drops, which shrinks the SAIs advantage exactly as eq. (5)/(6) "
            "predict.",
        ),
    )


#: Regenerate Fig. 12: aggregate bandwidth vs number of clients.
run_fig12 = register_grid_experiment(
    "fig12_multiclient",
    grid=_grid,
    run_point=run_comparison_point,
    assemble=_assemble,
    point_key=comparison_point_key,
)
