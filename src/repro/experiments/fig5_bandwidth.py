"""Fig. 5 (3-Gigabit bandwidth + speed-up) and Sec. V-C (1-Gigabit).

Paper claims:

* 3-Gigabit NIC: SAIs improves I/O bandwidth in all cases; the speed-up
  grows with the number of I/O servers, reaching **23.57%** at 48 nodes;
  absolute bandwidth stays below the 3-Gigabit line.
* 1-Gigabit NIC: the NIC is the bottleneck; the peak speed-up is only
  **6.05%**.
"""

from __future__ import annotations

from ..units import MiB, bits_per_sec
from .base import ExperimentResult, register_grid_experiment
from .grids import run_sweep_point, sweep_fig5_specs, sweep_point_key

__all__ = ["run_fig5", "run_sec5c"]


def _bandwidth_rows(points):
    rows = []
    for point in points:
        comparison = point.comparison
        rows.append(
            (
                point.transfer_label,
                point.n_servers,
                f"{comparison.baseline.bandwidth / MiB:.1f}",
                f"{comparison.treatment.bandwidth / MiB:.1f}",
                f"{comparison.bandwidth_speedup:+.2%}",
            )
        )
    return rows


def _assemble_fig5(scale, specs, points) -> ExperimentResult:
    max_speedup = max(p.comparison.bandwidth_speedup for p in points)
    best_at_48 = max(
        (
            p.comparison.bandwidth_speedup
            for p in points
            if p.n_servers == max(q.n_servers for q in points)
        ),
    )
    max_bandwidth = max(
        max(p.comparison.baseline.bandwidth, p.comparison.treatment.bandwidth)
        for p in points
    )
    return ExperimentResult(
        exp_id="fig5_bandwidth_3g",
        title="Fig. 5 — IOR read bandwidth, 3-Gigabit NIC (irqbalance vs SAIs)",
        headers=("transfer", "servers", "irqbalance MB/s", "SAIs MB/s", "speed-up"),
        rows=tuple(_bandwidth_rows(points)),
        paper={
            "max_speedup_pct": 23.57,
            "bandwidth_below_gbit": 3.0,
        },
        measured={
            "max_speedup_pct": max_speedup * 100,
            "bandwidth_below_gbit": bits_per_sec(max_bandwidth) / 1e9,
            "speedup_at_most_servers_pct": best_at_48 * 100,
        },
        notes=(
            "At 8 servers the server tier (disk+page cache) is the binding "
            "constraint in our model and the two policies tie; the paper "
            "still measured ~10% there.",
        ),
    )


def _assemble_sec5c(scale, specs, points) -> ExperimentResult:
    max_speedup = max(p.comparison.bandwidth_speedup for p in points)
    max_bandwidth = max(
        max(p.comparison.baseline.bandwidth, p.comparison.treatment.bandwidth)
        for p in points
    )
    return ExperimentResult(
        exp_id="sec5c_bandwidth_1g",
        title="Sec. V-C — IOR read bandwidth, 1-Gigabit NIC (irqbalance vs SAIs)",
        headers=("transfer", "servers", "irqbalance MB/s", "SAIs MB/s", "speed-up"),
        rows=tuple(_bandwidth_rows(points)),
        paper={"peak_speedup_pct": 6.05, "bandwidth_below_gbit": 1.0},
        measured={
            "peak_speedup_pct": max_speedup * 100,
            "bandwidth_below_gbit": bits_per_sec(max_bandwidth) / 1e9,
        },
        notes=(
            "With the 1-Gigabit link hard-saturated by 8 processes the "
            "modeled policies tie (~0-1%); the paper's 6.05% suggests its "
            "1-Gigabit runs were not fully NIC-saturated.",
        ),
    )


#: Regenerate Fig. 5: IOR bandwidth under irqbalance vs SAIs, 3 Gb.
run_fig5 = register_grid_experiment(
    "fig5_bandwidth_3g",
    grid=lambda scale: sweep_fig5_specs(scale, nic_gigabits=3),
    run_point=run_sweep_point,
    assemble=_assemble_fig5,
    point_key=sweep_point_key,
)

#: Regenerate the Sec. V-C 1-Gigabit observation: NIC-bound, small gain.
run_sec5c = register_grid_experiment(
    "sec5c_bandwidth_1g",
    grid=lambda scale: sweep_fig5_specs(scale, nic_gigabits=1),
    run_point=run_sweep_point,
    assemble=_assemble_sec5c,
    point_key=sweep_point_key,
)
