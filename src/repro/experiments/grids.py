"""Shared sweep grids and config construction for the figure experiments."""

from __future__ import annotations

import dataclasses
import functools
import typing as t

from ..cluster.simulation import PolicyComparison, compare_policies
from ..config import ClientConfig, ClusterConfig, WorkloadConfig
from ..units import KiB, MiB, format_size

__all__ = [
    "TRANSFER_SIZES",
    "SERVER_COUNTS",
    "SweepPoint",
    "nic_config",
    "sweep_fig5_grid",
    "file_size_for_scale",
]

#: The paper's IOR transfer sizes (Sec. V-B).
TRANSFER_SIZES = (128 * KiB, 512 * KiB, 1 * MiB, 2 * MiB)
#: The paper's PVFS server-count sweep.
SERVER_COUNTS = (8, 16, 32, 48)


def file_size_for_scale(scale: str, transfer_size: int) -> int:
    """Per-process bytes for a scale preset.

    The paper reads 10 GB per process; we scale down (bandwidth is a
    steady-state rate) while keeping at least a handful of requests per
    process at the largest transfer size.
    """
    base = {"quick": 4 * MiB, "default": 8 * MiB, "full": 64 * MiB}[scale]
    return max(base, 4 * transfer_size)


def nic_config(gigabits: int) -> ClientConfig:
    """Client config with an N x 1-Gigabit bonded NIC."""
    return ClientConfig(nic_ports=gigabits)


@dataclasses.dataclass(frozen=True)
class SweepPoint:
    """One (transfer size, server count) cell of the paper's grids."""

    transfer_size: int
    n_servers: int
    comparison: PolicyComparison

    @property
    def transfer_label(self) -> str:
        return format_size(self.transfer_size)


def sweep_fig5_grid(
    scale: str,
    nic_gigabits: int,
    n_processes: int = 8,
    seed: int = 1,
) -> list[SweepPoint]:
    """Run the standard transfer-size x server-count grid, both policies.

    This single sweep underlies Figures 5-11: bandwidth, miss rate,
    utilization and unhalted cycles are all collected from the same runs,
    exactly as the paper measured them from the same IOR executions —
    so the result is memoized per (scale, NIC, processes, seed) and the
    six figure experiments share it.
    """
    return list(_cached_sweep(scale, nic_gigabits, n_processes, seed))


@functools.lru_cache(maxsize=16)
def _cached_sweep(
    scale: str, nic_gigabits: int, n_processes: int, seed: int
) -> tuple[SweepPoint, ...]:
    transfer_sizes: t.Sequence[int] = TRANSFER_SIZES
    server_counts: t.Sequence[int] = SERVER_COUNTS
    if scale == "quick":
        transfer_sizes = transfer_sizes[-2:]
        server_counts = (8, 48)
    points = []
    for transfer in transfer_sizes:
        for n_servers in server_counts:
            config = ClusterConfig(
                n_servers=n_servers,
                client=nic_config(nic_gigabits),
                workload=WorkloadConfig(
                    n_processes=n_processes,
                    transfer_size=transfer,
                    file_size=file_size_for_scale(scale, transfer),
                ),
                seed=seed,
            )
            points.append(
                SweepPoint(
                    transfer_size=transfer,
                    n_servers=n_servers,
                    comparison=compare_policies(config),
                )
            )
    return tuple(points)
