"""Shared sweep grids and config construction for the figure experiments.

The Fig. 5–11 family all plot the same underlying campaign: the
transfer-size x server-count grid run under both policies.  This module
splits that campaign into the two halves the parallel runner needs:

* :func:`sweep_fig5_specs` — *pure* construction of the grid's
  :class:`~repro.config.ClusterConfig` cells (cheap, pickleable);
* :func:`run_sweep_point` — the heavy, deterministic simulation of one
  cell, memoized in-process so the six figure experiments that share a
  sweep never re-run it within one interpreter.

:func:`sweep_point_key` names a cell's computation content-addressably,
which lets the pool runner dedupe identical cells *across* experiments
(Fig. 5, 6/7, 9, 10/11 all reuse the 3-Gigabit sweep).
"""

from __future__ import annotations

import functools
import typing as t

import dataclasses

from ..cluster.simulation import PolicyComparison, compare_policies
from ..config import ClientConfig, ClusterConfig, WorkloadConfig
from ..faults.ambient import apply_ambient_faults
from ..units import KiB, MiB, format_size
from .base import resolve_scale

__all__ = [
    "TRANSFER_SIZES",
    "SERVER_COUNTS",
    "SweepPoint",
    "nic_config",
    "sweep_fig5_specs",
    "sweep_fig5_grid",
    "run_sweep_point",
    "sweep_point_key",
    "run_comparison_point",
    "comparison_point_key",
    "run_single_point",
    "single_point_key",
    "file_size_for_scale",
]

#: The paper's IOR transfer sizes (Sec. V-B).
TRANSFER_SIZES = (128 * KiB, 512 * KiB, 1 * MiB, 2 * MiB)
#: The paper's PVFS server-count sweep.
SERVER_COUNTS = (8, 16, 32, 48)


def file_size_for_scale(scale: str, transfer_size: int) -> int:
    """Per-process bytes for a scale preset.

    The paper reads 10 GB per process; we scale down (bandwidth is a
    steady-state rate) while keeping at least a handful of requests per
    process at the largest transfer size.
    """
    base = {"quick": 4 * MiB, "default": 8 * MiB, "full": 64 * MiB}[
        resolve_scale(scale)
    ]
    return max(base, 4 * transfer_size)


def nic_config(gigabits: int) -> ClientConfig:
    """Client config with an N x 1-Gigabit bonded NIC."""
    return ClientConfig(nic_ports=gigabits)


@dataclasses.dataclass(frozen=True)
class SweepPoint:
    """One (transfer size, server count) cell of the paper's grids."""

    transfer_size: int
    n_servers: int
    comparison: PolicyComparison

    @property
    def transfer_label(self) -> str:
        return format_size(self.transfer_size)


def sweep_fig5_specs(
    scale: str,
    nic_gigabits: int,
    n_processes: int = 8,
    seed: int = 1,
) -> tuple[ClusterConfig, ...]:
    """The grid's cells as configs — pure construction, no simulation."""
    transfer_sizes: t.Sequence[int] = TRANSFER_SIZES
    server_counts: t.Sequence[int] = SERVER_COUNTS
    if resolve_scale(scale) == "quick":
        transfer_sizes = transfer_sizes[-2:]
        server_counts = (8, 48)
    return tuple(
        apply_ambient_faults(
            ClusterConfig(
                n_servers=n_servers,
                client=nic_config(nic_gigabits),
                workload=WorkloadConfig(
                    n_processes=n_processes,
                    transfer_size=transfer,
                    file_size=file_size_for_scale(scale, transfer),
                ),
                seed=seed,
            )
        )
        for transfer in transfer_sizes
        for n_servers in server_counts
    )


@functools.lru_cache(maxsize=512)
def run_sweep_point(config: ClusterConfig) -> SweepPoint:
    """Simulate one grid cell under both policies (deterministic).

    Memoized per config so the figure experiments sharing a sweep reuse
    the runs within one process, exactly as the paper collected Figs.
    5-11 from the same IOR executions.
    """
    return SweepPoint(
        transfer_size=config.workload.transfer_size,
        n_servers=config.n_servers,
        comparison=compare_policies(config),
    )


def sweep_point_key(config: ClusterConfig) -> str:
    """Content-addressed name of one cell's computation (runner dedup)."""
    from ..runner.cache import config_digest

    return f"sweep:{config_digest(config)}"


@functools.lru_cache(maxsize=512)
def run_comparison_point(config: ClusterConfig) -> PolicyComparison:
    """One irqbalance-vs-SAIs A/B at an arbitrary config (deterministic)."""
    return compare_policies(config)


def comparison_point_key(config: ClusterConfig) -> str:
    """Dedup key for :func:`run_comparison_point` cells."""
    from ..runner.cache import config_digest

    return f"cmp:{config_digest(config)}"


@functools.lru_cache(maxsize=512)
def run_single_point(config: ClusterConfig):
    """One single-policy run (the config's own ``policy`` field)."""
    from ..cluster.simulation import run_experiment

    return run_experiment(config)


def single_point_key(config: ClusterConfig) -> str:
    """Dedup key for :func:`run_single_point` cells."""
    from ..runner.cache import config_digest

    return f"run:{config_digest(config)}"


def sweep_fig5_grid(
    scale: str,
    nic_gigabits: int,
    n_processes: int = 8,
    seed: int = 1,
) -> list[SweepPoint]:
    """Run the standard transfer-size x server-count grid, both policies.

    This single sweep underlies Figures 5-11: bandwidth, miss rate,
    utilization and unhalted cycles are all collected from the same runs
    (see :func:`run_sweep_point`).
    """
    return [
        run_sweep_point(config)
        for config in sweep_fig5_specs(scale, nic_gigabits, n_processes, seed)
    ]
