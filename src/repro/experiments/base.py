"""Experiment registry, the common result shape, and grid decomposition.

Experiments come in two granularities:

* the classic monolithic ``fn(scale) -> ExperimentResult`` registered via
  :func:`register_experiment` — what the CLI and benches have always run;
* the decomposed form registered via :func:`register_grid_experiment`:
  a pure, cheap ``grid(scale) -> [spec, ...]`` of pickleable point specs,
  a deterministic ``run_point(spec) -> row`` that does the heavy
  simulation for one grid cell, and an ``assemble(scale, specs, rows)``
  that folds the rows back into an :class:`ExperimentResult`.

The decomposed form is what :mod:`repro.runner` fans out over a process
pool; registering it also installs a serial compatibility wrapper under
the same id, so ``run_experiment_by_id`` keeps working unchanged.
"""

from __future__ import annotations

import dataclasses
import typing as t

from ..errors import ConfigError
from ..metrics.report import render_table

__all__ = [
    "ExperimentResult",
    "GridExperiment",
    "register_experiment",
    "register_grid_experiment",
    "get_experiment",
    "get_grid_experiment",
    "has_grid_experiment",
    "run_experiment_by_id",
    "all_experiment_ids",
    "resolve_scale",
    "SCALES",
]

#: Run-length presets.  Simulated bandwidths are steady-state rates, so
#: scaling the file sizes down changes noise, not shape (verified by
#: tests/cluster/test_run_length_invariance.py).
SCALES = ("quick", "default", "full")

ExperimentFn = t.Callable[[str], "ExperimentResult"]

_REGISTRY: dict[str, ExperimentFn] = {}
_GRID_REGISTRY: dict[str, "GridExperiment"] = {}


def resolve_scale(scale: str) -> str:
    """Validate a scale preset name, returning it unchanged.

    Every experiment indexes ``SCALES``-keyed dicts; routing the lookup
    key through this helper turns an unknown scale into a uniform
    :class:`~repro.errors.ConfigError` instead of a bare ``KeyError``.
    """
    if scale not in SCALES:
        raise ConfigError(f"unknown scale {scale!r}; expected one of {SCALES}")
    return scale


@dataclasses.dataclass(frozen=True)
class ExperimentResult:
    """What every experiment returns: a table plus headline comparisons."""

    exp_id: str
    title: str
    #: Column names of ``rows``.
    headers: tuple[str, ...]
    #: The regenerated data series (the figure's points).
    rows: tuple[tuple[t.Any, ...], ...]
    #: Paper-reported headline values, keyed by a short name.
    paper: dict[str, float]
    #: Our measured equivalents, same keys.
    measured: dict[str, float]
    #: Free-form caveats (where our shape deviates and why).
    notes: tuple[str, ...] = ()

    def to_dict(self) -> dict[str, t.Any]:
        """JSON-serializable form (CLI ``--json``, downstream tooling)."""
        return {
            "exp_id": self.exp_id,
            "title": self.title,
            "headers": list(self.headers),
            "rows": [list(row) for row in self.rows],
            "paper": dict(self.paper),
            "measured": dict(self.measured),
            "notes": list(self.notes),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, t.Any]) -> "ExperimentResult":
        """Inverse of :meth:`to_dict` (used by the on-disk result cache).

        Raises ``KeyError``/``TypeError`` on malformed payloads; callers
        that cannot trust the payload (the cache) treat those as misses.
        """
        return cls(
            exp_id=payload["exp_id"],
            title=payload["title"],
            headers=tuple(payload["headers"]),
            rows=tuple(tuple(row) for row in payload["rows"]),
            paper=dict(payload["paper"]),
            measured=dict(payload["measured"]),
            notes=tuple(payload["notes"]),
        )

    def render(self) -> str:
        """Human-readable table + headline comparison."""
        lines = [render_table(self.headers, self.rows, title=self.title)]
        if self.paper:
            lines.append("")
            lines.append("headline (paper vs measured):")
            for key in self.paper:
                measured = self.measured.get(key, float("nan"))
                lines.append(f"  {key}: paper={self.paper[key]:g}  measured={measured:g}")
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


def register_experiment(
    exp_id: str,
) -> t.Callable[[ExperimentFn], ExperimentFn]:
    """Decorator registering ``fn(scale) -> ExperimentResult`` under an id."""

    def decorate(fn: ExperimentFn) -> ExperimentFn:
        if exp_id in _REGISTRY:
            raise ConfigError(f"experiment {exp_id!r} already registered")
        _REGISTRY[exp_id] = fn
        return fn

    return decorate


@dataclasses.dataclass(frozen=True)
class GridExperiment:
    """The decomposed (parallelizable) form of one experiment.

    ``grid`` must be *pure and cheap*: it only builds pickleable point
    specs (typically frozen config dataclasses), never runs simulations.
    ``run_point`` carries the whole cost of one grid cell and must be
    deterministic — same spec, same bits, in any process (the property
    ``tests/experiments/test_determinism.py`` asserts).  ``point_key``
    optionally names a point's computation so identical points shared by
    several experiments (the Fig. 5–11 sweep family) execute once per
    runner invocation.
    """

    exp_id: str
    grid: t.Callable[[str], t.Sequence[t.Any]]
    run_point: t.Callable[[t.Any], t.Any]
    assemble: t.Callable[[str, t.Sequence[t.Any], t.Sequence[t.Any]], ExperimentResult]
    point_key: t.Callable[[t.Any], str] | None = None

    def run_serial(self, scale: str) -> ExperimentResult:
        """The compatibility path: all points in-process, grid order."""
        specs = tuple(self.grid(resolve_scale(scale)))
        rows = [self.run_point(spec) for spec in specs]
        return self.assemble(scale, specs, rows)

    def keys(self, specs: t.Sequence[t.Any]) -> list[str]:
        """Deduplication keys for ``specs`` (stable within one run)."""
        if self.point_key is None:
            return [f"{self.exp_id}#{index}" for index in range(len(specs))]
        return [self.point_key(spec) for spec in specs]


def register_grid_experiment(
    exp_id: str,
    *,
    grid: t.Callable[[str], t.Sequence[t.Any]],
    run_point: t.Callable[[t.Any], t.Any],
    assemble: t.Callable[
        [str, t.Sequence[t.Any], t.Sequence[t.Any]], ExperimentResult
    ],
    point_key: t.Callable[[t.Any], str] | None = None,
) -> ExperimentFn:
    """Register a decomposed experiment plus its serial compat wrapper.

    Returns the ``fn(scale) -> ExperimentResult`` wrapper, which modules
    keep exporting under their historical ``run_*`` names.
    """
    experiment = GridExperiment(
        exp_id=exp_id,
        grid=grid,
        run_point=run_point,
        assemble=assemble,
        point_key=point_key,
    )

    def compat(scale: str = "default") -> ExperimentResult:
        return experiment.run_serial(scale)

    compat.__name__ = f"run_{exp_id}"
    compat.__doc__ = f"Serial runner for the {exp_id!r} experiment."
    register_experiment(exp_id)(compat)
    _GRID_REGISTRY[exp_id] = experiment
    return compat


def get_grid_experiment(exp_id: str) -> GridExperiment:
    """Look up the decomposed form of an experiment (for the pool runner)."""
    try:
        return _GRID_REGISTRY[exp_id]
    except KeyError:
        raise ConfigError(
            f"experiment {exp_id!r} has no grid decomposition; "
            f"available: {sorted(_GRID_REGISTRY)}"
        ) from None


def has_grid_experiment(exp_id: str) -> bool:
    """Whether an experiment was registered in decomposed form."""
    return exp_id in _GRID_REGISTRY


def unregister_experiment(exp_id: str) -> None:
    """Remove an experiment from both registries (test isolation hook)."""
    _REGISTRY.pop(exp_id, None)
    _GRID_REGISTRY.pop(exp_id, None)


def get_experiment(exp_id: str) -> ExperimentFn:
    """Look an experiment up by id."""
    try:
        return _REGISTRY[exp_id]
    except KeyError:
        raise ConfigError(
            f"unknown experiment {exp_id!r}; available: {sorted(_REGISTRY)}"
        ) from None


def run_experiment_by_id(exp_id: str, scale: str = "default") -> ExperimentResult:
    """Run one experiment at the given scale."""
    return get_experiment(exp_id)(resolve_scale(scale))


def all_experiment_ids() -> list[str]:
    """Sorted ids of every registered experiment."""
    return sorted(_REGISTRY)
