"""Experiment registry and the common result shape."""

from __future__ import annotations

import dataclasses
import typing as t

from ..errors import ConfigError
from ..metrics.report import render_table

__all__ = [
    "ExperimentResult",
    "register_experiment",
    "get_experiment",
    "run_experiment_by_id",
    "all_experiment_ids",
    "SCALES",
]

#: Run-length presets.  Simulated bandwidths are steady-state rates, so
#: scaling the file sizes down changes noise, not shape (verified by
#: tests/cluster/test_run_length_invariance.py).
SCALES = ("quick", "default", "full")

ExperimentFn = t.Callable[[str], "ExperimentResult"]

_REGISTRY: dict[str, ExperimentFn] = {}


@dataclasses.dataclass(frozen=True)
class ExperimentResult:
    """What every experiment returns: a table plus headline comparisons."""

    exp_id: str
    title: str
    #: Column names of ``rows``.
    headers: tuple[str, ...]
    #: The regenerated data series (the figure's points).
    rows: tuple[tuple[t.Any, ...], ...]
    #: Paper-reported headline values, keyed by a short name.
    paper: dict[str, float]
    #: Our measured equivalents, same keys.
    measured: dict[str, float]
    #: Free-form caveats (where our shape deviates and why).
    notes: tuple[str, ...] = ()

    def to_dict(self) -> dict[str, t.Any]:
        """JSON-serializable form (CLI ``--json``, downstream tooling)."""
        return {
            "exp_id": self.exp_id,
            "title": self.title,
            "headers": list(self.headers),
            "rows": [list(row) for row in self.rows],
            "paper": dict(self.paper),
            "measured": dict(self.measured),
            "notes": list(self.notes),
        }

    def render(self) -> str:
        """Human-readable table + headline comparison."""
        lines = [render_table(self.headers, self.rows, title=self.title)]
        if self.paper:
            lines.append("")
            lines.append("headline (paper vs measured):")
            for key in self.paper:
                measured = self.measured.get(key, float("nan"))
                lines.append(f"  {key}: paper={self.paper[key]:g}  measured={measured:g}")
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


def register_experiment(
    exp_id: str,
) -> t.Callable[[ExperimentFn], ExperimentFn]:
    """Decorator registering ``fn(scale) -> ExperimentResult`` under an id."""

    def decorate(fn: ExperimentFn) -> ExperimentFn:
        if exp_id in _REGISTRY:
            raise ConfigError(f"experiment {exp_id!r} already registered")
        _REGISTRY[exp_id] = fn
        return fn

    return decorate


def get_experiment(exp_id: str) -> ExperimentFn:
    """Look an experiment up by id."""
    try:
        return _REGISTRY[exp_id]
    except KeyError:
        raise ConfigError(
            f"unknown experiment {exp_id!r}; available: {sorted(_REGISTRY)}"
        ) from None


def run_experiment_by_id(exp_id: str, scale: str = "default") -> ExperimentResult:
    """Run one experiment at the given scale."""
    if scale not in SCALES:
        raise ConfigError(f"unknown scale {scale!r}; expected one of {SCALES}")
    return get_experiment(exp_id)(scale)


def all_experiment_ids() -> list[str]:
    """Sorted ids of every registered experiment."""
    return sorted(_REGISTRY)
