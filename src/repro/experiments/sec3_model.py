"""Sec. III — the analytic bounds (eqs. 3-9) against the simulator.

The analysis predicts: (a) T_balanced - TR >> T_source-aware - TR whenever
M >> P; (b) the gap grows with NS, NR and (M - P); (c) with NP >= NC the
advantage vanishes.  This experiment evaluates the closed forms on the
calibrated cost model and cross-checks the *orderings* against measured
simulator runs.
"""

from __future__ import annotations

from ..config import ClusterConfig, CostModel, WorkloadConfig
from ..core.analysis import AnalysisParams
from ..units import KiB, MiB
from .base import ExperimentResult, register_grid_experiment, resolve_scale
from .grids import comparison_point_key, nic_config, run_comparison_point

__all__ = ["run_sec3"]

#: Simulator cross-check points (measured speed-ups must be ordered the
#: way the analytic gap is).
_CHECK_SERVERS = (16, 48)


def _grid(scale: str) -> tuple[ClusterConfig, ...]:
    file_size = {"quick": 4 * MiB, "default": 8 * MiB, "full": 32 * MiB}[
        resolve_scale(scale)
    ]
    return tuple(
        ClusterConfig(
            n_servers=n_servers,
            client=nic_config(3),
            workload=WorkloadConfig(
                n_processes=8, transfer_size=1 * MiB, file_size=file_size
            ),
        )
        for n_servers in _CHECK_SERVERS
    )


def _assemble(scale, specs, comparisons) -> ExperimentResult:
    costs = CostModel()
    strip = 64 * KiB
    p_cost = costs.strip_processing_time(strip)
    m_cost = costs.strip_migration_time(strip)

    rows = []
    analytic_gaps = {}
    for n_servers in (8, 16, 32, 48):
        params = AnalysisParams(
            n_cores=8,
            n_servers=n_servers,
            strip_processing=p_cost,
            strip_migration=m_cost,
            rest_time=0.0,
            n_requests=16,
        )
        analytic_gaps[n_servers] = params.performance_gap()
        rows.append(
            (
                n_servers,
                f"{params.t_balanced_stream() * 1e3:.2f}",
                f"{params.t_source_aware_stream() * 1e3:.2f}",
                f"{params.performance_gap() * 1e3:.2f}",
                f"{params.predicted_speedup_stream():+.1%}",
            )
        )

    measured = {
        config.n_servers: comparison.bandwidth_speedup
        for config, comparison in zip(specs, comparisons)
    }

    return ExperimentResult(
        exp_id="sec3_model",
        title="Sec. III — analytic bounds (eqs. 3-9), TR = 0, NR = 16",
        headers=(
            "servers",
            "T_balanced (ms)",
            "T_source-aware (ms)",
            "gap eq.(9) (ms)",
            "predicted speed-up",
        ),
        rows=tuple(rows),
        paper={
            "m_over_p_much_greater_1": 1.0,
            "gap_grows_with_servers": 1.0,
        },
        measured={
            "m_over_p_much_greater_1": 1.0 if m_cost > 3 * p_cost else 0.0,
            "gap_grows_with_servers": (
                1.0 if analytic_gaps[48] > analytic_gaps[8] else 0.0
            ),
            "m_over_p": m_cost / p_cost,
            "sim_speedup_16_pct": measured[16] * 100,
            "sim_speedup_48_pct": measured[48] * 100,
        },
        notes=(
            "The closed forms are bounds with TR excluded, so the "
            "predicted speed-ups are upper envelopes; the simulator's "
            "measured speed-ups are lower but ordered identically.",
        ),
    )


#: Evaluate eqs. (3)-(9) and compare trends with the simulator.
run_sec3 = register_grid_experiment(
    "sec3_model",
    grid=_grid,
    run_point=run_comparison_point,
    assemble=_assemble,
    point_key=comparison_point_key,
)
