"""Figs. 10 and 11 — CPU_CLK_UNHALTED (Oprofile) comparison.

Paper claims:

* Fig. 10 (1 Gb): SAIs improves (reduces) the unhalted-cycle count spent
  per fixed amount of data by up to **27.14%**.
* Fig. 11 (3 Gb): the improvement grows to **48.57%** — SAIs removes the
  application-side stall component (waiting on data that missed in the
  cache), so each read costs fewer cycles.
"""

from __future__ import annotations

from .base import ExperimentResult, register_grid_experiment
from .grids import run_sweep_point, sweep_fig5_specs, sweep_point_key

__all__ = ["run_fig10", "run_fig11"]


def _unhalted_rows(points):
    rows = []
    for point in points:
        comparison = point.comparison
        rows.append(
            (
                point.transfer_label,
                point.n_servers,
                f"{comparison.baseline.unhalted_cycles / 1e4:.0f}",
                f"{comparison.treatment.unhalted_cycles / 1e4:.0f}",
                f"{comparison.unhalted_reduction:+.2%}",
            )
        )
    return rows


def _assemble(points, gigabits: int, exp_id: str, figure: str, paper_max: float):
    reductions = [p.comparison.unhalted_reduction for p in points]
    return ExperimentResult(
        exp_id=exp_id,
        title=(
            f"{figure} — CPU_CLK_UNHALTED (1e4 cycles), "
            f"{gigabits}-Gigabit NIC"
        ),
        headers=(
            "transfer",
            "servers",
            "irqbalance (1e4 cyc)",
            "SAIs (1e4 cyc)",
            "reduction",
        ),
        rows=tuple(_unhalted_rows(points)),
        paper={"max_reduction_pct": paper_max},
        measured={
            "max_reduction_pct": max(reductions) * 100,
            "mean_reduction_pct": sum(reductions) / len(reductions) * 100,
        },
        notes=(
            "Per-strip stall costs are rate-independent in the model, so "
            "the 1 Gb and 3 Gb reductions are closer together than the "
            "paper's 27% vs 49% (queueing adds little at 1 Gb here).",
        )
        if gigabits == 1
        else (),
    )


#: Regenerate Fig. 10 (1-Gigabit NIC).
run_fig10 = register_grid_experiment(
    "fig10_unhalted_1g",
    grid=lambda scale: sweep_fig5_specs(scale, nic_gigabits=1),
    run_point=run_sweep_point,
    assemble=lambda scale, specs, points: _assemble(
        points, 1, "fig10_unhalted_1g", "Fig. 10", paper_max=27.14
    ),
    point_key=sweep_point_key,
)

#: Regenerate Fig. 11 (3-Gigabit NIC).
run_fig11 = register_grid_experiment(
    "fig11_unhalted_3g",
    grid=lambda scale: sweep_fig5_specs(scale, nic_gigabits=3),
    run_point=run_sweep_point,
    assemble=lambda scale, specs, points: _assemble(
        points, 3, "fig11_unhalted_3g", "Fig. 11", paper_max=48.57
    ),
    point_key=sweep_point_key,
)
