"""Figs. 6 and 7 — L2 cache miss rate under the two scheduling schemes.

Paper claims:

* Fig. 6 (1 Gb): SAIs' miss rate is below irqbalance's at every point;
  increasing servers raises throughput and thus total misses, but the
  *rate* stays lower under SAIs.
* Fig. 7 (3 Gb): miss rates rise with network bandwidth; SAIs cuts the
  L2 miss rate by almost **40%**.
"""

from __future__ import annotations

from .base import ExperimentResult, register_grid_experiment
from .grids import run_sweep_point, sweep_fig5_specs, sweep_point_key

__all__ = ["run_fig6", "run_fig7"]


def _missrate_rows(points):
    rows = []
    for point in points:
        comparison = point.comparison
        rows.append(
            (
                point.transfer_label,
                point.n_servers,
                f"{comparison.baseline.l2_miss_rate:.2%}",
                f"{comparison.treatment.l2_miss_rate:.2%}",
                f"{comparison.miss_rate_reduction:+.2%}",
            )
        )
    return rows


def _assemble(points, gigabits: int, exp_id: str, figure: str, paper_reduction: float):
    reductions = [p.comparison.miss_rate_reduction for p in points]
    sais_always_lower = all(
        p.comparison.treatment.l2_miss_rate < p.comparison.baseline.l2_miss_rate
        for p in points
    )
    return ExperimentResult(
        exp_id=exp_id,
        title=f"{figure} — L2 miss rate, {gigabits}-Gigabit NIC",
        headers=("transfer", "servers", "irqbalance", "SAIs", "reduction"),
        rows=tuple(_missrate_rows(points)),
        paper={
            "max_reduction_pct": paper_reduction,
            "sais_always_lower": 1.0,
        },
        measured={
            "max_reduction_pct": max(reductions) * 100,
            "sais_always_lower": 1.0 if sais_always_lower else 0.0,
            "mean_reduction_pct": sum(reductions) / len(reductions) * 100,
        },
    )


#: Regenerate Fig. 6 (1-Gigabit NIC).  The paper reports the gap
#: qualitatively at 1 Gb; reuse the 3 Gb headline (~40%) as the
#: reference magnitude.
run_fig6 = register_grid_experiment(
    "fig6_missrate_1g",
    grid=lambda scale: sweep_fig5_specs(scale, nic_gigabits=1),
    run_point=run_sweep_point,
    assemble=lambda scale, specs, points: _assemble(
        points, 1, "fig6_missrate_1g", "Fig. 6", paper_reduction=40.0
    ),
    point_key=sweep_point_key,
)

#: Regenerate Fig. 7 (3-Gigabit NIC): ~40% miss-rate reduction.
run_fig7 = register_grid_experiment(
    "fig7_missrate_3g",
    grid=lambda scale: sweep_fig5_specs(scale, nic_gigabits=3),
    run_point=run_sweep_point,
    assemble=lambda scale, specs, points: _assemble(
        points, 3, "fig7_missrate_3g", "Fig. 7", paper_reduction=40.0
    ),
    point_key=sweep_point_key,
)
