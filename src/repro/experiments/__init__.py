"""The paper's evaluation, experiment by experiment.

Every data-bearing table/figure in the paper has a module here that
regenerates it (same rows/series, scaled-down run lengths).  Experiments
register themselves in a name-keyed registry; the CLI
(``python -m repro``) and the benchmark suite both run them through
:func:`get_experiment` / :func:`run_experiment_by_id`.

Figures 1-4 and 13 are architecture diagrams with no data series; the
remaining artifacts map to:

===================  ==========================================
``fig5_bandwidth_3g``   Fig. 5  bandwidth + speed-up, 3-Gigabit NIC
``sec5c_bandwidth_1g``  Sec. V-C text, 1-Gigabit NIC bandwidth
``fig6_missrate_1g``    Fig. 6  L2 miss rate, 1-Gigabit NIC
``fig7_missrate_3g``    Fig. 7  L2 miss rate, 3-Gigabit NIC
``fig8_cpuutil_1g``     Fig. 8  CPU utilization, 1-Gigabit NIC
``fig9_cpuutil_3g``     Fig. 9  CPU utilization, 3-Gigabit NIC
``fig10_unhalted_1g``   Fig. 10 CPU_CLK_UNHALTED, 1-Gigabit NIC
``fig11_unhalted_3g``   Fig. 11 CPU_CLK_UNHALTED, 3-Gigabit NIC
``fig12_multiclient``   Fig. 12 multi-client scalability
``fig14_memsim``        Fig. 14 memory-simulation sweep
``sec3_model``          Sec. III analytic bounds vs simulator
``ablation_policies``   Sec. III four-policy comparison
``ablation_costmodel``  sensitivity to M/P and NIC bandwidth
===================  ==========================================

Beyond the paper's figures, the resilience sweeps probe SAIs' graceful
degradation on a faulty fabric (see :mod:`repro.faults`):

==============================  ==========================================
``resilience_loss_sweep``        bandwidth retention under loss +
                                 option stripping + reordering
``resilience_straggler_sweep``   bandwidth retention with one slow /
                                 transiently-failing I/O server
==============================  ==========================================

The steering sweeps pit every registered policy — including the modern
NIC-steering schemes (rss, flow_director, rps_rfs, rdma_zerointr) —
against each other (see :mod:`repro.experiments.steering`):

==============================  ==========================================
``steering_comparison``          all registered policies, Fig. 5 point
``steering_reorder_pathology``   Flow Director ATR reordering vs RSS
==============================  ==========================================

The sweep family samples *generated* scenarios from declarative specs
(:mod:`repro.scenarios`, cookbook in ``docs/SCENARIOS.md``) and scores
each with a baseline-vs-SAIs A/B (see :mod:`repro.experiments.sweep`
and the ``sais-repro sweep`` subcommand):

==============================  ==========================================
``sweep_homogeneous``            homogeneous paper-testbed clusters
``sweep_heterogeneous``          heterogeneous client classes, mixed links
``sweep_leafspine``              oversubscribed leaf–spine fabrics
``sweep_custom``                 the ambient ``sweep --spec`` request
==============================  ==========================================
"""

from .base import (
    ExperimentResult,
    all_experiment_ids,
    get_experiment,
    run_experiment_by_id,
)

# Importing the modules registers their experiments.
from . import (  # noqa: E402,F401  (registration side effects)
    ablations,
    extension_mechanisms,
    extension_modern_hw,
    fig5_bandwidth,
    fig6_7_missrate,
    fig8_9_cpuutil,
    fig10_11_unhalted,
    fig12_multiclient,
    fig14_memsim,
    resilience,
    sec3_model,
    steering,
    sweep,
)

__all__ = [
    "ExperimentResult",
    "get_experiment",
    "run_experiment_by_id",
    "all_experiment_ids",
]
