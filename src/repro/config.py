"""Configuration dataclasses for the simulated cluster.

The defaults model the paper's testbed (Sec. V-A):

* client = the Sun-Fire 4240 head node — two quad-core 2.7 GHz Opteron 2384
  (8 cores), 512 KiB dedicated L2 per core, three 1-Gigabit BCM5715C ports;
* servers = Sun-Fire 2200 compute nodes — 250 GB 7.2K-RPM SATA-II disk,
  1-Gigabit ports;
* PVFS 2.8.1 with a 64 KiB strip size;
* DDR2-667 memory, 5333 MB/s peak (JESD79-2F, the paper's ref [19]).

Per-byte cost rates in :class:`CostModel` are where the reproduction is
*calibrated* rather than measured: they are chosen to be physically plausible
for that hardware generation and to land the emergent headline numbers in
the paper's bands (see ``DESIGN.md`` §5 and ``tests/cluster/test_calibration``).

Configs are built three ways: by hand (tests, ad-hoc scripts), by the
experiment grids (:mod:`repro.experiments.grids`), or expanded from a
declarative scenario spec by :mod:`repro.scenarios` — the latter draws
every field below from seeded distributions, so anything valid here is
reachable from a spec.
"""

from __future__ import annotations

import dataclasses
import typing as t

from .errors import ConfigError
from .faults.plan import FaultPlan
from .units import GHz, Gbit, KiB, MiB, USEC, parse_size

__all__ = [
    "CostModel",
    "ClientConfig",
    "ServerConfig",
    "NetworkConfig",
    "WorkloadConfig",
    "ClusterConfig",
    "DEFAULT_COST_MODEL",
]


def _positive(name: str, value: float) -> None:
    if value <= 0:
        raise ConfigError(f"{name} must be positive, got {value}")


def _non_negative(name: str, value: float) -> None:
    if value < 0:
        raise ConfigError(f"{name} must be non-negative, got {value}")


@dataclasses.dataclass(frozen=True)
class CostModel:
    """Per-operation timing constants for the client machine.

    The two quantities the paper's analysis names are derivable:

    * ``P`` (strip processing) ≈ ``irq_overhead + strip/protocol_rate``;
    * ``M`` (strip migration) ≈ ``c2c_latency + strip/c2c_rate``.

    The paper requires ``M >> P``; the defaults give M/P ≈ 5 for a 64 KiB
    strip, consistent with cache-to-cache transfers over HyperTransport
    being several times slower than streaming protocol processing.
    """

    #: Softirq protocol-processing throughput per core (bytes/s).  ~6 GB/s
    #: puts P(64 KiB) ≈ 13 µs including the fixed vector cost below.
    protocol_rate: float = 6.0e9
    #: Fixed cost of taking one interrupt (vector dispatch, driver entry).
    irq_overhead: float = 2.0 * USEC
    #: *Cross-socket* cache-to-cache strip transfer throughput over the
    #: serialized inter-core interconnect (bytes/s).  Cache-to-cache
    #: movement is *latency-bound per line*, not bandwidth-bound: every
    #: 64 B line costs a coherence round trip (~310 ns across the
    #: HyperTransport hop between the two Opteron packages), so the
    #: effective rate is ≈ 205 MB/s and M_cross(64 KiB) ≈ 323 µs.  This is
    #: what makes M >> P.
    c2c_rate: float = 2.05e8
    #: *Intra-socket* cache-to-cache rate: cores in the same package share
    #: the Barcelona L3, so the per-line round trip is ~140 ns
    #: (≈ 450 MB/s, M_intra(64 KiB) ≈ 148 µs).  With a uniformly
    #: scattering balancer and 2 x 4 cores, the expected remote-transfer
    #: cost is (3/7) x M_intra + (4/7) x M_cross ≈ 250 µs — the calibrated
    #: mean M of DESIGN.md §5.
    intra_socket_c2c_rate: float = 4.5e8
    #: Fixed latency to set up one cache-to-cache transfer (coherence
    #: round-trip before lines start streaming).
    c2c_latency: float = 3.0 * USEC
    #: Fetching an evicted strip back from DRAM (bytes/s, per accessor).
    #: Demand misses are latency-bound like cache-to-cache transfers
    #: (~200 ns/line on DDR2 with the NUMA hop), slightly cheaper than a
    #: dirty c2c line but the same order — and they ride the same
    #: serialized fill path.
    mem_fetch_rate: float = 3.2e8
    #: Copy cost when the strip is already resident in the consuming
    #: core's cache (bytes/s) — the cheap, source-aware path.
    local_copy_rate: float = 4.5e9
    #: The IOR "added computing task" — encrypting received data
    #: (bytes/s per core; software AES on a 2008 Opteron runs at a few
    #: hundred MB/s per core).
    encrypt_rate: float = 3.0e8
    #: Inter-processor wake-up signal cost (paper Sec. IV-B: "inter-core
    #: signals are sent to wake the application process").
    wakeup_cost: float = 1.0 * USEC
    #: Cost for the application to issue one PFS request (syscall + client
    #: fan-out bookkeeping).
    request_issue_cost: float = 5.0 * USEC
    #: RPS/RFS cross-core handoff: flow-table lookup + enqueue onto the
    #: remote core's backlog, paid on the hardware-IRQ core before the
    #: interconnect IPI (rps_rfs policy only).
    rps_dispatch_cost: float = 1.0 * USEC

    def __post_init__(self) -> None:
        for field in dataclasses.fields(self):
            _positive(field.name, getattr(self, field.name))

    def strip_processing_time(self, strip_size: int) -> float:
        """``P``: softirq handling time for one strip-sized interrupt."""
        return self.irq_overhead + strip_size / self.protocol_rate

    def strip_migration_time(
        self, strip_size: int, same_socket: bool = False
    ) -> float:
        """``M``: cache-to-cache movement time for one strip.

        Defaults to the cross-socket cost (the analysis' worst case);
        pass ``same_socket=True`` for the shared-L3 fast path.
        """
        rate = self.intra_socket_c2c_rate if same_socket else self.c2c_rate
        return self.c2c_latency + strip_size / rate


DEFAULT_COST_MODEL = CostModel()


@dataclasses.dataclass(frozen=True)
class ClientConfig:
    """The I/O client machine (the cluster head node in the paper)."""

    n_cores: int = 8
    #: CPU packages; cores are split evenly (two quad-core Opteron 2384
    #: in the paper's head node).  Cache-to-cache transfers within a
    #: socket ride the shared L3; across sockets they pay the
    #: HyperTransport hop.
    n_sockets: int = 2
    clock_hz: float = 2.7 * GHz
    #: Dedicated private L2 per core.
    l2_bytes: int = 512 * KiB
    cache_line: int = 64
    #: Number of bonded 1-Gigabit ports (1 or 3 in the paper).
    nic_ports: int = 3
    nic_port_bandwidth: float = 1.0 * Gbit
    #: Shared memory bus peak (DDR2-667 x4 single rank).
    memory_bandwidth: float = 5333 * MiB
    #: Linux-NAPI style adaptive coalescing: interrupts are disabled while
    #: a poll runs and the polling core drains pending packets in batches.
    #: Off by default — the paper-era driver raises one IRQ per strip.
    napi: bool = False
    #: Packets per NAPI poll before the softirq yields and reschedules.
    napi_budget: int = 64

    def __post_init__(self) -> None:
        _positive("n_cores", self.n_cores)
        _positive("napi_budget", self.napi_budget)
        _positive("n_sockets", self.n_sockets)
        _positive("clock_hz", self.clock_hz)
        _positive("l2_bytes", self.l2_bytes)
        _positive("cache_line", self.cache_line)
        _positive("nic_ports", self.nic_ports)
        _positive("nic_port_bandwidth", self.nic_port_bandwidth)
        _positive("memory_bandwidth", self.memory_bandwidth)
        if self.l2_bytes % self.cache_line:
            raise ConfigError("l2_bytes must be a multiple of cache_line")
        if self.n_cores % self.n_sockets:
            raise ConfigError(
                f"{self.n_cores} cores do not split evenly over "
                f"{self.n_sockets} sockets"
            )

    @property
    def nic_bandwidth(self) -> float:
        """Aggregate client NIC bandwidth in bytes/s."""
        return self.nic_ports * self.nic_port_bandwidth

    @property
    def cores_per_socket(self) -> int:
        """Cores per CPU package."""
        return self.n_cores // self.n_sockets

    def socket_of(self, core_index: int) -> int:
        """The package a core belongs to."""
        if not 0 <= core_index < self.n_cores:
            raise ConfigError(f"core {core_index} out of range")
        return core_index // self.cores_per_socket


@dataclasses.dataclass(frozen=True)
class ServerConfig:
    """One PVFS I/O server node (a Sun-Fire 2200 compute node)."""

    #: Streaming read rate of the 7.2K-RPM SATA-II disk.
    disk_rate: float = 80 * MiB
    #: Positioning cost charged once per strip request (seek + rotation;
    #: a 7.2K-RPM spindle averages ~4.2 ms rotational latency alone, and
    #: concurrent IOR processes defeat pure sequentiality).
    disk_seek: float = 4.0e-3
    #: Fraction of strip reads absorbed by the server page cache
    #: (readahead helps, but eight concurrent strided readers thrash it).
    cache_hit_ratio: float = 0.62
    #: Service rate for page-cache hits (memory read + kernel copy).
    cache_rate: float = 400 * MiB
    nic_bandwidth: float = 1.0 * Gbit
    #: Fixed per-request server software overhead (request decode, BMI).
    service_overhead: float = 50.0 * USEC

    def __post_init__(self) -> None:
        _positive("disk_rate", self.disk_rate)
        _non_negative("disk_seek", self.disk_seek)
        if not 0.0 <= self.cache_hit_ratio <= 1.0:
            raise ConfigError("cache_hit_ratio must be in [0, 1]")
        _positive("cache_rate", self.cache_rate)
        _positive("nic_bandwidth", self.nic_bandwidth)
        _non_negative("service_overhead", self.service_overhead)


@dataclasses.dataclass(frozen=True)
class NetworkConfig:
    """The switched Ethernet fabric between clients and servers."""

    #: One-way propagation + switching latency per packet.
    latency: float = 60.0 * USEC
    #: Ethernet + IP + TCP framing overhead per raw payload byte (preamble,
    #: headers; ~6% at 1500-byte MTU).
    framing_overhead: float = 0.06
    #: Backplane of the switch (Catalyst 4948: effectively non-blocking for
    #: this port count; set lower to model an oversubscribed fabric).
    switch_bandwidth: float = 96 * Gbit
    #: TCP maximum segment size.  ``None`` (default) models NIC/NAPI
    #: coalescing of each strip's frame train into one interrupt — the
    #: paper's one-interrupt-per-strip accounting.  Set e.g. 8960 (jumbo)
    #: or 1448 to make each strip travel as per-segment packets, each
    #: raising its own interrupt, with reassembly before the consumer is
    #: woken; the IP option's copied flag puts the SAIs hint on every
    #: segment.
    mss: int | None = None

    def __post_init__(self) -> None:
        _non_negative("latency", self.latency)
        _non_negative("framing_overhead", self.framing_overhead)
        _positive("switch_bandwidth", self.switch_bandwidth)
        if self.mss is not None:
            _positive("mss", self.mss)


@dataclasses.dataclass(frozen=True)
class WorkloadConfig:
    """An IOR-like synchronous parallel read workload on one client."""

    #: Number of concurrent IOR processes on the client.
    n_processes: int = 8
    #: Bytes per IOR read call (the IOR "transfer size").
    transfer_size: int = 1 * MiB
    #: Bytes each process reads in total.  The paper reads 10 GB; the
    #: default here is scaled down because bandwidth is a steady-state rate
    #: (see tests/cluster/test_run_length_invariance.py).
    file_size: int = 32 * MiB
    #: Run the per-request "encrypt the data" compute phase the paper adds
    #: to IOR.
    compute: bool = True
    #: ``"read"`` (the paper's focus) or ``"write"`` (implemented to verify
    #: the paper's claim that writes have no interrupt-locality issue).
    operation: str = "read"
    #: MPI-IO collective semantics: all processes synchronize at a barrier
    #: before each transfer, as in ``MPI_File_read_all`` (the paper ran
    #: IOR through the MPI-IO API).  Independent I/O (False) is IOR's
    #: default.
    collective: bool = False
    #: IOR is the "Interleaved or Random" benchmark: ``"sequential"``
    #: walks each process's segment in order (the paper's configuration);
    #: ``"random"`` visits the same transfers in a seeded shuffle, which
    #: defeats server-side sequential locality but leaves the client-side
    #: interrupt story untouched.
    access_pattern: str = "sequential"
    #: Probability that a process migrates to another core while blocked on
    #: an outstanding request (Sec. III policies (i) vs (ii) ablation; the
    #: paper argues this is rare, and 0 is the default).
    migrate_during_io: float = 0.0

    def __post_init__(self) -> None:
        _positive("n_processes", self.n_processes)
        _positive("transfer_size", self.transfer_size)
        _positive("file_size", self.file_size)
        if self.file_size < self.transfer_size:
            raise ConfigError("file_size must be >= transfer_size")
        if self.operation not in ("read", "write"):
            raise ConfigError(
                f"operation must be 'read' or 'write', got {self.operation!r}"
            )
        if self.access_pattern not in ("sequential", "random"):
            raise ConfigError(
                "access_pattern must be 'sequential' or 'random', "
                f"got {self.access_pattern!r}"
            )
        if not 0.0 <= self.migrate_during_io <= 1.0:
            raise ConfigError("migrate_during_io must be in [0, 1]")

    @property
    def requests_per_process(self) -> int:
        """Number of read calls each process issues."""
        return self.file_size // self.transfer_size

    @classmethod
    def from_labels(
        cls,
        transfer_size: str | int,
        file_size: str | int,
        n_processes: int = 8,
        compute: bool = True,
    ) -> "WorkloadConfig":
        """Build from paper-style size labels, e.g. ``("128K", "10G")``."""
        return cls(
            n_processes=n_processes,
            transfer_size=parse_size(transfer_size),
            file_size=parse_size(file_size),
            compute=compute,
        )


@dataclasses.dataclass(frozen=True)
class ClusterConfig:
    """Everything needed to build and run one simulated experiment point."""

    client: ClientConfig = dataclasses.field(default_factory=ClientConfig)
    server: ServerConfig = dataclasses.field(default_factory=ServerConfig)
    network: NetworkConfig = dataclasses.field(default_factory=NetworkConfig)
    workload: WorkloadConfig = dataclasses.field(default_factory=WorkloadConfig)
    costs: CostModel = dataclasses.field(default_factory=CostModel)
    #: Number of PVFS I/O server nodes (8/16/32/48 in the paper).
    n_servers: int = 8
    #: Number of client nodes (1 except in the Fig. 12 experiment).
    n_clients: int = 1
    #: PVFS strip size.
    strip_size: int = 64 * KiB
    #: Interrupt-scheduling policy name (see repro.core.policy registry).
    policy: str = "irqbalance"
    seed: int = 1
    #: Collect per-strip lifecycle timestamps (repro.metrics.trace).
    trace: bool = False
    #: Fault-injection plan (repro.faults).  None — or a plan with every
    #: probability at zero — builds a byte-identical cluster to the
    #: fault-free one: no injector, no watchdogs, no extra events.
    faults: FaultPlan | None = None

    def __post_init__(self) -> None:
        _positive("n_servers", self.n_servers)
        _positive("n_clients", self.n_clients)
        _positive("strip_size", self.strip_size)
        if not self.policy:
            raise ConfigError("policy name must be non-empty")
        # Validate against the live registry so a typo fails at config
        # construction (CLI, trace runs, experiment grids) rather than
        # deep inside cluster build.  Imported lazily: repro.core pulls
        # in modules that import this one.
        from .core import policies as _policies  # noqa: F401  (registers)
        from .core.policy import available_policies, unknown_policy_error

        if self.policy not in available_policies():
            raise unknown_policy_error(self.policy)

    def with_policy(self, policy: str) -> "ClusterConfig":
        """A copy of this config under a different interrupt policy."""
        return dataclasses.replace(self, policy=policy)

    def with_seed(self, seed: int) -> "ClusterConfig":
        """A copy of this config under a different simulation seed.

        The scenario generator (:mod:`repro.scenarios`) derives each
        generated config's seed from its own ``(spec, seed, index)``
        hash; this helper re-seeds one config for ad-hoc replication
        runs without touching any topology field.
        """
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise ConfigError(f"seed must be an int, got {seed!r}")
        return dataclasses.replace(self, seed=seed)

    def replace(self, **changes: t.Any) -> "ClusterConfig":
        """`dataclasses.replace` convenience passthrough."""
        return dataclasses.replace(self, **changes)
