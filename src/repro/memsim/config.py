"""Configuration for the Section VI memory simulation."""

from __future__ import annotations

import dataclasses

from ..errors import ConfigError
from ..units import GHz, KiB, MiB

__all__ = ["MemsimConfig"]


@dataclasses.dataclass(frozen=True)
class MemsimConfig:
    """Parameters of the RAM-disk reader/combiner experiment.

    The head node of the paper's cluster: 8 cores at 2.7 GHz, 4 x 2 GB
    DDR2-667 giving a 5333 MB/s peak memory bus (JESD79-2F).  Per-strip
    core costs model 2008-era memcpy/combine rates; the cache-pressure
    model makes the combine phase fall out of cache as thread count grows
    (the mechanism behind the Fig. 14 convergence at saturation).
    """

    n_cores: int = 8
    clock_hz: float = 2.7 * GHz
    #: Peak memory bus bandwidth (bytes/s).
    memory_bandwidth: float = 5333 * MiB
    strip_size: int = 64 * KiB
    #: Buffer combined per request ("transfer size is 1M, verified to be
    #: the best buffer size in our previous testing").
    transfer_size: int = 1 * MiB
    #: Bytes each application pair moves in one run.
    per_app_bytes: int = 16 * MiB
    #: Reader-side core rate: read a strip off the RAM disk into the
    #: reader's buffer (memcpy + strip bookkeeping).
    read_rate: float = 1.45e9
    #: Combine rate when the strip is cache-hot (Si-SAIs same-core path).
    combine_hot_rate: float = 2.3e9
    #: Combine rate when the strip must be pulled from memory / another
    #: address space (Si-Irqbalance path, or Si-SAIs under cache pressure).
    combine_cold_rate: float = 1.15e9
    #: Memory-bus traffic per strip for the mandatory RAM-disk read, as a
    #: fraction of the strip size.
    read_traffic: float = 1.0
    #: Write-back traffic of the combined buffer, fraction of strip size.
    writeback_traffic: float = 0.5
    #: Extra cross-address-space IPC traffic Si-Irqbalance pays per strip.
    ipc_traffic: float = 0.8
    #: L2 miss fractions for the miss-rate metric.
    read_miss: float = 0.8
    combine_hot_miss: float = 0.05
    combine_cold_miss: float = 0.9
    #: Bounded reader->combiner buffer (strips), the pipe depth.
    pipe_depth: int = 8

    def __post_init__(self) -> None:
        for name in (
            "n_cores",
            "clock_hz",
            "memory_bandwidth",
            "strip_size",
            "transfer_size",
            "per_app_bytes",
            "read_rate",
            "combine_hot_rate",
            "combine_cold_rate",
            "pipe_depth",
        ):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive")
        for name in ("read_traffic", "writeback_traffic", "ipc_traffic"):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be non-negative")
        for name in ("read_miss", "combine_hot_miss", "combine_cold_miss"):
            if not 0 <= getattr(self, name) <= 1:
                raise ConfigError(f"{name} must be in [0, 1]")
        if self.per_app_bytes < self.transfer_size:
            raise ConfigError("per_app_bytes must be >= transfer_size")
        if self.transfer_size % self.strip_size:
            raise ConfigError("transfer_size must be a multiple of strip_size")

    @property
    def strips_per_transfer(self) -> int:
        return self.transfer_size // self.strip_size

    def cache_hot_fraction(self, n_apps: int, threads_per_app: int) -> float:
        """Probability a produced strip is still cache-resident at combine.

        With up to one thread per core, a strip stays hot between producer
        and consumer.  Oversubscribed cores time-slice: intervening work
        evicts strips, so hotness falls off with the oversubscription
        ratio — this is what bends both Fig. 14 curves down to the common
        memory-bound plateau at high application counts.
        """
        total_threads = n_apps * threads_per_app
        ratio = total_threads / self.n_cores
        if ratio <= 1.0:
            return 1.0
        return 1.0 / ratio
