"""Reader/combiner application pairs for the memory simulation.

One :class:`AppPair` moves ``per_app_bytes`` through a bounded pipe:

* the **reader** thread pulls strips off the RAM disk (memory-bus traffic
  plus reader-core time) and pushes them into the pipe;
* the **combiner** thread pops strips and merges them into the request
  buffer — cache-hot when colocated (Si-SAIs) or cross-address-space when
  split (Si-Irqbalance), with write-back traffic either way.

Colocated pairs share a single core (two threads interleaving); split
pairs occupy two cores but pay IPC traffic and cold combines.
"""

from __future__ import annotations

import typing as t

from ..des import Environment, Store
from ..des.monitor import Counter
from ..hw.core import APP_PRIORITY, Core
from ..hw.memory import MemoryBus
from .config import MemsimConfig

__all__ = ["AppPair"]


class AppPair:
    """One application: a reader and a combiner moving strips."""

    def __init__(
        self,
        env: Environment,
        config: MemsimConfig,
        reader_core: Core,
        combiner_core: Core,
        membus: MemoryBus,
        cache_hot_fraction: float,
        accesses: Counter,
        misses: Counter,
        shared_address_space: bool = True,
    ) -> None:
        self.env = env
        self.config = config
        self.reader_core = reader_core
        self.combiner_core = combiner_core
        self.membus = membus
        self.cache_hot_fraction = cache_hot_fraction
        self.accesses = accesses
        self.misses = misses
        #: Si-SAIs pairs are *threads*: same address space, so a produced
        #: strip is combined straight out of the shared cache hierarchy.
        #: Si-Irqbalance pairs are *processes*: each strip crosses address
        #: spaces through memory (extra IPC traffic, cold combine).
        self.shared_address_space = shared_address_space
        self._pipe = Store(env, capacity=config.pipe_depth)
        self.bytes_combined = 0

    # -- threads ---------------------------------------------------------------

    def run(self) -> t.Generator:
        """Drive both threads to completion; returns bytes combined."""
        reader = self.env.process(self._reader())
        combiner = self.env.process(self._combiner())
        yield reader
        yield combiner
        return self.bytes_combined

    def _strip_count(self) -> int:
        return self.config.per_app_bytes // self.config.strip_size

    def _reader(self) -> t.Generator:
        cfg = self.config
        strip = cfg.strip_size
        for index in range(self._strip_count()):
            with self.reader_core.request(priority=APP_PRIORITY) as req:
                yield req
                # RAM-disk read: bus transfer (the core stalls on it), then
                # the reader-side strip handling.
                yield from self.reader_core.run_while(
                    self.membus.transfer(int(strip * cfg.read_traffic)),
                    "ramdisk_read",
                )
                yield from self.reader_core.run_locked(
                    strip / cfg.read_rate, "read"
                )
            self._account(1.0, cfg.read_miss)
            yield self._pipe.put(index)

    def _combiner(self) -> t.Generator:
        cfg = self.config
        strip = cfg.strip_size
        shared = self.shared_address_space
        for _ in range(self._strip_count()):
            yield self._pipe.get()
            hot = shared and self._is_hot()
            with self.combiner_core.request(priority=APP_PRIORITY) as req:
                yield req
                extra_traffic = 0.0 if shared else cfg.ipc_traffic
                if not hot and shared:
                    # Evicted before combine: re-read through the bus.
                    extra_traffic += 1.0
                traffic = int(strip * (cfg.writeback_traffic + extra_traffic))
                if traffic > 0:
                    yield from self.combiner_core.run_while(
                        self.membus.transfer(traffic), "combine_traffic"
                    )
                rate = cfg.combine_hot_rate if hot else cfg.combine_cold_rate
                yield from self.combiner_core.run_locked(
                    strip / rate, "combine"
                )
            self._account(
                1.0, cfg.combine_hot_miss if hot else cfg.combine_cold_miss
            )
            self.bytes_combined += strip

    # -- helpers ---------------------------------------------------------------

    _hot_sequence = 0

    def _is_hot(self) -> bool:
        """Deterministic Bernoulli(cache_hot_fraction) via a rotating phase."""
        self._hot_sequence += 1
        phase = (self._hot_sequence * 0.6180339887498949) % 1.0
        return phase < self.cache_hot_fraction

    def _account(self, accesses_per_line: float, miss_fraction: float) -> None:
        lines = self.config.strip_size // 64
        self.accesses.add(lines * accesses_per_line)
        self.misses.add(lines * accesses_per_line * miss_fraction)
