"""Run memory-simulation points and the Fig. 14 application sweep."""

from __future__ import annotations

import dataclasses
import typing as t

from ..des import AllOf, Environment
from ..des.monitor import Counter
from ..errors import ConfigError
from ..hw.core import Core
from ..hw.memory import MemoryBus
from .config import MemsimConfig
from .pair import AppPair

__all__ = ["MemsimMetrics", "run_memsim_point", "sweep_applications"]

#: The two data-processing methods of Fig. 13.
SCHEMES = ("si_sais", "si_irqbalance")


@dataclasses.dataclass(frozen=True)
class MemsimMetrics:
    """One memory-simulation measurement point."""

    scheme: str
    n_apps: int
    elapsed: float
    bytes_combined: int
    bandwidth: float
    cpu_utilization: float
    l2_miss_rate: float
    membus_busy_fraction: float


def run_memsim_point(
    scheme: str, n_apps: int, config: MemsimConfig | None = None
) -> MemsimMetrics:
    """Run ``n_apps`` concurrent pairs under one scheme.

    ``si_sais`` colocates each pair on one core (thread pair);
    ``si_irqbalance`` puts reader and combiner on separate cores
    (process pair).
    """
    if scheme not in SCHEMES:
        raise ConfigError(f"unknown scheme {scheme!r}; expected one of {SCHEMES}")
    if n_apps < 1:
        raise ConfigError(f"n_apps must be >= 1, got {n_apps}")
    cfg = config or MemsimConfig()

    env = Environment()
    cores = [Core(env, i, cfg.clock_hz) for i in range(cfg.n_cores)]
    membus = MemoryBus(env, cfg.memory_bandwidth)
    accesses = Counter("memsim_accesses")
    misses = Counter("memsim_misses")

    # Both schemes run a two-thread pipeline over two cores; what differs
    # is whether the pair shares an address space (Si-SAIs threads) or
    # crosses one (Si-Irqbalance processes).
    hot_fraction = cfg.cache_hot_fraction(n_apps, threads_per_app=2)

    pairs: list[AppPair] = []
    for app in range(n_apps):
        reader_core = cores[(2 * app) % cfg.n_cores]
        combiner_core = cores[(2 * app + 1) % cfg.n_cores]
        pairs.append(
            AppPair(
                env,
                cfg,
                reader_core=reader_core,
                combiner_core=combiner_core,
                membus=membus,
                cache_hot_fraction=hot_fraction,
                accesses=accesses,
                misses=misses,
                shared_address_space=(scheme == "si_sais"),
            )
        )

    processes = [env.process(pair.run()) for pair in pairs]
    env.run(until=AllOf(env, processes))
    elapsed = env.now
    total = sum(pair.bytes_combined for pair in pairs)

    return MemsimMetrics(
        scheme=scheme,
        n_apps=n_apps,
        elapsed=elapsed,
        bytes_combined=total,
        bandwidth=total / elapsed if elapsed > 0 else 0.0,
        cpu_utilization=(
            sum(core.busy_time for core in cores) / (cfg.n_cores * elapsed)
            if elapsed > 0
            else 0.0
        ),
        l2_miss_rate=misses.value / accesses.value if accesses.value else 0.0,
        membus_busy_fraction=(
            membus.total_busy_time / elapsed if elapsed > 0 else 0.0
        ),
    )


def sweep_applications(
    app_counts: t.Sequence[int],
    config: MemsimConfig | None = None,
) -> dict[str, list[MemsimMetrics]]:
    """The Fig. 14 sweep: both schemes across application counts."""
    return {
        scheme: [run_memsim_point(scheme, n, config) for n in app_counts]
        for scheme in SCHEMES
    }
