"""The Section VI cache-data-migration cost simulation (Fig. 13/14).

The paper removes the NIC bottleneck by replaying the parallel-I/O data
path entirely in memory: "I/O servers" are files on a RAM disk, and each
application is a reader + combiner pair.

* **Si-SAIs** — the pair is two *threads* sharing one core and address
  space: the combiner finds the reader's strips cache-hot (the
  source-aware data path);
* **Si-Irqbalance** — the pair is two independent *processes* on separate
  cores: every strip crosses address spaces through memory, paying extra
  memory-bus traffic and cold-cache combining (the balanced data path).

Sweeping the number of concurrent application pairs reproduces Fig. 14:
Si-SAIs peaks far above Si-Irqbalance while the CPU still has headroom,
and the two converge once every core is saturated.
"""

from .config import MemsimConfig
from .experiment import MemsimMetrics, run_memsim_point, sweep_applications
from .pair import AppPair

__all__ = [
    "MemsimConfig",
    "AppPair",
    "MemsimMetrics",
    "run_memsim_point",
    "sweep_applications",
]
