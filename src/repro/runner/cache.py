"""Content-addressed on-disk cache of experiment results.

A cache entry is one :class:`~repro.experiments.base.ExperimentResult`,
keyed by the SHA-256 of everything that determines it:

* the experiment id and scale preset,
* the *resolved* grid of config dataclasses the experiment would run
  (so editing any ``CostModel``/``WorkloadConfig``/... field, or the
  grid itself, invalidates the entry),
* the package version (``repro.__version__``), so releases never serve
  stale shapes.

Entries are JSON files named ``<key>.json`` under per-version
subdirectories of the cache root; anything unreadable or malformed is
treated as a miss, never an error.  Writes go through a same-directory
temp file + ``os.replace`` so concurrent runners can share a cache dir.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import json
import logging
import os
import pathlib
import tempfile
import typing as t

import repro
from ..experiments.base import ExperimentResult

__all__ = [
    "ResultCache",
    "canonical_payload",
    "canonical_json",
    "config_digest",
    "default_cache_dir",
    "result_key",
]

#: Environment override for the cache root (CLI ``--cache-dir`` wins).
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

logger = logging.getLogger("repro.runner.cache")


def default_cache_dir() -> pathlib.Path:
    """``$REPRO_CACHE_DIR``, else ``~/.cache/sais-repro``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return pathlib.Path(env)
    return pathlib.Path.home() / ".cache" / "sais-repro"


def canonical_payload(obj: t.Any) -> t.Any:
    """Reduce an object tree to JSON-stable primitives.

    Dataclasses are tagged with their class name so two config types with
    coincidentally equal fields hash differently; tuples become lists;
    dict keys are stringified (json sorts them at dump time).
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            "__dataclass__": type(obj).__name__,
            "fields": {
                field.name: canonical_payload(getattr(obj, field.name))
                for field in dataclasses.fields(obj)
            },
        }
    if isinstance(obj, dict):
        return {str(key): canonical_payload(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [canonical_payload(item) for item in obj]
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    raise TypeError(f"cannot canonicalize {type(obj).__name__} for cache keying")


def canonical_json(obj: t.Any) -> str:
    """Deterministic JSON encoding of :func:`canonical_payload`."""
    return json.dumps(
        canonical_payload(obj), sort_keys=True, separators=(",", ":")
    )


def config_digest(obj: t.Any) -> str:
    """SHA-256 hex digest of any canonicalizable object tree."""
    return hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()


def result_key(exp_id: str, scale: str, grid_specs: t.Any) -> str:
    """The cache key for one (experiment, scale) at the current version.

    ``grid_specs`` is the experiment's resolved point-spec sequence (or
    ``None`` for experiments without a grid decomposition).
    """
    return config_digest(
        {
            "exp_id": exp_id,
            "scale": scale,
            "version": repro.__version__,
            "grid": grid_specs,
        }
    )


class ResultCache:
    """Directory of content-addressed ``ExperimentResult`` JSON entries."""

    def __init__(self, cache_dir: str | os.PathLike[str] | None = None) -> None:
        self.root = pathlib.Path(cache_dir) if cache_dir else default_cache_dir()

    def path_for(self, key: str) -> pathlib.Path:
        """Where a key lives: ``<root>/v<version>/<key>.json``."""
        return self.root / f"v{repro.__version__}" / f"{key}.json"

    def get(self, key: str) -> ExperimentResult | None:
        """Load a cached result; any corruption is a *logged* miss.

        A plain missing file is the ordinary cold-cache case and stays
        silent; an entry that exists but cannot be parsed (truncated by
        a crash predating the atomic-write path, bit rot, a stray
        editor) warns once and is re-run — never an exception, so one
        bad file cannot take a runner invocation or the serve daemon
        down with it.
        """
        path = self.path_for(key)
        try:
            text = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return None
        except OSError as exc:
            logger.warning(
                "cache entry %s unreadable (%s); treating as a miss",
                path.name,
                exc,
            )
            return None
        try:
            payload = json.loads(text)
            if payload.get("key") != key:
                raise ValueError("entry/key mismatch")
            return ExperimentResult.from_dict(payload["result"])
        except (ValueError, KeyError, TypeError, AttributeError) as exc:
            logger.warning(
                "cache entry %s corrupt (%s); treating as a miss",
                path.name,
                exc,
            )
            return None

    def put(self, key: str, result: ExperimentResult, scale: str) -> pathlib.Path:
        """Atomically persist one result under ``key``."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "key": key,
            "exp_id": result.exp_id,
            "scale": scale,
            "version": repro.__version__,
            "result": result.to_dict(),
        }
        # No sort_keys: the entry must round-trip the result's dict
        # ordering exactly so cached replays are byte-identical.
        encoded = json.dumps(payload, indent=1)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:12]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(encoded)
            os.replace(tmp_name, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp_name)
            raise
        return path
