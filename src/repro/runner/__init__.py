"""Parallel experiment execution with deterministic result caching.

The evaluation's grid points are embarrassingly parallel and fully
deterministic (seeded DES, process-stable hashing), so this package
scales ``sais-repro run all`` with cores:

* :class:`ExperimentRunner` — fans grid points (and whole experiments)
  out over a process pool, deduplicates shared points, reassembles rows
  in grid order;
* :class:`ResultCache` — content-addressed on-disk cache keyed by
  SHA-256 of (exp_id, scale, resolved config dataclasses, version),
  written atomically (tmp file + ``os.replace``) so concurrent runners
  and serve daemons can share one cache directory;
* :class:`SupervisedWorkerPool` — warm workers with heartbeats,
  crash/hang detection, automatic restart and per-task retry/backoff;
  the execution layer under the :mod:`repro.serve` daemon.  The plain
  ``ExperimentRunner`` pool also survives a worker death: the pool is
  rebuilt, the affected points retried once, and only a point that
  keeps killing workers becomes a per-point error report.

Generated-scenario sweeps (:mod:`repro.scenarios`, the ``sweep``
experiment family) add no machinery here: a sweep is just another grid
experiment whose points are A/B comparisons over generated configs, so
planning, cross-experiment dedup, ``--jobs`` fan-out, ``--shards``
partitioning and the content-addressed cache all apply unchanged — the
generator's seed covers which scenarios exist, the config's own seed
covers the simulation (DESIGN.md §11).

Quickstart::

    from repro.runner import ExperimentRunner

    runner = ExperimentRunner(jobs=4)
    summary = runner.run_many(["fig5_bandwidth_3g", "fig7_missrate_3g"],
                              scale="quick")
    for report in summary.reports:
        print(report.exp_id, "cached" if report.cached else "ran")
"""

from .cache import ResultCache, config_digest, default_cache_dir, result_key
from .runner import (
    ExperimentPlan,
    ExperimentRunner,
    RunReport,
    RunSummary,
    assemble_plan,
    plan_experiment,
    task_kind,
)
from .supervised import SupervisedWorkerPool, TaskOutcome

__all__ = [
    "ExperimentRunner",
    "ExperimentPlan",
    "ResultCache",
    "RunReport",
    "RunSummary",
    "SupervisedWorkerPool",
    "TaskOutcome",
    "assemble_plan",
    "config_digest",
    "default_cache_dir",
    "plan_experiment",
    "result_key",
    "task_kind",
]
