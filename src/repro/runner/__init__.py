"""Parallel experiment execution with deterministic result caching.

The evaluation's grid points are embarrassingly parallel and fully
deterministic (seeded DES, process-stable hashing), so this package
scales ``sais-repro run all`` with cores:

* :class:`ExperimentRunner` — fans grid points (and whole experiments)
  out over a process pool, deduplicates shared points, reassembles rows
  in grid order;
* :class:`ResultCache` — content-addressed on-disk cache keyed by
  SHA-256 of (exp_id, scale, resolved config dataclasses, version).

Quickstart::

    from repro.runner import ExperimentRunner

    runner = ExperimentRunner(jobs=4)
    summary = runner.run_many(["fig5_bandwidth_3g", "fig7_missrate_3g"],
                              scale="quick")
    for report in summary.reports:
        print(report.exp_id, "cached" if report.cached else "ran")
"""

from .cache import ResultCache, config_digest, default_cache_dir, result_key
from .runner import ExperimentRunner, RunReport, RunSummary

__all__ = [
    "ExperimentRunner",
    "ResultCache",
    "RunReport",
    "RunSummary",
    "config_digest",
    "default_cache_dir",
    "result_key",
]
