"""A supervised warm worker pool that survives crashed, killed and hung workers.

``concurrent.futures.ProcessPoolExecutor`` treats one dead worker as a
fatal event: every outstanding future collapses into
``BrokenProcessPool`` and the pool is unusable afterwards.  That is the
wrong contract for a long-lived run-control daemon, so this module
provides the supervision layer the ROADMAP's serve daemon needs — and
that ``ExperimentRunner`` reuses to survive a mid-grid worker death:

* **warm workers** — ``workers`` processes are spawned up front, each
  running :func:`repro.runner.pool.pool_worker_main`, and stay resident
  between tasks (no per-task fork/import cost);
* **heartbeats + liveness deadline** — every worker emits ``("hb",)``
  from a side thread each ``heartbeat_interval`` seconds; a worker whose
  last message is older than ``liveness_timeout`` is declared hung,
  SIGKILLed and replaced, so a wedged interpreter cannot stall the pool;
* **crash detection** — a worker whose process exits (SIGKILL, OOM,
  ``os._exit``) is detected via its pipe EOF or ``is_alive()`` and
  replaced immediately;
* **per-task retry with exponential backoff** — a task whose attempt
  dies (worker death) or raises is re-queued after
  ``backoff_base * 2**(attempt-1)`` seconds (jittered, capped at
  ``backoff_cap``) until ``max_attempts`` is exhausted, at which point a
  *failed* :class:`TaskOutcome` is returned — the supervisor itself
  never raises for a task failure;
* **in-process fallback** — ``transport="inproc"`` (or an environment
  where processes cannot be spawned, mirroring
  :mod:`repro.shard.transport`) runs every task inline in
  :meth:`SupervisedWorkerPool.poll`; no parallelism, no crash surface,
  identical outcomes — what the 1-CPU CI tier uses.

The pool is deliberately transport-level: it moves ``(key, kind,
exp_id, payload)`` task tuples and returns :class:`TaskOutcome` rows.
Scheduling policy — queues, dedup, TTLs — lives in :mod:`repro.serve`.
"""

from __future__ import annotations

import dataclasses
import multiprocessing as mp
import os
import random
import signal
import time
import typing as t
from collections import deque

from ..errors import SimulationError
from .pool import pool_worker_main, run_task

__all__ = ["SupervisedWorkerPool", "TaskOutcome"]


@dataclasses.dataclass(frozen=True)
class TaskOutcome:
    """Terminal result of one submitted task (success or exhausted retries)."""

    key: str
    row: t.Any = None
    #: Human-readable failure detail; ``None`` means success.
    error: str | None = None
    #: Attempts consumed (1 = first try succeeded).
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclasses.dataclass
class _Task:
    key: str
    kind: str
    exp_id: str
    payload: t.Any
    attempts: int = 0
    not_before: float = 0.0
    last_error: str = ""


class _Worker:
    """One supervised child process and its duplex pipe."""

    __slots__ = ("wid", "proc", "conn", "busy", "last_seen", "task_started")

    def __init__(self, wid: int, ctx: t.Any, heartbeat_interval: float) -> None:
        self.wid = wid
        self.conn, child = ctx.Pipe(duplex=True)
        self.proc = ctx.Process(
            target=pool_worker_main,
            args=(child, heartbeat_interval),
            daemon=True,
        )
        self.proc.start()
        child.close()
        self.busy: _Task | None = None
        self.last_seen = time.monotonic()
        self.task_started = 0.0

    @property
    def pid(self) -> int | None:
        return self.proc.pid

    def kill(self) -> None:
        """Force-terminate the child (SIGKILL; tolerates already-dead)."""
        try:
            if self.proc.pid is not None:
                os.kill(self.proc.pid, signal.SIGKILL)
        except (ProcessLookupError, OSError):
            pass
        self.proc.join(timeout=1.0)

    def close(self) -> None:
        try:
            self.conn.close()
        except OSError:
            pass


class SupervisedWorkerPool:
    """Crash-, kill- and hang-tolerant task execution over warm workers.

    Usage::

        pool = SupervisedWorkerPool(workers=2)
        pool.submit("k1", "point", "fig5_bandwidth_3g", spec)
        for outcome in pool.drain():
            ...  # outcome.ok / outcome.row / outcome.error
        pool.shutdown()

    ``submit`` is idempotent per ``key`` while the task is outstanding —
    the dedup hook the serve daemon's job table relies on.  All methods
    must be called from one owning thread (the daemon's scheduler); the
    pool does its own locking only against its worker processes.
    """

    def __init__(
        self,
        workers: int = 2,
        *,
        transport: str = "mp",
        heartbeat_interval: float = 0.1,
        liveness_timeout: float = 5.0,
        task_timeout: float | None = None,
        max_attempts: int = 3,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        backoff_jitter: float = 0.25,
        rng: random.Random | None = None,
        on_event: t.Callable[[str, dict[str, t.Any]], None] | None = None,
    ) -> None:
        if workers < 1:
            raise SimulationError(f"workers must be >= 1, got {workers}")
        if transport not in ("mp", "inproc"):
            raise SimulationError(f"unknown pool transport {transport!r}")
        if max_attempts < 1:
            raise SimulationError(f"max_attempts must be >= 1, got {max_attempts}")
        self.n_workers = workers
        self.heartbeat_interval = heartbeat_interval
        self.liveness_timeout = liveness_timeout
        self.task_timeout = task_timeout
        self.max_attempts = max_attempts
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.backoff_jitter = backoff_jitter
        self._rng = rng if rng is not None else random.Random(0x5A15)
        self._on_event = on_event
        self._pending: deque[_Task] = deque()
        self._cooling: list[_Task] = []
        self._outstanding: dict[str, _Task] = {}
        self._workers: list[_Worker] = []
        self._next_wid = 0
        self._closed = False
        self.stats: dict[str, int] = {
            "tasks_done": 0,
            "tasks_failed": 0,
            "task_retries": 0,
            "worker_restarts": 0,
            "workers_hung": 0,
        }
        self.transport = transport
        if transport == "mp":
            try:
                self._ctx = mp.get_context()
                self._workers = [self._spawn() for _ in range(workers)]
            except (OSError, ValueError):
                # Restricted environment: no process spawning.  Fall back
                # to inline execution, same contract (no parallelism).
                self._discard_workers()
                self.transport = "inproc"
                self._emit("transport_fallback", {"to": "inproc"})

    # -- lifecycle -----------------------------------------------------

    def _spawn(self) -> _Worker:
        worker = _Worker(self._next_wid, self._ctx, self.heartbeat_interval)
        self._next_wid += 1
        return worker

    def _discard_workers(self) -> None:
        for worker in self._workers:
            worker.kill()
            worker.close()
        self._workers = []

    def shutdown(self, timeout: float = 5.0) -> None:
        """Stop every worker: polite ``stop`` for idle, SIGKILL for busy."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            if worker.busy is None and worker.proc.is_alive():
                try:
                    worker.conn.send(("stop",))
                except (BrokenPipeError, OSError):
                    pass
        deadline = time.monotonic() + timeout
        for worker in self._workers:
            worker.proc.join(timeout=max(0.0, deadline - time.monotonic()))
            if worker.proc.is_alive():
                worker.kill()
            worker.close()
        self._workers = []

    def __enter__(self) -> "SupervisedWorkerPool":
        return self

    def __exit__(self, *exc: t.Any) -> None:
        self.shutdown()

    # -- submission ----------------------------------------------------

    def submit(self, key: str, kind: str, exp_id: str, payload: t.Any) -> bool:
        """Queue one task; returns False if ``key`` is already outstanding."""
        if self._closed:
            raise SimulationError("pool is shut down")
        if key in self._outstanding:
            return False
        task = _Task(key=key, kind=kind, exp_id=exp_id, payload=payload)
        self._outstanding[key] = task
        self._pending.append(task)
        return True

    def outstanding(self) -> int:
        """Tasks not yet resolved into a :class:`TaskOutcome`."""
        return len(self._outstanding)

    def worker_pids(self) -> list[int]:
        """Live worker process ids (empty under ``inproc``)."""
        return [w.pid for w in self._workers if w.pid is not None]

    def busy_pids(self) -> list[int]:
        """Pids of workers currently executing a task."""
        return [
            w.pid
            for w in self._workers
            if w.busy is not None and w.pid is not None
        ]

    # -- supervision loop ----------------------------------------------

    def poll(self, timeout: float = 0.0) -> list[TaskOutcome]:
        """Advance the pool; returns tasks that reached a terminal state.

        Dispatches pending work, drains worker messages, restarts dead or
        hung workers, re-queues failed attempts with backoff and keeps
        doing so until something completes or ``timeout`` elapses.
        """
        deadline = time.monotonic() + timeout
        outcomes: list[TaskOutcome] = []
        while True:
            if self.transport == "inproc":
                outcomes.extend(self._poll_inproc(deadline))
            else:
                outcomes.extend(self._poll_mp(deadline))
            if outcomes or not self._outstanding:
                return outcomes
            if time.monotonic() >= deadline:
                return outcomes

    def drain(self, timeout: float = 60.0) -> list[TaskOutcome]:
        """Poll until every outstanding task resolves (or ``timeout``)."""
        deadline = time.monotonic() + timeout
        outcomes: list[TaskOutcome] = []
        while self._outstanding and time.monotonic() < deadline:
            outcomes.extend(self.poll(timeout=0.2))
        if self._outstanding:
            raise SimulationError(
                f"pool drain timed out with {len(self._outstanding)} task(s) "
                "outstanding"
            )
        return outcomes

    # -- inproc transport ----------------------------------------------

    def _poll_inproc(self, deadline: float) -> list[TaskOutcome]:
        outcomes: list[TaskOutcome] = []
        self._promote_cooled()
        while self._pending:
            task = self._pending.popleft()
            task.attempts += 1
            try:
                row = run_task(task.kind, task.exp_id, task.payload)
            except Exception as exc:  # noqa: BLE001 - retried below
                outcome = self._attempt_failed(task, f"task raised: {exc!r}")
                if outcome is not None:
                    outcomes.append(outcome)
            else:
                outcomes.append(self._done(task, row))
            self._promote_cooled()
        if not outcomes and self._cooling:
            # Everything is backing off; sleep until the earliest retry
            # (bounded by the caller's deadline) instead of spinning.
            wake = min(task.not_before for task in self._cooling)
            time.sleep(max(0.0, min(wake, deadline) - time.monotonic()))
            self._promote_cooled()
        return outcomes

    # -- mp transport --------------------------------------------------

    def _poll_mp(self, deadline: float) -> list[TaskOutcome]:
        outcomes: list[TaskOutcome] = []
        self._promote_cooled()
        self._dispatch()
        conns = {w.conn: w for w in self._workers}
        wait_for = max(0.0, min(deadline - time.monotonic(), 0.05))
        ready: list[t.Any] = []
        if conns:
            try:
                ready = mp.connection.wait(list(conns), timeout=wait_for)
            except OSError:
                ready = []
        else:
            time.sleep(wait_for)
        for conn in ready:
            worker = conns[conn]
            outcomes.extend(self._drain_worker(worker))
        outcomes.extend(self._reap())
        self._promote_cooled()
        self._dispatch()
        return outcomes

    def _dispatch(self) -> None:
        for worker in self._workers:
            if not self._pending:
                return
            if worker.busy is not None or not worker.proc.is_alive():
                continue
            task = self._pending.popleft()
            task.attempts += 1
            try:
                worker.conn.send(
                    ("task", task.key, task.kind, task.exp_id, task.payload)
                )
            except (BrokenPipeError, OSError):
                # Dead worker discovered at dispatch: undo the attempt and
                # let _reap() replace it; the task goes back to the front.
                task.attempts -= 1
                self._pending.appendleft(task)
                continue
            worker.busy = task
            worker.task_started = time.monotonic()

    def _drain_worker(self, worker: _Worker) -> list[TaskOutcome]:
        outcomes: list[TaskOutcome] = []
        while True:
            try:
                if not worker.conn.poll():
                    return outcomes
                message = worker.conn.recv()
            except (EOFError, OSError):
                return outcomes  # death handled by _reap()
            worker.last_seen = time.monotonic()
            tag = message[0]
            if tag == "hb":
                continue
            _, key, payload = message
            task = worker.busy
            if task is None or task.key != key:
                continue  # stale reply from a superseded assignment
            worker.busy = None
            if tag == "done":
                outcomes.append(self._done(task, payload))
            else:
                outcome = self._attempt_failed(task, f"task raised:\n{payload}")
                if outcome is not None:
                    outcomes.append(outcome)

    def _reap(self) -> list[TaskOutcome]:
        """Replace dead/hung workers; fail the attempts they were running."""
        outcomes: list[TaskOutcome] = []
        now = time.monotonic()
        for index, worker in enumerate(self._workers):
            dead_reason: str | None = None
            if not worker.proc.is_alive():
                dead_reason = f"worker pid {worker.pid} died"
            elif now - worker.last_seen > self.liveness_timeout:
                dead_reason = (
                    f"worker pid {worker.pid} missed its liveness deadline "
                    f"({self.liveness_timeout:.2f}s); killed"
                )
                self.stats["workers_hung"] += 1
                worker.kill()
            elif (
                self.task_timeout is not None
                and worker.busy is not None
                and now - worker.task_started > self.task_timeout
            ):
                dead_reason = (
                    f"task exceeded its {self.task_timeout:.2f}s budget on "
                    f"worker pid {worker.pid}; worker killed"
                )
                worker.kill()
            if dead_reason is None:
                continue
            task, worker.busy = worker.busy, None
            worker.close()
            self.stats["worker_restarts"] += 1
            self._emit("worker_restart", {"reason": dead_reason})
            self._workers[index] = self._spawn()
            if task is not None:
                outcome = self._attempt_failed(task, dead_reason)
                if outcome is not None:
                    outcomes.append(outcome)
        return outcomes

    # -- attempt accounting --------------------------------------------

    def _done(self, task: _Task, row: t.Any) -> TaskOutcome:
        self._outstanding.pop(task.key, None)
        self.stats["tasks_done"] += 1
        return TaskOutcome(key=task.key, row=row, attempts=task.attempts)

    def _attempt_failed(self, task: _Task, detail: str) -> TaskOutcome | None:
        """Retry with backoff, or produce a terminal failed outcome."""
        task.last_error = detail
        if task.attempts >= self.max_attempts:
            self._outstanding.pop(task.key, None)
            self.stats["tasks_failed"] += 1
            self._emit("task_failed", {"key": task.key, "attempts": task.attempts})
            return TaskOutcome(
                key=task.key,
                error=(
                    f"failed after {task.attempts} attempt(s); last error: "
                    f"{detail}"
                ),
                attempts=task.attempts,
            )
        delay = min(
            self.backoff_cap, self.backoff_base * (2 ** (task.attempts - 1))
        )
        delay *= 1.0 + self.backoff_jitter * self._rng.random()
        task.not_before = time.monotonic() + delay
        self._cooling.append(task)
        self.stats["task_retries"] += 1
        self._emit(
            "task_retry",
            {"key": task.key, "attempt": task.attempts, "delay": delay},
        )
        return None

    def _promote_cooled(self) -> None:
        if not self._cooling:
            return
        now = time.monotonic()
        still_cooling = []
        for task in self._cooling:
            if task.not_before <= now:
                self._pending.append(task)
            else:
                still_cooling.append(task)
        self._cooling = still_cooling

    def _emit(self, name: str, detail: dict[str, t.Any]) -> None:
        if self._on_event is not None:
            self._on_event(name, detail)
