"""Pickleable work units for the process-pool experiment runner.

Workers receive ``(exp_id, spec)`` pairs, re-import the experiment
registry (module import re-registers every experiment) and execute the
named experiment's ``run_point`` on the spec.  Only specs and row
results cross the process boundary — both are plain frozen dataclasses —
so the same code path works under ``fork`` and ``spawn`` start methods.
"""

from __future__ import annotations

import typing as t

__all__ = ["run_point_task", "run_monolithic_task"]


def run_point_task(exp_id: str, spec: t.Any) -> t.Any:
    """Execute one grid point of ``exp_id`` (worker-side entry point)."""
    # Imported lazily so a freshly spawned worker registers the
    # experiment modules before the lookup.
    from ..experiments.base import get_grid_experiment
    import repro.experiments  # noqa: F401  (registration side effects)

    return get_grid_experiment(exp_id).run_point(spec)


def run_monolithic_task(exp_id: str, scale: str) -> t.Any:
    """Run a whole non-decomposed experiment in a worker."""
    from repro.experiments import run_experiment_by_id

    return run_experiment_by_id(exp_id, scale=scale).to_dict()
