"""Pickleable work units and the worker shim for the supervised pool.

Workers receive ``("task", key, kind, exp_id, payload)`` messages,
re-import the experiment registry (module import re-registers every
experiment) and execute the named experiment's ``run_point`` on the
spec.  Only specs and row results cross the process boundary — both are
plain frozen dataclasses — so the same code path works under ``fork``
and ``spawn`` start methods.

:func:`pool_worker_main` is the long-lived worker loop used by
:class:`~repro.runner.supervised.SupervisedWorkerPool`: it answers task
messages until told to stop, and a side thread emits heartbeats so the
supervisor can tell a busy worker from a dead one.
"""

from __future__ import annotations

import threading
import traceback
import typing as t

__all__ = [
    "run_point_task",
    "run_monolithic_task",
    "run_call_task",
    "run_task",
    "pool_worker_main",
]


def run_point_task(exp_id: str, spec: t.Any) -> t.Any:
    """Execute one grid point of ``exp_id`` (worker-side entry point)."""
    # Imported lazily so a freshly spawned worker registers the
    # experiment modules before the lookup.
    from ..experiments.base import get_grid_experiment
    import repro.experiments  # noqa: F401  (registration side effects)

    return get_grid_experiment(exp_id).run_point(spec)


def run_monolithic_task(exp_id: str, scale: str) -> t.Any:
    """Run a whole non-decomposed experiment in a worker."""
    from repro.experiments import run_experiment_by_id

    return run_experiment_by_id(exp_id, scale=scale).to_dict()


def run_call_task(payload: t.Any) -> t.Any:
    """Call an importable ``(module, function, args)`` triple.

    The generic escape hatch: the chaos test tier uses it to run fault
    functions (self-SIGKILL, SIGSTOP, deterministic raisers) inside a
    supervised worker without registering fake experiments.
    """
    import importlib

    module_name, func_name, args = payload
    func = getattr(importlib.import_module(module_name), func_name)
    return func(*args)


def run_task(kind: str, exp_id: str, payload: t.Any) -> t.Any:
    """Dispatch one task by kind: ``"point"``, ``"mono"`` or ``"call"``."""
    if kind == "mono":
        return run_monolithic_task(exp_id, payload)
    if kind == "call":
        return run_call_task(payload)
    return run_point_task(exp_id, payload)


def pool_worker_main(conn: t.Any, heartbeat_interval: float) -> None:
    """Worker loop: serve ``task`` messages over ``conn`` until ``stop``.

    Protocol (worker side):

    * receives ``("task", key, kind, exp_id, payload)`` or ``("stop",)``;
    * sends ``("done", key, row)`` / ``("error", key, traceback_text)``;
    * a daemon thread sends ``("hb",)`` every ``heartbeat_interval``
      seconds, so the supervisor's liveness deadline can distinguish a
      long-running task from a SIGKILLed or wedged interpreter.

    ``Connection.send`` is not thread-safe, so the heartbeat thread and
    the task loop share one lock.
    """
    send_lock = threading.Lock()
    stop_beating = threading.Event()

    def beat() -> None:
        while not stop_beating.wait(heartbeat_interval):
            try:
                with send_lock:
                    conn.send(("hb",))
            except (BrokenPipeError, OSError):
                return

    heartbeat = threading.Thread(target=beat, daemon=True)
    heartbeat.start()
    try:
        while True:
            message = conn.recv()
            if message[0] == "stop":
                break
            _, key, kind, exp_id, payload = message
            try:
                row = run_task(kind, exp_id, payload)
            except BaseException as exc:  # noqa: BLE001 - forwarded upstream
                detail = f"{exc!r}\n{traceback.format_exc()}"
                with send_lock:
                    conn.send(("error", key, detail))
            else:
                with send_lock:
                    conn.send(("done", key, row))
    except EOFError:  # supervisor died; nothing to report to
        pass
    finally:
        stop_beating.set()
        conn.close()
