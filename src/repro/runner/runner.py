"""The parallel experiment runner.

``ExperimentRunner`` fans experiment grid points out over a
``concurrent.futures.ProcessPoolExecutor`` (``jobs`` workers), reuses a
content-addressed on-disk :class:`~repro.runner.cache.ResultCache`, and
reassembles rows in deterministic grid order — so ``--jobs 4`` output is
byte-identical to ``--jobs 1`` (asserted by
``tests/experiments/test_determinism.py``).

Work units are deduplicated by :meth:`GridExperiment.keys` before
submission: the six Fig. 5-11 experiments share one underlying sweep, so
``run all`` executes each shared cell once per invocation no matter how
many experiments consume it.
"""

from __future__ import annotations

import dataclasses
import typing as t

from ..errors import ConfigError
from ..experiments.base import (
    ExperimentResult,
    get_experiment,
    get_grid_experiment,
    has_grid_experiment,
    resolve_scale,
)
from .cache import ResultCache, canonical_payload, result_key
from .pool import run_monolithic_task, run_point_task

__all__ = [
    "ExperimentRunner",
    "ExperimentPlan",
    "RunReport",
    "RunSummary",
    "plan_experiment",
    "assemble_plan",
    "task_kind",
]

ProgressFn = t.Callable[[str], None]


@dataclasses.dataclass(frozen=True)
class RunReport:
    """Provenance of one experiment's result within a runner invocation."""

    exp_id: str
    result: ExperimentResult | None
    #: Served from the on-disk cache without running anything.
    cached: bool
    #: Grid points this experiment consumed (0 for monolithic runs).
    n_points: int
    #: Points this experiment was first to schedule (the rest were shared
    #: with earlier experiments in the same invocation).
    n_scheduled: int
    #: Why ``result`` is None: a per-point failure that survived the
    #: pool-rebuild retry (the rest of the invocation still completed).
    error: str | None = None


@dataclasses.dataclass(frozen=True)
class RunSummary:
    """Everything one ``run_many`` call did."""

    scale: str
    jobs: int
    reports: tuple[RunReport, ...]
    #: Unique simulation tasks actually executed (0 = fully cached).
    executed_tasks: int

    @property
    def results(self) -> list[ExperimentResult]:
        """Successful results (failed reports carry ``error`` instead)."""
        return [
            report.result
            for report in self.reports
            if report.result is not None
        ]

    @property
    def failed(self) -> list[RunReport]:
        return [report for report in self.reports if report.error is not None]


@dataclasses.dataclass(frozen=True)
class ExperimentPlan:
    """One experiment's share of the work: keys into the task table."""

    exp_id: str
    key: str
    specs: tuple[t.Any, ...] | None  # None = monolithic
    point_keys: tuple[str, ...]
    n_scheduled: int


@dataclasses.dataclass(frozen=True)
class _PointFailure:
    """Sentinel row for a grid point that kept killing its workers."""

    detail: str


def task_kind(key: str) -> str:
    """The :func:`repro.runner.pool.run_task` kind for a task-table key."""
    return "mono" if key.startswith("mono:") else "point"


def plan_experiment(
    exp_id: str,
    scale: str,
    tasks: dict[str, tuple[str, t.Any]],
) -> ExperimentPlan:
    """Decompose one experiment into the shared task table.

    ``tasks`` maps task keys to ``(exp_id, spec-or-scale)`` pairs and is
    *mutated*: keys this experiment is first to need are inserted, keys
    an earlier plan already scheduled are shared.  Used by both
    :class:`ExperimentRunner` and the :mod:`repro.serve` daemon (whose
    dedup layer is exactly this planning plus the result cache).
    """
    if not has_grid_experiment(exp_id):
        key = result_key(exp_id, scale, None)
        mono_key = f"mono:{exp_id}:{scale}"
        scheduled = mono_key not in tasks
        tasks.setdefault(mono_key, (exp_id, scale))
        return ExperimentPlan(
            exp_id=exp_id,
            key=key,
            specs=None,
            point_keys=(mono_key,),
            n_scheduled=int(scheduled),
        )
    experiment = get_grid_experiment(exp_id)
    specs = tuple(experiment.grid(scale))
    point_keys = tuple(experiment.keys(specs))
    key = result_key(exp_id, scale, canonical_payload(list(specs)))
    scheduled = 0
    for point_key, spec in zip(point_keys, specs):
        if point_key not in tasks:
            tasks[point_key] = (exp_id, spec)
            scheduled += 1
    return ExperimentPlan(
        exp_id=exp_id,
        key=key,
        specs=specs,
        point_keys=point_keys,
        n_scheduled=scheduled,
    )


def assemble_plan(
    plan: ExperimentPlan, scale: str, rows_by_key: dict[str, t.Any]
) -> ExperimentResult:
    """Fold executed task rows back into one ``ExperimentResult``."""
    if plan.specs is None:
        return ExperimentResult.from_dict(rows_by_key[plan.point_keys[0]])
    experiment = get_grid_experiment(plan.exp_id)
    rows = [rows_by_key[key] for key in plan.point_keys]
    return experiment.assemble(scale, plan.specs, rows)


class ExperimentRunner:
    """Run experiments over ``jobs`` workers with optional result cache.

    ``jobs=1`` runs everything in-process (no pool, no pickling); any
    larger value spins up a process pool.  ``use_cache=False`` bypasses
    cache reads *and* writes.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: t.Any = None,
        use_cache: bool = True,
        progress: ProgressFn | None = None,
    ) -> None:
        if jobs < 1:
            raise ConfigError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache: ResultCache | None = (
            ResultCache(cache_dir) if use_cache else None
        )
        self._progress = progress

    # -- public API ----------------------------------------------------

    def run(self, exp_id: str, scale: str = "default") -> ExperimentResult:
        """Run one experiment; cache- and pool-aware."""
        return self.run_many([exp_id], scale=scale).reports[0].result

    def run_many(
        self, exp_ids: t.Sequence[str], scale: str = "default"
    ) -> RunSummary:
        """Run several experiments, sharing and deduplicating their points."""
        scale = resolve_scale(scale)
        cached_results: dict[str, ExperimentResult] = {}
        plans: list[ExperimentPlan] = []
        # Insertion-ordered task table: point key -> (exp_id, spec|scale).
        tasks: dict[str, tuple[str, t.Any]] = {}

        for exp_id in exp_ids:
            get_experiment(exp_id)  # raises ConfigError on unknown ids
            plan = self._plan_experiment(exp_id, scale, tasks)
            plans.append(plan)
            if self.cache is not None:
                hit = self.cache.get(plan.key)
                if hit is not None and hit.exp_id == exp_id:
                    cached_results[exp_id] = hit
                    # Un-schedule points no other pending experiment needs.
                    self._release_points(plan, plans, cached_results, tasks)
            self._emit(
                f"plan {exp_id}: "
                + (
                    "cached"
                    if exp_id in cached_results
                    else f"{len(plan.point_keys) or 1} task(s), "
                    f"{plan.n_scheduled} newly scheduled"
                )
            )

        pending = {
            key: task
            for key, task in tasks.items()
            if self._key_needed(key, plans, cached_results)
        }
        rows_by_key, point_errors = self._execute(pending, scale)

        reports = []
        for plan in plans:
            if plan.exp_id in cached_results:
                reports.append(
                    RunReport(
                        exp_id=plan.exp_id,
                        result=cached_results[plan.exp_id],
                        cached=True,
                        n_points=len(plan.point_keys),
                        n_scheduled=0,
                    )
                )
                continue
            failed = [key for key in plan.point_keys if key in point_errors]
            if failed:
                detail = "; ".join(
                    f"{key[:24]}: {point_errors[key]}" for key in failed
                )
                self._emit(f"failed {plan.exp_id}: {detail}")
                reports.append(
                    RunReport(
                        exp_id=plan.exp_id,
                        result=None,
                        cached=False,
                        n_points=len(plan.point_keys),
                        n_scheduled=plan.n_scheduled,
                        error=(
                            f"{len(failed)} of {len(plan.point_keys)} "
                            f"point(s) failed: {detail}"
                        ),
                    )
                )
                continue
            result = assemble_plan(plan, scale, rows_by_key)
            if self.cache is not None:
                self.cache.put(plan.key, result, scale)
            reports.append(
                RunReport(
                    exp_id=plan.exp_id,
                    result=result,
                    cached=False,
                    n_points=len(plan.point_keys),
                    n_scheduled=plan.n_scheduled,
                )
            )
            self._emit(f"done {plan.exp_id}")
        return RunSummary(
            scale=scale,
            jobs=self.jobs,
            reports=tuple(reports),
            executed_tasks=len(rows_by_key),
        )

    # -- planning ------------------------------------------------------

    def _plan_experiment(
        self,
        exp_id: str,
        scale: str,
        tasks: dict[str, tuple[str, t.Any]],
    ) -> ExperimentPlan:
        return plan_experiment(exp_id, scale, tasks)

    @staticmethod
    def _key_needed(
        key: str,
        plans: t.Sequence[ExperimentPlan],
        cached_results: dict[str, ExperimentResult],
    ) -> bool:
        return any(
            key in plan.point_keys
            for plan in plans
            if plan.exp_id not in cached_results
        )

    def _release_points(
        self,
        plan: ExperimentPlan,
        plans: t.Sequence[ExperimentPlan],
        cached_results: dict[str, ExperimentResult],
        tasks: dict[str, tuple[str, t.Any]],
    ) -> None:
        for key in plan.point_keys:
            if not self._key_needed(key, plans, cached_results):
                tasks.pop(key, None)

    # -- execution -----------------------------------------------------

    def _execute(
        self, tasks: dict[str, tuple[str, t.Any]], scale: str
    ) -> tuple[dict[str, t.Any], dict[str, str]]:
        """Run the task table; returns ``(rows_by_key, errors_by_key)``.

        Errors only ever appear under ``jobs > 1``: a grid point whose
        worker dies (SIGKILL, OOM, ``os._exit``) is retried once on a
        rebuilt pool, and only a point that *keeps* killing workers is
        reported as a per-point error — the rest of the grid completes.
        """
        if not tasks:
            return {}, {}
        if self.jobs == 1:
            return {
                key: self._run_task_inline(key, exp_id, payload)
                for key, (exp_id, payload) in tasks.items()
            }, {}
        return self._execute_pool(tasks)

    def _execute_pool(
        self, tasks: dict[str, tuple[str, t.Any]]
    ) -> tuple[dict[str, t.Any], dict[str, str]]:
        rows: dict[str, t.Any] = {}
        errors: dict[str, str] = {}
        pending = dict(tasks)
        breaks = 0
        while pending:
            completed, broke = self._pool_round(pending)
            rows.update(completed)
            for key in completed:
                pending.pop(key, None)
            if not broke:
                break
            breaks += 1
            self._emit(
                "worker died mid-grid; rebuilding pool "
                f"(retrying {len(pending)} point(s))"
            )
            if breaks >= 2 and pending:
                # The collective retry also lost a worker, so one of the
                # survivors is poisoned.  Isolate each in its own pool:
                # innocents complete, the killer becomes an error row.
                for key in list(pending):
                    exp_id, payload = pending.pop(key)
                    outcome = self._pool_isolated(key, exp_id, payload)
                    if isinstance(outcome, _PointFailure):
                        errors[key] = outcome.detail
                    else:
                        rows[key] = outcome
                break
        return rows, errors

    def _pool_round(
        self, tasks: dict[str, tuple[str, t.Any]]
    ) -> tuple[dict[str, t.Any], bool]:
        """One pool pass; harvests every finished row even if the pool breaks."""
        import concurrent.futures
        from concurrent.futures.process import BrokenProcessPool

        completed: dict[str, t.Any] = {}
        broke = False
        workers = min(self.jobs, len(tasks))
        with concurrent.futures.ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                key: pool.submit(
                    run_monolithic_task if key.startswith("mono:") else run_point_task,
                    exp_id,
                    payload,
                )
                for key, (exp_id, payload) in tasks.items()
            }
            for key, future in futures.items():
                try:
                    completed[key] = future.result()
                except BrokenProcessPool:
                    broke = True
                    continue
                self._emit(
                    f"point {len(completed)}/{len(futures)} [{key[:24]}]"
                )
        return completed, broke

    def _pool_isolated(self, key: str, exp_id: str, payload: t.Any) -> t.Any:
        import concurrent.futures
        from concurrent.futures.process import BrokenProcessPool

        with concurrent.futures.ProcessPoolExecutor(max_workers=1) as pool:
            future = pool.submit(
                run_monolithic_task if key.startswith("mono:") else run_point_task,
                exp_id,
                payload,
            )
            try:
                return future.result()
            except BrokenProcessPool:
                return _PointFailure(
                    f"point killed its worker again in isolation "
                    f"(exp {exp_id})"
                )

    def _run_task_inline(self, key: str, exp_id: str, payload: t.Any) -> t.Any:
        if key.startswith("mono:"):
            return run_monolithic_task(exp_id, payload)
        return get_grid_experiment(exp_id).run_point(payload)

    def _emit(self, message: str) -> None:
        if self._progress is not None:
            self._progress(message)
