"""Coalesced wire fast path: analytic FIFO pipelines for a healthy fabric.

The slow (general) data path charges every segment one full event
round-trip per hop: a wire-``Resource`` grant, a serialization ``Timeout``
and a spawned ``_arrive`` process at the server uplink, the switch
backplane and the client NIC — ~11 calendar events per segment before the
interrupt is even raised.  On a *fault-free* fabric every one of those hops
is a deterministic FIFO server, so its behaviour has a closed form: if
``free`` is the time the hop last drains, a packet arriving at ``a`` with
service time ``s`` departs at::

    depart = max(free, a) + s;  free = depart

This module replays that recurrence in plain arithmetic for the *shared*
hops (switch backplane, client NIC wire).  The sender-side uplink keeps
its real ``Resource`` + serialization ``Timeout``: simultaneous departures
on *different* uplinks are ordered by event-insertion order, and only the
resource machinery reproduces the slow path's insertion points exactly
(an analytic uplink would assign its departure event at *request* time,
the resource path at *grant* time — ties across uplinks would then break
differently, reordering the shared fabric's FIFO).  Per segment the
transport is **three** calendar events instead of ~11:

1. the uplink wire grant (unchanged resource machinery, so per-uplink
   queueing and cross-uplink ties are bit-for-bit the slow path's);
2. the sender's serialization ``Timeout`` to the uplink departure, inside
   which the switch and NIC recurrences advance; and
3. one pooled :meth:`~repro.des.environment.Environment.call_at` callback
   at the NIC wire-completion instant, which runs the NIC's post-wire
   receive half (counters, tracer, ordering tripwire, NAPI, interrupt
   raise) at exactly the time the slow path would have.

Why this is exact (see DESIGN.md for the full argument):

* every user of a fast-path hop goes through the recurrence, and updates
  happen in global uplink-departure order — departures are calendar
  events processed in time order (ties in slow-path insertion order, by
  point 1), and the switch/NIC updates ride inside them, so the shared
  FIFOs serve in exactly the slow path's order;
* the NIC recurrence may be advanced early, at uplink-departure time,
  because switch departures are monotone in update order and the port
  latency is a constant — so NIC *arrival* order equals update order;
* all counters/observers fire at the same simulated instants as before.

The fast path is installed by the cluster builder **only when no fault
plan is active** (no injector, hence no loss, no middlebox, no straggler):
fault machinery needs the per-attempt resource path, which stays exactly
as it was.  ``REPRO_NO_WIRE_FASTPATH=1`` disables the fast path for A/B
equivalence testing (``tests/net/test_wire_fastpath.py``).
"""

from __future__ import annotations

import os
import typing as t

from ..des import Environment

if t.TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cluster.client_node import ClientNode
    from ..hw.nic import Nic
    from ..net.packet import Packet
    from ..net.switch import Switch
    from .links import Link

__all__ = ["WireFastPath", "fast_wire_enabled"]


def fast_wire_enabled() -> bool:
    """False when ``REPRO_NO_WIRE_FASTPATH`` is set (A/B testing knob)."""
    return not os.environ.get("REPRO_NO_WIRE_FASTPATH")


class WireFastPath:
    """Analytic uplink -> switch -> NIC pipeline for one cluster."""

    def __init__(
        self,
        env: Environment,
        switch: "Switch",
        clients: "t.Sequence[ClientNode]",
        spans: t.Any | None = None,
    ) -> None:
        self.env = env
        self.switch = switch
        self._nics: list["Nic"] = [client.nic for client in clients]
        #: Span recorder (repro.obs); None when tracing is off.  The NIC
        #: wire span is recorded by ``complete_rx`` (identically on both
        #: paths); only the fabric hop needs recording here, because the
        #: analytic :meth:`Switch.relay` never sees packet identity.
        self.spans = spans

    def _record_fabric_span(
        self, client: int, strip_id: int, segment: int, size: int, departure: float
    ) -> None:
        switch = self.switch
        self.spans.add(
            "switch",
            "net",
            switch.obs_track,
            start=departure - size / switch.backplane_bandwidth,
            end=departure,
            parent=self.spans.strip_span(client, strip_id),
            args={"strip": strip_id, "segment": segment},
        )

    def transmit_to_client(
        self, link: "Link", packet: "Packet"
    ) -> t.Generator:
        """Send one data/ack packet server->client; blocks the caller for
        uplink queueing + serialization, exactly like ``Link.transmit``."""
        env = self.env
        with link._wire.request() as req:
            yield req
            yield env.timeout(link.serialization_time(packet.size))
        # now == uplink departure: charge the link counters at the same
        # instant the resource-based path does.
        link.bytes_sent.add(packet.size)
        link.packets_sent.add()
        switch = self.switch
        fabric_departure = switch.relay(packet.size)
        if self.spans is not None:
            self._record_fabric_span(
                packet.dst_client,
                packet.strip_id,
                packet.segment,
                packet.size,
                fabric_departure,
            )
        nic = self._nics[packet.dst_client]
        done = nic.admit(packet.size, fabric_departure + switch.latency)
        env.call_at(done, nic.complete_rx, packet)

    def transmit_to_server(
        self,
        link: "Link",
        size: int,
        arrival: t.Callable[[], t.Generator],
        request: t.Any | None = None,
    ) -> t.Generator:
        """Send one write strip client->server; ``arrival()`` builds the
        server-side generator (``serve_write``), spawned at the instant
        the strip clears the switch port.  ``request`` (the originating
        :class:`~repro.pfs.request.StripRequest`) is only consulted for
        span attribution."""
        env = self.env
        with link._wire.request() as req:
            yield req
            yield env.timeout(link.serialization_time(size))
        link.bytes_sent.add(size)
        link.packets_sent.add()
        switch = self.switch
        fabric_departure = switch.relay(size)
        if self.spans is not None and request is not None:
            self._record_fabric_span(
                request.client,
                request.strip_id,
                0,
                size,
                fabric_departure,
            )
        env.process(
            arrival(),
            quiet=True,
            start_delay=(fabric_departure + switch.latency) - env.now,
        )
