"""Coalesced wire fast path: analytic FIFO pipelines for a healthy fabric.

The slow (general) data path charges every segment one full event
round-trip per hop: a wire-``Resource`` grant, a serialization ``Timeout``
and a spawned ``_arrive`` process at the server uplink, the switch
backplane and the client NIC — ~11 calendar events per segment before the
interrupt is even raised.  On a *fault-free* fabric every one of those hops
is a deterministic FIFO server, so its behaviour has a closed form: if
``free`` is the time the hop last drains, a packet arriving at ``a`` with
service time ``s`` departs at::

    depart = max(free, a) + s;  free = depart

This module replays that recurrence in plain arithmetic for the *shared*
hops (switch backplane, client NIC wire).  The sender-side uplink keeps
its real ``Resource`` + serialization ``Timeout``: simultaneous departures
on *different* uplinks are ordered by event-insertion order, and only the
resource machinery reproduces the slow path's insertion points exactly
(an analytic uplink would assign its departure event at *request* time,
the resource path at *grant* time — ties across uplinks would then break
differently, reordering the shared fabric's FIFO).  Per segment the
transport is **three** calendar events instead of ~11:

1. the uplink wire grant (unchanged resource machinery, so per-uplink
   queueing and cross-uplink ties are bit-for-bit the slow path's);
2. the sender's serialization ``Timeout`` to the uplink departure, inside
   which the switch and NIC recurrences advance; and
3. one pooled :meth:`~repro.des.environment.Environment.call_at` callback
   at the NIC wire-completion instant, which runs the NIC's post-wire
   receive half (counters, tracer, ordering tripwire, NAPI, interrupt
   raise) at exactly the time the slow path would have.

Why this is exact (see DESIGN.md for the full argument):

* every user of a fast-path hop goes through the recurrence, and updates
  happen in global uplink-departure order — departures are calendar
  events processed in time order (ties in slow-path insertion order, by
  point 1), and the switch/NIC updates ride inside them, so the shared
  FIFOs serve in exactly the slow path's order;
* the NIC recurrence may be advanced early, at uplink-departure time,
  because switch departures are monotone in update order and the port
  latency is a constant — so NIC *arrival* order equals update order;
* all counters/observers fire at the same simulated instants as before.

The fast path is installed by the cluster builder **only when no fault
plan is active** (no injector, hence no loss, no middlebox, no straggler):
fault machinery needs the per-attempt resource path, which stays exactly
as it was.  ``REPRO_NO_WIRE_FASTPATH=1`` disables the fast path for A/B
equivalence testing (``tests/net/test_wire_fastpath.py``).
"""

from __future__ import annotations

import os
import typing as t

from ..des import Environment

if t.TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cluster.client_node import ClientNode
    from ..hw.nic import Nic
    from ..net.packet import Packet
    from ..net.switch import Switch
    from .links import Link

__all__ = ["WireFastPath", "ShardWirePort", "fast_wire_enabled"]


def fast_wire_enabled() -> bool:
    """False when ``REPRO_NO_WIRE_FASTPATH`` is set (A/B testing knob)."""
    return not os.environ.get("REPRO_NO_WIRE_FASTPATH")


def serialize_out(env: Environment, link: "Link", nbytes: int) -> t.Generator:
    """The sender-side uplink half shared by every fast-path transmit:
    wire-resource grant, serialization timeout, counters at departure.

    Factored out so the sharded runtime's boundary port replays *exactly*
    the event sequence of the single-calendar fast path — same resource
    machinery, same timeout, same counter instants — before handing the
    packet across the shard boundary instead of into the switch.

    Returns the wire-*grant* instant.  Two departures on different
    uplinks can tie at the same float; the single calendar orders the tie
    by the serialization timeouts' event ids, which were assigned at
    grant time — so the grant instant is the cross-shard stand-in for
    that event-id order (see ``repro.shard.fabric.WireMerge``).
    """
    with link._wire.request() as req:
        yield req
        grant = env.now
        yield env.timeout(link.serialization_time(nbytes))
    link.bytes_sent.add(nbytes)
    link.packets_sent.add()
    return grant


class WireFastPath:
    """Analytic uplink -> switch -> NIC pipeline for one cluster."""

    def __init__(
        self,
        env: Environment,
        switch: "Switch",
        clients: "t.Sequence[ClientNode]",
        spans: t.Any | None = None,
    ) -> None:
        self.env = env
        self.switch = switch
        self._nics: list["Nic"] = [client.nic for client in clients]
        #: Span recorder (repro.obs); None when tracing is off.  The NIC
        #: wire span is recorded by ``complete_rx`` (identically on both
        #: paths); only the fabric hop needs recording here, because the
        #: analytic :meth:`Switch.relay` never sees packet identity.
        self.spans = spans

    def _record_fabric_span(
        self, client: int, strip_id: int, segment: int, size: int, departure: float
    ) -> None:
        switch = self.switch
        self.spans.add(
            "switch",
            "net",
            switch.obs_track,
            start=departure - size / switch.backplane_bandwidth,
            end=departure,
            parent=self.spans.strip_span(client, strip_id),
            args={"strip": strip_id, "segment": segment},
        )

    def transmit_to_client(
        self, link: "Link", packet: "Packet"
    ) -> t.Generator:
        """Send one data/ack packet server->client; blocks the caller for
        uplink queueing + serialization, exactly like ``Link.transmit``."""
        env = self.env
        # After the shared uplink half, now == uplink departure: the link
        # counters were charged at the same instant the resource-based
        # path charges them.
        yield from serialize_out(env, link, packet.size)
        switch = self.switch
        fabric_departure = switch.relay(packet.size)
        if self.spans is not None:
            self._record_fabric_span(
                packet.dst_client,
                packet.strip_id,
                packet.segment,
                packet.size,
                fabric_departure,
            )
        nic = self._nics[packet.dst_client]
        done = nic.admit(packet.size, fabric_departure + switch.latency)
        env.call_at(done, nic.complete_rx, packet)

    def transmit_to_server(
        self,
        link: "Link",
        size: int,
        arrival: t.Callable[[], t.Generator],
        request: t.Any | None = None,
    ) -> t.Generator:
        """Send one write strip client->server; ``arrival()`` builds the
        server-side generator (``serve_write``), spawned at the instant
        the strip clears the switch port.  ``request`` (the originating
        :class:`~repro.pfs.request.StripRequest`) is only consulted for
        span attribution."""
        env = self.env
        yield from serialize_out(env, link, size)
        switch = self.switch
        fabric_departure = switch.relay(size)
        if self.spans is not None and request is not None:
            self._record_fabric_span(
                request.client,
                request.strip_id,
                0,
                size,
                fabric_departure,
            )
        env.process(
            arrival(),
            quiet=True,
            start_delay=(fabric_departure + switch.latency) - env.now,
        )


class ShardWirePort:
    """The shard-side stand-in for :class:`WireFastPath`.

    Inside a shard (see :mod:`repro.shard`) the switch is not local: it is
    the shard *boundary*, owned by the coordinator.  This port replays the
    sender-side uplink half of each wire path bit-for-bit (via
    :func:`serialize_out`) and then, where the single-calendar fast path
    would advance the switch recurrence, appends a handoff record
    ``(kind, departure, grant, payload)`` to the shard's outbox instead.  The
    coordinator replays the switch recurrence over all shards' handoffs in
    global departure order at the next conservative barrier.

    Both wire paths cross here: ``transmit_to_client`` carries read data
    and write acks out of a server shard; ``transmit_to_server`` carries
    write strips out of a client shard.
    """

    #: Outbox record kinds.
    WIRE = "wire"  # server -> fabric: data/ack packet
    WRITE = "write"  # client -> fabric: write strip (StripRequest rides along)

    def __init__(self, env: Environment) -> None:
        self.env = env
        #: Handoffs generated since the last barrier; the shard runtime
        #: drains this after every window.  Departures from *different*
        #: calendars that tie at the same (departure, grant) instant are
        #: merged by the coordinator using the rank each record carries —
        #: see :meth:`transmit_to_client` and
        #: :class:`repro.shard.fabric.WireMerge`.
        self.outbox: list[tuple] = []
        #: Chain origin keys (the coordinator's delivery sort key),
        #: registered by the server-shard runtime when it inserts each
        #: ``serve``/``serve_write`` delivery, keyed by
        #: ``(client, request id, strip id)``.
        self.chain_roots: dict[tuple, tuple] = {}
        #: Per-uplink busy-period root, keyed by sending server index.
        self._link_roots: dict[int, tuple] = {}
        #: Per-uplink identity + departure instant of the last packet
        #: sent, keyed by sending server index — used to recognize
        #: back-to-back segment streaming (see :meth:`transmit_to_client`).
        self._last_sent: dict[int, tuple] = {}

    def transmit_to_client(self, link: "Link", packet: "Packet") -> t.Generator:
        """Server-shard half of the server->client wire path.

        Each record carries a *rank* describing where its departure
        event's id was assigned, which is what breaks same-instant
        (departure, grant) ties across calendars:

        ``("r", root)`` — this packet's id was assigned during its own
        chain's dispatch (the uplink was idle and nothing ties the send
        to an earlier departure); ``root`` is that chain's origin
        delivery key (the coordinator's delivery sort key).

        ``("d", server, root)`` — the id was assigned during the
        dispatch of the *previous departure* on this uplink, either
        because the wire was busy (the grant fires inside the previous
        holder's release) or because the sender streams segments
        back-to-back: the transmit for segment ``k`` runs inside the
        dispatch cascade of segment ``k - 1``'s serialization timeout,
        so even an idle-wire re-request assigns its id there.  The
        coordinator resolves the rank to that previous departure's
        global relay position (:class:`~repro.shard.fabric.WireMerge`).
        ``root`` is the current busy period's origin, kept as the
        cross-class fallback.
        """
        env = self.env
        server = packet.src_server
        wire = link._wire
        if not wire.users and not wire._waiting:  # idle uplink
            prev = self._last_sent.get(server)
            if (
                prev is not None
                and prev[0] == packet.dst_client
                and prev[1] == packet.request_id
                and prev[2] == packet.strip_id
                and prev[3] == packet.segment - 1
                and prev[4] == env.now
            ):
                # Back-to-back streaming: still inside the previous
                # departure's cascade, so the busy period continues.
                rank = ("d", server, self._link_roots[server])
            else:
                root = self.chain_roots[
                    (packet.dst_client, packet.request_id, packet.strip_id)
                ]
                self._link_roots[server] = root
                rank = ("r", root)
        else:
            rank = ("d", server, self._link_roots[server])
        grant = yield from serialize_out(env, link, packet.size)
        self._last_sent[server] = (
            packet.dst_client,
            packet.request_id,
            packet.strip_id,
            packet.segment,
            env.now,
        )
        self.outbox.append((self.WIRE, env.now, grant, packet, rank))

    def transmit_to_server(
        self, link: "Link", size: int, request: t.Any
    ) -> t.Generator:
        """Client-shard half of the client->server (write) wire path.

        Unlike :meth:`WireFastPath.transmit_to_server` there is no
        ``arrival`` callable — the destination server lives in another
        shard, so the request itself crosses the boundary and the
        coordinator spawns ``serve_write`` there at the exact instant the
        single-calendar run would have.
        """
        env = self.env
        grant = yield from serialize_out(env, link, size)
        self.outbox.append((self.WRITE, env.now, grant, request))
