"""Point-to-point links with serialization and pipelined propagation.

A :class:`Link` charges the sender for queueing + serialization time (the
wire is a unit-capacity resource) and then delivers asynchronously after the
propagation latency — so back-to-back packets pipeline, as on real Ethernet.
"""

from __future__ import annotations

import typing as t

from ..des import Environment, Resource
from ..des.monitor import Counter
from .packet import Packet

__all__ = ["Link"]


class Link:
    """One direction of a network link."""

    def __init__(
        self,
        env: Environment,
        bandwidth: float,
        latency: float = 0.0,
        framing_overhead: float = 0.0,
        name: str = "link",
    ) -> None:
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        if latency < 0:
            raise ValueError(f"latency must be non-negative, got {latency}")
        self.env = env
        self.bandwidth = bandwidth
        self.latency = latency
        self.framing_overhead = framing_overhead
        self.name = name
        self._wire = Resource(env, capacity=1)
        self.bytes_sent = Counter(f"{name}_bytes")
        self.packets_sent = Counter(f"{name}_packets")

    def serialization_time(self, nbytes: int) -> float:
        """Wire time for ``nbytes`` of payload including framing."""
        return nbytes * (1.0 + self.framing_overhead) / self.bandwidth

    def transmit(
        self,
        packet: Packet,
        deliver: t.Callable[[Packet], t.Any],
    ) -> t.Generator:
        """Send ``packet``; the caller blocks for queueing + serialization.

        ``deliver`` is invoked (not awaited) once the packet lands after
        the propagation latency; if it returns a generator it is spawned as
        a new process, so delivery chains (e.g. into the next hop) compose.
        """
        with self._wire.request() as req:
            yield req
            yield self.env.timeout(self.serialization_time(packet.size))
        self.bytes_sent.add(packet.size)
        self.packets_sent.add()

        def _arrive() -> t.Generator:
            if self.latency > 0:
                yield self.env.timeout(self.latency)
            result = deliver(packet)
            if result is not None and hasattr(result, "send"):
                yield from result

        self.env.process(_arrive())

    @property
    def busy_time(self) -> float:
        """Total serialization seconds carried so far."""
        return (
            self.bytes_sent.value * (1.0 + self.framing_overhead) / self.bandwidth
        )
