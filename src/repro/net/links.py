"""Point-to-point links with serialization and pipelined propagation.

A :class:`Link` charges the sender for queueing + serialization time (the
wire is a unit-capacity resource) and then delivers asynchronously after the
propagation latency — so back-to-back packets pipeline, as on real Ethernet.
"""

from __future__ import annotations

import typing as t

from ..des import Environment, Resource
from ..des.monitor import Counter
from .packet import Packet

if t.TYPE_CHECKING:  # pragma: no cover - typing only
    from ..faults.injector import LinkFaults

__all__ = ["Link"]


class Link:
    """One direction of a network link."""

    def __init__(
        self,
        env: Environment,
        bandwidth: float,
        latency: float = 0.0,
        framing_overhead: float = 0.0,
        name: str = "link",
        faults: "LinkFaults | None" = None,
    ) -> None:
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        if latency < 0:
            raise ValueError(f"latency must be non-negative, got {latency}")
        self.env = env
        self.bandwidth = bandwidth
        self.latency = latency
        self.framing_overhead = framing_overhead
        self.name = name
        #: Loss injection + backoff schedule; None on a fault-free link.
        self.faults = faults
        self._wire = Resource(env, capacity=1)
        self.bytes_sent = Counter(f"{name}_bytes")
        self.packets_sent = Counter(f"{name}_packets")
        #: Transmission attempts repeated after an injected loss.
        self.retransmits = Counter(f"{name}_retransmits")

    def serialization_time(self, nbytes: int) -> float:
        """Wire time for ``nbytes`` of payload including framing."""
        return nbytes * (1.0 + self.framing_overhead) / self.bandwidth

    def transmit(
        self,
        packet: Packet,
        deliver: t.Callable[[Packet], t.Any],
    ) -> t.Generator:
        """Send ``packet``; the caller blocks for queueing + serialization.

        ``deliver`` is invoked (not awaited) once the packet lands after
        the propagation latency; if it returns a generator it is spawned as
        a new process, so delivery chains (e.g. into the next hop) compose.

        With :attr:`faults` installed, a transmission attempt may be lost:
        the sender still paid the wire time (the bytes really crossed the
        link — that is what goodput-vs-raw-bandwidth measures), then waits
        out an exponentially backed-off retransmission timeout and sends
        again.  The caller stays blocked until an attempt gets through, so
        per-strip segment order is preserved under pure loss.
        """
        attempt = 0
        while True:
            with self._wire.request() as req:
                yield req
                yield self.env.timeout(self.serialization_time(packet.size))
            self.bytes_sent.add(packet.size)
            self.packets_sent.add()
            if self.faults is None or not self.faults.should_drop(
                packet, attempt
            ):
                break
            attempt += 1
            self.retransmits.add()
            yield self.env.timeout(self.faults.retransmit_delay(attempt))

        def _arrive() -> t.Generator:
            if self.latency > 0:
                yield self.env.timeout(self.latency)
            result = deliver(packet)
            if result is not None and hasattr(result, "send"):
                yield from result

        self.env.process(_arrive(), quiet=True)

    @property
    def busy_time(self) -> float:
        """Total serialization seconds carried so far."""
        return (
            self.bytes_sent.value * (1.0 + self.framing_overhead) / self.bandwidth
        )
