"""The cluster switch: a shared backplane between server and client links.

The paper's Catalyst 4948 is effectively non-blocking at this port count,
but modeling the backplane explicitly lets the ablation benches create an
oversubscribed fabric and watch the SAIs advantage shrink as the network
becomes the bottleneck (Sec. III's ``TR`` term).
"""

from __future__ import annotations

import typing as t

from ..des import Environment, Resource
from ..des.monitor import Counter
from .packet import Packet

__all__ = ["Switch"]


class Switch:
    """Store-and-forward fabric with a finite backplane bandwidth."""

    def __init__(
        self,
        env: Environment,
        backplane_bandwidth: float,
        latency: float = 0.0,
        middlebox: t.Callable[[Packet], tuple[Packet, float]] | None = None,
        spans: t.Any | None = None,
        obs_track: t.Any | None = None,
    ) -> None:
        if backplane_bandwidth <= 0:
            raise ValueError(
                f"backplane_bandwidth must be positive, got {backplane_bandwidth}"
            )
        self.env = env
        self.backplane_bandwidth = backplane_bandwidth
        self.latency = latency
        #: In-network hazard hook (``FaultInjector.middlebox``): may
        #: replace the packet (options stripped/corrupted) and return an
        #: extra delivery delay (reordering).  None on a healthy fabric.
        self.middlebox = middlebox
        self._fabric = Resource(env, capacity=1)
        #: Analytic next-free time of the backplane (fast path only; see
        #: :mod:`repro.net.fastpath`).
        self._fabric_free = 0.0
        #: Span recorder + the fabric's backplane lane (repro.obs); None
        #: when tracing is off.  The fast path records its own spans
        #: (:meth:`relay` has no packet identity).
        self.spans = spans
        self.obs_track = obs_track
        self.bytes_switched = Counter("switch_bytes")
        self.packets_switched = Counter("switch_packets")

    def relay(self, nbytes: int) -> float:
        """Carry ``nbytes`` across the backplane analytically.

        Closed form of :meth:`forward`'s resource + timeout: arriving now,
        the packet queues behind the backplane's drain time, serializes,
        and departs at the returned instant.  Counters are charged here —
        the per-packet totals match :meth:`forward` at end of run (only
        the charge *instant* differs; nothing samples them mid-run).
        Fast-path use only, and only on a healthy fabric (no middlebox).
        """
        start = self._fabric_free
        now = self.env.now
        if start < now:
            start = now
        departure = start + nbytes / self.backplane_bandwidth
        self._fabric_free = departure
        self.bytes_switched.add(nbytes)
        self.packets_switched.add()
        return departure

    def forward(
        self,
        packet: Packet,
        deliver: t.Callable[[Packet], t.Any],
    ) -> t.Generator:
        """Carry ``packet`` across the backplane, then hand it to ``deliver``.

        The caller blocks for backplane occupancy; delivery (plus the port
        latency) is spawned asynchronously so flows pipeline through.
        """
        with self._fabric.request() as req:
            yield req
            granted = self.env.now
            yield self.env.timeout(packet.size / self.backplane_bandwidth)
        self.bytes_switched.add(packet.size)
        self.packets_switched.add()
        if self.spans is not None:
            # (grant, departure) equals the analytic path's
            # (max(free, arrival), + service) by the fastpath-equivalence
            # argument, so both wire paths export the same fabric span.
            self.spans.add(
                "switch",
                "net",
                self.obs_track,
                start=granted,
                end=self.env.now,
                parent=self.spans.strip_span(
                    packet.dst_client, packet.strip_id
                ),
                args={"strip": packet.strip_id, "segment": packet.segment},
            )
        extra_delay = 0.0
        if self.middlebox is not None:
            packet, extra_delay = self.middlebox(packet)

        def _arrive() -> t.Generator:
            delay = self.latency + extra_delay
            if delay > 0:
                yield self.env.timeout(delay)
            result = deliver(packet)
            if result is not None and hasattr(result, "send"):
                yield from result

        self.env.process(_arrive(), quiet=True)
