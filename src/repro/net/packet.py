"""Network packets carrying PVFS strip data back to the client.

A :class:`Packet` models one coalesced train of MTU frames carrying a whole
strip (or a segment of one, when TCP segmentation is enabled).  The fields
the interrupt path cares about are ``options`` (the raw IP options bytes the
``HintCapsuler`` stamped on the server) and the flow identifiers used to
reassemble the strip into its request.
"""

from __future__ import annotations

import dataclasses

from ..errors import ProtocolError

__all__ = ["Packet"]


@dataclasses.dataclass(slots=True)
class Packet:
    """One unit of data delivery from an I/O server to the client."""

    #: Payload bytes (framing overhead is charged by links/NICs).
    size: int
    #: Sending I/O server index.
    src_server: int
    #: Destination client index (0 for single-client experiments).
    dst_client: int
    #: The I/O request this strip belongs to (the "source" in
    #: source-aware nomenclature).
    request_id: int
    #: The strip within the file layout.
    strip_id: int
    #: Raw IP options bytes (may be empty when the server runs no
    #: HintCapsuler).
    options: bytes = b""
    #: Ground truth: the core the requesting process occupied at issue time.
    #: Only oracle policies may read this — the realistic SAIs path must go
    #: through the options field.
    request_core: int | None = None
    #: Segment ordinal within the strip (0 when unsegmented).
    segment: int = 0
    #: Total number of segments carrying this strip.
    n_segments: int = 1
    #: False for control traffic (write acknowledgements): the payload is
    #: not strip data, so the softirq does not install it into a cache.
    carries_data: bool = True

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ProtocolError(f"packet size must be positive, got {self.size}")
        if self.n_segments < 1 or not 0 <= self.segment < self.n_segments:
            raise ProtocolError(
                f"bad segmentation: segment={self.segment} of {self.n_segments}"
            )

    @property
    def is_last_segment(self) -> bool:
        """True if this packet completes its strip."""
        return self.segment == self.n_segments - 1

    @property
    def flow_identity(self) -> tuple[int, int, int, int, int]:
        """Stable wire identity: (flow endpoints, request, strip, segment).

        Keys order-independent per-packet decisions — fault injection
        uses it with :func:`repro.rng.hash_unit` the same way the server
        page-cache model keys residency: by the object, not by event
        order, so paired A/B runs see the same pattern.
        """
        return (
            self.src_server,
            self.dst_client,
            self.request_id,
            self.strip_id,
            self.segment,
        )
