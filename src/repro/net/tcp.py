"""A minimal TCP abstraction: ordered per-connection streams + segmentation.

PVFS transfers strips over one TCP connection per (client, server) pair.
For interrupt accounting, what matters is (a) strips from one server arrive
*in order*, and (b) a strip may be segmented into several MTU-sized trains,
each of which raises its own (coalesced) interrupt.  Congestion control is
not modeled: the experiments run on an uncongested dedicated switch where
the windows stay open (the links' serialization already enforces the
bandwidth ceilings).
"""

from __future__ import annotations

import dataclasses
import typing as t
from collections import deque

from ..errors import ProtocolError
from .packet import Packet

__all__ = ["segment_sizes", "TcpStream"]


def segment_sizes(nbytes: int, mss: int) -> list[int]:
    """Split ``nbytes`` into maximum-segment-size chunks.

    >>> segment_sizes(10, 4)
    [4, 4, 2]
    """
    if nbytes <= 0:
        raise ProtocolError(f"nbytes must be positive, got {nbytes}")
    if mss <= 0:
        raise ProtocolError(f"mss must be positive, got {mss}")
    full, rest = divmod(nbytes, mss)
    sizes = [mss] * full
    if rest:
        sizes.append(rest)
    return sizes


@dataclasses.dataclass
class _StripAssembly:
    expected: int
    received: set[int] = dataclasses.field(default_factory=set)


class TcpStream:
    """Per-connection ordered delivery and strip reassembly bookkeeping.

    The sender pushes packets (segments) in order; :meth:`deliver` tells the
    receiver whether a strip just completed.  Out-of-order arrival on one
    stream is a protocol error — the links are FIFO, so seeing it means a
    wiring bug in the fabric model.
    """

    def __init__(self, server: int, client: int) -> None:
        self.server = server
        self.client = client
        self._next_seq = 0
        self._in_flight: dict[int, _StripAssembly] = {}
        self._completed: deque[int] = deque()

    def next_sequence(self) -> int:
        """Allocate the next segment sequence number for the sender."""
        seq = self._next_seq
        self._next_seq += 1
        return seq

    def segments_for_strip(
        self,
        base: Packet,
        mss: int | None,
    ) -> list[Packet]:
        """Explode a strip-sized packet into per-segment packets.

        With ``mss=None`` the strip travels as a single coalesced train
        (the default interrupt-per-strip accounting).
        """
        if mss is None or base.size <= mss:
            return [dataclasses.replace(base, segment=0, n_segments=1)]
        sizes = segment_sizes(base.size, mss)
        return [
            dataclasses.replace(
                base, size=size, segment=i, n_segments=len(sizes)
            )
            for i, size in enumerate(sizes)
        ]

    def deliver(self, packet: Packet) -> bool:
        """Record one received segment; returns True when its strip is whole."""
        if packet.src_server != self.server or packet.dst_client != self.client:
            raise ProtocolError(
                f"packet for ({packet.src_server}->{packet.dst_client}) on "
                f"stream ({self.server}->{self.client})"
            )
        assembly = self._in_flight.get(packet.strip_id)
        if assembly is None:
            assembly = _StripAssembly(expected=packet.n_segments)
            self._in_flight[packet.strip_id] = assembly
        elif assembly.expected != packet.n_segments:
            raise ProtocolError(
                f"inconsistent segmentation for strip {packet.strip_id}"
            )
        if packet.segment in assembly.received:
            raise ProtocolError(
                f"duplicate segment {packet.segment} for strip {packet.strip_id}"
            )
        assembly.received.add(packet.segment)
        if len(assembly.received) == assembly.expected:
            del self._in_flight[packet.strip_id]
            self._completed.append(packet.strip_id)
            return True
        return False

    @property
    def strips_completed(self) -> int:
        """Number of fully-reassembled strips so far."""
        return len(self._completed)

    def in_flight_strips(self) -> t.Iterable[int]:
        """Strip ids with at least one but not all segments received."""
        return self._in_flight.keys()
