"""A minimal TCP abstraction: ordered per-connection streams + segmentation.

PVFS transfers strips over one TCP connection per (client, server) pair.
For interrupt accounting, what matters is (a) strips from one server arrive
*in order*, and (b) a strip may be segmented into several MTU-sized trains,
each of which raises its own (coalesced) interrupt.  Congestion control is
not modeled: the experiments run on an uncongested dedicated switch where
the windows stay open (the links' serialization already enforces the
bandwidth ceilings).

Fault tolerance: on a fault-free fabric every hop is FIFO, so a segment
arriving out of order means a *wiring bug* and :meth:`TcpStream.observe_wire`
raises :class:`~repro.errors.ProtocolError` — the hard tripwire the base
model has always had.  When a :class:`~repro.faults.FaultPlan` is active
(``fault_tolerant=True``) reordering and duplication are expected wire
behaviour: the stream counts them and the per-strip assembly buffers
whatever order segments arrive in, reassembling the strip once every
ordinal is present — i.e. buffer-and-reassemble instead of crash.
"""

from __future__ import annotations

import dataclasses
import typing as t
from collections import deque

from ..errors import ProtocolError
from .packet import Packet

__all__ = ["segment_sizes", "TcpStream"]


def segment_sizes(nbytes: int, mss: int) -> list[int]:
    """Split ``nbytes`` into maximum-segment-size chunks.

    >>> segment_sizes(10, 4)
    [4, 4, 2]
    """
    if nbytes <= 0:
        raise ProtocolError(f"nbytes must be positive, got {nbytes}")
    if mss <= 0:
        raise ProtocolError(f"mss must be positive, got {mss}")
    full, rest = divmod(nbytes, mss)
    sizes = [mss] * full
    if rest:
        sizes.append(rest)
    return sizes


@dataclasses.dataclass
class _StripAssembly:
    expected: int
    received: set[int] = dataclasses.field(default_factory=set)
    nbytes: int = 0


class TcpStream:
    """Per-connection ordered delivery and strip reassembly bookkeeping.

    The sender pushes packets (segments) in order; :meth:`deliver` tells the
    receiver whether a strip just completed.  Out-of-order arrival on one
    stream is a protocol error — the links are FIFO, so seeing it means a
    wiring bug in the fabric model — *unless* the stream was built
    ``fault_tolerant`` because an active fault plan makes reordering a
    legitimate hazard to absorb.
    """

    def __init__(
        self, server: int, client: int, fault_tolerant: bool = False
    ) -> None:
        self.server = server
        self.client = client
        #: Reordering/duplication tolerated (an active fault plan) rather
        #: than treated as a fabric wiring bug.
        self.fault_tolerant = fault_tolerant
        self._next_seq = 0
        self._in_flight: dict[int, _StripAssembly] = {}
        self._completed: deque[int] = deque()
        self._completed_sizes: dict[int, int] = {}
        #: Next wire-arrival segment ordinal expected per in-flight strip.
        self._wire_cursor: dict[int, int] = {}
        #: Segments that arrived out of wire order (tolerant mode only).
        self.reorder_events = 0
        #: Segments received again for an ordinal already assembled.
        self.duplicate_segments = 0
        #: Next *delivery-order* ordinal expected per in-flight strip —
        #: delivery is where softirq processing hands the segment to the
        #: receiver, so this cursor sees reordering the wire cursor
        #: cannot: segments steered to different cores' softirq queues
        #: complete in core-business order, not ordinal order (the Flow
        #: Director pathology).
        self._delivery_cursor: dict[int, int] = {}
        #: Consecutive dup-ACKs outstanding for the current hole, per strip.
        self._hole_dupacks: dict[int, int] = {}
        #: Segments *delivered* (processed) out of ordinal order.
        self.out_of_order_deliveries = 0
        #: Duplicate ACKs the receiver would emit (one per out-of-order
        #: delivery while a hole is open).
        self.dup_acks = 0
        #: Holes that accumulated 3 dup-ACKs — a real sender would fast
        #: retransmit here.  Counted only; the strip still reassembles
        #: from the original segments, so goodput accounting is
        #: unchanged (the counters are pure observability).
        self.fast_retransmits = 0

    def next_sequence(self) -> int:
        """Allocate the next segment sequence number for the sender."""
        seq = self._next_seq
        self._next_seq += 1
        return seq

    def segments_for_strip(
        self,
        base: Packet,
        mss: int | None,
    ) -> list[Packet]:
        """Explode a strip-sized packet into per-segment packets.

        With ``mss=None`` the strip travels as a single coalesced train
        (the default interrupt-per-strip accounting).
        """
        if mss is None or base.size <= mss:
            return [dataclasses.replace(base, segment=0, n_segments=1)]
        sizes = segment_sizes(base.size, mss)
        return [
            dataclasses.replace(
                base, size=size, segment=i, n_segments=len(sizes)
            )
            for i, size in enumerate(sizes)
        ]

    def observe_wire(self, packet: Packet) -> bool:
        """Record a segment's *wire arrival* order; True if it was in order.

        A strip's segments serialize through FIFO hops, so on a healthy
        fabric they reach the NIC in ordinal order; anything else raises
        :class:`~repro.errors.ProtocolError` (wiring-bug tripwire).  In
        fault-tolerant mode the event is counted instead and the strip
        assembly buffers the segment for reassembly.
        """
        if packet.n_segments <= 1:
            return True
        expected = self._wire_cursor.get(packet.strip_id, 0)
        if packet.segment == expected:
            nxt = expected + 1
            if nxt >= packet.n_segments:
                self._wire_cursor.pop(packet.strip_id, None)
            else:
                self._wire_cursor[packet.strip_id] = nxt
            return True
        if not self.fault_tolerant:
            raise ProtocolError(
                f"out-of-order segment {packet.segment} of strip "
                f"{packet.strip_id} (expected {expected}) on stream "
                f"({self.server}->{self.client}) with no fault plan active"
            )
        self.reorder_events += 1
        if packet.segment > expected:
            self._wire_cursor[packet.strip_id] = packet.segment + 1
        return False

    def deliver(self, packet: Packet) -> bool:
        """Record one received segment; returns True when its strip is whole."""
        if packet.src_server != self.server or packet.dst_client != self.client:
            raise ProtocolError(
                f"packet for ({packet.src_server}->{packet.dst_client}) on "
                f"stream ({self.server}->{self.client})"
            )
        assembly = self._in_flight.get(packet.strip_id)
        if assembly is None:
            assembly = _StripAssembly(expected=packet.n_segments)
            self._in_flight[packet.strip_id] = assembly
        elif assembly.expected != packet.n_segments:
            raise ProtocolError(
                f"inconsistent segmentation for strip {packet.strip_id}"
            )
        if packet.segment in assembly.received:
            if self.fault_tolerant:
                # A client-side strip retry re-served data we already
                # hold; drop the duplicate bytes on the floor.
                self.duplicate_segments += 1
                return False
            raise ProtocolError(
                f"duplicate segment {packet.segment} for strip {packet.strip_id}"
            )
        assembly.received.add(packet.segment)
        assembly.nbytes += packet.size
        self._note_delivery_order(packet.strip_id, packet.segment, assembly)
        if len(assembly.received) == assembly.expected:
            del self._in_flight[packet.strip_id]
            self._wire_cursor.pop(packet.strip_id, None)
            self._delivery_cursor.pop(packet.strip_id, None)
            self._hole_dupacks.pop(packet.strip_id, None)
            self._completed.append(packet.strip_id)
            self._completed_sizes[packet.strip_id] = assembly.nbytes
            return True
        return False

    def _note_delivery_order(
        self, strip_id: int, segment: int, assembly: _StripAssembly
    ) -> None:
        """Count delivery-order anomalies for one accepted segment.

        A receiver ACKs the highest contiguous ordinal: a segment beyond
        the lowest missing one is an out-of-order delivery and elicits a
        duplicate ACK for the hole; the third dup-ACK for the same hole
        would trigger the sender's fast retransmit.  Counting only —
        assembly already buffers any order.
        """
        if assembly.expected <= 1:
            return
        expected = self._delivery_cursor.get(strip_id, 0)
        if segment != expected:
            self.out_of_order_deliveries += 1
            self.dup_acks += 1
            run = self._hole_dupacks.get(strip_id, 0) + 1
            self._hole_dupacks[strip_id] = run
            if run == 3:
                self.fast_retransmits += 1
            return
        # The hole (if any) just filled: advance past everything buffered.
        nxt = expected + 1
        while nxt in assembly.received:
            nxt += 1
        self._delivery_cursor[strip_id] = nxt
        self._hole_dupacks.pop(strip_id, None)

    def take_completed_size(self, strip_id: int) -> int:
        """Claim the reassembled byte count of a just-completed strip."""
        try:
            return self._completed_sizes.pop(strip_id)
        except KeyError:
            raise ProtocolError(
                f"strip {strip_id} has no completed assembly to claim"
            ) from None

    @property
    def strips_completed(self) -> int:
        """Number of fully-reassembled strips so far."""
        return len(self._completed)

    def in_flight_strips(self) -> t.Iterable[int]:
        """Strip ids with at least one but not all segments received."""
        return self._in_flight.keys()
