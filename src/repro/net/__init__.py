"""Network substrate: packets, the SAIs IP-options hint, links and fabric.

The piece of this package that is *the paper's mechanism* is
:mod:`~repro.net.ip_options`: the bit-exact Figure 4 encoding that lets an
I/O server echo the client's ``aff_core_id`` back inside every returned
data packet, using a single 8-bit "simple option" in the IP header options
field (5-bit option number ⇒ at most 32 identifiable cores).
"""

from .ip_options import (
    MAX_ENCODABLE_CORES,
    decode_aff_core_id,
    encode_aff_core_id,
)
from .links import Link
from .packet import Packet
from .switch import Switch
from .tcp import TcpStream, segment_sizes

__all__ = [
    "Packet",
    "encode_aff_core_id",
    "decode_aff_core_id",
    "MAX_ENCODABLE_CORES",
    "Link",
    "Switch",
    "TcpStream",
    "segment_sizes",
]
