"""The SAIs ``aff_core_id`` IP-option encoding (paper Fig. 4).

SAIs avoids touching the transport protocol by hiding the affinitive core
id in the IP header *options* field (RFC 791 §3.1).  The paper uses the
single-octet "simple option" form::

      bit 7      bits 6-5        bits 4-0
    +--------+--------------+----------------+
    | copied | option class | option number  |
    |   1    |      1       |  aff_core_id   |
    +--------+--------------+----------------+

followed by an End-of-Option-List octet (EOL, 0x00).  Both the copied flag
and the 2-bit option class are set to 1 per the paper.  Because only 5 bits
remain for the option number, **at most 2^5 = 32 cores can be identified**
— a real constraint of the design that this module enforces
(:class:`~repro.errors.CoreIdOutOfRangeError`).

RFC 791 requires the options area to pad the header to a 32-bit boundary,
so the encoded field is 4 octets: option, EOL, and two zero pad octets.
"""

from __future__ import annotations

from ..errors import CoreIdOutOfRangeError, ProtocolError

__all__ = [
    "MAX_ENCODABLE_CORES",
    "SAIS_COPIED_FLAG",
    "SAIS_OPTION_CLASS",
    "EOL",
    "encode_aff_core_id",
    "decode_aff_core_id",
    "option_byte",
]

#: 5-bit option number field => SAIs can address at most this many cores.
MAX_ENCODABLE_CORES = 32

#: The paper sets the copied flag to 1 (option copied into all fragments).
SAIS_COPIED_FLAG = 1
#: ... and the option class to 1.
SAIS_OPTION_CLASS = 1
#: End of Option List octet.
EOL = 0x00

_COPIED_SHIFT = 7
_CLASS_SHIFT = 5
_NUMBER_MASK = 0b0001_1111
_CLASS_MASK = 0b0110_0000
_COPIED_MASK = 0b1000_0000


def option_byte(aff_core_id: int) -> int:
    """The single SAIs option octet for ``aff_core_id``."""
    if not isinstance(aff_core_id, int) or isinstance(aff_core_id, bool):
        raise ProtocolError(f"aff_core_id must be an int, got {aff_core_id!r}")
    if not 0 <= aff_core_id < MAX_ENCODABLE_CORES:
        raise CoreIdOutOfRangeError(
            f"aff_core_id {aff_core_id} does not fit the 5-bit option number "
            f"field (valid range 0..{MAX_ENCODABLE_CORES - 1}); SAIs cannot "
            f"identify more than {MAX_ENCODABLE_CORES} cores"
        )
    return (
        (SAIS_COPIED_FLAG << _COPIED_SHIFT)
        | (SAIS_OPTION_CLASS << _CLASS_SHIFT)
        | aff_core_id
    )


def encode_aff_core_id(aff_core_id: int) -> bytes:
    """Encode ``aff_core_id`` as a 4-octet IP options field.

    Layout: ``[sais_option, EOL, pad, pad]`` — padded to the 32-bit
    boundary RFC 791 requires for the IP header length.

    >>> encode_aff_core_id(5).hex()
    'a5000000'
    """
    return bytes([option_byte(aff_core_id), EOL, 0x00, 0x00])


def decode_aff_core_id(options: bytes, n_cores: int | None = None) -> int | None:
    """Extract the ``aff_core_id`` from an IP options field.

    Returns ``None`` if the options field is empty or contains no SAIs
    option (e.g. traffic from a server that does not run ``HintCapsuler``).
    Raises :class:`~repro.errors.ProtocolError` on a malformed field.
    This is what the NIC driver's ``SrcParser`` runs on every inbound
    packet before the interrupt message is composed.

    ``n_cores`` is the receiving machine's core count.  A syntactically
    valid SAIs option whose id is >= ``n_cores`` — which corruption can
    fabricate — raises :class:`~repro.errors.CoreIdOutOfRangeError`
    instead of naming a core that does not exist; the caller treats it
    like any other parse failure and falls back to unhinted routing.
    """
    if not options:
        return None
    index = 0
    while index < len(options):
        octet = options[index]
        if octet == EOL:
            return None  # end of list without a SAIs option
        copied = (octet & _COPIED_MASK) >> _COPIED_SHIFT
        opt_class = (octet & _CLASS_MASK) >> _CLASS_SHIFT
        if copied == SAIS_COPIED_FLAG and opt_class == SAIS_OPTION_CLASS:
            aff_core_id = octet & _NUMBER_MASK
            if n_cores is not None and aff_core_id >= n_cores:
                raise CoreIdOutOfRangeError(
                    f"decoded aff_core_id {aff_core_id} but the receiving "
                    f"machine has only {n_cores} cores — refusing to steer "
                    f"an interrupt to a nonexistent core"
                )
            return aff_core_id
        # Not ours: a No-Operation (1) single octet we can step over; any
        # other multi-octet option would need a length we do not model.
        if octet == 0x01:  # NOP
            index += 1
            continue
        raise ProtocolError(
            f"unrecognized IP option 0x{octet:02x} at offset {index}"
        )
    return None
