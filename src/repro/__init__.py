"""repro — a reproduction of *A Source-aware Interrupt Scheduling for
Modern Parallel I/O Systems* (SAIs, IPPS 2012).

The public API in three layers:

* **run experiments**: :func:`run_experiment`, :func:`compare_policies`
  over a :class:`ClusterConfig`;
* **build systems**: :func:`build_cluster` and the component packages
  (:mod:`repro.hw`, :mod:`repro.net`, :mod:`repro.pfs`, :mod:`repro.kernel`,
  :mod:`repro.des`);
* **the contribution itself**: :mod:`repro.core` — interrupt-scheduling
  policies, the SAIs hint components, and the Sec. III analytic model.

Quickstart::

    from repro import ClusterConfig, compare_policies

    cfg = ClusterConfig(n_servers=48)
    result = compare_policies(cfg)          # irqbalance vs SAIs
    print(f"speed-up: {result.bandwidth_speedup:.1%}")
"""

from .config import (
    ClientConfig,
    ClusterConfig,
    CostModel,
    NetworkConfig,
    ServerConfig,
    WorkloadConfig,
)
from .cluster import (
    Simulation,
    build_cluster,
    compare_policies,
    run_experiment,
)
from .core import AnalysisParams, available_policies, create_policy
from .errors import ReproError
from .metrics import RunMetrics

__version__ = "1.0.0"

__all__ = [
    "ClusterConfig",
    "ClientConfig",
    "ServerConfig",
    "NetworkConfig",
    "WorkloadConfig",
    "CostModel",
    "Simulation",
    "run_experiment",
    "compare_policies",
    "build_cluster",
    "RunMetrics",
    "AnalysisParams",
    "create_policy",
    "available_policies",
    "ReproError",
    "__version__",
]
