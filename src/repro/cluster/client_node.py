"""One fully-assembled I/O client machine.

Owns every client-side hardware and kernel component and implements the
application-visible read path:

* ``pfs.issue(...)`` — fan a read out to the servers (with the SAIs hint
  when the policy requires it);
* ``merge_strip(...)`` — the consumer-side copy of one arrived strip,
  charging the local-copy / cache-to-cache-migration / DRAM-refetch cost
  depending on where interrupt scheduling left the data;
* ``compute(...)`` — the IOR encrypt phase on the consumer core.
"""

from __future__ import annotations

import typing as t

from ..config import ClusterConfig
from ..core.policy import InterruptSchedulingPolicy
from ..core.sais import HintMessager, IMComposer, SrcParser
from ..des import Environment
from ..hw.apic import IoApic
from ..hw.cache import CacheSystem, Location
from ..hw.core import APP_PRIORITY, Core
from ..hw.interconnect import InterconnectBus
from ..hw.memory import MemoryBus
from ..hw.nic import Nic
from ..kernel.irq import wire_interrupts
from ..kernel.process import ProcessTable
from ..kernel.softirq import SoftirqDaemon
from ..pfs.client import ArrivedStrip, PfsClient
from ..pfs.layout import StripeLayout
from ..pfs.request import StripRequest

if t.TYPE_CHECKING:  # pragma: no cover - typing only
    from ..faults.injector import FaultInjector

__all__ = ["ClientNode"]


class ClientNode:
    """A client machine wired for one interrupt-scheduling policy."""

    def __init__(
        self,
        env: Environment,
        index: int,
        config: ClusterConfig,
        policy: InterruptSchedulingPolicy,
        layout: StripeLayout,
        tracer: t.Any | None = None,
        faults: "FaultInjector | None" = None,
        spans: t.Any | None = None,
    ) -> None:
        self.env = env
        self.index = index
        self.config = config
        self.policy = policy
        client_cfg = config.client
        costs = config.costs
        self.costs = costs
        #: Optional per-strip lifecycle tracer (repro.metrics.trace).
        self.tracer = tracer
        #: Optional causal span recorder (repro.obs); None = zero cost.
        self.spans = spans
        pfs_track = nic_track = apic_track = bus_track = None
        core_tracks: list[t.Any] = [None] * client_cfg.n_cores
        if spans is not None:
            from ..obs.spans import (
                APIC_TID,
                BUS_TID,
                NIC_TID,
                PFS_TID,
                Track,
                client_pid,
            )

            pid = client_pid(index)
            name = f"client{index}"
            pfs_track = Track(pid, PFS_TID)
            nic_track = Track(pid, NIC_TID)
            apic_track = Track(pid, APIC_TID)
            bus_track = Track(pid, BUS_TID)
            core_tracks = [Track(pid, i) for i in range(client_cfg.n_cores)]
            for i, track in enumerate(core_tracks):
                spans.label_track(track, name, f"core{i}")
            spans.label_track(pfs_track, name, "pfs")
            spans.label_track(nic_track, name, "nic-wire")
            spans.label_track(apic_track, name, "apic")
            spans.label_track(bus_track, name, "interconnect")
        self._core_tracks = core_tracks
        self._bus_track = bus_track

        self.cores = [
            Core(env, i, client_cfg.clock_hz) for i in range(client_cfg.n_cores)
        ]
        self.cache = CacheSystem(
            n_cores=client_cfg.n_cores,
            l2_bytes=client_cfg.l2_bytes,
            strip_size=config.strip_size,
            cache_line=client_cfg.cache_line,
        )
        self.interconnect = InterconnectBus(env, costs)
        self.membus = MemoryBus(env, client_cfg.memory_bandwidth)
        self.processes = ProcessTable(client_cfg.n_cores)

        # SAIs components exist only when the policy consumes hints; a
        # conventional policy runs on a completely stock stack.
        sais = policy.requires_hints
        self.hint_messager = HintMessager() if sais else None
        # The parser knows the core count, so a corrupted option that
        # decodes out of range is rejected at the driver (and counted)
        # instead of crashing the I/O APIC.
        self.src_parser = (
            SrcParser(n_cores=client_cfg.n_cores) if sais else None
        )
        self.im_composer = IMComposer() if sais else None

        self.ioapic = IoApic(
            env, self.cores, policy, spans=spans, obs_track=apic_track
        )
        self.nic = Nic(
            env,
            bandwidth=client_cfg.nic_bandwidth,
            ioapic=self.ioapic,
            framing_overhead=config.network.framing_overhead,
            driver_hook=self.src_parser.parse if self.src_parser else None,
            composer=self.im_composer.compose if self.im_composer else None,
            tracer=tracer,
            napi=client_cfg.napi,
            napi_budget=client_cfg.napi_budget,
            spans=spans,
            obs_track=nic_track,
        )

        # Late-bound by the cluster builder once the servers exist.
        self._submit: t.Callable[[StripRequest], None] | None = None
        self.pfs = PfsClient(
            env,
            client_index=index,
            layout=layout,
            submit=self._dispatch,
            hint_messager=self.hint_messager,
            tracer=tracer,
            retry=faults.plan.strip_retry_policy() if faults else None,
            spans=spans,
            obs_track=pfs_track,
        )
        # The NIC exists before the PFS client (the APIC chain builds
        # first), so the wire-order tripwire is attached here.
        self.nic.rx_observer = self.pfs.observe_wire
        # Any policy consulting the kernel's notion of "where does this
        # request's process run now" (source_aware_process, rps_rfs,
        # rdma_zerointr) gets the live locator.
        locator_hook = getattr(policy, "set_process_locator", None)
        if locator_hook is not None:
            locator_hook(self.pfs.locate_request)
        if policy.interrupt_free:
            # RDMA-style bypass: the NIC places completions directly and
            # never raises an interrupt — no APIC, no softirq.
            self.nic.zero_interrupt_sink = self._rdma_place

        self.daemons = [
            SoftirqDaemon(
                env,
                core,
                self.cache,
                costs,
                self.pfs,
                spans=spans,
                obs_track=core_tracks[core.index],
                interconnect=self.interconnect,
            )
            for core in self.cores
        ]
        wire_interrupts(self.ioapic, self.daemons)

    # -- wiring -------------------------------------------------------------

    def connect(self, submit: t.Callable[[StripRequest], None]) -> None:
        """Install the route toward the I/O servers (builder-time wiring)."""
        self._submit = submit

    def _dispatch(self, request: StripRequest) -> None:
        if self._submit is None:
            raise RuntimeError(
                f"client {self.index} is not connected to any servers"
            )
        if request.issuing_core is not None:
            # ATR-style TX sampling: steering hardware that watches
            # outbound traffic (flow_director) learns flow -> core here.
            self.policy.observe_tx(request.server, request.issuing_core)
        self._submit(request)

    def _rdma_place(self, packet) -> None:
        """Zero-interrupt completion: DMA the payload where it belongs.

        Called by the NIC instead of raising an interrupt.  The strip
        lands directly in the *consumer's* cache (DDIO into the right
        LLC slice), so the merge is always a local copy — the paper's
        entire migration tax disappears along with the interrupts.
        """
        target = self.policy.placement_core(packet, len(self.cores))
        outstanding = self.pfs.segment_arrived(packet, target)
        if outstanding is None:
            return
        if packet.carries_data:
            self.cache.install(target, packet.strip_id)
        if self.tracer is not None:
            self.tracer.record(
                packet.dst_client, packet.strip_id, "handled", self.env.now
            )

    # -- application-visible read path ----------------------------------------

    def issue_request(
        self, offset: int, size: int, core_index: int, write: bool = False
    ):
        """Issue one read/write from a process pinned on ``core_index``.

        Returns a generator; the caller pays the issue cost on its core and
        receives the :class:`~repro.pfs.client.OutstandingRequest`.
        """
        core = self.cores[core_index]
        yield from core.run(
            self.costs.request_issue_cost, "issue", APP_PRIORITY
        )
        return self.pfs.issue(offset, size, core_index, write=write)

    def merge_strip(self, core_index: int, strip: ArrivedStrip) -> t.Generator:
        """Copy one arrived strip into the application buffer.

        The cost depends on where interrupt scheduling left the data:

        * resident locally — a cheap cache-hot copy;
        * in a remote core's cache — the consumer stalls for the
          cache-to-cache migration, serialized on the interconnect bus
          (the paper's ``M`` and the heart of the whole effect);
        * evicted to DRAM — a refetch over the shared memory bus.
        """
        core = self.cores[core_index]
        spans = self.spans
        merge_sid = None
        merge_started = 0.0
        transfer_span: tuple[str, float] | None = None
        with core.request(priority=APP_PRIORITY) as req:
            yield req
            if spans is not None:
                # Post-grant on the consumer core's serialized lane.
                merge_started = self.env.now
                merge_sid = spans.begin(
                    "merge",
                    "app",
                    self._core_tracks[core_index],
                    parent=spans.strip_span(self.index, strip.token),
                    args={"strip": strip.token, "handled_on": strip.handled_on},
                )
            location = self.cache.consume(core_index, strip.token)
            if location is Location.LOCAL:
                yield from core.run_locked(
                    strip.size / self.costs.local_copy_rate, "copy"
                )
            else:
                # REMOTE: dirty cache-to-cache migration (the paper's M) —
                # at the shared-L3 rate when the handling core shares the
                # consumer's socket, at the HyperTransport rate otherwise.
                # MEMORY/ABSENT: demand-miss refetch through DRAM.  All of
                # them ride the serialized fill path (Sec. III-A: "only
                # one strip migration can happen at any time").  While
                # *queued* for the bus the consumer's stall overlaps other
                # transfers (idle); the granted transfer itself stalls the
                # core (unhalted).
                if location is Location.REMOTE:
                    client_cfg = self.config.client
                    same_socket = client_cfg.socket_of(
                        strip.handled_on
                    ) == client_cfg.socket_of(core_index)
                    rate = (
                        self.costs.intra_socket_c2c_rate
                        if same_socket
                        else self.costs.c2c_rate
                    )
                    category = "migration"
                else:
                    rate = self.costs.mem_fetch_rate
                    category = "memory_fetch"
                with self.interconnect.acquire() as grant:
                    yield grant
                    granted_at = self.env.now
                    yield from core.run_while(
                        self.interconnect.transfer_locked(strip.size, rate),
                        category,
                    )
                    if spans is not None:
                        transfer_span = (category, granted_at)
        if spans is not None:
            strip_sid = spans.strip_span(self.index, strip.token)
            if transfer_span is not None:
                # The granted transfer on the serialized fill path — one
                # "X" slice per migration/refetch on the bus lane.
                category, granted_at = transfer_span
                spans.add(
                    category,
                    "hw",
                    self._bus_track,
                    start=granted_at,
                    end=self.env.now,
                    parent=strip_sid,
                    args={"strip": strip.token, "from": strip.handled_on},
                )
            spans.end(
                merge_sid, args={"location": location.value}
            )
            if strip_sid is not None:
                spans.end_if_open(strip_sid)
            if location is Location.REMOTE:
                handled = spans.handled_span(self.index, strip.token)
                if handled is not None:
                    # Migration edge: the handling core's softirq span ->
                    # this consumer's merge span.
                    src_sid, src_ts, _src_core = handled
                    spans.flow(
                        "migration",
                        "migration",
                        src_sid,
                        src_ts,
                        merge_sid,
                        merge_started,
                    )
        if self.tracer is not None:
            self.tracer.record(self.index, strip.token, "merged", self.env.now)
            self.tracer.label(self.index, strip.token, location.value)
        return location

    def compute(self, core_index: int, nbytes: int) -> t.Generator:
        """The IOR added compute phase: encrypt the merged request buffer.

        Runs in strip-sized chunks, releasing the core between chunks, so
        that softirq work (priority 0) is delayed by at most one chunk —
        approximating Linux, where softirqs preempt user code at interrupt
        return rather than waiting out a multi-millisecond compute burst.
        """
        core = self.cores[core_index]
        chunk = self.config.strip_size
        remaining = nbytes
        while remaining > 0:
            piece = min(chunk, remaining)
            yield from core.run(
                piece / self.costs.encrypt_rate, "compute", APP_PRIORITY
            )
            remaining -= piece
        self.cache.compute_pass(core_index, nbytes)

    # -- accounting -----------------------------------------------------------

    def total_busy_time(self) -> float:
        """Busy seconds summed over all cores."""
        return sum(core.busy_time for core in self.cores)

    def register_metrics(self, registry: t.Any) -> None:
        """Expose this node's instruments under ``client<i>.*``."""
        prefix = f"client{self.index}"
        for core in self.cores:
            core.register_metrics(registry, f"{prefix}.core{core.index}")
        self.interconnect.register_metrics(registry, f"{prefix}.interconnect")
        registry.register_counter(
            f"{prefix}.nic.bytes_received", self.nic.bytes_received
        )
        registry.register_counter(
            f"{prefix}.nic.packets_received", self.nic.packets_received
        )
        registry.register_counter(
            f"{prefix}.nic.interrupts_raised", self.nic.interrupts_raised
        )
        registry.register_counter(
            f"{prefix}.ioapic.interrupts", self.ioapic.interrupts_raised
        )
        registry.register_counter(
            f"{prefix}.pfs.requests_issued", self.pfs.requests_issued
        )
        registry.register_counter(
            f"{prefix}.pfs.strips_requested", self.pfs.strips_requested
        )
        registry.register_counter(
            f"{prefix}.pfs.bytes_requested", self.pfs.bytes_requested
        )
        registry.register_counter(
            f"{prefix}.pfs.strip_retries", self.pfs.strip_retries
        )
        for daemon in self.daemons:
            registry.register_counter(
                f"{prefix}.softirq{daemon.core.index}.handled",
                daemon.handled,
                labels={"core": daemon.core.index},
            )
            registry.register_counter(
                f"{prefix}.softirq{daemon.core.index}.steered",
                daemon.steered,
                labels={"core": daemon.core.index},
            )
        registry.register_probe(
            f"{prefix}.tcp.out_of_order_segments",
            lambda: self.pfs.out_of_order_segments,
        )
        registry.register_probe(
            f"{prefix}.tcp.dup_acks", lambda: self.pfs.dup_acks
        )
        registry.register_probe(
            f"{prefix}.tcp.fast_retransmits",
            lambda: self.pfs.fast_retransmits,
        )
        registry.register_probe(
            f"{prefix}.steering.flow_migrations",
            lambda: getattr(self.policy, "flow_migrations", 0),
        )
        registry.register_probe(
            f"{prefix}.cache.miss_rate", self.cache.miss_rate
        )
        registry.register_counter(
            f"{prefix}.cache.evictions", self.cache.evictions
        )
