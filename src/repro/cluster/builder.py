"""Assemble a whole cluster (clients + servers + fabric) from a config."""

from __future__ import annotations

import dataclasses
import typing as t

from ..config import ClusterConfig
from ..core.policy import create_policy
from ..core.sais import HintCapsuler
from ..des import Environment
from ..errors import ConfigError
from ..faults.injector import FaultInjector
from ..net.fastpath import WireFastPath, fast_wire_enabled
from ..net.links import Link
from ..net.packet import Packet
from ..net.switch import Switch
from ..obs.registry import MetricsRegistry
from ..pfs.layout import StripeLayout
from ..pfs.metadata import MetadataServer
from ..pfs.request import StripRequest
from ..metrics.trace import Tracer
from ..pfs.server import IoServer
from ..rng import RngFactory
from .client_node import ClientNode

if t.TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.spans import SpanRecorder

__all__ = [
    "Cluster",
    "build_cluster",
    "make_server_uplink",
    "make_client_uplink",
    "make_server",
]


def make_server_uplink(
    env: Environment,
    config: ClusterConfig,
    server_index: int,
    injector: FaultInjector | None = None,
) -> Link:
    """Build one server's transmit link, identically in every calendar.

    Shared by :func:`build_cluster` and the sharded runtime
    (:mod:`repro.shard`): domain assignment moves a server into another
    calendar, but its uplink must be constructed with byte-for-byte the
    same parameters or the two runs diverge.
    """
    uplink_name = f"server{server_index}_uplink"
    return Link(
        env,
        bandwidth=config.server.nic_bandwidth,
        latency=0.0,  # the switch hop carries the fabric latency
        framing_overhead=config.network.framing_overhead,
        name=uplink_name,
        faults=(
            injector.link_faults(uplink_name) if injector is not None else None
        ),
    )


def make_client_uplink(
    env: Environment,
    config: ClusterConfig,
    client_index: int,
    injector: FaultInjector | None = None,
) -> Link:
    """Build one client's transmit link (write path); see
    :func:`make_server_uplink` for why this is shared."""
    name = f"client{client_index}_uplink"
    return Link(
        env,
        bandwidth=config.client.nic_bandwidth,
        latency=0.0,
        framing_overhead=config.network.framing_overhead,
        name=name,
        faults=(
            injector.link_faults(name) if injector is not None else None
        ),
    )


def make_server(
    env: Environment,
    config: ClusterConfig,
    server_index: int,
    uplink: Link,
    deliver: t.Callable[[Packet], t.Any],
    rng: t.Any,
    sais_enabled: bool,
    *,
    tracer: Tracer | None = None,
    faults: FaultInjector | None = None,
    fastpath: t.Any | None = None,
    spans: "SpanRecorder | None" = None,
    obs_track: t.Any | None = None,
) -> IoServer:
    """Build one I/O server; shared with the sharded runtime."""
    return IoServer(
        env,
        index=server_index,
        config=config.server,
        uplink=uplink,
        deliver=deliver,
        rng=rng,
        capsuler=HintCapsuler() if sais_enabled else None,
        tracer=tracer,
        mss=config.network.mss,
        faults=faults,
        fastpath=fastpath,
        spans=spans,
        obs_track=obs_track,
    )


@dataclasses.dataclass
class Cluster:
    """A fully-wired simulated cluster, ready to run a workload."""

    env: Environment
    config: ClusterConfig
    clients: list[ClientNode]
    servers: list[IoServer]
    switch: Switch
    metadata: MetadataServer
    layout: StripeLayout
    rngs: RngFactory
    #: Per-strip lifecycle tracer (None unless ``config.trace``).
    tracer: Tracer | None = None
    #: Fault injector holding the cluster-wide fault counters; None when
    #: no (effective) fault plan is configured.
    injector: FaultInjector | None = None
    #: Client transmit links (write path); kept for retransmit accounting.
    client_uplinks: list[Link] = dataclasses.field(default_factory=list)
    #: Causal span recorder (repro.obs); None unless the caller asked for
    #: tracing — the zero-cost-off guarantee hinges on this being None.
    spans: "SpanRecorder | None" = None
    #: Unified metrics registry over every component's instruments.
    #: Always built (registration is O(#instruments) dict inserts at
    #: build time; sources are read lazily at snapshot time).
    metrics: MetricsRegistry = dataclasses.field(default_factory=MetricsRegistry)


def build_cluster(
    config: ClusterConfig, spans: "SpanRecorder | None" = None
) -> Cluster:
    """Build every component of one experiment point and wire the paths.

    Data path: ``IoServer.serve`` -> server uplink ``Link`` ->
    ``Switch.forward`` -> destination client's ``Nic.receive`` -> I/O APIC
    (policy) -> softirq -> PFS client.

    Request path: client ``PfsClient.issue`` -> fabric latency ->
    ``IoServer.serve`` (request messages are a few hundred bytes; only
    their latency is modeled).
    """
    env = Environment()
    rngs = RngFactory(config.seed)
    layout = StripeLayout(config.strip_size, config.n_servers)
    net = config.network

    fabric_track = None
    if spans is not None:
        from ..obs.spans import FABRIC_PID, SERVE_TID, Track, server_pid

        spans.env = env
        fabric_track = Track(FABRIC_PID, 0)
        spans.label_track(fabric_track, "switch", "backplane")

    # A null plan (every probability zero, no stragglers) builds exactly
    # the fault-free cluster: no injector, no watchdogs, no middlebox.
    injector: FaultInjector | None = None
    if config.faults is not None and not config.faults.is_null:
        injector = FaultInjector(config.faults)
        worst = injector.max_server_index()
        if worst is not None and worst >= config.n_servers:
            raise ConfigError(
                f"fault plan targets server {worst} but the cluster has "
                f"only {config.n_servers} servers"
            )

    switch = Switch(
        env,
        backplane_bandwidth=net.switch_bandwidth,
        latency=net.latency,
        middlebox=injector.middlebox if injector is not None else None,
        spans=spans,
        obs_track=fabric_track,
    )
    metadata = MetadataServer(env)
    tracer = Tracer() if config.trace else None

    clients: list[ClientNode] = []
    for client_index in range(config.n_clients):
        # Each client programs its own APIC: policies hold per-client state
        # (round-robin counters, irqbalance assignments).
        policy = create_policy(config.policy)
        if injector is not None:
            # Option-stripping middleboxes leave SAIs hint-less for some
            # packets; the policy steers those round-robin instead of
            # raising (graceful degradation, counted in fallback_events).
            policy.enable_degraded_fallback()
        clients.append(
            ClientNode(
                env,
                client_index,
                config,
                policy,
                layout,
                tracer=tracer,
                faults=injector,
                spans=spans,
            )
        )

    sais_enabled = clients[0].policy.requires_hints

    # Coalesced wire fast path: exact analytic pipeline, only sound on a
    # healthy fabric (no loss/middlebox/straggler machinery in the way).
    # REPRO_NO_WIRE_FASTPATH=1 forces the resource-based slow path for A/B
    # equivalence testing.
    fastpath: WireFastPath | None = None
    if injector is None and fast_wire_enabled():
        fastpath = WireFastPath(env, switch, clients, spans=spans)

    def deliver_to_client(packet: Packet) -> t.Any:
        return clients[packet.dst_client].nic.receive(packet)

    def into_switch(packet: Packet) -> t.Any:
        return switch.forward(packet, deliver_to_client)

    servers: list[IoServer] = []
    for server_index in range(config.n_servers):
        server_track = None
        if spans is not None:
            server_track = Track(server_pid(server_index), SERVE_TID)
            spans.label_track(server_track, f"server{server_index}", "serve")
        uplink = make_server_uplink(env, config, server_index, injector)
        servers.append(
            make_server(
                env,
                config,
                server_index,
                uplink,
                into_switch,
                rngs.stream(f"server{server_index}"),
                sais_enabled,
                tracer=tracer,
                faults=injector,
                fastpath=fastpath,
                spans=spans,
                obs_track=server_track,
            )
        )

    # Client transmit side, used by the write path (write strips carry the
    # data *out* through the client's bonded ports).
    client_uplinks = [
        make_client_uplink(env, config, idx, injector)
        for idx in range(config.n_clients)
    ]

    def make_submit(client_index: int) -> t.Callable[[StripRequest], None]:
        uplink = client_uplinks[client_index]

        def submit(request: StripRequest) -> None:
            server = servers[request.server]

            if not request.is_write:
                # Request message: one fabric traversal of latency; its
                # few hundred bytes of serialization are negligible next
                # to the data path and are folded into the latency.
                env.process(
                    server.serve(request),
                    quiet=True,
                    start_delay=net.latency,
                )
                return

            if fastpath is not None:
                env.process(
                    fastpath.transmit_to_server(
                        uplink,
                        request.size,
                        lambda: server.serve_write(request),
                        request,
                    ),
                    quiet=True,
                )
                return

            def _route_write() -> t.Generator:
                # The data strip serializes out the client NIC, crosses
                # the switch, and is absorbed by the server, which acks
                # back over the normal return path.
                data = Packet(
                    size=request.size,
                    src_server=request.server,
                    dst_client=request.client,
                    request_id=request.request_id,
                    strip_id=request.strip_id,
                )
                yield from uplink.transmit(
                    data,
                    lambda packet: switch.forward(
                        packet, lambda _p: server.serve_write(request)
                    ),
                )

            env.process(_route_write(), quiet=True)

        return submit

    for client in clients:
        client.connect(make_submit(client.index))

    metrics = MetricsRegistry()
    metrics.register_probe(
        "des.events_processed",
        lambda: float(env.events_processed),
        kind="counter",
    )
    metrics.register_counter("switch.bytes", switch.bytes_switched)
    metrics.register_counter("switch.packets", switch.packets_switched)
    for server in servers:
        prefix = f"server{server.index}"
        metrics.register_counter(f"{prefix}.strips_served", server.strips_served)
        metrics.register_counter(f"{prefix}.bytes_served", server.bytes_served)
        metrics.register_counter(f"{prefix}.cache_hits", server.cache_hits)
    for client in clients:
        client.register_metrics(metrics)
    if injector is not None:
        metrics.register_counter(
            "faults.packets_dropped", injector.packets_dropped
        )
        metrics.register_counter(
            "faults.options_stripped", injector.options_stripped
        )
        metrics.register_counter(
            "faults.options_corrupted", injector.options_corrupted
        )
        metrics.register_counter(
            "faults.packets_delayed", injector.packets_delayed
        )
        metrics.register_counter(
            "faults.requests_dropped", injector.requests_dropped
        )

    return Cluster(
        env=env,
        config=config,
        clients=clients,
        servers=servers,
        switch=switch,
        metadata=metadata,
        layout=layout,
        rngs=rngs,
        tracer=tracer,
        injector=injector,
        client_uplinks=client_uplinks,
        spans=spans,
        metrics=metrics,
    )
