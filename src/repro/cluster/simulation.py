"""Top-level experiment runner.

``run_experiment(config)`` builds the cluster, runs the configured IOR
workload to completion and returns :class:`~repro.metrics.RunMetrics`.
``compare_policies(config)`` runs the same point under a baseline and a
treatment policy (same seed, so both see identical server-side jitter) and
reports the speed-up — the quantity every figure in the paper plots.
"""

from __future__ import annotations

import dataclasses
import sys
import typing as t

from ..config import ClusterConfig
from ..des import AllOf, Process
from ..errors import SimulationError
from ..metrics.collectors import (
    ClientMetrics,
    RunMetrics,
    collect_client_metrics,
    collect_resilience_metrics,
)
from ..metrics.report import speedup
from ..workloads.ior import spawn_ior_processes
from .builder import Cluster, build_cluster

__all__ = ["Simulation", "run_experiment", "compare_policies", "PolicyComparison"]


class Simulation:
    """One experiment point: a cluster plus its IOR workload."""

    def __init__(
        self, config: ClusterConfig, spans: t.Any | None = None
    ) -> None:
        self.config = config
        self.cluster: Cluster = build_cluster(config, spans=spans)
        self._ran = False
        #: The :class:`~repro.shard.ShardOutcome` when the run executed on
        #: shard calendars (None on the single-calendar path); the bench
        #: runner reads the round/critical-path accounting from here.
        self.shard_outcome: t.Any | None = None

    def run(self) -> RunMetrics:
        """Run the workload to completion; single-shot per instance.

        When the ambient ``REPRO_SHARDS`` request is set (``--shards N``)
        and the point is eligible, the run executes on N coupled shard
        calendars instead of this cluster's single one — byte-identical
        results, see :mod:`repro.shard`.  Ineligible points (fault plans,
        tracing, ``REPRO_NO_SHARDS``) fall back here, with a one-line
        stderr note naming the blocking reason.
        """
        if self._ran:
            raise SimulationError(
                "a Simulation is single-shot; build a new one to re-run"
            )
        self._ran = True
        sharded = self._maybe_run_sharded()
        if sharded is not None:
            return sharded
        cluster = self.cluster
        env = cluster.env
        workload = self.config.workload

        client_processes: list[list[Process]] = []
        all_processes: list[Process] = []
        for client in cluster.clients:
            procs = spawn_ior_processes(
                client,
                workload,
                pid_base=client.index * workload.n_processes,
                segment_base=client.index * workload.n_processes,
                rng=cluster.rngs.stream(f"migration_client{client.index}"),
            )
            client_processes.append(procs)
            all_processes.extend(procs)

        env.run(until=AllOf(env, all_processes))
        elapsed = env.now
        if elapsed <= 0:
            raise SimulationError("workload finished in zero simulated time")

        clients: list[ClientMetrics] = []
        total_bytes = 0
        for client, procs in zip(cluster.clients, client_processes):
            bytes_read = sum(int(proc.value) for proc in procs)
            total_bytes += bytes_read
            clients.append(collect_client_metrics(client, elapsed, bytes_read))
        resilience = (
            collect_resilience_metrics(cluster, elapsed, total_bytes)
            if cluster.injector is not None
            else None
        )
        if resilience is not None:
            cluster.metrics.ingest_dataclass("resilience", resilience)
        if cluster.spans is not None:
            cluster.spans.close_open_spans()
        return RunMetrics(
            policy=self.config.policy,
            elapsed=elapsed,
            clients=tuple(clients),
            resilience=resilience,
        )

    def _maybe_run_sharded(self) -> RunMetrics | None:
        """The ambient ``--shards`` path; None means run single-calendar."""
        from ..shard import run_sharded, shard_block_reason, shards_requested

        n_shards = shards_requested()
        if n_shards < 2:
            return None
        reason = shard_block_reason(self.config, self.cluster.spans)
        if reason is not None:
            # The fallback is correct either way (byte-identical), but a
            # user who typed --shards deserves to know the request did
            # not take — and why — rather than wondering where the
            # speedup went.
            print(
                f"warning: --shards {n_shards} requested but this run "
                f"stays single-calendar: {reason}",
                file=sys.stderr,
            )
            return None
        outcome = run_sharded(self.config, n_shards)
        self.shard_outcome = outcome
        cluster = self.cluster
        # Mirror the outcome onto this (never-run) cluster so every probe
        # reads what the single calendar would have recorded: the bench
        # runner's des.events_processed, the switch counters.
        cluster.env.events_processed = outcome.model_events
        cluster.env._now = outcome.elapsed
        cluster.switch.bytes_switched.add(outcome.fabric_bytes)
        cluster.switch.packets_switched.add(outcome.fabric_packets)
        return RunMetrics(
            policy=self.config.policy,
            elapsed=outcome.elapsed,
            clients=outcome.clients,
            resilience=None,
        )


def run_experiment(config: ClusterConfig) -> RunMetrics:
    """Build and run one experiment point."""
    return Simulation(config).run()


@dataclasses.dataclass(frozen=True)
class PolicyComparison:
    """Paired A/B result for one experiment point."""

    baseline: RunMetrics
    treatment: RunMetrics

    @property
    def bandwidth_speedup(self) -> float:
        """Fractional bandwidth gain of the treatment (the paper's %)."""
        return speedup(self.baseline.bandwidth, self.treatment.bandwidth)

    @property
    def miss_rate_reduction(self) -> float:
        """Fractional L2 miss-rate reduction (positive = treatment better)."""
        if self.baseline.l2_miss_rate <= 0:
            return 0.0
        return 1.0 - self.treatment.l2_miss_rate / self.baseline.l2_miss_rate

    @property
    def unhalted_reduction(self) -> float:
        """Fractional CPU_CLK_UNHALTED reduction."""
        if self.baseline.unhalted_cycles <= 0:
            return 0.0
        return 1.0 - self.treatment.unhalted_cycles / self.baseline.unhalted_cycles


def compare_policies(
    config: ClusterConfig,
    baseline: str = "irqbalance",
    treatment: str = "source_aware",
) -> PolicyComparison:
    """Run one point under two policies with identical seeds and compare."""
    base_metrics = run_experiment(config.with_policy(baseline))
    treat_metrics = run_experiment(config.with_policy(treatment))
    return PolicyComparison(baseline=base_metrics, treatment=treat_metrics)
