"""Cluster assembly: wiring clients, servers and the network together.

* :class:`~repro.cluster.client_node.ClientNode` — one fully-wired client
  machine (cores, caches, buses, NIC, APIC, softirq daemons, PFS client,
  and the SAIs components when the configured policy needs hints);
* :func:`~repro.cluster.builder.build_cluster` — assemble a whole
  :class:`~repro.cluster.builder.Cluster` from a
  :class:`~repro.config.ClusterConfig`;
* :class:`~repro.cluster.simulation.Simulation` — run the configured IOR
  workload on the cluster and collect :class:`~repro.metrics.RunMetrics`;
  :func:`~repro.cluster.simulation.run_experiment` and
  :func:`~repro.cluster.simulation.compare_policies` are the one-call entry
  points the experiments and examples use.
"""

from .builder import Cluster, build_cluster
from .client_node import ClientNode
from .simulation import Simulation, compare_policies, run_experiment

__all__ = [
    "ClientNode",
    "Cluster",
    "build_cluster",
    "Simulation",
    "run_experiment",
    "compare_policies",
]
