"""Exception hierarchy for the SAIs reproduction.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch library failures without catching unrelated Python errors.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigError",
    "SimulationError",
    "ProtocolError",
    "CoreIdOutOfRangeError",
    "LayoutError",
    "StripRetryExhaustedError",
    "ServeError",
    "QueueFullError",
    "JobFailedError",
    "JobNotFoundError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class ConfigError(ReproError, ValueError):
    """An invalid configuration value was supplied."""


class SimulationError(ReproError, RuntimeError):
    """The discrete-event simulation reached an inconsistent state."""


class ProtocolError(ReproError, ValueError):
    """A network packet or protocol field could not be encoded/decoded."""


class CoreIdOutOfRangeError(ProtocolError):
    """``aff_core_id`` does not fit the 5-bit IP option number field.

    The paper's Figure 4 encoding dedicates 5 bits to the affinitive core,
    so at most :data:`repro.net.ip_options.MAX_ENCODABLE_CORES` (32) cores
    can be identified by SAIs.
    """


class LayoutError(ReproError, ValueError):
    """A file striping layout request was out of bounds or malformed."""


class StripRetryExhaustedError(SimulationError):
    """A strip request stayed unanswered through every client-side retry.

    Raised by the PFS client's per-strip retry watchdog
    (:class:`repro.pfs.client.PfsClient`) when a fault plan's
    ``max_strip_retries`` re-submissions all time out — e.g. a server
    whose transient-failure window outlasts the retry budget.
    """


class ServeError(ReproError):
    """Base class for run-control daemon (:mod:`repro.serve`) failures."""


class QueueFullError(ServeError):
    """The daemon's bounded submission queue rejected a new job.

    This is backpressure, not a crash: the submitter should retry with
    jittered backoff (the bundled :class:`repro.serve.client.ServeClient`
    does) or shed the request.  Wire form: the ``queue_full`` error code.
    """


class JobFailedError(ServeError):
    """A submitted job exhausted its per-attempt retry budget.

    Terminal and typed: the daemon stays up and keeps serving other
    submissions; only the submitter of the poisoned job sees this.
    Wire form: the ``job_failed`` error code on a ``status`` response.
    """


class JobNotFoundError(ServeError):
    """An unknown — or TTL-evicted — job id was queried.

    Completed results are kept for ``result_ttl`` seconds after they
    finish; resubmitting after eviction is cheap because the
    content-addressed result cache still holds the underlying run.
    """
