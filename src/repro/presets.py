"""Hardware-generation presets.

The default :class:`~repro.config.ClusterConfig` models the paper's 2008
Sun-Fire testbed.  These presets scale the same model to other hardware
generations so the paper's central question — *does interrupt data
locality beat load balance?* — can be re-asked where its conclusion
points: "datacenters with high-speed networks connections and for data
intensive applications".

The scaling logic per generation:

* NIC bandwidth grows much faster than per-core clocks (the I/O-wall
  argument of the paper's own introduction);
* cache-to-cache transfers stay *latency-bound per line*: coherence
  round trips shrank from ~310 ns to ~100 ns between 2008 and the 2020s —
  only ~3x, while NICs grew 25-100x;
* storage moved from 7.2K spindles to NVMe: the server tier stops being
  the low-server-count bottleneck.

Net effect: the fraction of strip time spent in the migration path
*grows* with hardware generation, so the source-aware win should persist
or grow — which the ``modern_hardware`` example and test verify.
"""

from __future__ import annotations

import dataclasses

from .config import (
    ClientConfig,
    ClusterConfig,
    CostModel,
    NetworkConfig,
    ServerConfig,
    WorkloadConfig,
)
from .units import GHz, Gbit, KiB, MiB

__all__ = ["paper_testbed", "modern_datacenter", "GENERATIONS"]


def paper_testbed(**overrides) -> ClusterConfig:
    """The 2008 Sun-Fire cluster of Sec. V-A (the package defaults)."""
    return ClusterConfig(**overrides)


def modern_datacenter(
    nic_gigabits: int = 25, **overrides
) -> ClusterConfig:
    """A 2020s datacenter node: 16 cores, 25 GbE, NVMe-backed servers.

    Per-line coherence latency improved ~3x (100 ns/line => c2c ≈
    640 MB/s effective) while protocol processing, copies and crypto
    improved ~5-10x (AES-NI).  The NIC improved 8-33x — the imbalance the
    paper predicted.
    """
    client = ClientConfig(
        n_cores=16,
        n_sockets=2,
        clock_hz=3.0 * GHz,
        l2_bytes=1024 * KiB,
        nic_ports=nic_gigabits,
        nic_port_bandwidth=1.0 * Gbit,
        memory_bandwidth=50_000 * MiB,
    )
    costs = CostModel(
        protocol_rate=25.0e9,
        irq_overhead=1.0e-6,
        c2c_rate=6.4e8,                 # ~100 ns/line cross-socket
        intra_socket_c2c_rate=1.6e9,    # ~40 ns/line shared L3
        c2c_latency=1.0e-6,
        mem_fetch_rate=8.0e8,
        local_copy_rate=20.0e9,
        encrypt_rate=3.0e9,             # AES-NI
        wakeup_cost=0.5e-6,
        request_issue_cost=2.0e-6,
    )
    server = ServerConfig(
        disk_rate=3000 * MiB,           # NVMe streaming
        disk_seek=80e-6,                # NVMe access latency
        cache_hit_ratio=0.62,
        cache_rate=8000 * MiB,
        nic_bandwidth=float(nic_gigabits) * Gbit,
        service_overhead=10e-6,
    )
    network = NetworkConfig(
        latency=10e-6,
        framing_overhead=0.03,          # jumbo frames
        switch_bandwidth=3200 * Gbit,
    )
    workload = WorkloadConfig(
        n_processes=16, transfer_size=1 * MiB, file_size=32 * MiB
    )
    defaults = dict(
        client=client,
        costs=costs,
        server=server,
        network=network,
        workload=workload,
        n_servers=32,
        strip_size=64 * KiB,
    )
    defaults.update(overrides)
    return ClusterConfig(**defaults)


#: Named generations for sweeps: (label, config factory).
GENERATIONS = {
    "2008 / 3 GbE (paper)": lambda: paper_testbed(
        workload=WorkloadConfig(
            n_processes=8, transfer_size=1 * MiB, file_size=8 * MiB
        ),
        n_servers=32,
    ),
    "2020s / 10 GbE": lambda: modern_datacenter(
        nic_gigabits=10,
        workload=WorkloadConfig(
            n_processes=16, transfer_size=1 * MiB, file_size=16 * MiB
        ),
    ),
    "2020s / 25 GbE": lambda: modern_datacenter(
        nic_gigabits=25,
        workload=WorkloadConfig(
            n_processes=16, transfer_size=1 * MiB, file_size=16 * MiB
        ),
    ),
}


def generation_configs() -> dict[str, ClusterConfig]:
    """Materialize the generation sweep."""
    return {label: factory() for label, factory in GENERATIONS.items()}
