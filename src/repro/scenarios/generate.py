"""Expanding a :class:`~repro.scenarios.spec.ScenarioSpec` into configs.

The contract is byte-reproducibility: ``generate_scenarios(spec, n,
seed, scale)`` returns the same :class:`~repro.config.ClusterConfig`
instances — field for field, bit for bit — in any process, under any
``--jobs`` fan-out, on any platform.  That follows from how draws are
made: every knob of scenario *i* is a pure function of ``(seed, i,
knob name)`` through :func:`repro.rng.hash_unit`, with no sequential
stream state to perturb (the same order-independence idiom the fault
injector uses for per-packet decisions).  Adding a knob therefore never
shifts the draws of existing knobs, and scenario *i* is the same whether
you generate 1 or 1000.

``scale`` only dials the per-process file size (run length), exactly
like the figure experiments: bandwidth is a steady-state rate, so quick
sweeps keep the topology distribution while shrinking wall-clock cost.
"""

from __future__ import annotations

import dataclasses
import typing as t

from ..config import (
    ClientConfig,
    ClusterConfig,
    NetworkConfig,
    ServerConfig,
    WorkloadConfig,
)
from ..errors import ConfigError
from ..rng import hash_unit, stable_hash
from ..units import Gbit, MiB, USEC
from .spec import ScenarioSpec

__all__ = [
    "Scenario",
    "TopologyFeatures",
    "generate_scenarios",
    "scenario_file_size",
]

#: Per-process bytes by scale.  Smaller than the figure experiments'
#: presets — a sweep runs dozens of scenarios, so each one is kept light.
_FILE_SIZE_BASE = {"quick": 1 * MiB, "default": 8 * MiB, "full": 32 * MiB}


def scenario_file_size(scale: str, transfer_size: int) -> int:
    """Per-process bytes for a generated scenario at ``scale``."""
    # Imported lazily: repro.experiments pulls in the sweep family,
    # which imports this module (registration-time cycle).
    from ..experiments.base import resolve_scale

    base = _FILE_SIZE_BASE[resolve_scale(scale)]
    return max(base, 2 * transfer_size)


@dataclasses.dataclass(frozen=True)
class TopologyFeatures:
    """The topology coordinates a scenario is bucketed by in reports.

    Derived purely from the drawn knobs, so features are as reproducible
    as the configs themselves and travel with the point through the
    runner (win-rate tables in :mod:`repro.scenarios.report` group on
    them).
    """

    #: Client class name the scenario drew.
    klass: str
    n_clients: int
    n_servers: int
    #: Fan-in depth: servers per client node (how many sources converge
    #: on one interrupt-taking machine).
    fan_in: float
    #: Switch tiers (1 = single switch, 2 = leaf–spine, ...).
    tiers: int
    #: Drawn leaf→spine oversubscription ratio.
    oversubscription: float
    #: Link heterogeneity: aggregate client NIC over one server NIC.
    link_ratio: float
    #: ``"strip"`` for coalesced trains, else the MSS in bytes.
    mss_label: str
    operation: str
    access_pattern: str


@dataclasses.dataclass(frozen=True)
class Scenario:
    """One generated point: a concrete config plus its feature vector."""

    index: int
    config: ClusterConfig
    features: TopologyFeatures
    #: The A/B pair the sweep scores this scenario on (from the spec).
    baseline: str
    treatment: str


def _u(seed: int, index: int, knob: str) -> float:
    return hash_unit(seed, index, stable_hash(knob))


def _pick_class(spec: ScenarioSpec, u: float):
    total = sum(klass.weight for klass in spec.classes)
    acc = 0.0
    for klass in spec.classes:
        acc += klass.weight / total
        if u < acc:
            return klass
    return spec.classes[-1]


def _client_nic(gigabits: float) -> tuple[int, float]:
    """Model integral speeds as bonded 1-Gigabit ports, else one port."""
    if float(gigabits).is_integer() and 1 <= gigabits <= 8:
        return int(gigabits), 1.0 * Gbit
    return 1, float(gigabits) * Gbit


def _one_scenario(
    spec: ScenarioSpec, index: int, seed: int, scale: str
) -> Scenario:
    klass = _pick_class(spec, _u(seed, index, "client.class"))
    n_cores = klass.cores.sample(_u(seed, index, "client.cores"))
    client_gbit = float(
        klass.nic_gigabits.sample(_u(seed, index, "client.nic_gigabits"))
    )
    nic_ports, port_bw = _client_nic(client_gbit)
    n_clients = int(spec.n_clients.sample(_u(seed, index, "clients.count")))
    n_servers = int(spec.n_servers.sample(_u(seed, index, "servers.count")))
    server_gbit = float(
        spec.server_gigabits.sample(_u(seed, index, "servers.nic_gigabits"))
    )
    disk_mib = float(spec.disk_mib.sample(_u(seed, index, "servers.disk_mib")))
    cache_hit = float(spec.cache_hit.sample(_u(seed, index, "servers.cache_hit")))
    tiers = int(spec.tiers.sample(_u(seed, index, "network.tiers")))
    oversub = float(
        spec.oversubscription.sample(_u(seed, index, "network.oversubscription"))
    )
    latency_us = float(
        spec.latency_us.sample(_u(seed, index, "network.latency_us"))
    )
    mss = spec.mss.sample(_u(seed, index, "network.mss"))
    n_processes = int(
        spec.n_processes.sample(_u(seed, index, "workload.processes"))
    )
    transfer = int(
        spec.transfer_size.sample(_u(seed, index, "workload.transfer_size"))
    )
    operation = (
        "write"
        if _u(seed, index, "workload.operation") < spec.write_fraction
        else "read"
    )
    access = (
        "random"
        if _u(seed, index, "workload.access") < spec.random_fraction
        else "sequential"
    )

    client = ClientConfig(
        n_cores=n_cores,
        n_sockets=klass.sockets,
        nic_ports=nic_ports,
        nic_port_bandwidth=port_bw,
        napi=klass.napi,
    )
    server = ServerConfig(
        disk_rate=disk_mib * MiB,
        cache_hit_ratio=round(cache_hit, 4),
        nic_bandwidth=server_gbit * Gbit,
    )
    # The fabric model: each extra tier adds two switch hops to the
    # one-way path (client leaf -> spine -> server leaf for tiers=2),
    # and the shared backplane is the aggregate edge bandwidth divided
    # by the oversubscription ratio, floored at the fastest single link
    # so one flow is switch-limited only by its own NIC.
    client_agg_bw = client.nic_bandwidth
    edge_bw = max(n_servers * server_gbit * Gbit, n_clients * client_agg_bw)
    switch_bw = max(edge_bw / oversub, max(server_gbit * Gbit, client_agg_bw))
    network = NetworkConfig(
        latency=latency_us * USEC * (2 * tiers - 1),
        switch_bandwidth=switch_bw,
        mss=mss,
    )
    workload = WorkloadConfig(
        n_processes=n_processes,
        transfer_size=transfer,
        file_size=scenario_file_size(scale, transfer),
        operation=operation,
        access_pattern=access,
    )
    try:
        config = ClusterConfig(
            client=client,
            server=server,
            network=network,
            workload=workload,
            n_servers=n_servers,
            n_clients=n_clients,
            policy=spec.baseline,
            seed=1 + int(_u(seed, index, "seed") * 2**31),
        )
    except ConfigError as exc:  # pragma: no cover - spec validation gates
        raise ConfigError(
            f"spec {spec.name!r} scenario {index} draws an invalid "
            f"config: {exc}"
        ) from exc
    features = TopologyFeatures(
        klass=klass.name,
        n_clients=n_clients,
        n_servers=n_servers,
        fan_in=round(n_servers / n_clients, 3),
        tiers=tiers,
        oversubscription=round(oversub, 3),
        link_ratio=round(client_agg_bw / (server_gbit * Gbit), 3),
        mss_label="strip" if mss is None else str(int(mss)),
        operation=operation,
        access_pattern=access,
    )
    return Scenario(
        index=index,
        config=config,
        features=features,
        baseline=spec.baseline,
        treatment=spec.treatment,
    )


def generate_scenarios(
    spec: ScenarioSpec,
    samples: int,
    seed: int = 1,
    scale: str = "default",
) -> tuple[Scenario, ...]:
    """Expand ``spec`` into ``samples`` concrete scenarios.

    Byte-reproducible from ``(spec, seed)``; ``scale`` only dials run
    length (:func:`scenario_file_size`).  Scenario ``i`` is independent
    of ``samples``, so growing a sweep extends it without re-drawing
    what was already generated (and the content-addressed result cache
    keeps the old points' results warm — DESIGN.md §11).
    """
    from ..experiments.base import resolve_scale

    if not isinstance(samples, int) or samples < 1:
        raise ConfigError(f"samples must be a positive int, got {samples!r}")
    scale = resolve_scale(scale)
    return tuple(
        _one_scenario(spec, index, int(seed), scale)
        for index in range(samples)
    )
