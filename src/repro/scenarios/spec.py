"""Declarative scenario specs: schema, validation, JSON/TOML loading.

A :class:`ScenarioSpec` is a compact, frozen description of a *family*
of clusters: distributions over client core counts and NIC speeds,
heterogeneous client classes, server counts and disk rates, switch-tier
depth and oversubscription, and the read/write mix.  The generator
(:mod:`repro.scenarios.generate`) expands it into concrete
:class:`~repro.config.ClusterConfig` instances, byte-reproducible from
``(spec, seed)``.

Loading mirrors :func:`repro.faults.load_fault_plan`: every failure mode
— unreadable file, invalid JSON/TOML, unknown keys, out-of-range values
— surfaces as a uniform :class:`~repro.errors.ConfigError` naming the
file, which the CLI maps to exit code 2.  The full schema, knob by knob,
is documented in ``docs/SCENARIOS.md``.
"""

from __future__ import annotations

import dataclasses
import json
import typing as t

from ..errors import ConfigError
from ..net.ip_options import MAX_ENCODABLE_CORES
from ..units import KiB, parse_size
from .dist import Choice, Const, Distribution, Uniform, UniformInt, dist_to_jsonable, parse_dist

__all__ = [
    "ClientClassSpec",
    "ScenarioSpec",
    "BUILTIN_SPECS",
    "spec_from_mapping",
    "spec_to_mapping",
    "load_spec",
]

#: Minimum plausible TCP MSS (RFC 791 minimum reassembly minus headers).
_MIN_MSS = 576


def _int_atom(raw: t.Any) -> int:
    if isinstance(raw, bool) or not isinstance(raw, int):
        raise ConfigError(f"expected an integer, got {raw!r}")
    return raw


def _number_atom(raw: t.Any) -> float:
    if isinstance(raw, bool) or not isinstance(raw, (int, float)):
        raise ConfigError(f"expected a number, got {raw!r}")
    return float(raw)


def _size_atom(raw: t.Any) -> int:
    return parse_size(raw)


def _mss_atom(raw: t.Any) -> int | None:
    if raw is None:
        return None
    value = _int_atom(raw)
    if value < _MIN_MSS:
        raise ConfigError(f"mss must be None or >= {_MIN_MSS}, got {value}")
    return value


def _check_min(field: str, dist: Distribution, minimum: float) -> None:
    bounds = dist.bounds()
    if bounds is None:
        support = dist.support()
        if support is None:
            raise ConfigError(f"{field}: distribution has no numeric bounds")
        raise ConfigError(f"{field}: non-numeric values {support!r}")
    if bounds[0] < minimum:
        raise ConfigError(
            f"{field}: values must be >= {minimum:g}, "
            f"distribution reaches {bounds[0]:g}"
        )


def _check_fraction(field: str, value: float) -> None:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ConfigError(f"{field} must be a number, got {value!r}")
    if not 0.0 <= value <= 1.0:
        raise ConfigError(f"{field} must be in [0, 1], got {value}")


@dataclasses.dataclass(frozen=True)
class ClientClassSpec:
    """One heterogeneous client class (a machine shape plus a weight).

    Each generated scenario draws its client machine from the spec's
    classes, weighted by :attr:`weight` — the Helix-style way of saying
    "30% of sampled clusters have fat 16-core clients".
    """

    name: str
    #: Relative probability of a scenario drawing this class.
    weight: float = 1.0
    #: Core count — must have *finite* support (const or choice), every
    #: value a multiple of ``sockets`` and at most the SAIs IP option's
    #: 5-bit core-id capacity (``MAX_ENCODABLE_CORES``).
    cores: Distribution = dataclasses.field(default_factory=lambda: Const(8))
    #: CPU packages (a plain int: it gates which core counts are legal).
    sockets: int = 2
    #: Aggregate client NIC speed in Gigabits; integral values model
    #: bonded 1-Gigabit ports (the paper's head node), fractional or
    #: >4 values a single faster port.
    nic_gigabits: Distribution = dataclasses.field(
        default_factory=lambda: Const(3)
    )
    #: Linux-NAPI adaptive interrupt coalescing on this class's driver.
    napi: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("client class name must be non-empty")
        if not isinstance(self.weight, (int, float)) or self.weight <= 0:
            raise ConfigError(
                f"client class {self.name!r}: weight must be positive, "
                f"got {self.weight!r}"
            )
        if not isinstance(self.sockets, int) or self.sockets < 1:
            raise ConfigError(
                f"client class {self.name!r}: sockets must be a positive "
                f"int, got {self.sockets!r}"
            )
        support = self.cores.support()
        if support is None:
            raise ConfigError(
                f"client class {self.name!r}: cores needs finite support "
                "(a constant or a choice), not a continuous distribution"
            )
        for value in support:
            if not isinstance(value, int) or isinstance(value, bool):
                raise ConfigError(
                    f"client class {self.name!r}: cores must be integers, "
                    f"got {value!r}"
                )
            if not 1 <= value <= MAX_ENCODABLE_CORES:
                raise ConfigError(
                    f"client class {self.name!r}: {value} cores exceeds the "
                    f"SAIs option encoding ({MAX_ENCODABLE_CORES} max)"
                )
            if value % self.sockets:
                raise ConfigError(
                    f"client class {self.name!r}: {value} cores do not "
                    f"split evenly over {self.sockets} sockets"
                )
        _check_min(f"client class {self.name!r}: nic_gigabits", self.nic_gigabits, 0.1)
        if not isinstance(self.napi, bool):
            raise ConfigError(
                f"client class {self.name!r}: napi must be a boolean, "
                f"got {self.napi!r}"
            )


@dataclasses.dataclass(frozen=True)
class ScenarioSpec:
    """A compact declarative family of clusters and workloads.

    Every field that varies across scenarios is a
    :class:`~repro.scenarios.dist.Distribution`; plain scalars pin a
    knob for the whole family.  Validation is eager and uniform
    (:class:`~repro.errors.ConfigError`), so a malformed spec fails at
    load time, never mid-sweep.
    """

    name: str
    #: Client machine classes, drawn per scenario by weight.
    classes: tuple[ClientClassSpec, ...]
    #: Number of client nodes.
    n_clients: Distribution = dataclasses.field(default_factory=lambda: Const(1))
    #: Number of PVFS I/O servers.
    n_servers: Distribution = dataclasses.field(default_factory=lambda: Const(8))
    #: Server NIC speed in Gigabits.
    server_gigabits: Distribution = dataclasses.field(
        default_factory=lambda: Const(1)
    )
    #: Server streaming disk rate in MiB/s.
    disk_mib: Distribution = dataclasses.field(default_factory=lambda: Const(80))
    #: Server page-cache hit ratio in [0, 1].
    cache_hit: Distribution = dataclasses.field(
        default_factory=lambda: Const(0.62)
    )
    #: Switch tiers: 1 = single switch, 2 = leaf–spine, 3 = leaf–spine–
    #: core.  Each extra tier adds two switch hops to the path, so the
    #: effective one-way fabric latency is ``latency_us x (2·tiers - 1)``.
    tiers: Distribution = dataclasses.field(default_factory=lambda: Const(1))
    #: Leaf→spine uplink oversubscription ratio (>= 1).  The shared
    #: switch backplane is sized at ``aggregate edge bandwidth / ratio``
    #: (floored at the fastest single link), so ratios above 1 make the
    #: fabric a contended resource.
    oversubscription: Distribution = dataclasses.field(
        default_factory=lambda: Const(1.0)
    )
    #: Per-hop one-way switch latency in microseconds.
    latency_us: Distribution = dataclasses.field(
        default_factory=lambda: Const(60.0)
    )
    #: TCP MSS: ``None`` = coalesced one-interrupt-per-strip trains,
    #: 1500/8960 = per-segment packets and interrupts.
    mss: Distribution = dataclasses.field(default_factory=lambda: Const(None))
    #: Concurrent IOR processes per client.
    n_processes: Distribution = dataclasses.field(
        default_factory=lambda: Const(8)
    )
    #: Bytes per IOR read/write call (accepts "512K"-style labels).
    transfer_size: Distribution = dataclasses.field(
        default_factory=lambda: Const(512 * KiB)
    )
    #: Probability that a scenario runs the write path instead of read.
    write_fraction: float = 0.0
    #: Probability that a scenario uses the random access pattern.
    random_fraction: float = 0.0
    #: The A/B pair every scenario is scored on.
    baseline: str = "irqbalance"
    treatment: str = "source_aware"

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("scenario spec name must be non-empty")
        if not self.classes:
            raise ConfigError("scenario spec needs at least one client class")
        names = [klass.name for klass in self.classes]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate client class names: {names}")
        _check_min("clients.count", self.n_clients, 1)
        _check_min("servers.count", self.n_servers, 1)
        _check_min("servers.nic_gigabits", self.server_gigabits, 0.1)
        _check_min("servers.disk_mib", self.disk_mib, 1)
        _check_min("servers.cache_hit", self.cache_hit, 0.0)
        bounds = self.cache_hit.bounds()
        if bounds is not None and bounds[1] > 1.0:
            raise ConfigError(
                f"servers.cache_hit must stay in [0, 1], "
                f"distribution reaches {bounds[1]:g}"
            )
        _check_min("network.tiers", self.tiers, 1)
        _check_min("network.oversubscription", self.oversubscription, 1.0)
        _check_min("network.latency_us", self.latency_us, 0.0)
        support = self.tiers.support()
        if support is not None:
            for value in support:
                if not isinstance(value, int) or isinstance(value, bool):
                    raise ConfigError(
                        f"network.tiers must be integers, got {value!r}"
                    )
        _check_min("workload.processes", self.n_processes, 1)
        _check_min("workload.transfer_size", self.transfer_size, 1)
        _check_fraction("workload.write_fraction", self.write_fraction)
        _check_fraction("workload.random_fraction", self.random_fraction)
        # Validate the A/B pair against the live policy registry, the
        # same way ClusterConfig validates its policy field.
        from ..core import policies as _policies  # noqa: F401  (registers)
        from ..core.policy import available_policies, unknown_policy_error

        for policy in (self.baseline, self.treatment):
            if policy not in available_policies():
                raise unknown_policy_error(policy)


_CLASS_KEYS = ("name", "weight", "cores", "sockets", "nic_gigabits", "napi")
_TOP_KEYS = ("name", "clients", "servers", "network", "workload", "policies")


def _section(
    payload: t.Mapping[str, t.Any], key: str, allowed: t.Sequence[str]
) -> dict[str, t.Any]:
    section = payload.get(key, {})
    if not isinstance(section, t.Mapping):
        raise ConfigError(
            f"spec section {key!r} must be an object, "
            f"got {type(section).__name__}"
        )
    unknown = sorted(set(section) - set(allowed))
    if unknown:
        raise ConfigError(
            f"unknown key(s) in spec section {key!r}: {', '.join(unknown)}; "
            f"valid keys: {', '.join(allowed)}"
        )
    return dict(section)


def _class_from_mapping(payload: t.Mapping[str, t.Any]) -> ClientClassSpec:
    if not isinstance(payload, t.Mapping):
        raise ConfigError(
            f"client class must be an object, got {type(payload).__name__}"
        )
    unknown = sorted(set(payload) - set(_CLASS_KEYS))
    if unknown:
        raise ConfigError(
            f"unknown client class key(s): {', '.join(unknown)}; "
            f"valid keys: {', '.join(_CLASS_KEYS)}"
        )
    if "name" not in payload:
        raise ConfigError("client class needs a name")
    kwargs: dict[str, t.Any] = {"name": payload["name"]}
    if "weight" in payload:
        kwargs["weight"] = payload["weight"]
    if "sockets" in payload:
        kwargs["sockets"] = payload["sockets"]
    if "napi" in payload:
        kwargs["napi"] = payload["napi"]
    if "cores" in payload:
        kwargs["cores"] = parse_dist("cores", payload["cores"], _int_atom)
    if "nic_gigabits" in payload:
        kwargs["nic_gigabits"] = parse_dist(
            "nic_gigabits", payload["nic_gigabits"], _number_atom
        )
    return ClientClassSpec(**kwargs)


def spec_from_mapping(payload: t.Mapping[str, t.Any]) -> ScenarioSpec:
    """Build a :class:`ScenarioSpec` from a parsed-JSON style mapping.

    Unknown keys at any level raise :class:`~repro.errors.ConfigError`
    (the ``fault_plan_from_mapping`` contract), so typos fail loudly
    instead of silently pinning a knob to its default.
    """
    if not isinstance(payload, t.Mapping):
        raise ConfigError(
            f"scenario spec must be a JSON object, got {type(payload).__name__}"
        )
    unknown = sorted(set(payload) - set(_TOP_KEYS))
    if unknown:
        raise ConfigError(
            f"unknown spec key(s): {', '.join(unknown)}; "
            f"valid keys: {', '.join(_TOP_KEYS)}"
        )
    if "name" not in payload or not isinstance(payload["name"], str):
        raise ConfigError("scenario spec needs a string name")
    clients = _section(payload, "clients", ("count", "classes"))
    servers = _section(
        payload, "servers", ("count", "nic_gigabits", "disk_mib", "cache_hit")
    )
    network = _section(
        payload, "network", ("tiers", "oversubscription", "latency_us", "mss")
    )
    workload = _section(
        payload,
        "workload",
        ("processes", "transfer_size", "write_fraction", "random_fraction"),
    )
    policies = _section(payload, "policies", ("baseline", "treatment"))

    raw_classes = clients.get("classes", [{"name": "default"}])
    if not isinstance(raw_classes, (list, tuple)) or not raw_classes:
        raise ConfigError(
            f"clients.classes must be a non-empty list, got {raw_classes!r}"
        )
    kwargs: dict[str, t.Any] = {
        "name": payload["name"],
        "classes": tuple(_class_from_mapping(klass) for klass in raw_classes),
    }
    if "count" in clients:
        kwargs["n_clients"] = parse_dist(
            "clients.count", clients["count"], _int_atom
        )
    if "count" in servers:
        kwargs["n_servers"] = parse_dist(
            "servers.count", servers["count"], _int_atom
        )
    if "nic_gigabits" in servers:
        kwargs["server_gigabits"] = parse_dist(
            "servers.nic_gigabits", servers["nic_gigabits"], _number_atom
        )
    if "disk_mib" in servers:
        kwargs["disk_mib"] = parse_dist(
            "servers.disk_mib", servers["disk_mib"], _number_atom
        )
    if "cache_hit" in servers:
        kwargs["cache_hit"] = parse_dist(
            "servers.cache_hit", servers["cache_hit"], _number_atom
        )
    if "tiers" in network:
        kwargs["tiers"] = parse_dist("network.tiers", network["tiers"], _int_atom)
    if "oversubscription" in network:
        kwargs["oversubscription"] = parse_dist(
            "network.oversubscription", network["oversubscription"], _number_atom
        )
    if "latency_us" in network:
        kwargs["latency_us"] = parse_dist(
            "network.latency_us", network["latency_us"], _number_atom
        )
    if "mss" in network:
        kwargs["mss"] = parse_dist("network.mss", network["mss"], _mss_atom)
    if "processes" in workload:
        kwargs["n_processes"] = parse_dist(
            "workload.processes", workload["processes"], _int_atom
        )
    if "transfer_size" in workload:
        kwargs["transfer_size"] = parse_dist(
            "workload.transfer_size", workload["transfer_size"], _size_atom
        )
    if "write_fraction" in workload:
        kwargs["write_fraction"] = workload["write_fraction"]
    if "random_fraction" in workload:
        kwargs["random_fraction"] = workload["random_fraction"]
    if "baseline" in policies:
        kwargs["baseline"] = policies["baseline"]
    if "treatment" in policies:
        kwargs["treatment"] = policies["treatment"]
    try:
        return ScenarioSpec(**kwargs)
    except ConfigError:
        raise
    except (TypeError, ValueError) as exc:
        raise ConfigError(f"invalid scenario spec: {exc}") from exc


def spec_to_mapping(spec: ScenarioSpec) -> dict[str, t.Any]:
    """The JSON-ready inverse of :func:`spec_from_mapping`.

    ``spec_from_mapping(spec_to_mapping(spec)) == spec`` (the round-trip
    the spec tests pin), which is also how the committed example specs
    under ``examples/specs/`` were produced from the built-ins.
    """
    return {
        "name": spec.name,
        "clients": {
            "count": dist_to_jsonable(spec.n_clients),
            "classes": [
                {
                    "name": klass.name,
                    "weight": klass.weight,
                    "cores": dist_to_jsonable(klass.cores),
                    "sockets": klass.sockets,
                    "nic_gigabits": dist_to_jsonable(klass.nic_gigabits),
                    "napi": klass.napi,
                }
                for klass in spec.classes
            ],
        },
        "servers": {
            "count": dist_to_jsonable(spec.n_servers),
            "nic_gigabits": dist_to_jsonable(spec.server_gigabits),
            "disk_mib": dist_to_jsonable(spec.disk_mib),
            "cache_hit": dist_to_jsonable(spec.cache_hit),
        },
        "network": {
            "tiers": dist_to_jsonable(spec.tiers),
            "oversubscription": dist_to_jsonable(spec.oversubscription),
            "latency_us": dist_to_jsonable(spec.latency_us),
            "mss": dist_to_jsonable(spec.mss),
        },
        "workload": {
            "processes": dist_to_jsonable(spec.n_processes),
            "transfer_size": dist_to_jsonable(spec.transfer_size),
            "write_fraction": spec.write_fraction,
            "random_fraction": spec.random_fraction,
        },
        "policies": {
            "baseline": spec.baseline,
            "treatment": spec.treatment,
        },
    }


def load_spec(path: str) -> ScenarioSpec:
    """Read a :class:`ScenarioSpec` from a JSON or TOML file.

    The format follows the extension: ``.toml`` parses with the standard
    library's ``tomllib`` (Python >= 3.11; a uniform ConfigError explains
    the gate on 3.10), everything else parses as JSON.  Every failure
    mode surfaces as :class:`~repro.errors.ConfigError` naming the file.
    """
    if str(path).endswith(".toml"):
        try:
            import tomllib
        except ImportError:  # pragma: no cover - Python 3.10
            raise ConfigError(
                f"cannot read {path!r}: TOML specs need Python >= 3.11 "
                "(tomllib); use the JSON form instead"
            ) from None
        try:
            with open(path, "rb") as handle:
                payload = tomllib.load(handle)
        except OSError as exc:
            raise ConfigError(f"cannot read scenario spec {path!r}: {exc}") from exc
        except tomllib.TOMLDecodeError as exc:
            raise ConfigError(
                f"scenario spec {path!r} is not valid TOML: {exc}"
            ) from exc
    else:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except OSError as exc:
            raise ConfigError(f"cannot read scenario spec {path!r}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise ConfigError(
                f"scenario spec {path!r} is not valid JSON: {exc}"
            ) from exc
    try:
        return spec_from_mapping(payload)
    except ConfigError as exc:
        raise ConfigError(f"scenario spec {path!r}: {exc}") from exc


#: The three worked cookbook specs (docs/SCENARIOS.md), also committed
#: verbatim under ``examples/specs/`` — a test pins the two in sync.
BUILTIN_SPECS: dict[str, ScenarioSpec] = {
    "homogeneous": ScenarioSpec(
        name="homogeneous",
        classes=(
            ClientClassSpec(
                name="paper_head_node",
                cores=Const(8),
                sockets=2,
                nic_gigabits=Const(3),
            ),
        ),
        n_servers=Choice(values=(4, 8, 12), weights=(1.0, 1.0, 1.0)),
        disk_mib=Uniform(lo=60.0, hi=100.0),
        latency_us=Uniform(lo=40.0, hi=80.0),
        n_processes=Choice(values=(2, 4), weights=(1.0, 1.0)),
        transfer_size=Choice(
            values=(128 * KiB, 256 * KiB, 512 * KiB), weights=(1.0, 1.0, 1.0)
        ),
    ),
    "heterogeneous": ScenarioSpec(
        name="heterogeneous",
        classes=(
            ClientClassSpec(
                name="paper_head_node",
                weight=2.0,
                cores=Const(8),
                sockets=2,
                nic_gigabits=Const(3),
            ),
            ClientClassSpec(
                name="fat_numa",
                weight=1.0,
                cores=Choice(values=(16, 32), weights=(2.0, 1.0)),
                sockets=4,
                nic_gigabits=Const(10),
            ),
            ClientClassSpec(
                name="lean_edge",
                weight=1.0,
                cores=Const(4),
                sockets=1,
                nic_gigabits=Const(1),
            ),
        ),
        n_servers=UniformInt(lo=4, hi=10),
        server_gigabits=Choice(values=(1, 10), weights=(3.0, 1.0)),
        disk_mib=Uniform(lo=50.0, hi=120.0),
        cache_hit=Uniform(lo=0.4, hi=0.8),
        oversubscription=Choice(values=(1.0, 2.0), weights=(1.0, 1.0)),
        latency_us=Uniform(lo=40.0, hi=100.0),
        mss=Choice(values=(None, 8960), weights=(2.0, 1.0)),
        n_processes=Choice(values=(2, 4, 8), weights=(1.0, 2.0, 1.0)),
        transfer_size=Choice(
            values=(128 * KiB, 256 * KiB, 512 * KiB, 1024 * KiB),
            weights=(1.0, 1.0, 1.0, 1.0),
        ),
        write_fraction=0.25,
    ),
    "leafspine": ScenarioSpec(
        name="leafspine",
        classes=(
            ClientClassSpec(
                name="rack_client",
                cores=Const(8),
                sockets=2,
                nic_gigabits=Choice(values=(3, 10), weights=(2.0, 1.0)),
            ),
        ),
        n_clients=Choice(values=(1, 2), weights=(1.0, 1.0)),
        n_servers=UniformInt(lo=8, hi=16),
        disk_mib=Uniform(lo=60.0, hi=110.0),
        tiers=Choice(values=(2, 3), weights=(2.0, 1.0)),
        oversubscription=Choice(values=(2.0, 4.0, 8.0), weights=(1.0, 1.0, 1.0)),
        latency_us=Uniform(lo=20.0, hi=60.0),
        n_processes=Choice(values=(2, 4), weights=(1.0, 1.0)),
        transfer_size=Choice(
            values=(256 * KiB, 512 * KiB), weights=(1.0, 1.0)
        ),
        random_fraction=0.25,
    ),
}
