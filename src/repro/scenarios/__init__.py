"""``repro.scenarios``: declarative, seeded scenario generation.

Where the figure experiments hand-pick a handful of topologies, this
subsystem makes scenario breadth a knob: a compact declarative spec
(JSON/TOML — distributions over core counts, NIC/link speeds,
heterogeneous client classes, oversubscribed leaf–spine switch tiers,
read/write mixes) expands into concrete
:class:`~repro.config.ClusterConfig` instances, byte-reproducible from
``(spec, seed)``.  The ``sweep`` experiment family
(:mod:`repro.experiments.sweep`) samples generated scenarios through
the ordinary runner/cache/``--jobs``/``--shards`` machinery and
:func:`build_report` folds the results into win-rate tables bucketed by
topology features.

The cookbook — full schema, worked example specs, how to read the sweep
report — lives in ``docs/SCENARIOS.md``.
"""

from .ambient import (
    DEFAULT_CUSTOM_REQUEST,
    SweepRequest,
    ambient_sweep,
    set_ambient_sweep,
)
from .dist import (
    Choice,
    Const,
    Distribution,
    LogUniform,
    Uniform,
    UniformInt,
    parse_dist,
)
from .generate import (
    Scenario,
    TopologyFeatures,
    generate_scenarios,
    scenario_file_size,
)
from .report import BucketStat, SweepReport, build_report
from .spec import (
    BUILTIN_SPECS,
    ClientClassSpec,
    ScenarioSpec,
    load_spec,
    spec_from_mapping,
    spec_to_mapping,
)

__all__ = [
    "BUILTIN_SPECS",
    "BucketStat",
    "Choice",
    "ClientClassSpec",
    "Const",
    "DEFAULT_CUSTOM_REQUEST",
    "Distribution",
    "LogUniform",
    "Scenario",
    "ScenarioSpec",
    "SweepReport",
    "SweepRequest",
    "TopologyFeatures",
    "Uniform",
    "UniformInt",
    "ambient_sweep",
    "build_report",
    "generate_scenarios",
    "load_spec",
    "parse_dist",
    "scenario_file_size",
    "set_ambient_sweep",
    "spec_from_mapping",
    "spec_to_mapping",
]
