"""Aggregate sweep reporting: win-rate tables over topology features.

A sweep experiment's :class:`~repro.experiments.base.ExperimentResult`
is a per-scenario table (one row per generated scenario, numeric
feature and delta columns).  :func:`build_report` folds any number of
those — the pinned family, a custom ``--spec`` run, or both — into one
:class:`SweepReport`: overall win rate, per-experiment headlines, and
win-rate buckets over the topology features the generator records
(fan-in depth, switch tiers, oversubscription ratio, link
heterogeneity, operation, MSS regime).

Determinism contract: the report is a pure fold of the result rows, and
serialization sorts keys, so two invocations over the same results — or
one live run and one all-cache-hits replay — emit byte-identical JSON
(the CI sweep job ``cmp``'s exactly this).
"""

from __future__ import annotations

import dataclasses
import json
import typing as t

from ..errors import ConfigError
from ..metrics.report import render_table

if t.TYPE_CHECKING:  # pragma: no cover
    from ..experiments.base import ExperimentResult

__all__ = ["BucketStat", "SweepReport", "build_report", "SWEEP_HEADERS"]

#: The sweep family's row schema (pinned by the golden snapshots).
SWEEP_HEADERS = (
    "scenario",
    "class",
    "clients",
    "servers",
    "fan_in",
    "tiers",
    "oversub",
    "link_ratio",
    "mss",
    "transfer",
    "op",
    "baseline_MiB_s",
    "treatment_MiB_s",
    "delta_pct",
)


@dataclasses.dataclass(frozen=True)
class BucketStat:
    """Win-rate/delta summary of the scenarios landing in one bucket."""

    label: str
    n: int
    wins: int
    win_rate: float
    mean_delta_pct: float

    def to_dict(self) -> dict[str, t.Any]:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class SweepReport:
    """The aggregate over every scenario of one or more sweep results."""

    n_scenarios: int
    wins: int
    win_rate: float
    mean_delta_pct: float
    min_delta_pct: float
    max_delta_pct: float
    #: ``(exp_id, n, win_rate, mean_delta_pct)`` per folded experiment.
    experiments: tuple[tuple[str, int, float, float], ...]
    #: Feature name -> bucket stats, in a stable feature order.
    buckets: tuple[tuple[str, tuple[BucketStat, ...]], ...]
    #: Every scenario row, tagged with its experiment id.
    scenarios: tuple[dict[str, t.Any], ...]

    def to_dict(self) -> dict[str, t.Any]:
        return {
            "n_scenarios": self.n_scenarios,
            "wins": self.wins,
            "win_rate": self.win_rate,
            "mean_delta_pct": self.mean_delta_pct,
            "min_delta_pct": self.min_delta_pct,
            "max_delta_pct": self.max_delta_pct,
            "experiments": [
                {
                    "exp_id": exp_id,
                    "n": n,
                    "win_rate": win_rate,
                    "mean_delta_pct": mean,
                }
                for exp_id, n, win_rate, mean in self.experiments
            ],
            "buckets": {
                feature: [stat.to_dict() for stat in stats]
                for feature, stats in self.buckets
            },
            "scenarios": list(self.scenarios),
        }

    def to_json(self) -> str:
        """Deterministic JSON (sorted keys) for ``--report`` artifacts."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    def render(self) -> str:
        """The ASCII summary the ``sweep`` subcommand prints."""
        lines = [
            f"scenario sweep aggregate: {self.n_scenarios} scenario(s), "
            f"{self.wins} win(s) for the treatment "
            f"(win rate {self.win_rate:.0%}, "
            f"mean delta {self.mean_delta_pct:+.2f}%, "
            f"range [{self.min_delta_pct:+.2f}%, {self.max_delta_pct:+.2f}%])"
        ]
        if len(self.experiments) > 1:
            lines.append("")
            lines.append(
                render_table(
                    ("experiment", "n", "win_rate", "mean_delta_pct"),
                    tuple(
                        (exp_id, n, f"{win_rate:.0%}", f"{mean:+.2f}")
                        for exp_id, n, win_rate, mean in self.experiments
                    ),
                    title="per-experiment headline",
                )
            )
        for feature, stats in self.buckets:
            lines.append("")
            lines.append(
                render_table(
                    (feature, "n", "wins", "win_rate", "mean_delta_pct"),
                    tuple(
                        (
                            stat.label,
                            stat.n,
                            stat.wins,
                            f"{stat.win_rate:.0%}",
                            f"{stat.mean_delta_pct:+.2f}",
                        )
                        for stat in stats
                    ),
                    title=f"win rate by {feature.replace('_', ' ')}",
                )
            )
        return "\n".join(lines)


def _bucket_fan_in(value: float) -> str:
    if value < 2:
        return "fan-in < 2"
    if value <= 8:
        return "fan-in 2-8"
    return "fan-in > 8"


def _bucket_oversub(value: float) -> str:
    if value <= 1.001:
        return "1:1"
    if value <= 2.0:
        return "<= 2:1"
    if value <= 4.0:
        return "<= 4:1"
    return "> 4:1"


def _bucket_link_ratio(value: float) -> str:
    if value < 0.75:
        return "server-fat (< 0.75)"
    if value <= 1.5:
        return "balanced (0.75-1.5)"
    return "client-fat (> 1.5)"


#: feature name -> (row column, bucketing function).
_FEATURES: tuple[tuple[str, str, t.Callable[[t.Any], str]], ...] = (
    ("fan_in", "fan_in", lambda v: _bucket_fan_in(float(v))),
    ("tiers", "tiers", lambda v: f"{int(v)} tier(s)"),
    ("oversubscription", "oversub", lambda v: _bucket_oversub(float(v))),
    ("link_ratio", "link_ratio", lambda v: _bucket_link_ratio(float(v))),
    ("operation", "op", str),
    ("mss", "mss", lambda v: "strip-coalesced" if v == "strip" else f"mss {v}"),
)


def _mean(values: t.Sequence[float]) -> float:
    return round(sum(values) / len(values), 2) if values else 0.0


def build_report(results: t.Sequence["ExperimentResult"]) -> SweepReport:
    """Fold sweep-family results into one :class:`SweepReport`.

    Raises :class:`~repro.errors.ConfigError` if handed a result whose
    row schema is not the sweep family's — the report reads feature and
    delta columns by name.
    """
    if not results:
        raise ConfigError("cannot aggregate an empty result list")
    rows: list[dict[str, t.Any]] = []
    per_exp: list[tuple[str, int, float, float]] = []
    for result in results:
        if tuple(result.headers) != SWEEP_HEADERS:
            raise ConfigError(
                f"result {result.exp_id!r} is not a scenario sweep "
                f"(headers {result.headers!r})"
            )
        deltas = []
        for raw in result.rows:
            row = dict(zip(SWEEP_HEADERS, raw))
            row["exp_id"] = result.exp_id
            row["delta_pct"] = float(row["delta_pct"])
            rows.append(row)
            deltas.append(row["delta_pct"])
        wins = sum(1 for d in deltas if d > 0)
        per_exp.append(
            (
                result.exp_id,
                len(deltas),
                round(wins / len(deltas), 4) if deltas else 0.0,
                _mean(deltas),
            )
        )
    deltas = [row["delta_pct"] for row in rows]
    wins = sum(1 for d in deltas if d > 0)
    buckets: list[tuple[str, tuple[BucketStat, ...]]] = []
    for feature, column, classify in _FEATURES:
        grouped: dict[str, list[float]] = {}
        for row in rows:
            grouped.setdefault(classify(row[column]), []).append(
                row["delta_pct"]
            )
        stats = tuple(
            BucketStat(
                label=label,
                n=len(values),
                wins=sum(1 for d in values if d > 0),
                win_rate=round(
                    sum(1 for d in values if d > 0) / len(values), 4
                ),
                mean_delta_pct=_mean(values),
            )
            for label, values in sorted(grouped.items())
        )
        buckets.append((feature, stats))
    return SweepReport(
        n_scenarios=len(rows),
        wins=wins,
        win_rate=round(wins / len(rows), 4) if rows else 0.0,
        mean_delta_pct=_mean(deltas),
        min_delta_pct=min(deltas) if deltas else 0.0,
        max_delta_pct=max(deltas) if deltas else 0.0,
        experiments=tuple(per_exp),
        buckets=tuple(buckets),
        scenarios=tuple(rows),
    )
