"""The declarative distribution language of scenario specs.

A spec field that varies across generated scenarios is written as a
small JSON value describing a distribution instead of a scalar:

=====================================  ==================================
``42``, ``"512K"``, ``null``            constant (:class:`Const`)
``{"choice": [...]}``                   uniform pick from a finite set
``{"choice": [...], "weights": [...]}`` weighted pick (:class:`Choice`)
``{"uniform": [lo, hi]}``               real uniform on [lo, hi)
``{"uniform_int": [lo, hi]}``           integer uniform, inclusive
``{"loguniform": [lo, hi]}``            log-spaced real on [lo, hi)
=====================================  ==================================

Every distribution maps one deterministic unit draw ``u`` in [0, 1)
(from :func:`repro.rng.hash_unit`, keyed by ``(seed, scenario index,
knob name)``) to a value — there is no hidden stream state, which is
what makes generation byte-reproducible from ``(spec, seed)`` in any
process, in any order (DESIGN.md §11).

Size-valued fields accept the paper's suffix labels (``"512K"``,
``"2M"``) anywhere a number is expected; the *atom* parser passed to
:func:`parse_dist` normalizes them (see :func:`repro.units.parse_size`).
"""

from __future__ import annotations

import dataclasses
import math
import typing as t

from ..errors import ConfigError

__all__ = [
    "Distribution",
    "Const",
    "Choice",
    "Uniform",
    "UniformInt",
    "LogUniform",
    "parse_dist",
    "dist_to_jsonable",
]

#: JSON scalar → spec value converter (e.g. ``parse_size`` for sizes).
Atom = t.Callable[[t.Any], t.Any]

_DIST_KEYS = ("choice", "uniform", "uniform_int", "loguniform")


class Distribution:
    """Base of all spec distributions: one unit draw in, one value out."""

    def sample(self, u: float) -> t.Any:
        """The value at unit draw ``u`` (deterministic, no state)."""
        raise NotImplementedError

    def support(self) -> tuple[t.Any, ...] | None:
        """The finite set of possible values, or ``None`` if continuous."""
        return None

    def bounds(self) -> tuple[float, float] | None:
        """(lo, hi) for numeric distributions, ``None`` otherwise."""
        support = self.support()
        if support is None:
            return None
        numeric = [v for v in support if isinstance(v, (int, float))]
        if len(numeric) != len(support) or not numeric:
            return None
        return (min(numeric), max(numeric))


@dataclasses.dataclass(frozen=True)
class Const(Distribution):
    """A field that does not vary: every scenario gets ``value``."""

    value: t.Any

    def sample(self, u: float) -> t.Any:
        return self.value

    def support(self) -> tuple[t.Any, ...]:
        return (self.value,)


@dataclasses.dataclass(frozen=True)
class Choice(Distribution):
    """Weighted pick from a finite set of values."""

    values: tuple[t.Any, ...]
    weights: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise ConfigError("choice distribution needs at least one value")
        if len(self.weights) != len(self.values):
            raise ConfigError(
                f"choice weights ({len(self.weights)}) must match values "
                f"({len(self.values)})"
            )
        for weight in self.weights:
            if not isinstance(weight, (int, float)) or weight <= 0:
                raise ConfigError(
                    f"choice weights must be positive numbers, got {weight!r}"
                )

    def sample(self, u: float) -> t.Any:
        total = sum(self.weights)
        acc = 0.0
        for value, weight in zip(self.values, self.weights):
            acc += weight / total
            if u < acc:
                return value
        return self.values[-1]

    def support(self) -> tuple[t.Any, ...]:
        return self.values


@dataclasses.dataclass(frozen=True)
class Uniform(Distribution):
    """Real uniform on ``[lo, hi)``."""

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if not self.lo <= self.hi:
            raise ConfigError(
                f"uniform needs lo <= hi, got [{self.lo}, {self.hi}]"
            )

    def sample(self, u: float) -> float:
        return self.lo + u * (self.hi - self.lo)

    def bounds(self) -> tuple[float, float]:
        return (self.lo, self.hi)


@dataclasses.dataclass(frozen=True)
class UniformInt(Distribution):
    """Integer uniform on the inclusive range ``[lo, hi]``."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if not self.lo <= self.hi:
            raise ConfigError(
                f"uniform_int needs lo <= hi, got [{self.lo}, {self.hi}]"
            )

    def sample(self, u: float) -> int:
        return min(self.hi, self.lo + int(u * (self.hi - self.lo + 1)))

    def bounds(self) -> tuple[float, float]:
        return (float(self.lo), float(self.hi))


@dataclasses.dataclass(frozen=True)
class LogUniform(Distribution):
    """Log-spaced real on ``[lo, hi)`` (both strictly positive)."""

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if self.lo <= 0 or self.hi <= 0:
            raise ConfigError(
                f"loguniform bounds must be positive, got [{self.lo}, {self.hi}]"
            )
        if not self.lo <= self.hi:
            raise ConfigError(
                f"loguniform needs lo <= hi, got [{self.lo}, {self.hi}]"
            )

    def sample(self, u: float) -> float:
        return math.exp(
            math.log(self.lo) + u * (math.log(self.hi) - math.log(self.lo))
        )

    def bounds(self) -> tuple[float, float]:
        return (self.lo, self.hi)


def _atomize(field: str, raw: t.Any, atom: Atom) -> t.Any:
    try:
        return atom(raw)
    except ConfigError:
        raise
    except (TypeError, ValueError) as exc:
        raise ConfigError(f"{field}: bad value {raw!r}: {exc}") from exc


def _pair(field: str, kind: str, raw: t.Any, atom: Atom) -> tuple[t.Any, t.Any]:
    if not isinstance(raw, (list, tuple)) or len(raw) != 2:
        raise ConfigError(
            f"{field}: {kind} needs a [lo, hi] pair, got {raw!r}"
        )
    return _atomize(field, raw[0], atom), _atomize(field, raw[1], atom)


def parse_dist(field: str, raw: t.Any, atom: Atom = lambda v: v) -> Distribution:
    """Parse one spec field's JSON value into a :class:`Distribution`.

    ``atom`` converts every scalar the distribution can produce (size
    labels to bytes, and so on); ``field`` names the spec key in error
    messages.  Anything malformed raises a uniform
    :class:`~repro.errors.ConfigError`.
    """
    if isinstance(raw, Distribution):
        return raw
    if isinstance(raw, dict):
        keys = [key for key in _DIST_KEYS if key in raw]
        if len(keys) != 1:
            raise ConfigError(
                f"{field}: a distribution object needs exactly one of "
                f"{'/'.join(_DIST_KEYS)}, got {sorted(raw)}"
            )
        kind = keys[0]
        extras = sorted(set(raw) - {kind, "weights"})
        if extras:
            raise ConfigError(
                f"{field}: unknown distribution key(s): {', '.join(extras)}"
            )
        if "weights" in raw and kind != "choice":
            raise ConfigError(f"{field}: weights only apply to choice")
        if kind == "choice":
            values = raw["choice"]
            if not isinstance(values, (list, tuple)) or not values:
                raise ConfigError(
                    f"{field}: choice needs a non-empty list, got {values!r}"
                )
            parsed = tuple(_atomize(field, value, atom) for value in values)
            weights = raw.get("weights", [1.0] * len(parsed))
            if not isinstance(weights, (list, tuple)):
                raise ConfigError(
                    f"{field}: weights must be a list, got {weights!r}"
                )
            try:
                return Choice(values=parsed, weights=tuple(weights))
            except ConfigError as exc:
                raise ConfigError(f"{field}: {exc}") from exc
        lo, hi = _pair(field, kind, raw[kind], atom)
        try:
            if kind == "uniform":
                return Uniform(lo=float(lo), hi=float(hi))
            if kind == "uniform_int":
                if lo != int(lo) or hi != int(hi):
                    raise ConfigError(
                        f"uniform_int bounds must be integers, got [{lo}, {hi}]"
                    )
                return UniformInt(lo=int(lo), hi=int(hi))
            return LogUniform(lo=float(lo), hi=float(hi))
        except ConfigError as exc:
            raise ConfigError(f"{field}: {exc}") from exc
    return Const(value=_atomize(field, raw, atom))


def dist_to_jsonable(dist: Distribution) -> t.Any:
    """The inverse of :func:`parse_dist`: a JSON-ready value.

    ``spec_to_mapping(spec_from_mapping(m))`` round-trips through this;
    note size atoms serialize as plain byte counts, not suffix labels.
    """
    if isinstance(dist, Const):
        return dist.value
    if isinstance(dist, Choice):
        payload: dict[str, t.Any] = {"choice": list(dist.values)}
        if len(set(dist.weights)) > 1:
            payload["weights"] = list(dist.weights)
        return payload
    if isinstance(dist, Uniform):
        return {"uniform": [dist.lo, dist.hi]}
    if isinstance(dist, UniformInt):
        return {"uniform_int": [dist.lo, dist.hi]}
    if isinstance(dist, LogUniform):
        return {"loguniform": [dist.lo, dist.hi]}
    raise ConfigError(f"cannot serialize distribution {dist!r}")
