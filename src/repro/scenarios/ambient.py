"""The ambient sweep request: how ``sweep --spec`` reaches the grid.

``sais-repro sweep --spec FILE --samples N --seed S`` runs the
registered ``sweep_custom`` experiment, whose grid consults the ambient
:class:`SweepRequest` installed here — the same pattern ``--fault-plan``
uses (:mod:`repro.faults.ambient`).  The request only needs to exist in
the process that *plans* the grid: ``--jobs`` workers receive fully
resolved :class:`~repro.scenarios.generate.Scenario` point specs and
never re-evaluate the grid, and the content-addressed cache keys hash
those resolved specs, so two different requests can never collide on a
cache entry.

Without an installed request, ``sweep_custom`` falls back to
:data:`DEFAULT_CUSTOM_REQUEST` — a small pinned draw from the built-in
homogeneous spec — which is what its golden snapshot and ``run all``
exercise.
"""

from __future__ import annotations

import dataclasses

from ..errors import ConfigError
from .spec import BUILTIN_SPECS, ScenarioSpec

__all__ = [
    "SweepRequest",
    "DEFAULT_CUSTOM_REQUEST",
    "set_ambient_sweep",
    "ambient_sweep",
]


@dataclasses.dataclass(frozen=True)
class SweepRequest:
    """One ``sweep --spec`` invocation's generator parameters."""

    spec: ScenarioSpec
    samples: int = 8
    seed: int = 1

    def __post_init__(self) -> None:
        if not isinstance(self.samples, int) or self.samples < 1:
            raise ConfigError(
                f"sweep samples must be a positive int, got {self.samples!r}"
            )
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ConfigError(f"sweep seed must be an int, got {self.seed!r}")


#: What ``sweep_custom`` runs when no request is installed (goldens,
#: ``run all``): a 2-scenario draw from the homogeneous built-in under a
#: seed distinct from the pinned family's, so its cells never alias
#: ``sweep_homogeneous``'s.
DEFAULT_CUSTOM_REQUEST = SweepRequest(
    spec=BUILTIN_SPECS["homogeneous"], samples=2, seed=11
)

_ambient: SweepRequest | None = None


def set_ambient_sweep(request: SweepRequest | None) -> None:
    """Install (or with ``None`` clear) the process-wide sweep request."""
    global _ambient
    _ambient = request


def ambient_sweep() -> SweepRequest:
    """The installed request, or :data:`DEFAULT_CUSTOM_REQUEST`."""
    return _ambient if _ambient is not None else DEFAULT_CUSTOM_REQUEST
