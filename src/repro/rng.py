"""Deterministic random-number streams.

Every stochastic component of the simulator (server service jitter, workload
think time, irqbalance tie-breaking) draws from its own named substream so
that

* a whole experiment is reproducible from a single integer seed, and
* adding a new consumer of randomness does not perturb the draws seen by
  existing components (stream independence), which keeps A/B policy
  comparisons paired: both policies see identical server-side jitter.
"""

from __future__ import annotations

import numpy as np

__all__ = ["RngFactory", "hash_unit", "stable_hash"]


class RngFactory:
    """Factory of named, independent :class:`numpy.random.Generator` streams.

    >>> rngs = RngFactory(seed=7)
    >>> a = rngs.stream("disk")
    >>> b = rngs.stream("disk")   # same name -> same spawn, fresh state
    >>> float(a.random()) == float(b.random())
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)

    @property
    def seed(self) -> int:
        """The root seed this factory derives all streams from."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return a fresh generator for substream ``name``.

        Calling twice with the same name returns an identically-seeded (but
        independent-state) generator, so components must each hold onto the
        stream they are given rather than re-requesting it mid-run.
        """
        seq = np.random.SeedSequence(self._seed, spawn_key=(_stable_hash(name),))
        return np.random.Generator(np.random.PCG64(seq))

    def fork(self, salt: int) -> "RngFactory":
        """Derive a factory for a sub-experiment (e.g. one sweep point)."""
        return RngFactory(seed=(self._seed * 1_000_003 + int(salt)) & 0x7FFFFFFF)


def _stable_hash(name: str) -> int:
    """A process-stable 32-bit hash (``hash()`` is salted per interpreter)."""
    acc = 2166136261
    for byte in name.encode("utf-8"):
        acc = ((acc ^ byte) * 16777619) & 0xFFFFFFFF
    return acc


def stable_hash(name: str) -> int:
    """Public face of :func:`_stable_hash` for other subsystems.

    The scenario generator keys its per-knob :func:`hash_unit` draws by
    ``stable_hash(knob_name)`` so every draw is a pure function of
    ``(seed, scenario index, knob)`` — independent of sampling order and
    of the process doing the sampling.
    """
    return _stable_hash(name)


def hash_unit(*keys: int) -> float:
    """Deterministic uniform-ish value in [0, 1) from integer keys.

    Used where a random *property of an object* (e.g. whether a given file
    offset is in a server's page cache) must be identical across paired A/B
    runs regardless of the order events happen to occur in: keying by the
    object rather than by draw order keeps policy comparisons paired.
    """
    acc = 0x9E3779B97F4A7C15
    for key in keys:
        acc ^= (key & 0xFFFFFFFFFFFFFFFF) + 0x9E3779B97F4A7C15 + (acc << 6) + (
            acc >> 2
        )
        acc &= 0xFFFFFFFFFFFFFFFF
        # splitmix64 finalizer round
        acc = (acc ^ (acc >> 30)) * 0xBF58476D1CE4E5B9 & 0xFFFFFFFFFFFFFFFF
        acc = (acc ^ (acc >> 27)) * 0x94D049BB133111EB & 0xFFFFFFFFFFFFFFFF
        acc ^= acc >> 31
    return acc / 2**64
