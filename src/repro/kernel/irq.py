"""IRQ entry wiring: local APICs to softirq daemons.

The hardirq top half is modeled as free: it only enqueues the context for
the softirq bottom half on the same core, which is where Linux does the
real work (and where the paper's costs are charged).
"""

from __future__ import annotations

import typing as t

from ..errors import SimulationError
from ..hw.apic import IoApic
from .softirq import SoftirqDaemon

__all__ = ["wire_interrupts"]


def wire_interrupts(ioapic: IoApic, daemons: t.Sequence[SoftirqDaemon]) -> None:
    """Install each core's IRQ entry point into its local APIC."""
    if len(daemons) != len(ioapic.local_apics):
        raise SimulationError(
            f"{len(daemons)} softirq daemons for {len(ioapic.local_apics)} cores"
        )
    peers = list(daemons)
    for lapic, daemon in zip(ioapic.local_apics, daemons):
        if lapic.core_index != daemon.core.index:
            raise SimulationError(
                f"daemon for core {daemon.core.index} wired to local APIC "
                f"{lapic.core_index}"
            )
        # RPS/RFS handoffs address sibling daemons by core index.
        daemon.peers = peers
        lapic.install_handler(daemon.enqueue)
