"""The process table: where each application process currently runs.

SAIs "enforces that the application process should be bundled on the core
which requested data before data return" (Sec. IV-B); accordingly processes
are pinned by default.  The table also exposes the lookup the Sec. III
policy (ii) needs (current core of a request's owner) and supports explicit
migration so the ablation benches can measure how rare-but-possible
migrations during blocking I/O affect the two source-aware policies.
"""

from __future__ import annotations

import dataclasses

from ..errors import SimulationError

__all__ = ["ProcessTable"]


@dataclasses.dataclass
class _Entry:
    pid: int
    core: int
    pinned: bool
    migrations: int = 0


class ProcessTable:
    """pid -> current core, with optional pinning."""

    def __init__(self, n_cores: int) -> None:
        if n_cores < 1:
            raise SimulationError("need at least one core")
        self.n_cores = n_cores
        self._entries: dict[int, _Entry] = {}

    def spawn(self, pid: int, core: int, pinned: bool = True) -> None:
        """Register a process on a core."""
        if pid in self._entries:
            raise SimulationError(f"pid {pid} already exists")
        self._check_core(core)
        self._entries[pid] = _Entry(pid=pid, core=core, pinned=pinned)

    def core_of(self, pid: int) -> int:
        """Current core of ``pid``."""
        return self._entry(pid).core

    def migrate(self, pid: int, core: int) -> None:
        """Move a process to another core (rejected while pinned)."""
        entry = self._entry(pid)
        self._check_core(core)
        if entry.pinned:
            raise SimulationError(f"pid {pid} is pinned to core {entry.core}")
        if core != entry.core:
            entry.core = core
            entry.migrations += 1

    def unpin(self, pid: int) -> None:
        """Allow ``pid`` to migrate."""
        self._entry(pid).pinned = False

    def migrations_of(self, pid: int) -> int:
        """How many times ``pid`` has moved."""
        return self._entry(pid).migrations

    def exit(self, pid: int) -> None:
        """Remove a finished process."""
        if self._entries.pop(pid, None) is None:
            raise SimulationError(f"pid {pid} does not exist")

    def _entry(self, pid: int) -> _Entry:
        try:
            return self._entries[pid]
        except KeyError:
            raise SimulationError(f"pid {pid} does not exist") from None

    def _check_core(self, core: int) -> None:
        if not 0 <= core < self.n_cores:
            raise SimulationError(f"core {core} out of range")
