"""Client OS kernel pieces: IRQ dispatch, softirq daemons, process table.

The interrupt delivery chain on the client is::

    Nic.receive --> IoApic.raise_interrupt --(policy)--> LocalApic.deliver
        --> kernel IRQ entry (enqueue, ~free)
        --> SoftirqDaemon on the chosen core (the actual protocol work)
        --> PfsClient.strip_arrived (wake the consumer)

mirroring Linux, where the hardirq does almost nothing and the softirq
thread on the *same core* performs protocol processing (Sec. II-A).
"""

from .irq import wire_interrupts
from .process import ProcessTable
from .softirq import SoftirqDaemon

__all__ = ["SoftirqDaemon", "wire_interrupts", "ProcessTable"]
