"""Per-core softirq daemons: where interrupt protocol work actually runs.

Each core has one daemon draining its interrupt queue.  For every strip
interrupt the daemon

1. occupies its core at softirq priority for ``P`` (the paper's strip
   processing cost: protocol work proportional to the strip size plus a
   fixed vector overhead),
2. installs the strip into the core's private cache (this is the moment
   the data becomes resident *somewhere*, and under balanced policies that
   somewhere is usually the wrong core),
3. notifies the PFS client, paying the inter-core wake-up cost when the
   consumer lives elsewhere (paper Sec. IV-B step 6).
"""

from __future__ import annotations

import typing as t

from ..config import CostModel
from ..des import Environment, Store
from ..des.monitor import Counter
from ..hw.apic import InterruptContext
from ..hw.cache import CacheSystem
from ..hw.core import SOFTIRQ_PRIORITY, Core

if t.TYPE_CHECKING:  # pragma: no cover - typing only
    from ..pfs.client import PfsClient

__all__ = ["SoftirqDaemon"]


class SoftirqDaemon:
    """One core's softirq thread."""

    def __init__(
        self,
        env: Environment,
        core: Core,
        cache: CacheSystem,
        costs: CostModel,
        pfs: "PfsClient",
        spans: t.Any | None = None,
        obs_track: t.Any | None = None,
        interconnect: t.Any | None = None,
    ) -> None:
        self.env = env
        self.core = core
        self.cache = cache
        self.costs = costs
        self.pfs = pfs
        #: Span recorder + this core's lane (repro.obs); None when off.
        self.spans = spans
        self.obs_track = obs_track
        #: The client's InterconnectBus, for RPS/RFS cross-core signals.
        self.interconnect = interconnect
        #: All sibling daemons indexed by core (set by ``wire_interrupts``);
        #: the RPS handoff enqueues into the target core's daemon.
        self.peers: t.Sequence["SoftirqDaemon"] | None = None
        self.queue: Store = Store(env, inline_wakeup=True)
        self.handled = Counter(f"softirq{core.index}_handled")
        self.bytes_handled = Counter(f"softirq{core.index}_bytes")
        #: Contexts this core re-steered to another core's softirq
        #: (RPS/RFS); the receiving daemon counts them in ``handled``.
        self.steered = Counter(f"softirq{core.index}_steered")
        #: Data packets that should have carried a SAIs hint but arrived
        #: option-less (a middlebox stripped it): the traffic the
        #: degraded fallback steers.  Always zero on a stock stack.
        self.unhinted = Counter(f"softirq{core.index}_unhinted")
        self._expect_hints = pfs.hint_messager is not None
        self._process = env.process(self._run())

    def enqueue(self, ctx: InterruptContext) -> None:
        """IRQ entry: push the context onto this core's pending queue."""
        self.queue.put_nowait(ctx)

    def _run(self) -> t.Generator:
        queue = self.queue
        while True:
            if queue.items:
                # Inline drain: under load the next context is already
                # queued, so skip the Store.get round-trip (one calendar
                # event per strip) and pop it directly.  FIFO order is the
                # Store's, and this daemon is the queue's only getter.
                ctx = queue.items.popleft()
            else:
                ctx = yield queue.get()
            yield from self._handle(ctx)

    def _handle(self, ctx: InterruptContext) -> t.Generator:
        if ctx.rps_target is not None:
            target = ctx.rps_target
            ctx.rps_target = None
            if target != self.core.index and self.peers is not None:
                yield from self._steer(ctx, target)
                return
        if ctx.napi_source is None:
            with self.core.request(priority=SOFTIRQ_PRIORITY) as req:
                yield req
                yield from self._process_packet(ctx.packet, ctx.obs_flow)
            return
        # NAPI poll: drain the NIC's pending queue on this core, up to
        # the poll budget, then either re-arm interrupts (drained) or
        # reschedule a fresh poll (budget exhausted under load).
        nic = ctx.napi_source
        flow = ctx.obs_flow
        with self.core.request(priority=SOFTIRQ_PRIORITY) as req:
            yield req
            budget = nic.napi_budget
            while budget > 0:
                packet = nic.napi_poll()
                if packet is None:
                    return  # queue drained; interrupts re-armed
                yield from self._process_packet(packet, flow)
                flow = None  # the edge lands on the first polled packet
                budget -= 1
        nic.napi_reschedule()

    def _steer(self, ctx: InterruptContext, target: int) -> t.Generator:
        """RPS/RFS cross-core handoff from the hardware-IRQ core.

        The hardirq core pays the dispatch half (flow-table lookup +
        enqueue-to-remote-backlog, ``rps_dispatch_cost``), signals the
        target core over the serialized interconnect (the IPI that kicks
        the remote softirq), and re-enqueues the context there.  The
        protocol-processing cost P is then paid on the *target* core —
        the extra inter-core hop is the price RPS/RFS pays for
        source-aware placement without SAIs' wire hints.
        """
        with self.core.request(priority=SOFTIRQ_PRIORITY) as req:
            yield req
            yield from self.core.run_locked(
                self.costs.rps_dispatch_cost, "rps_dispatch"
            )
        if self.interconnect is not None:
            yield from self.interconnect.signal()
        self.steered.add()
        assert self.peers is not None
        self.peers[target].enqueue(ctx)

    def _process_packet(self, packet, flow: int | None = None) -> t.Generator:
        """Protocol-process one packet while already holding the core.

        ``flow`` is the open IRQ-placement edge from the NIC (span
        tracing only); it terminates at this packet's softirq span.
        """
        sid = None
        if self.spans is not None:
            # Post-grant on a unit-capacity core: softirq spans on this
            # lane can never overlap, so a complete ("X") slice is safe.
            sid = self.spans.begin(
                "softirq",
                "kernel",
                self.obs_track,
                parent=self.spans.strip_span(
                    packet.dst_client, packet.strip_id
                ),
                args={"strip": packet.strip_id, "segment": packet.segment},
            )
            if flow is not None:
                self.spans.flow_end(flow, sid)
        processing = self.costs.strip_processing_time(packet.size)
        yield from self.core.run_locked(processing, "softirq")
        if self._expect_hints and packet.carries_data and not packet.options:
            self.unhinted.add()
        outstanding = self.pfs.segment_arrived(packet, self.core.index)
        handled_at: float | None = None
        if outstanding is not None:
            # The strip is whole (single train, or last segment of a
            # segmented flow).  This instant — protocol work done, before
            # any cross-core wake-up IPI — is what the lifecycle tracer
            # stamps as "handled"; the span remembers it so span-derived
            # breakdowns reconcile exactly (repro.obs.analysis).
            handled_at = self.env.now
            if packet.carries_data:
                # Protocol processing pulled the packet data through
                # this core's cache: the strip is now resident *here*.
                self.cache.install(self.core.index, packet.strip_id)
            tracer = self.pfs.tracer
            if tracer is not None:
                tracer.record(
                    packet.dst_client,
                    packet.strip_id,
                    "handled",
                    handled_at,
                )
            if outstanding.consumer_core != self.core.index:
                # Cross-core wake-up IPI (paper: "inter-core signals
                # are sent to wake the application process").
                yield from self.core.run_locked(
                    self.costs.wakeup_cost, "wakeup"
                )
        self.handled.add()
        self.bytes_handled.add(packet.size)
        if sid is not None:
            self.spans.end(
                sid,
                args=(
                    {"handled_at": handled_at}
                    if handled_at is not None
                    else None
                ),
            )
            if outstanding is not None and packet.carries_data:
                # This span is where the strip's data now resides — the
                # source of a migration edge if the consumer is elsewhere.
                self.spans.note_handled(
                    packet.dst_client,
                    packet.strip_id,
                    sid,
                    self.env.now,
                    self.core.index,
                )
