"""A PVFS-style parallel file system model.

One logical client read fans out into per-server *strip* requests according
to a round-robin :class:`~repro.pfs.layout.StripeLayout` (64 KiB strips in
the paper).  Each :class:`~repro.pfs.server.IoServer` serves its strips from
a disk + page-cache model and returns them as network packets — optionally
stamped with the SAIs ``aff_core_id`` hint by a
:class:`~repro.core.sais.HintCapsuler`.  The
:class:`~repro.pfs.client.PfsClient` tracks outstanding requests and hands
arriving strips to the consuming application.
"""

from .client import OutstandingRequest, PfsClient
from .layout import StripExtent, StripeLayout
from .metadata import FileMeta, MetadataServer
from .request import IoRequest, StripRequest

__all__ = [
    "StripeLayout",
    "StripExtent",
    "IoRequest",
    "StripRequest",
    "MetadataServer",
    "FileMeta",
    "PfsClient",
    "OutstandingRequest",
]
