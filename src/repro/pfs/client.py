"""The client-side PVFS library.

``PfsClient`` fans one application read out into per-server strip requests
(attaching the SAIs ``PVFS_hint`` when a ``HintMessager`` is installed),
tracks the outstanding request, and hands arriving strips back to the
consuming process through a per-request queue — the application merges
strips *as they arrive*, which is how the real client's memcpy out of the
socket buffer behaves and what creates the consumer-side migration stalls
under balanced interrupt scheduling.

Strip *tokens*: every in-flight strip gets a client-unique id, so that two
processes reading overlapping file ranges do not alias each other's cache
residency entries.
"""

from __future__ import annotations

import dataclasses
import typing as t
from itertools import count

from ..core.sais import HintMessager
from ..des import Environment, Store
from ..des.monitor import Counter
from ..errors import SimulationError, StripRetryExhaustedError
from ..net.tcp import TcpStream
from .layout import StripeLayout
from .request import IoRequest, StripRequest

if t.TYPE_CHECKING:  # pragma: no cover - typing only
    from ..faults.plan import StripRetryPolicy
    from ..net.packet import Packet

__all__ = ["PfsClient", "OutstandingRequest", "ArrivedStrip"]


@dataclasses.dataclass(frozen=True)
class ArrivedStrip:
    """What the softirq hands the consumer for each completed strip."""

    token: int
    size: int
    #: Core that handled the strip's interrupt (where the data now sits).
    handled_on: int


@dataclasses.dataclass
class OutstandingRequest:
    """Book-keeping for one in-flight application read."""

    request: IoRequest
    #: Core the consuming process runs on (the SAIs target).
    consumer_core: int
    #: Number of strip extents the read decomposed into.
    expected: int
    #: Arrival queue the consumer blocks on.
    arrivals: Store
    issued_at: float
    arrived: int = 0

    @property
    def complete(self) -> bool:
        """All strips have arrived (they may not all be merged yet)."""
        return self.arrived >= self.expected


class PfsClient:
    """Client-side request fan-out and completion tracking."""

    def __init__(
        self,
        env: Environment,
        client_index: int,
        layout: StripeLayout,
        submit: t.Callable[[StripRequest], None],
        hint_messager: HintMessager | None = None,
        tracer: t.Any | None = None,
        retry: "StripRetryPolicy | None" = None,
        spans: t.Any | None = None,
        obs_track: t.Any | None = None,
    ) -> None:
        self.env = env
        self.client_index = client_index
        self.layout = layout
        #: Dispatches a strip request toward its server (wired by the
        #: cluster builder: request-path latency then ``IoServer.serve``).
        self._submit = submit
        #: Client-side SAIs component (None on a stock PVFS client).
        self.hint_messager = hint_messager
        #: Optional per-strip lifecycle tracer (repro.metrics.trace).
        self.tracer = tracer
        #: Retry knobs when a fault plan is active; None on a healthy
        #: fabric, where the client keeps its strict wiring tripwires.
        self.retry = retry
        #: Span recorder + this client's PFS lane (repro.obs); None off.
        self.spans = spans
        self.obs_track = obs_track
        self._fault_tolerant = retry is not None
        self._request_ids = count()
        self._strip_tokens = count()
        self._outstanding: dict[int, OutstandingRequest] = {}
        #: Per-server TCP reassembly state (segmented flows only).
        self._tcp_streams: dict[int, TcpStream] = {}
        #: Strips already handed to their consumer — dedups re-served
        #: strips when a retry raced the original (tolerant mode only).
        self._arrived_strips: set[int] = set()
        self.requests_issued = Counter("pfs_requests")
        self.strips_requested = Counter("pfs_strips")
        self.bytes_requested = Counter("pfs_bytes")
        #: Strip requests re-submitted by the retry watchdog.
        self.strip_retries = Counter("pfs_strip_retries")
        #: Completed strips discarded as duplicates of an earlier arrival.
        self.duplicate_strips = Counter("pfs_duplicate_strips")

    # -- issue path -------------------------------------------------------------

    def issue(
        self, offset: int, size: int, consumer_core: int, write: bool = False
    ) -> OutstandingRequest:
        """Fan a read (or write) out to the servers; returns the tracker.

        The *issuing* core is recorded both as ground truth on each strip
        request and — when SAIs is installed — as the ``PVFS_hint`` that
        the servers will echo back in the IP options.  For writes the
        strips carry data outbound and the tracked arrivals are the
        servers' acknowledgements.
        """
        request = IoRequest(
            request_id=next(self._request_ids),
            client=self.client_index,
            offset=offset,
            size=size,
            issuing_core=consumer_core,
        )
        extents = self.layout.extents(offset, size)
        outstanding = OutstandingRequest(
            request=request,
            consumer_core=consumer_core,
            expected=len(extents),
            arrivals=Store(self.env),
            issued_at=self.env.now,
        )
        self._outstanding[request.request_id] = outstanding
        self.requests_issued.add()
        self.bytes_requested.add(size)
        spans = self.spans
        if spans is not None:
            request_sid = spans.begin(
                "write" if write else "read",
                "pfs",
                self.obs_track,
                overlapping=True,
                args={
                    "request": request.request_id,
                    "size": size,
                    "consumer_core": consumer_core,
                    "strips": len(extents),
                },
            )
            spans.request_begin(
                self.client_index, request.request_id, request_sid
            )
        for extent in extents:
            strip_request = StripRequest(
                request_id=request.request_id,
                client=self.client_index,
                server=extent.server,
                strip_id=next(self._strip_tokens),
                offset=extent.offset,
                size=extent.size,
                issuing_core=consumer_core,
                is_write=write,
            )
            if self.hint_messager is not None:
                self.hint_messager.attach(strip_request, consumer_core)
            if self.tracer is not None:
                self.tracer.record(
                    self.client_index,
                    strip_request.strip_id,
                    "issued",
                    self.env.now,
                )
            if spans is not None:
                strip_sid = spans.begin(
                    "strip",
                    "pfs",
                    self.obs_track,
                    parent=request_sid,
                    overlapping=True,
                    args={
                        "strip": strip_request.strip_id,
                        "server": extent.server,
                        "size": extent.size,
                    },
                )
                spans.strip_begin(
                    self.client_index, strip_request.strip_id, strip_sid
                )
            self.strips_requested.add()
            self._submit(strip_request)
            if self._fault_tolerant:
                self.env.process(self._strip_watchdog(strip_request))
        return outstanding

    def _strip_watchdog(self, request: StripRequest) -> t.Generator:
        """Re-submit a strip that stays unanswered; capped retries.

        Recovers requests swallowed by a server's transient-failure
        window.  The exception raised after the cap propagates out of
        ``env.run`` (the DES stops the world on an unwaited process
        failure), surfacing as a typed error rather than a hang.
        """
        assert self.retry is not None
        delay = self.retry.timeout
        for _attempt in range(self.retry.max_retries):
            yield self.env.timeout(delay)
            if request.strip_id in self._arrived_strips:
                return
            self.strip_retries.add()
            if self.tracer is not None:
                self.tracer.record(
                    self.client_index, request.strip_id, "retried", self.env.now
                )
            if self.spans is not None:
                self.spans.instant(
                    "retry",
                    "pfs",
                    self.obs_track,
                    parent=self.spans.strip_span(
                        self.client_index, request.strip_id
                    ),
                    args={"strip": request.strip_id, "attempt": _attempt + 1},
                )
            self._submit(request)
            delay *= self.retry.backoff
        yield self.env.timeout(delay)
        if request.strip_id in self._arrived_strips:
            return
        raise StripRetryExhaustedError(
            f"strip {request.strip_id} (request {request.request_id}, "
            f"server {request.server}) still missing after "
            f"{self.retry.max_retries} retries"
        )

    # -- completion path ---------------------------------------------------------

    def segment_arrived(
        self, packet: "Packet", handled_on: int
    ) -> OutstandingRequest | None:
        """Record one handled segment; completes its strip when whole.

        Unsegmented packets (one coalesced train per strip) complete
        immediately.  For MSS-segmented flows, reassembly state tracks the
        strip until the last segment lands; intermediate segments return
        None and the consumer stays asleep.
        """
        if packet.n_segments == 1:
            return self.strip_arrived(packet, handled_on)
        stream = self._stream_for(packet.src_server)
        if not stream.deliver(packet):
            return None
        full_size = stream.take_completed_size(packet.strip_id)
        whole = dataclasses.replace(
            packet, size=full_size, segment=0, n_segments=1
        )
        return self.strip_arrived(whole, handled_on)

    def observe_wire(self, packet: "Packet") -> None:
        """NIC-arrival hook: enforce (or count) per-strip wire ordering.

        Runs before the interrupt path touches the packet.  On a healthy
        fabric an out-of-order segment is a wiring bug and raises; with a
        fault plan active the stream just counts the reordering and the
        assembly buffers the segment (see ``TcpStream.observe_wire``).
        """
        if packet.n_segments <= 1:
            return
        self._stream_for(packet.src_server).observe_wire(packet)

    def _stream_for(self, server: int) -> TcpStream:
        stream = self._tcp_streams.get(server)
        if stream is None:
            stream = TcpStream(
                server, self.client_index, fault_tolerant=self._fault_tolerant
            )
            self._tcp_streams[server] = stream
        return stream

    def strip_arrived(
        self, packet: "Packet", handled_on: int
    ) -> OutstandingRequest | None:
        """Called by the softirq once a strip's packet train is processed.

        In fault-tolerant mode a strip can legitimately complete twice —
        the retry watchdog re-served it and the original then landed.
        The duplicate is counted and dropped (returns None) so the
        consumer sees each strip exactly once.
        """
        if self._fault_tolerant:
            if packet.strip_id in self._arrived_strips:
                self.duplicate_strips.add()
                return None
            self._arrived_strips.add(packet.strip_id)
        outstanding = self._outstanding.get(packet.request_id)
        if outstanding is None:
            raise SimulationError(
                f"strip for unknown request {packet.request_id} "
                f"(token {packet.strip_id})"
            )
        outstanding.arrived += 1
        if outstanding.arrived > outstanding.expected:
            raise SimulationError(
                f"request {packet.request_id} received more strips than expected"
            )
        outstanding.arrivals.put_nowait(
            ArrivedStrip(
                token=packet.strip_id, size=packet.size, handled_on=handled_on
            )
        )
        if self.spans is not None and not packet.carries_data:
            # Write acks carry no consumable data: there is no merge, so
            # the strip's lifecycle ends right here.
            sid = self.spans.strip_span(self.client_index, packet.strip_id)
            if sid is not None:
                self.spans.end_if_open(sid)
        return outstanding

    def locate_request(self, request_id: int) -> int | None:
        """Current consumer core of an in-flight request (policy-ii oracle)."""
        outstanding = self._outstanding.get(request_id)
        return None if outstanding is None else outstanding.consumer_core

    def retire(self, request_id: int) -> None:
        """Drop tracking state once the consumer has merged everything."""
        outstanding = self._outstanding.pop(request_id, None)
        if outstanding is None:
            raise SimulationError(f"retiring unknown request {request_id}")
        if not outstanding.complete:
            raise SimulationError(
                f"retiring request {request_id} with strips still in flight"
            )
        if self.spans is not None:
            sid = self.spans.request_span(self.client_index, request_id)
            if sid is not None:
                self.spans.end_if_open(sid)

    @property
    def in_flight(self) -> int:
        """Number of requests not yet retired."""
        return len(self._outstanding)

    @property
    def reorder_events(self) -> int:
        """Out-of-wire-order segments absorbed across all server streams."""
        return sum(s.reorder_events for s in self._tcp_streams.values())

    @property
    def duplicate_segments(self) -> int:
        """Duplicate segments dropped across all server streams."""
        return sum(s.duplicate_segments for s in self._tcp_streams.values())

    @property
    def out_of_order_segments(self) -> int:
        """Segments *delivered* (softirq-processed) out of ordinal order.

        Nonzero when interrupt steering split one flow's segments across
        cores mid-strip — the Flow Director reordering pathology.  Flows
        whose segments all process on one core (rss, and flow_director
        while its table is stable) contribute zero.
        """
        return sum(
            s.out_of_order_deliveries for s in self._tcp_streams.values()
        )

    @property
    def dup_acks(self) -> int:
        """Duplicate ACKs elicited by out-of-order deliveries."""
        return sum(s.dup_acks for s in self._tcp_streams.values())

    @property
    def fast_retransmits(self) -> int:
        """Holes that reached 3 dup-ACKs (sender would fast-retransmit)."""
        return sum(s.fast_retransmits for s in self._tcp_streams.values())
