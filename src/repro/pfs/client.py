"""The client-side PVFS library.

``PfsClient`` fans one application read out into per-server strip requests
(attaching the SAIs ``PVFS_hint`` when a ``HintMessager`` is installed),
tracks the outstanding request, and hands arriving strips back to the
consuming process through a per-request queue — the application merges
strips *as they arrive*, which is how the real client's memcpy out of the
socket buffer behaves and what creates the consumer-side migration stalls
under balanced interrupt scheduling.

Strip *tokens*: every in-flight strip gets a client-unique id, so that two
processes reading overlapping file ranges do not alias each other's cache
residency entries.
"""

from __future__ import annotations

import dataclasses
import typing as t
from itertools import count

from ..core.sais import HintMessager
from ..des import Environment, Store
from ..des.monitor import Counter
from ..errors import SimulationError
from ..net.tcp import TcpStream
from .layout import StripeLayout
from .request import IoRequest, StripRequest

if t.TYPE_CHECKING:  # pragma: no cover - typing only
    from ..net.packet import Packet

__all__ = ["PfsClient", "OutstandingRequest", "ArrivedStrip"]


@dataclasses.dataclass(frozen=True)
class ArrivedStrip:
    """What the softirq hands the consumer for each completed strip."""

    token: int
    size: int
    #: Core that handled the strip's interrupt (where the data now sits).
    handled_on: int


@dataclasses.dataclass
class OutstandingRequest:
    """Book-keeping for one in-flight application read."""

    request: IoRequest
    #: Core the consuming process runs on (the SAIs target).
    consumer_core: int
    #: Number of strip extents the read decomposed into.
    expected: int
    #: Arrival queue the consumer blocks on.
    arrivals: Store
    issued_at: float
    arrived: int = 0

    @property
    def complete(self) -> bool:
        """All strips have arrived (they may not all be merged yet)."""
        return self.arrived >= self.expected


class PfsClient:
    """Client-side request fan-out and completion tracking."""

    def __init__(
        self,
        env: Environment,
        client_index: int,
        layout: StripeLayout,
        submit: t.Callable[[StripRequest], None],
        hint_messager: HintMessager | None = None,
        tracer: t.Any | None = None,
    ) -> None:
        self.env = env
        self.client_index = client_index
        self.layout = layout
        #: Dispatches a strip request toward its server (wired by the
        #: cluster builder: request-path latency then ``IoServer.serve``).
        self._submit = submit
        #: Client-side SAIs component (None on a stock PVFS client).
        self.hint_messager = hint_messager
        #: Optional per-strip lifecycle tracer (repro.metrics.trace).
        self.tracer = tracer
        self._request_ids = count()
        self._strip_tokens = count()
        self._outstanding: dict[int, OutstandingRequest] = {}
        #: Per-server TCP reassembly state (segmented flows only).
        self._tcp_streams: dict[int, TcpStream] = {}
        self._assembly_bytes: dict[int, int] = {}
        self.requests_issued = Counter("pfs_requests")
        self.strips_requested = Counter("pfs_strips")
        self.bytes_requested = Counter("pfs_bytes")

    # -- issue path -------------------------------------------------------------

    def issue(
        self, offset: int, size: int, consumer_core: int, write: bool = False
    ) -> OutstandingRequest:
        """Fan a read (or write) out to the servers; returns the tracker.

        The *issuing* core is recorded both as ground truth on each strip
        request and — when SAIs is installed — as the ``PVFS_hint`` that
        the servers will echo back in the IP options.  For writes the
        strips carry data outbound and the tracked arrivals are the
        servers' acknowledgements.
        """
        request = IoRequest(
            request_id=next(self._request_ids),
            client=self.client_index,
            offset=offset,
            size=size,
            issuing_core=consumer_core,
        )
        extents = self.layout.extents(offset, size)
        outstanding = OutstandingRequest(
            request=request,
            consumer_core=consumer_core,
            expected=len(extents),
            arrivals=Store(self.env),
            issued_at=self.env.now,
        )
        self._outstanding[request.request_id] = outstanding
        self.requests_issued.add()
        self.bytes_requested.add(size)
        for extent in extents:
            strip_request = StripRequest(
                request_id=request.request_id,
                client=self.client_index,
                server=extent.server,
                strip_id=next(self._strip_tokens),
                offset=extent.offset,
                size=extent.size,
                issuing_core=consumer_core,
                is_write=write,
            )
            if self.hint_messager is not None:
                self.hint_messager.attach(strip_request, consumer_core)
            if self.tracer is not None:
                self.tracer.record(
                    self.client_index,
                    strip_request.strip_id,
                    "issued",
                    self.env.now,
                )
            self.strips_requested.add()
            self._submit(strip_request)
        return outstanding

    # -- completion path ---------------------------------------------------------

    def segment_arrived(
        self, packet: "Packet", handled_on: int
    ) -> OutstandingRequest | None:
        """Record one handled segment; completes its strip when whole.

        Unsegmented packets (one coalesced train per strip) complete
        immediately.  For MSS-segmented flows, reassembly state tracks the
        strip until the last segment lands; intermediate segments return
        None and the consumer stays asleep.
        """
        if packet.n_segments == 1:
            return self.strip_arrived(packet, handled_on)
        stream = self._tcp_streams.setdefault(
            packet.src_server, TcpStream(packet.src_server, self.client_index)
        )
        self._assembly_bytes[packet.strip_id] = (
            self._assembly_bytes.get(packet.strip_id, 0) + packet.size
        )
        if not stream.deliver(packet):
            return None
        full_size = self._assembly_bytes.pop(packet.strip_id)
        whole = dataclasses.replace(
            packet, size=full_size, segment=0, n_segments=1
        )
        return self.strip_arrived(whole, handled_on)

    def strip_arrived(self, packet: "Packet", handled_on: int) -> OutstandingRequest:
        """Called by the softirq once a strip's packet train is processed."""
        outstanding = self._outstanding.get(packet.request_id)
        if outstanding is None:
            raise SimulationError(
                f"strip for unknown request {packet.request_id} "
                f"(token {packet.strip_id})"
            )
        outstanding.arrived += 1
        if outstanding.arrived > outstanding.expected:
            raise SimulationError(
                f"request {packet.request_id} received more strips than expected"
            )
        outstanding.arrivals.put(
            ArrivedStrip(
                token=packet.strip_id, size=packet.size, handled_on=handled_on
            )
        )
        return outstanding

    def locate_request(self, request_id: int) -> int | None:
        """Current consumer core of an in-flight request (policy-ii oracle)."""
        outstanding = self._outstanding.get(request_id)
        return None if outstanding is None else outstanding.consumer_core

    def retire(self, request_id: int) -> None:
        """Drop tracking state once the consumer has merged everything."""
        outstanding = self._outstanding.pop(request_id, None)
        if outstanding is None:
            raise SimulationError(f"retiring unknown request {request_id}")
        if not outstanding.complete:
            raise SimulationError(
                f"retiring request {request_id} with strips still in flight"
            )

    @property
    def in_flight(self) -> int:
        """Number of requests not yet retired."""
        return len(self._outstanding)
