"""The PVFS metadata server.

PVFS keeps file metadata (size, distribution/striping parameters) on a
dedicated metadata server; clients resolve it once at open time, after
which data flows directly between client and I/O servers.  The lookup cost
is a per-open constant, which is why it does not appear in the paper's
steady-state analysis — but it is modeled so open-heavy workloads would pay
it.
"""

from __future__ import annotations

import dataclasses
import typing as t

from ..des import Environment, Resource
from ..des.monitor import Counter
from ..errors import ConfigError
from ..units import USEC
from .layout import StripeLayout

__all__ = ["FileMeta", "MetadataServer"]


@dataclasses.dataclass(frozen=True)
class FileMeta:
    """Resolved metadata for one file."""

    name: str
    size: int
    layout: StripeLayout


class MetadataServer:
    """Name -> metadata resolution with a serialized service queue."""

    def __init__(self, env: Environment, service_time: float = 200 * USEC) -> None:
        if service_time < 0:
            raise ConfigError("service_time must be non-negative")
        self.env = env
        self.service_time = service_time
        self._files: dict[str, FileMeta] = {}
        self._cpu = Resource(env, capacity=1)
        self.lookups = Counter("metadata_lookups")

    def create(self, name: str, size: int, layout: StripeLayout) -> FileMeta:
        """Register a file (instantaneous; done at setup time)."""
        if size <= 0:
            raise ConfigError(f"file size must be positive, got {size}")
        if name in self._files:
            raise ConfigError(f"file {name!r} already exists")
        meta = FileMeta(name=name, size=size, layout=layout)
        self._files[name] = meta
        return meta

    def lookup(self, name: str) -> t.Generator:
        """Resolve ``name``; blocks for queueing + service, returns FileMeta."""
        if name not in self._files:
            raise ConfigError(f"no such file: {name!r}")
        with self._cpu.request() as req:
            yield req
            yield self.env.timeout(self.service_time)
        self.lookups.add()
        return self._files[name]

    def stat(self, name: str) -> FileMeta:
        """Zero-cost metadata peek for tests and setup code."""
        return self._files[name]
