"""Request objects exchanged between application, PFS client and servers."""

from __future__ import annotations

import dataclasses

from ..errors import ConfigError

__all__ = ["IoRequest", "StripRequest"]


@dataclasses.dataclass
class IoRequest:
    """One application-level read call (the *source* in SAIs nomenclature)."""

    request_id: int
    #: Client node index issuing the request.
    client: int
    #: Byte offset into the file.
    offset: int
    #: Bytes requested (the IOR transfer size).
    size: int
    #: Core the issuing process occupied at issue time.
    issuing_core: int | None = None

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ConfigError(f"request size must be positive, got {self.size}")
        if self.offset < 0:
            raise ConfigError(f"offset must be non-negative, got {self.offset}")


@dataclasses.dataclass
class StripRequest:
    """One per-server piece of an :class:`IoRequest`.

    ``hint_aff_core_id`` is the PVFS_hint field the SAIs ``HintMessager``
    fills in; servers running ``HintCapsuler`` echo it into the IP options
    of every returned packet.
    """

    request_id: int
    client: int
    #: Destination I/O server index.
    server: int
    #: Global strip index within the file layout.
    strip_id: int
    #: Byte offset of this piece within the file.
    offset: int
    #: Bytes to read from this server (<= strip size).
    size: int
    #: The SAIs hint (None when the client does not run HintMessager).
    hint_aff_core_id: int | None = None
    #: Ground truth issuing core, independent of the hint plumbing; only
    #: oracle/ablation policies may consult it.
    issuing_core: int | None = None
    #: True for the write path: the strip carries data *to* the server and
    #: only a small acknowledgement flows back (Sec. I: writes have no
    #: client-side interrupt data-locality issue).
    is_write: bool = False

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ConfigError(f"strip size must be positive, got {self.size}")
