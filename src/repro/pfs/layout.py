"""Round-robin striping layout (PVFS ``simple_stripe``).

A file is cut into fixed-size strips; strip ``k`` lives on server
``k mod n_servers``.  A read of ``(offset, size)`` therefore touches
``ceil`` over the strip boundaries it spans — each touched strip becomes
one :class:`StripExtent`, i.e. one server-side request and (eventually) one
interrupt-raising packet train at the client.
"""

from __future__ import annotations

import dataclasses
import typing as t

from ..errors import LayoutError

__all__ = ["StripExtent", "StripeLayout"]


@dataclasses.dataclass(frozen=True)
class StripExtent:
    """The intersection of a byte range with one strip."""

    #: Global strip index within the file.
    strip_id: int
    #: Server holding the strip.
    server: int
    #: File offset where this extent begins.
    offset: int
    #: Extent length in bytes (<= strip size).
    size: int


class StripeLayout:
    """Maps byte ranges to per-server strip extents."""

    def __init__(self, strip_size: int, n_servers: int) -> None:
        if strip_size <= 0:
            raise LayoutError(f"strip_size must be positive, got {strip_size}")
        if n_servers <= 0:
            raise LayoutError(f"n_servers must be positive, got {n_servers}")
        self.strip_size = strip_size
        self.n_servers = n_servers

    def server_for(self, strip_id: int) -> int:
        """The server storing strip ``strip_id``."""
        if strip_id < 0:
            raise LayoutError(f"strip_id must be non-negative, got {strip_id}")
        return strip_id % self.n_servers

    def strip_of_offset(self, offset: int) -> int:
        """The strip containing byte ``offset``."""
        if offset < 0:
            raise LayoutError(f"offset must be non-negative, got {offset}")
        return offset // self.strip_size

    def extents(self, offset: int, size: int) -> list[StripExtent]:
        """Decompose ``(offset, size)`` into per-strip extents, in file order.

        >>> layout = StripeLayout(strip_size=100, n_servers=4)
        >>> [(e.strip_id, e.server, e.size) for e in layout.extents(50, 200)]
        [(0, 0, 50), (1, 1, 100), (2, 2, 50)]
        """
        if size <= 0:
            raise LayoutError(f"size must be positive, got {size}")
        if offset < 0:
            raise LayoutError(f"offset must be non-negative, got {offset}")
        extents: list[StripExtent] = []
        position = offset
        remaining = size
        while remaining > 0:
            strip_id = position // self.strip_size
            within = position - strip_id * self.strip_size
            chunk = min(remaining, self.strip_size - within)
            extents.append(
                StripExtent(
                    strip_id=strip_id,
                    server=self.server_for(strip_id),
                    offset=position,
                    size=chunk,
                )
            )
            position += chunk
            remaining -= chunk
        return extents

    def servers_touched(self, offset: int, size: int) -> set[int]:
        """Distinct servers involved in a read (parallelism of the request)."""
        return {extent.server for extent in self.extents(offset, size)}

    def strips_in(self, offset: int, size: int) -> int:
        """Number of strip extents a read decomposes into."""
        return len(self.extents(offset, size))

    def iter_request_offsets(
        self, file_size: int, transfer_size: int
    ) -> t.Iterator[int]:
        """Offsets of the sequential IOR request stream over a file."""
        if file_size < transfer_size:
            raise LayoutError("file_size must be >= transfer_size")
        for offset in range(0, file_size - transfer_size + 1, transfer_size):
            yield offset
