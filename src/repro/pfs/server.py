"""A PVFS I/O server node.

Serves strip requests from a disk + page-cache model and returns each strip
as one packet train over the server's uplink.  When a
:class:`~repro.core.sais.HintCapsuler` is installed (the server-side SAIs
component), every returned packet's IP options carry the request's
``aff_core_id`` hint.
"""

from __future__ import annotations

import typing as t

import numpy as np

from ..config import ServerConfig
from ..core.sais import HintCapsuler
from ..des import Environment
from ..des.monitor import Counter
from ..hw.disk import Disk
from ..net.links import Link
from ..net.packet import Packet
from ..net.tcp import TcpStream
from ..rng import hash_unit
from .request import StripRequest

__all__ = ["IoServer"]


class IoServer:
    """One I/O server: request decode -> storage -> uplink transmit."""

    def __init__(
        self,
        env: Environment,
        index: int,
        config: ServerConfig,
        uplink: Link,
        deliver: t.Callable[[Packet], t.Any],
        rng: np.random.Generator,
        capsuler: HintCapsuler | None = None,
        tracer: t.Any | None = None,
        mss: int | None = None,
        faults: t.Any | None = None,
        fastpath: t.Any | None = None,
        spans: t.Any | None = None,
        obs_track: t.Any | None = None,
    ) -> None:
        self.env = env
        self.index = index
        self.config = config
        self.uplink = uplink
        self._deliver = deliver
        self._rng = rng
        #: Server-side SAIs component (None on a stock PVFS server).
        self.capsuler = capsuler
        #: Optional per-strip lifecycle tracer.
        self.tracer = tracer
        #: TCP maximum segment size; None = one coalesced train per strip.
        self.mss = mss
        #: Fault injector (straggler slowdown, transient-failure windows);
        #: None on a healthy cluster.
        self.faults = faults
        #: Coalesced wire fast path (:class:`~repro.net.fastpath.WireFastPath`);
        #: installed by the builder only on a fault-free fabric.  When set,
        #: segment trains bypass ``uplink.transmit``/``deliver`` for the
        #: analytic pipeline — byte-identical timing, ~5x fewer events.
        self.fastpath = fastpath
        #: Span recorder + this server's serve lane (repro.obs); None off.
        self.spans = spans
        self.obs_track = obs_track
        self._streams: dict[int, TcpStream] = {}
        self.disk = Disk(
            env, rate=config.disk_rate, seek=config.disk_seek, rng=rng
        )
        self.strips_served = Counter(f"server{index}_strips")
        self.bytes_served = Counter(f"server{index}_bytes")
        self.cache_hits = Counter(f"server{index}_cache_hits")

    def serve(self, request: StripRequest) -> t.Generator:
        """Handle one strip request end-to-end (run as a process)."""
        if request.server != self.index:
            raise ValueError(
                f"strip for server {request.server} routed to server {self.index}"
            )
        if self._drop_if_offline():
            return
        sid = None
        if self.spans is not None:
            # Concurrent serves on one server legitimately overlap, so
            # the lane uses async (b/e) rendering.
            sid = self.spans.begin(
                "serve",
                "server",
                self.obs_track,
                parent=self.spans.strip_span(request.client, request.strip_id),
                overlapping=True,
                args={"strip": request.strip_id, "size": request.size},
            )
        if self.config.service_overhead > 0:
            yield self.env.timeout(self.config.service_overhead)
        fetch_started = self.env.now
        yield from self._storage_fetch(request.size, request.offset)
        if sid is not None:
            self.spans.add(
                "storage",
                "server",
                self.obs_track,
                start=fetch_started,
                end=self.env.now,
                parent=sid,
                overlapping=True,
            )
        packet = Packet(
            size=request.size,
            src_server=self.index,
            dst_client=request.client,
            request_id=request.request_id,
            strip_id=request.strip_id,
            request_core=request.issuing_core,
        )
        if self.capsuler is not None:
            self.capsuler.encapsulate(packet, request.hint_aff_core_id)
        if self.tracer is not None:
            self.tracer.record(
                request.client, request.strip_id, "served", self.env.now
            )
        self.strips_served.add()
        self.bytes_served.add(request.size)
        stream = self._streams.setdefault(
            request.client, TcpStream(self.index, request.client)
        )
        if self.fastpath is not None:
            for segment in stream.segments_for_strip(packet, self.mss):
                # The IP option's copied flag (Fig. 4) replicates the hint
                # onto every segment, so SrcParser works on any of them.
                yield from self.fastpath.transmit_to_client(
                    self.uplink, segment
                )
        else:
            for segment in stream.segments_for_strip(packet, self.mss):
                yield from self.uplink.transmit(segment, self._deliver)
        if sid is not None:
            self.spans.end(sid)

    #: Size of a write acknowledgement message on the wire.
    ACK_SIZE = 1024

    def serve_write(self, request: StripRequest) -> t.Generator:
        """Absorb one written strip and return a small acknowledgement.

        Writes land in the server's page cache (PVFS servers ack once the
        data is buffered; the flush is asynchronous), so the client-visible
        cost is the buffered-write copy plus the ack round trip.  The ack
        still traverses the full interrupt path on the client — but it is
        tiny and carries no consumable data, which is exactly why the
        paper scopes the locality problem to reads.
        """
        if request.server != self.index:
            raise ValueError(
                f"strip for server {request.server} routed to server {self.index}"
            )
        if not request.is_write:
            raise ValueError("serve_write called with a read strip request")
        if self._drop_if_offline():
            return
        sid = None
        if self.spans is not None:
            sid = self.spans.begin(
                "serve_write",
                "server",
                self.obs_track,
                parent=self.spans.strip_span(request.client, request.strip_id),
                overlapping=True,
                args={"strip": request.strip_id, "size": request.size},
            )
        if self.config.service_overhead > 0:
            yield self.env.timeout(self.config.service_overhead)
        # Buffered write: memory-speed copy into the page cache.
        yield self.env.timeout(request.size / self.config.cache_rate)
        # Asynchronous flush to disk, off the client's critical path.
        self.env.process(self.disk.write(request.size), quiet=True)
        ack = Packet(
            size=self.ACK_SIZE,
            src_server=self.index,
            dst_client=request.client,
            request_id=request.request_id,
            strip_id=request.strip_id,
            request_core=request.issuing_core,
            carries_data=False,
        )
        if self.capsuler is not None:
            self.capsuler.encapsulate(ack, request.hint_aff_core_id)
        self.strips_served.add()
        self.bytes_served.add(request.size)
        if self.fastpath is not None:
            yield from self.fastpath.transmit_to_client(self.uplink, ack)
        else:
            yield from self.uplink.transmit(ack, self._deliver)
        if sid is not None:
            self.spans.end(sid)

    def _drop_if_offline(self) -> bool:
        """Transient-failure check: inside a window, requests vanish.

        The client-side retry watchdog is what recovers them — exactly
        the failure mode a crashed-and-restarting server presents.
        """
        if self.faults is not None and self.faults.server_offline(
            self.index, self.env.now
        ):
            self.faults.requests_dropped.add()
            return True
        return False

    def _storage_fetch(self, nbytes: int, offset: int) -> t.Generator:
        """:meth:`_fetch` plus the straggler slowdown, when one applies.

        The slowdown is charged as extra service time proportional to
        the *measured* fetch duration, so it stretches cache hits and
        disk reads alike — a uniformly slow server, as in the straggler
        literature, not just a slow spindle.
        """
        factor = (
            self.faults.server_slowdown(self.index)
            if self.faults is not None
            else 1.0
        )
        if factor <= 1.0:
            yield from self._fetch(nbytes, offset)
            return
        started = self.env.now
        yield from self._fetch(nbytes, offset)
        yield self.env.timeout((factor - 1.0) * (self.env.now - started))

    def _fetch(self, nbytes: int, offset: int) -> t.Generator:
        """Read ``nbytes`` at ``offset`` from page cache or disk.

        Whether an offset is page-cache-resident is a property of the data
        (keyed deterministically on the offset), not of event order — so
        paired A/B policy runs see identical hit patterns.
        """
        if hash_unit(self.index, offset) < self.config.cache_hit_ratio:
            self.cache_hits.add()
            yield self.env.timeout(nbytes / self.config.cache_rate)
        else:
            yield from self.disk.read(nbytes)
