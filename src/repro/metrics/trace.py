"""Per-strip lifecycle tracing.

When enabled (``ClusterConfig(trace=True)``), every strip records a
timestamp at each pipeline stage::

    issued  -> the client fanned the strip request out
    served  -> the I/O server finished storage access (starts transmit)
    received-> the strip's packet cleared the client NIC wire
    handled -> the softirq finished protocol processing
    merged  -> the consumer copied the strip into the request buffer

The stage-to-stage deltas decompose the paper's eq. (1): ``TR`` is
(issued..received), ``TP`` is (received..handled) and the merge delta
carries ``TM`` — which is where the two scheduling policies differ.
"""

from __future__ import annotations

import dataclasses
import statistics
import typing as t

from ..errors import SimulationError

__all__ = [
    "Tracer",
    "StageDelta",
    "LatencyBreakdown",
    "breakdown_from_records",
    "STAGES",
    "AUX_STAGES",
]

#: Pipeline stages in order.
STAGES = ("issued", "served", "received", "handled", "merged")

#: Out-of-pipeline events a strip may record any number of times (a strip
#: can be retried repeatedly under a fault plan).  These never enter the
#: stage-to-stage breakdown; they are kept as per-strip occurrence counts.
AUX_STAGES = ("retried",)


@dataclasses.dataclass(frozen=True)
class StageDelta:
    """Summary of one stage-to-stage latency across all traced strips."""

    from_stage: str
    to_stage: str
    count: int
    mean: float
    p95: float
    maximum: float
    #: Sample standard deviation; 0.0 when fewer than two samples exist
    #: (``statistics.stdev`` raises on n < 2 — a single traced strip is a
    #: legitimate quick-scale configuration, not an error).
    stdev: float = 0.0


@dataclasses.dataclass(frozen=True)
class LatencyBreakdown:
    """Per-stage latency decomposition of the strip pipeline."""

    deltas: tuple[StageDelta, ...]
    strips_traced: int

    def mean_of(self, from_stage: str, to_stage: str) -> float:
        """Mean latency between two adjacent stages."""
        for delta in self.deltas:
            if delta.from_stage == from_stage and delta.to_stage == to_stage:
                return delta.mean
        raise SimulationError(f"no delta {from_stage}->{to_stage} traced")

    @property
    def mean_total(self) -> float:
        """Mean issued-to-merged latency."""
        return sum(delta.mean for delta in self.deltas)


class Tracer:
    """Collects per-strip stage timestamps (cheap dict writes)."""

    def __init__(self) -> None:
        self._records: dict[tuple[int, int], dict[str, float]] = {}
        #: Free-form labels (e.g. the consume location) per strip.
        self.labels: dict[tuple[int, int], str] = {}
        #: ``(client, token) -> {aux stage: occurrences}``.
        self._aux: dict[tuple[int, int], dict[str, int]] = {}

    def record(
        self, client: int, token: int, stage: str, time: float
    ) -> None:
        """Timestamp ``stage`` for strip ``token`` of ``client``.

        Aux stages (:data:`AUX_STAGES`) are counted rather than
        timestamped — a retried strip passes "retried" once per attempt,
        and folding those into the pipeline records would corrupt the
        stage-to-stage deltas.  Anything outside both sets still raises:
        a typo'd stage name silently producing an empty breakdown is
        worse than a crash.
        """
        if stage in AUX_STAGES:
            counts = self._aux.setdefault((client, token), {})
            counts[stage] = counts.get(stage, 0) + 1
            return
        if stage not in STAGES:
            raise SimulationError(f"unknown trace stage {stage!r}")
        self._records.setdefault((client, token), {})[stage] = time

    def aux_count(self, stage: str, client: int | None = None) -> int:
        """Total occurrences of an aux stage (optionally for one client)."""
        if stage not in AUX_STAGES:
            raise SimulationError(f"unknown aux trace stage {stage!r}")
        return sum(
            counts.get(stage, 0)
            for (owner, _token), counts in self._aux.items()
            if client is None or owner == client
        )

    def label(self, client: int, token: int, text: str) -> None:
        """Attach a label (e.g. 'remote') to a strip."""
        self.labels[(client, token)] = text

    def __len__(self) -> int:
        return len(self._records)

    def complete_strips(self) -> int:
        """Strips that passed through every stage."""
        return sum(
            1
            for stages in self._records.values()
            if all(stage in stages for stage in STAGES)
        )

    def breakdown(self) -> LatencyBreakdown:
        """Aggregate stage-to-stage latencies over fully-traced strips."""
        return breakdown_from_records(self._records.values())


def breakdown_from_records(
    records: t.Iterable[t.Mapping[str, float]],
) -> LatencyBreakdown:
    """Aggregate stage-to-stage latencies over stage-timestamp records.

    Each record maps stage name -> timestamp; records missing any of
    :data:`STAGES` are skipped (a write strip never merges, an aborted
    strip never arrives).  This is the one implementation of the stage
    statistics: :meth:`Tracer.breakdown` and the span-derived breakdown
    in :mod:`repro.obs.analysis` both call it, so the reconciliation
    between the two can only diverge on the *timestamps*, never on the
    aggregation arithmetic.
    """
    series: dict[tuple[str, str], list[float]] = {
        (a, b): [] for a, b in zip(STAGES, STAGES[1:])
    }
    complete = 0
    for stages in records:
        if not all(stage in stages for stage in STAGES):
            continue
        complete += 1
        for a, b in zip(STAGES, STAGES[1:]):
            series[(a, b)].append(stages[b] - stages[a])
    if complete == 0:
        raise SimulationError("no fully-traced strips to summarize")
    deltas = []
    for (a, b), values in series.items():
        values.sort()
        deltas.append(
            StageDelta(
                from_stage=a,
                to_stage=b,
                count=len(values),
                mean=statistics.fmean(values),
                p95=values[min(len(values) - 1, int(0.95 * len(values)))],
                maximum=values[-1],
                stdev=(
                    statistics.stdev(values) if len(values) >= 2 else 0.0
                ),
            )
        )
    return LatencyBreakdown(deltas=tuple(deltas), strips_traced=complete)
