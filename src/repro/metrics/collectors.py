"""Metric dataclasses and collection from live cluster components."""

from __future__ import annotations

import dataclasses
import typing as t

from ..hw.cache import Location

if t.TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cluster.builder import Cluster
    from ..cluster.client_node import ClientNode

__all__ = [
    "ClientMetrics",
    "ResilienceMetrics",
    "RunMetrics",
    "collect_client_metrics",
    "collect_resilience_metrics",
]


@dataclasses.dataclass(frozen=True)
class ResilienceMetrics:
    """Fault-injection and recovery counters for one run.

    Collected only when the cluster was built with an active
    :class:`~repro.faults.FaultPlan`; fault-free runs carry ``None`` in
    :attr:`RunMetrics.resilience` and pay nothing.
    """

    #: Transmission attempts lost on links (injected loss).
    packets_dropped: int
    #: Attempts repeated after a loss, across all links.
    retransmits: int
    #: Packets whose IP options a middlebox removed in flight.
    options_stripped: int
    #: Packets whose IP options a middlebox corrupted in flight.
    options_corrupted: int
    #: Packets held back by the reordering middlebox.
    packets_delayed: int
    #: Strip requests swallowed by a server's transient-failure window.
    requests_dropped: int
    #: Strip requests re-submitted by the client retry watchdog.
    strip_retries: int
    #: Completed strips discarded as duplicates of an earlier arrival.
    duplicate_strips: int
    #: Out-of-wire-order segments absorbed by TCP reassembly.
    reorder_events: int
    #: Duplicate TCP segments dropped during reassembly.
    duplicate_segments: int
    #: Interrupts steered by the degraded (hint-less) fallback.
    fallback_steered: int
    #: Data packets that should have carried a SAIs hint but did not.
    unhinted_packets: int
    #: Inbound options fields the driver could not decode.
    parse_errors: int
    #: Decoded hints naming a core the machine does not have.
    hints_out_of_range: int
    #: Bytes that actually crossed the links, retransmissions included.
    raw_wire_bytes: int
    #: Application-observed useful bytes/s (same basis as ``bandwidth``).
    goodput: float
    #: Raw link bytes/s, inflated by every retransmitted attempt.
    raw_bandwidth: float
    #: goodput / raw bandwidth — the efficiency lost to recovery.
    goodput_ratio: float


@dataclasses.dataclass(frozen=True)
class ClientMetrics:
    """Per-client-node measurements over one run."""

    client_index: int
    elapsed: float
    bytes_read: int
    #: Application-observed read bandwidth, bytes/s.
    bandwidth: float
    #: L2 miss rate = misses / accesses (Fig. 6/7 metric).
    l2_miss_rate: float
    #: Machine-wide busy fraction (Fig. 8/9 metric).
    cpu_utilization: float
    #: Total unhalted cycles across cores (Fig. 10/11 metric).
    unhalted_cycles: float
    #: Cache-to-cache strip migrations carried by the interconnect.
    migrations: int
    #: Seconds migrations spent queued for the serialized interconnect.
    migration_wait: float
    #: Strips refetched from DRAM after eviction.
    memory_refetches: int
    #: Consume-location histogram {"local": n, "remote": n, ...}.
    consume_locations: dict[str, int]
    #: Interrupts delivered per core (policy scatter diagnostics).
    interrupts_per_core: tuple[int, ...]
    #: Per-core busy seconds by work category, summed over cores.
    busy_by_category: dict[str, float]
    #: Strips evicted from private caches.
    evictions: int
    #: Segments softirq-processed out of ordinal order (the Flow
    #: Director reordering pathology; structurally 0 under rss).
    out_of_order_segments: int = 0
    #: Duplicate ACKs those out-of-order deliveries elicited.
    dup_acks: int = 0
    #: Holes that reached 3 dup-ACKs (sender-side fast retransmits).
    fast_retransmits: int = 0
    #: Steering-table repoints (Flow Director ATR flow migrations).
    steering_migrations: int = 0
    #: RPS/RFS cross-core softirq handoffs.
    rps_handoffs: int = 0

    @property
    def interrupt_spread(self) -> float:
        """Fraction of cores that handled at least one interrupt."""
        if not self.interrupts_per_core:
            return 0.0
        hit = sum(1 for n in self.interrupts_per_core if n > 0)
        return hit / len(self.interrupts_per_core)


@dataclasses.dataclass(frozen=True)
class RunMetrics:
    """Whole-experiment measurements (aggregates over all client nodes)."""

    policy: str
    elapsed: float
    clients: tuple[ClientMetrics, ...]
    #: Fault/recovery counters; None when the run was fault-free.
    resilience: ResilienceMetrics | None = None

    @property
    def bytes_read(self) -> int:
        return sum(c.bytes_read for c in self.clients)

    @property
    def bandwidth(self) -> float:
        """Aggregate bandwidth over all clients (paper Fig. 12 sums them)."""
        return sum(c.bandwidth for c in self.clients)

    @property
    def l2_miss_rate(self) -> float:
        """Access-weighted mean is unavailable post-hoc; clients are
        homogeneous so the plain mean is the right summary."""
        if not self.clients:
            return 0.0
        return sum(c.l2_miss_rate for c in self.clients) / len(self.clients)

    @property
    def cpu_utilization(self) -> float:
        if not self.clients:
            return 0.0
        return sum(c.cpu_utilization for c in self.clients) / len(self.clients)

    @property
    def unhalted_cycles(self) -> float:
        return sum(c.unhalted_cycles for c in self.clients)

    @property
    def migrations(self) -> int:
        return sum(c.migrations for c in self.clients)

    @property
    def out_of_order_segments(self) -> int:
        return sum(c.out_of_order_segments for c in self.clients)

    @property
    def dup_acks(self) -> int:
        return sum(c.dup_acks for c in self.clients)

    @property
    def fast_retransmits(self) -> int:
        return sum(c.fast_retransmits for c in self.clients)

    @property
    def steering_migrations(self) -> int:
        return sum(c.steering_migrations for c in self.clients)

    @property
    def rps_handoffs(self) -> int:
        return sum(c.rps_handoffs for c in self.clients)


def collect_client_metrics(
    node: "ClientNode", elapsed: float, bytes_read: int
) -> ClientMetrics:
    """Snapshot one client node's counters after a run."""
    busy_by: dict[str, float] = {}
    for core in node.cores:
        for category, seconds in core.busy_by_category.items():
            busy_by[category] = busy_by.get(category, 0.0) + seconds
    total_busy = sum(core.busy_time for core in node.cores)
    utilization = (
        total_busy / (len(node.cores) * elapsed) if elapsed > 0 else 0.0
    )
    return ClientMetrics(
        client_index=node.index,
        elapsed=elapsed,
        bytes_read=bytes_read,
        bandwidth=bytes_read / elapsed if elapsed > 0 else 0.0,
        l2_miss_rate=node.cache.miss_rate(),
        cpu_utilization=utilization,
        unhalted_cycles=sum(core.unhalted_cycles() for core in node.cores),
        migrations=int(node.interconnect.migrations.value),
        migration_wait=node.interconnect.wait_time.value,
        memory_refetches=int(
            node.cache.consume_by_location[Location.MEMORY].value
            + node.cache.consume_by_location[Location.ABSENT].value
        ),
        consume_locations={
            loc.value: int(counter.value)
            for loc, counter in node.cache.consume_by_location.items()
        },
        interrupts_per_core=tuple(node.ioapic.deliveries),
        busy_by_category=busy_by,
        evictions=int(node.cache.evictions.value),
        out_of_order_segments=node.pfs.out_of_order_segments,
        dup_acks=node.pfs.dup_acks,
        fast_retransmits=node.pfs.fast_retransmits,
        steering_migrations=int(getattr(node.policy, "flow_migrations", 0)),
        rps_handoffs=sum(int(d.steered.value) for d in node.daemons),
    )


def collect_resilience_metrics(
    cluster: "Cluster", elapsed: float, bytes_read: int
) -> ResilienceMetrics:
    """Aggregate fault/recovery counters from every layer after a run."""
    injector = cluster.injector
    if injector is None:
        raise ValueError(
            "collect_resilience_metrics needs a cluster with a fault injector"
        )
    links = [server.uplink for server in cluster.servers]
    links.extend(cluster.client_uplinks)
    retransmits = sum(int(link.retransmits.value) for link in links)
    raw_wire_bytes = sum(int(link.bytes_sent.value) for link in links)
    fallback = 0
    unhinted = 0
    parse_errors = 0
    out_of_range = 0
    strip_retries = 0
    duplicate_strips = 0
    reorder_events = 0
    duplicate_segments = 0
    for node in cluster.clients:
        fallback += int(getattr(node.policy, "fallback_events", 0))
        unhinted += sum(int(d.unhinted.value) for d in node.daemons)
        if node.src_parser is not None:
            parse_errors += int(node.src_parser.parse_errors.value)
            out_of_range += int(node.src_parser.hints_out_of_range.value)
        strip_retries += int(node.pfs.strip_retries.value)
        duplicate_strips += int(node.pfs.duplicate_strips.value)
        reorder_events += node.pfs.reorder_events
        duplicate_segments += node.pfs.duplicate_segments
    goodput = bytes_read / elapsed if elapsed > 0 else 0.0
    raw_bandwidth = raw_wire_bytes / elapsed if elapsed > 0 else 0.0
    return ResilienceMetrics(
        packets_dropped=int(injector.packets_dropped.value),
        retransmits=retransmits,
        options_stripped=int(injector.options_stripped.value),
        options_corrupted=int(injector.options_corrupted.value),
        packets_delayed=int(injector.packets_delayed.value),
        requests_dropped=int(injector.requests_dropped.value),
        strip_retries=strip_retries,
        duplicate_strips=duplicate_strips,
        reorder_events=reorder_events,
        duplicate_segments=duplicate_segments,
        fallback_steered=fallback,
        unhinted_packets=unhinted,
        parse_errors=parse_errors,
        hints_out_of_range=out_of_range,
        raw_wire_bytes=raw_wire_bytes,
        goodput=goodput,
        raw_bandwidth=raw_bandwidth,
        goodput_ratio=(
            bytes_read / raw_wire_bytes if raw_wire_bytes > 0 else 0.0
        ),
    )
