"""Metric dataclasses and collection from live cluster components."""

from __future__ import annotations

import dataclasses
import typing as t

from ..hw.cache import Location

if t.TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cluster.client_node import ClientNode

__all__ = ["ClientMetrics", "RunMetrics", "collect_client_metrics"]


@dataclasses.dataclass(frozen=True)
class ClientMetrics:
    """Per-client-node measurements over one run."""

    client_index: int
    elapsed: float
    bytes_read: int
    #: Application-observed read bandwidth, bytes/s.
    bandwidth: float
    #: L2 miss rate = misses / accesses (Fig. 6/7 metric).
    l2_miss_rate: float
    #: Machine-wide busy fraction (Fig. 8/9 metric).
    cpu_utilization: float
    #: Total unhalted cycles across cores (Fig. 10/11 metric).
    unhalted_cycles: float
    #: Cache-to-cache strip migrations carried by the interconnect.
    migrations: int
    #: Seconds migrations spent queued for the serialized interconnect.
    migration_wait: float
    #: Strips refetched from DRAM after eviction.
    memory_refetches: int
    #: Consume-location histogram {"local": n, "remote": n, ...}.
    consume_locations: dict[str, int]
    #: Interrupts delivered per core (policy scatter diagnostics).
    interrupts_per_core: tuple[int, ...]
    #: Per-core busy seconds by work category, summed over cores.
    busy_by_category: dict[str, float]
    #: Strips evicted from private caches.
    evictions: int

    @property
    def interrupt_spread(self) -> float:
        """Fraction of cores that handled at least one interrupt."""
        if not self.interrupts_per_core:
            return 0.0
        hit = sum(1 for n in self.interrupts_per_core if n > 0)
        return hit / len(self.interrupts_per_core)


@dataclasses.dataclass(frozen=True)
class RunMetrics:
    """Whole-experiment measurements (aggregates over all client nodes)."""

    policy: str
    elapsed: float
    clients: tuple[ClientMetrics, ...]

    @property
    def bytes_read(self) -> int:
        return sum(c.bytes_read for c in self.clients)

    @property
    def bandwidth(self) -> float:
        """Aggregate bandwidth over all clients (paper Fig. 12 sums them)."""
        return sum(c.bandwidth for c in self.clients)

    @property
    def l2_miss_rate(self) -> float:
        """Access-weighted mean is unavailable post-hoc; clients are
        homogeneous so the plain mean is the right summary."""
        if not self.clients:
            return 0.0
        return sum(c.l2_miss_rate for c in self.clients) / len(self.clients)

    @property
    def cpu_utilization(self) -> float:
        if not self.clients:
            return 0.0
        return sum(c.cpu_utilization for c in self.clients) / len(self.clients)

    @property
    def unhalted_cycles(self) -> float:
        return sum(c.unhalted_cycles for c in self.clients)

    @property
    def migrations(self) -> int:
        return sum(c.migrations for c in self.clients)


def collect_client_metrics(
    node: "ClientNode", elapsed: float, bytes_read: int
) -> ClientMetrics:
    """Snapshot one client node's counters after a run."""
    busy_by: dict[str, float] = {}
    for core in node.cores:
        for category, seconds in core.busy_by_category.items():
            busy_by[category] = busy_by.get(category, 0.0) + seconds
    total_busy = sum(core.busy_time for core in node.cores)
    utilization = (
        total_busy / (len(node.cores) * elapsed) if elapsed > 0 else 0.0
    )
    return ClientMetrics(
        client_index=node.index,
        elapsed=elapsed,
        bytes_read=bytes_read,
        bandwidth=bytes_read / elapsed if elapsed > 0 else 0.0,
        l2_miss_rate=node.cache.miss_rate(),
        cpu_utilization=utilization,
        unhalted_cycles=sum(core.unhalted_cycles() for core in node.cores),
        migrations=int(node.interconnect.migrations.value),
        migration_wait=node.interconnect.wait_time.value,
        memory_refetches=int(
            node.cache.consume_by_location[Location.MEMORY].value
            + node.cache.consume_by_location[Location.ABSENT].value
        ),
        consume_locations={
            loc.value: int(counter.value)
            for loc, counter in node.cache.consume_by_location.items()
        },
        interrupts_per_core=tuple(node.ioapic.deliveries),
        busy_by_category=busy_by,
        evictions=int(node.cache.evictions.value),
    )
