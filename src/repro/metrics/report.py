"""Plain-text rendering of experiment tables (the benches print these)."""

from __future__ import annotations

import typing as t

__all__ = ["speedup", "render_table", "format_percent"]


def speedup(baseline: float, improved: float) -> float:
    """Fractional improvement of ``improved`` over ``baseline``.

    Matches the paper's "speed-up (%)" series: positive when the improved
    quantity is larger (bandwidth) — callers flip the arguments for
    less-is-better metrics.
    """
    if baseline <= 0:
        raise ValueError(f"baseline must be positive, got {baseline}")
    return improved / baseline - 1.0


def format_percent(fraction: float, digits: int = 2) -> str:
    """0.2357 -> '23.57%'."""
    return f"{fraction * 100:.{digits}f}%"


def render_table(
    headers: t.Sequence[str],
    rows: t.Sequence[t.Sequence[t.Any]],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    divider = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(divider)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
