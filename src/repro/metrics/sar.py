"""A ``sar``-style periodic utilization sampler.

The paper measures CPU utilization with the Linux ``sar`` tool — a
fixed-interval sampler over /proc counters.  :class:`SarSampler` does the
same over the simulated cores: every ``interval`` of virtual time it
records the busy fraction of the machine (and of each core) since the
previous sample, giving a utilization *time series* rather than a single
run-wide mean.
"""

from __future__ import annotations

import dataclasses
import statistics
import typing as t

from ..des import Environment
from ..errors import ConfigError, SimulationError

if t.TYPE_CHECKING:  # pragma: no cover - typing only
    from ..hw.core import Core

__all__ = ["SarSample", "SarSampler"]


@dataclasses.dataclass(frozen=True)
class SarSample:
    """One sampling interval's utilization."""

    #: End time of the interval.
    time: float
    #: Machine-wide busy fraction over the interval.
    utilization: float
    #: Per-core busy fraction over the interval.
    per_core: tuple[float, ...]


class SarSampler:
    """Samples core busy-time deltas at a fixed virtual-time cadence."""

    def __init__(
        self,
        env: Environment,
        cores: t.Sequence["Core"],
        interval: float = 10e-3,
    ) -> None:
        if interval <= 0:
            raise ConfigError(f"interval must be positive, got {interval}")
        if not cores:
            raise ConfigError("need at least one core to sample")
        self.env = env
        self.cores = list(cores)
        self.interval = interval
        self.samples: list[SarSample] = []
        self._previous = [core.busy_time for core in self.cores]
        self._process = env.process(self._run())

    def _run(self) -> t.Generator:
        while True:
            yield self.env.timeout(self.interval)
            current = [core.busy_time for core in self.cores]
            per_core = tuple(
                min(1.0, (now - before) / self.interval)
                for now, before in zip(current, self._previous)
            )
            self._previous = current
            self.samples.append(
                SarSample(
                    time=self.env.now,
                    utilization=sum(per_core) / len(per_core),
                    per_core=per_core,
                )
            )

    # -- summaries ---------------------------------------------------------

    def mean_utilization(self) -> float:
        """Mean of the per-interval machine utilization."""
        self._require_samples()
        return statistics.fmean(s.utilization for s in self.samples)

    def peak_utilization(self) -> float:
        """Highest single-interval machine utilization."""
        self._require_samples()
        return max(s.utilization for s in self.samples)

    def utilization_stdev(self) -> float:
        """Spread of the per-interval utilization (burstiness signal)."""
        self._require_samples()
        if len(self.samples) < 2:
            return 0.0
        return statistics.stdev(s.utilization for s in self.samples)

    def core_imbalance(self) -> float:
        """Mean per-interval spread between busiest and idlest core.

        Dedicated-core scheduling maximizes this; perfect balancing
        minimizes it.
        """
        self._require_samples()
        return statistics.fmean(
            max(s.per_core) - min(s.per_core) for s in self.samples
        )

    def register_metrics(self, registry: t.Any, prefix: str = "sar") -> None:
        """Expose the sampler's summaries in a :class:`MetricsRegistry`.

        The probes are read at snapshot time and guard the empty case
        (a snapshot taken before the first interval elapses reads 0.0
        instead of tripping :meth:`_require_samples`).
        """

        def guarded(summary: t.Callable[[], float]) -> t.Callable[[], float]:
            return lambda: summary() if self.samples else 0.0

        registry.register_probe(
            f"{prefix}.mean_utilization", guarded(self.mean_utilization)
        )
        registry.register_probe(
            f"{prefix}.peak_utilization", guarded(self.peak_utilization)
        )
        registry.register_probe(
            f"{prefix}.utilization_stdev", guarded(self.utilization_stdev)
        )
        registry.register_probe(
            f"{prefix}.core_imbalance", guarded(self.core_imbalance)
        )
        registry.register_probe(
            f"{prefix}.samples", lambda: float(len(self.samples)), kind="counter"
        )

    def _require_samples(self) -> None:
        if not self.samples:
            raise SimulationError("no samples collected yet")
