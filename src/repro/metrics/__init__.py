"""Measurement collection and reporting.

Implements the paper's four evaluation metrics (Sec. V):

* **bandwidth** — bytes merged by the applications / makespan;
* **L2 cache miss rate** — misses / accesses from the cache directory;
* **CPU utilization** — busy time / (cores x makespan), like ``sar``;
* **CPU_CLK_UNHALTED** — busy seconds x clock, like the Oprofile event.

Beyond the paper's four metrics, :mod:`~repro.metrics.trace` records
per-strip lifecycle timestamps, :mod:`~repro.metrics.sar` samples
utilization over time the way ``sar`` does, and
:mod:`~repro.metrics.ascii_plot` renders figure tables as terminal bars.
"""

from .ascii_plot import (
    bar_chart,
    core_heatmap,
    grouped_bars,
    heat_strip,
    plot_result,
)
from .collectors import (
    ClientMetrics,
    ResilienceMetrics,
    RunMetrics,
    collect_client_metrics,
    collect_resilience_metrics,
)
from .report import render_table, speedup
from .sar import SarSample, SarSampler
from .trace import LatencyBreakdown, Tracer

__all__ = [
    "ClientMetrics",
    "ResilienceMetrics",
    "RunMetrics",
    "collect_client_metrics",
    "collect_resilience_metrics",
    "render_table",
    "speedup",
    "Tracer",
    "LatencyBreakdown",
    "SarSampler",
    "SarSample",
    "bar_chart",
    "grouped_bars",
    "plot_result",
    "heat_strip",
    "core_heatmap",
]
