"""Terminal bar charts for the regenerated figures.

matplotlib is deliberately not a dependency; these render the paper's
bar-group figures as aligned unicode bars so `sais-repro run --plot`
gives a visual read of who wins where.
"""

from __future__ import annotations

import typing as t

from ..errors import ReproError

if t.TYPE_CHECKING:  # pragma: no cover - typing only
    from ..experiments.base import ExperimentResult

__all__ = ["bar_chart", "grouped_bars", "plot_result"]

_FULL = "█"
_PARTIAL = " ▏▎▍▌▋▊▉"


def _bar(value: float, maximum: float, width: int) -> str:
    if maximum <= 0:
        return ""
    cells = value / maximum * width
    whole = int(cells)
    frac = cells - whole
    partial = _PARTIAL[int(frac * len(_PARTIAL))].strip()
    return _FULL * whole + partial


def bar_chart(
    labels: t.Sequence[str],
    values: t.Sequence[float],
    width: int = 48,
    title: str | None = None,
    unit: str = "",
) -> str:
    """One horizontal bar per (label, value)."""
    if len(labels) != len(values):
        raise ReproError("labels and values must have equal length")
    if not labels:
        raise ReproError("nothing to plot")
    maximum = max(values)
    label_width = max(len(str(label)) for label in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        bar = _bar(value, maximum, width)
        lines.append(f"{str(label).rjust(label_width)} | {bar} {value:g}{unit}")
    return "\n".join(lines)


def grouped_bars(
    labels: t.Sequence[str],
    series: dict[str, t.Sequence[float]],
    width: int = 48,
    title: str | None = None,
    unit: str = "",
) -> str:
    """Grouped horizontal bars: one group per label, one bar per series."""
    if not series:
        raise ReproError("no series to plot")
    for name, values in series.items():
        if len(values) != len(labels):
            raise ReproError(f"series {name!r} length mismatch")
    maximum = max(max(values) for values in series.values())
    label_width = max(len(str(label)) for label in labels)
    name_width = max(len(name) for name in series)
    lines = [title] if title else []
    for index, label in enumerate(labels):
        for seq, (name, values) in enumerate(series.items()):
            prefix = str(label).rjust(label_width) if seq == 0 else " " * label_width
            bar = _bar(values[index], maximum, width)
            lines.append(
                f"{prefix} {name.ljust(name_width)} | {bar} "
                f"{values[index]:g}{unit}"
            )
    return "\n".join(lines)


_HEAT = " ▁▂▃▄▅▆▇█"


def heat_strip(values: t.Sequence[float], vmax: float = 1.0) -> str:
    """Render a sequence of [0, vmax] values as a density strip.

    One character per value, from blank (0) to a full block (vmax) — a
    terminal sparkline for utilization time series.
    """
    if not values:
        raise ReproError("nothing to render")
    if vmax <= 0:
        raise ReproError("vmax must be positive")
    cells = []
    top = len(_HEAT) - 1
    for value in values:
        level = int(min(max(value / vmax, 0.0), 1.0) * top)
        cells.append(_HEAT[level])
    return "".join(cells)


def core_heatmap(
    per_core_series: t.Sequence[t.Sequence[float]],
    labels: t.Sequence[str] | None = None,
) -> str:
    """One heat strip per core: a terminal view of where work landed.

    ``per_core_series[c][k]`` is core ``c``'s utilization in interval
    ``k`` (e.g. transposed :class:`~repro.metrics.sar.SarSampler`
    samples).
    """
    if not per_core_series:
        raise ReproError("no cores to render")
    labels = labels or [f"core {i}" for i in range(len(per_core_series))]
    if len(labels) != len(per_core_series):
        raise ReproError("labels length mismatch")
    width = max(len(str(label)) for label in labels)
    return "\n".join(
        f"{str(label).rjust(width)} |{heat_strip(series)}|"
        for label, series in zip(labels, per_core_series)
    )


def _numeric(cell: t.Any) -> float | None:
    text = str(cell).strip().rstrip("%").replace("+", "")
    try:
        return float(text)
    except ValueError:
        return None


def plot_result(result: "ExperimentResult", width: int = 48) -> str:
    """Best-effort chart of an experiment table.

    Heuristic: the leading non-numeric columns form the group label; the
    first two numeric columns are plotted as grouped bars (these are the
    baseline/treatment pairs in every figure experiment).
    """
    rows = result.rows
    if not rows:
        raise ReproError("experiment produced no rows")
    first = rows[0]
    numeric_cols = [
        i
        for i in range(len(first))
        if all(_numeric(row[i]) is not None for row in rows)
    ]
    # Prefer the baseline/treatment pair: the first two *adjacent* numeric
    # columns whose headers carry a measurement unit (every figure table
    # puts irqbalance and SAIs side by side).
    unit_markers = ("MB/s", "util", "cyc", "miss", "rate", "%")
    value_cols: list[int] = []
    for i in numeric_cols:
        if i + 1 in numeric_cols:
            header_a = str(result.headers[i])
            header_b = str(result.headers[i + 1])
            if any(m in header_a for m in unit_markers) and any(
                m in header_b for m in unit_markers
            ):
                value_cols = [i, i + 1]
                break
    if not value_cols:
        value_cols = numeric_cols[-2:] if len(numeric_cols) >= 2 else numeric_cols
    if not value_cols:
        raise ReproError("no numeric columns to plot")
    label_end = value_cols[0]
    labels = [" ".join(str(c) for c in row[:label_end]) for row in rows]
    series = {
        str(result.headers[i]): [float(_numeric(row[i])) for row in rows]
        for i in value_cols
    }
    if len(series) == 2:
        return grouped_bars(labels, series, width=width, title=result.title)
    name, values = next(iter(series.items()))
    return bar_chart(labels, values, width=width, title=f"{result.title} — {name}")
