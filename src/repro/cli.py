"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    sais-repro list                       # show available experiments
    sais-repro run fig5_bandwidth_3g      # regenerate one figure
    sais-repro run all --scale quick      # everything, small runs
    sais-repro run all --jobs 8           # fan grid points over 8 workers
    sais-repro run all --shards 2         # split each run over 2 calendars
    sais-repro run all --shards 6 --server-shards 2   # pin 2 server calendars
    sais-repro summary --jobs 4           # near-instant once cached
    sais-repro bench --quick              # benchmark the simulator itself
    sais-repro trace fig5_bandwidth       # span-trace one grid point
    python -m repro ...                   # same thing

Results are cached content-addressed under ``--cache-dir`` (default
``$REPRO_CACHE_DIR`` or ``~/.cache/sais-repro``); pass ``--no-cache`` to
bypass reads and writes.  Both parallelism axes are pure speed knobs:
``--jobs N`` (across grid points) and ``--shards N`` (within one run,
see DESIGN.md section 10) produce output byte-identical to the serial
single-calendar run (see ``tests/experiments/test_determinism.py`` and
``tests/shard/``), and they compose.  ``--fault-plan FILE`` degrades any
experiment's fabric from a JSON fault plan (EXPERIMENTS.md, "Fault
injection").
"""

from __future__ import annotations

import argparse
import sys
import typing as t

from . import __version__
from .core.policy import available_policies
from .errors import ConfigError, ReproError
from .experiments import all_experiment_ids
from .experiments.base import SCALES

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="sais-repro",
        description=(
            "Reproduction of 'A Source-aware Interrupt Scheduling for "
            "Modern Parallel I/O Systems' (SAIs, IPPS 2012)."
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def positive_int(text: str) -> int:
        try:
            value = int(text)
        except ValueError:
            raise argparse.ArgumentTypeError(f"invalid int value: {text!r}")
        if value < 1:
            raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
        return value

    def shards_int(text: str) -> int:
        try:
            value = int(text)
        except ValueError:
            raise argparse.ArgumentTypeError(f"invalid int value: {text!r}")
        if value < 2:
            raise argparse.ArgumentTypeError(
                f"--shards needs at least 2 shards, got {value}"
            )
        return value

    def add_runner_options(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--jobs",
            type=positive_int,
            default=1,
            metavar="N",
            help="worker processes for grid points (default: 1 = in-process)",
        )
        command.add_argument(
            "--shards",
            type=shards_int,
            default=None,
            metavar="N",
            help=(
                "split each run over N coupled event calendars "
                "(byte-identical results; composes with --jobs)"
            ),
        )
        command.add_argument(
            "--server-shards",
            type=positive_int,
            default=None,
            metavar="N",
            help=(
                "pin N of the --shards calendars to the I/O servers "
                "(default: clients split first, leftover shards split "
                "the servers)"
            ),
        )
        command.add_argument(
            "--cache-dir",
            default=None,
            metavar="DIR",
            help=(
                "result cache directory (default: $REPRO_CACHE_DIR or "
                "~/.cache/sais-repro)"
            ),
        )
        command.add_argument(
            "--no-cache",
            action="store_true",
            help="bypass the result cache entirely (no reads, no writes)",
        )
        command.add_argument(
            "--progress",
            action="store_true",
            help="print per-experiment progress lines to stderr",
        )
        command.add_argument(
            "--fault-plan",
            default=None,
            metavar="FILE",
            help=(
                "JSON fault plan (repro.faults.FaultPlan fields) injected "
                "into every experiment built from the standard sweeps"
            ),
        )
        command.add_argument(
            "--fault-seed",
            type=int,
            default=None,
            metavar="N",
            help="override the fault plan's seed (requires --fault-plan)",
        )
        command.add_argument(
            "--trace-rounds",
            default=None,
            metavar="FILE",
            help=(
                "with --shards: export the coordinator's round timeline "
                "(per-shard busy/stall, steals, LBTS bounds) as Perfetto "
                "JSON to FILE"
            ),
        )

    sub.add_parser("list", help="list available experiments")

    summary = sub.add_parser(
        "summary",
        help="run every experiment and print one paper-vs-measured grid",
    )
    summary.add_argument(
        "--scale", choices=SCALES, default="quick",
        help="run-length preset (default: quick)",
    )
    add_runner_options(summary)

    run = sub.add_parser("run", help="run experiments and print their tables")
    run.add_argument(
        "experiments",
        nargs="+",
        help="experiment ids (or 'all')",
    )
    run.add_argument(
        "--scale",
        choices=SCALES,
        default="default",
        help="run-length preset (quick/default/full)",
    )
    run.add_argument(
        "--plot",
        action="store_true",
        help="also render the figure as terminal bars",
    )
    run.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable JSON instead of tables",
    )
    add_runner_options(run)

    bench = sub.add_parser(
        "bench",
        help=(
            "run the pinned kernel benchmark suite, write BENCH_<rev>.json "
            "and compare against the last committed baseline"
        ),
    )
    scale_group = bench.add_mutually_exclusive_group()
    scale_group.add_argument(
        "--quick",
        action="store_true",
        help="run the quick suite (the default, and what CI gates on)",
    )
    scale_group.add_argument(
        "--full",
        action="store_true",
        help="run the full suite (adds irqbalance/NAPI/write and the sharded fan-in entries)",
    )
    bench.add_argument(
        "--out",
        default=".",
        metavar="DIR",
        help="directory for BENCH_<rev>.json (default: current directory)",
    )
    bench.add_argument(
        "--rev",
        default=None,
        metavar="NAME",
        help="revision label for the output file (default: git short sha)",
    )
    bench.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help=(
            "baseline BENCH_*.json to compare against (default: the most "
            "recent other BENCH_*.json in --out)"
        ),
    )
    bench.add_argument(
        "--threshold",
        type=float,
        default=30.0,
        metavar="PCT",
        help="fail if total wall time regresses more than PCT%% (default: 30)",
    )
    bench.add_argument(
        "--profile",
        action="store_true",
        help="cProfile each entry and dump the top functions",
    )
    bench.add_argument(
        "--profile-top",
        type=positive_int,
        default=15,
        metavar="N",
        help="rows per cProfile dump (default: 15)",
    )
    bench.add_argument(
        "--history",
        action="store_true",
        help=(
            "print the committed BENCH_*.json trajectory (table + "
            "sparklines) instead of running the suite"
        ),
    )

    trace = sub.add_parser(
        "trace",
        help=(
            "run one experiment point with causal span tracing and export "
            "a Perfetto-loadable Chrome trace-event JSON; 'trace diff A.json "
            "B.json' aligns two exported traces and attributes their gap"
        ),
    )
    trace.add_argument(
        "experiment",
        help=(
            "experiment id or unique prefix (e.g. fig5_bandwidth), or "
            "'diff' to compare two exported traces"
        ),
    )
    trace.add_argument(
        "inputs",
        nargs="*",
        metavar="TRACE.json",
        help="for 'trace diff': exactly two exported trace files (A, B)",
    )
    trace.add_argument(
        "--scale",
        choices=SCALES,
        default="quick",
        help="run-length preset (default: quick)",
    )
    trace.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help=(
            "write Chrome trace-event JSON here (omit for the ASCII "
            "timeline)"
        ),
    )
    trace.add_argument(
        "--point",
        type=int,
        default=0,
        metavar="N",
        help="grid point index within the experiment (default: 0)",
    )
    trace.add_argument(
        "--policy",
        default="irqbalance",
        metavar="NAME",
        help=(
            "interrupt policy for the traced run (default: irqbalance — "
            "source_aware traces contain no migration edges by design); "
            "one of: " + ", ".join(available_policies())
        ),
    )
    trace.add_argument(
        "--timeline",
        action="store_true",
        help="also print the ASCII timeline when writing --out",
    )
    trace.add_argument(
        "--top",
        type=positive_int,
        default=10,
        metavar="N",
        help="for 'trace diff': rows in the moved-spans table (default: 10)",
    )

    sweep = sub.add_parser(
        "sweep",
        help=(
            "run generated-scenario sweeps and print an aggregate "
            "win-rate report bucketed by topology features (cookbook: "
            "docs/SCENARIOS.md)"
        ),
    )
    sweep.add_argument(
        "experiments",
        nargs="*",
        metavar="SWEEP_ID",
        help=(
            "sweep experiment ids (default: the pinned family, or "
            "sweep_custom when --spec is given)"
        ),
    )
    sweep.add_argument(
        "--spec",
        default=None,
        metavar="FILE",
        help=(
            "declarative scenario spec (JSON, or TOML on Python >= 3.11) "
            "to sample via the sweep_custom experiment"
        ),
    )
    sweep.add_argument(
        "--samples",
        type=positive_int,
        default=None,
        metavar="N",
        help="scenarios to generate from --spec (default: 8)",
    )
    sweep.add_argument(
        "--seed",
        type=int,
        default=None,
        metavar="SEED",
        help="generator seed for --spec (default: 1)",
    )
    sweep.add_argument(
        "--scale",
        choices=SCALES,
        default="quick",
        help="run-length preset (default: quick)",
    )
    sweep.add_argument(
        "--report",
        default=None,
        metavar="FILE",
        help="also write the aggregate report as deterministic JSON here",
    )
    sweep.add_argument(
        "--json",
        action="store_true",
        help="print the aggregate report as JSON instead of ASCII tables",
    )
    add_runner_options(sweep)

    def add_endpoint_options(command: argparse.ArgumentParser) -> None:
        from .serve.daemon import DEFAULT_HOST, DEFAULT_PORT

        command.add_argument(
            "--host",
            default=DEFAULT_HOST,
            metavar="ADDR",
            help=f"daemon address (default: {DEFAULT_HOST})",
        )
        command.add_argument(
            "--port",
            type=int,
            default=DEFAULT_PORT,
            metavar="N",
            help=f"daemon port (default: {DEFAULT_PORT})",
        )

    serve = sub.add_parser(
        "serve",
        help=(
            "run the crash-tolerant run-control daemon: supervised worker "
            "pool, bounded queue, cache-deduplicated submissions"
        ),
    )
    add_endpoint_options(serve)
    serve.add_argument(
        "--workers",
        type=positive_int,
        default=2,
        metavar="N",
        help="supervised worker processes (default: 2)",
    )
    serve.add_argument(
        "--queue-bound",
        type=positive_int,
        default=32,
        metavar="N",
        help=(
            "max open (queued+running) runs before submissions get an "
            "explicit queue_full backpressure response (default: 32)"
        ),
    )
    serve.add_argument(
        "--max-attempts",
        type=positive_int,
        default=3,
        metavar="N",
        help=(
            "per-task attempt budget before a typed job_failed error "
            "(default: 3)"
        ),
    )
    serve.add_argument(
        "--result-ttl",
        type=float,
        default=900.0,
        metavar="SEC",
        help="seconds a finished job stays queryable (default: 900)",
    )
    serve.add_argument(
        "--liveness-timeout",
        type=float,
        default=5.0,
        metavar="SEC",
        help=(
            "a worker silent for this long is declared hung, killed and "
            "replaced (default: 5)"
        ),
    )
    serve.add_argument(
        "--pool-transport",
        choices=("mp", "inproc"),
        default="mp",
        help=(
            "worker transport: real processes (mp, the default) or inline "
            "in-process execution (inproc; what 1-CPU CI uses)"
        ),
    )
    serve.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help=(
            "result cache directory (default: $REPRO_CACHE_DIR or "
            "~/.cache/sais-repro)"
        ),
    )
    serve.add_argument(
        "--no-cache",
        action="store_true",
        help="serve without the result cache (every submission runs)",
    )
    serve.add_argument(
        "--log-file",
        default=None,
        metavar="FILE",
        help="append daemon log lines here instead of stderr",
    )

    submit = sub.add_parser(
        "submit", help="submit one experiment to a running serve daemon"
    )
    submit.add_argument("experiment", help="experiment id (see 'list')")
    submit.add_argument(
        "--scale",
        choices=SCALES,
        default="quick",
        help="run-length preset (default: quick)",
    )
    add_endpoint_options(submit)
    submit.add_argument(
        "--no-wait",
        action="store_true",
        help="print the job id and return instead of waiting for the result",
    )
    submit.add_argument(
        "--timeout",
        type=float,
        default=300.0,
        metavar="SEC",
        help="max seconds to wait for the result (default: 300)",
    )
    submit.add_argument(
        "--json",
        action="store_true",
        help="emit the terminal job view as JSON instead of a table",
    )

    status = sub.add_parser(
        "status",
        help=(
            "query a job by id, or (without an id) the daemon's job list "
            "and metrics snapshot"
        ),
    )
    status.add_argument(
        "job_id", nargs="?", default=None, help="job id from 'submit'"
    )
    add_endpoint_options(status)
    status.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )

    cancel = sub.add_parser(
        "cancel", help="cancel a still-queued job on the serve daemon"
    )
    cancel.add_argument("job_id", help="job id from 'submit'")
    add_endpoint_options(cancel)
    return parser


def _install_fault_plan(args: argparse.Namespace) -> int:
    """Load ``--fault-plan`` and install it as the ambient plan.

    Returns a process exit code: 0 on success (including no plan given),
    2 on a malformed plan file — same contract as the other config errors.
    """
    plan_path = getattr(args, "fault_plan", None)
    fault_seed = getattr(args, "fault_seed", None)
    if plan_path is None:
        if fault_seed is not None:
            print(
                "sais-repro: --fault-seed requires --fault-plan",
                file=sys.stderr,
            )
            return 2
        return 0
    from .faults import load_fault_plan, set_ambient_fault_plan

    try:
        plan = load_fault_plan(plan_path)
    except ConfigError as exc:
        print(f"sais-repro: {exc}", file=sys.stderr)
        return 2
    if fault_seed is not None:
        plan = plan.with_seed(fault_seed)
    set_ambient_fault_plan(plan)
    return 0


def _install_shards(args: argparse.Namespace) -> None:
    """Publish ``--shards N`` as the ambient ``REPRO_SHARDS`` request.

    The request travels in the environment (inherited by ``--jobs``
    worker processes), so the two flags compose with no runner plumbing;
    ineligible points fall back to the single calendar silently (see
    :func:`repro.shard.shard_block_reason`).
    """
    shards = getattr(args, "shards", None)
    if shards is not None:
        import os

        from .shard import SHARDS_ENV

        os.environ[SHARDS_ENV] = str(shards)
    server_shards = getattr(args, "server_shards", None)
    if server_shards is not None:
        import os

        from .shard import SERVER_SHARDS_ENV

        if shards is None:
            raise SystemExit(
                "sais-repro: --server-shards requires --shards"
            )
        os.environ[SERVER_SHARDS_ENV] = str(server_shards)
    trace_rounds = getattr(args, "trace_rounds", None)
    if trace_rounds is not None:
        import os

        from .shard import ROUNDS_ENV

        if shards is None:
            raise SystemExit(
                "sais-repro: --trace-rounds requires --shards"
            )
        os.environ[ROUNDS_ENV] = trace_rounds


def _make_runner(args: argparse.Namespace) -> "t.Any":
    from .runner import ExperimentRunner

    progress = None
    if args.progress:

        def progress(message: str) -> None:
            print(f"sais-repro: {message}", file=sys.stderr)

    return ExperimentRunner(
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        progress=progress,
    )


def _report_summary(summary: "t.Any") -> None:
    cached = sum(1 for report in summary.reports if report.cached)
    print(
        f"sais-repro: {len(summary.reports)} experiment(s), "
        f"{cached} from cache, {summary.executed_tasks} task(s) executed "
        f"({summary.jobs} worker{'s' if summary.jobs != 1 else ''})",
        file=sys.stderr,
    )


def _run_sweep(args: argparse.Namespace) -> int:
    """``sais-repro sweep``: run sweep experiments, print the aggregate.

    With ``--spec`` the file is loaded, validated, and installed as the
    ambient :class:`~repro.scenarios.SweepRequest` backing the
    ``sweep_custom`` experiment; the pinned family ids need no ambient
    state.  Everything downstream is the ordinary runner path, so
    ``--jobs``/``--shards``/``--cache-dir``/``--fault-plan`` compose
    like they do for ``run``.
    """
    from .experiments.sweep import ALL_SWEEP_IDS, CUSTOM_SWEEP_ID, SWEEP_FAMILY
    from .scenarios import (
        SweepRequest,
        build_report,
        load_spec,
        set_ambient_sweep,
    )

    try:
        if args.spec is not None:
            request = SweepRequest(
                spec=load_spec(args.spec),
                samples=args.samples if args.samples is not None else 8,
                seed=args.seed if args.seed is not None else 1,
            )
            set_ambient_sweep(request)
        elif args.samples is not None or args.seed is not None:
            raise ConfigError("--samples/--seed require --spec")
    except ConfigError as exc:
        print(f"sais-repro: {exc}", file=sys.stderr)
        return 2

    ids = list(args.experiments)
    if not ids:
        ids = (
            [CUSTOM_SWEEP_ID] if args.spec is not None else list(SWEEP_FAMILY)
        )
    unknown = [i for i in ids if i not in ALL_SWEEP_IDS]
    if unknown:
        print(
            f"unknown sweep experiment(s): {', '.join(unknown)}",
            file=sys.stderr,
        )
        print(f"available: {', '.join(ALL_SWEEP_IDS)}", file=sys.stderr)
        return 2

    code = _install_fault_plan(args)
    if code:
        return code
    _install_shards(args)
    summary = _make_runner(args).run_many(ids, scale=args.scale)
    _report_summary(summary)
    for report in summary.failed:
        first_line = (report.error or "unknown failure").splitlines()[0]
        print(
            f"sais-repro: {report.exp_id} FAILED: {first_line}",
            file=sys.stderr,
        )
    if summary.failed:
        return 1
    aggregate = build_report(summary.results)
    if args.report is not None:
        try:
            with open(args.report, "w", encoding="utf-8") as handle:
                handle.write(aggregate.to_json())
        except OSError as exc:
            print(
                f"sais-repro: cannot write {args.report}: {exc}",
                file=sys.stderr,
            )
            return 2
        print(f"sais-repro: wrote {args.report}", file=sys.stderr)
    if args.json:
        print(aggregate.to_json(), end="")
    else:
        print(aggregate.render())
    return 0


def _run_serve(args: argparse.Namespace) -> int:
    from .serve import RunControlDaemon, ServeConfig

    log_handle = None
    log = None
    if args.log_file:
        log_handle = open(args.log_file, "a", encoding="utf-8")

        def log(message: str) -> None:
            import time as _time

            stamp = _time.strftime("%H:%M:%S")
            log_handle.write(f"serve[{stamp}]: {message}\n")
            log_handle.flush()

    config = ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_bound=args.queue_bound,
        max_attempts=args.max_attempts,
        result_ttl=args.result_ttl,
        liveness_timeout=args.liveness_timeout,
        pool_transport=args.pool_transport,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
    )
    daemon = RunControlDaemon(config, log=log)
    try:
        host, port = daemon.start()
        print(f"sais-repro serve: listening on {host}:{port}", flush=True)
        daemon.join()
    except KeyboardInterrupt:
        print("sais-repro serve: draining...", file=sys.stderr)
        daemon.request_shutdown(drain=True)
        daemon.join(timeout=60.0)
    finally:
        if log_handle is not None:
            log_handle.close()
    return 0


def _serve_client(args: argparse.Namespace) -> "t.Any":
    from .serve import ServeClient

    return ServeClient(args.host, args.port)


def _run_submit(args: argparse.Namespace) -> int:
    import json

    from .errors import JobFailedError, ServeError
    from .experiments.base import ExperimentResult

    client = _serve_client(args)
    try:
        submitted = client.submit(args.experiment, scale=args.scale)
        if args.no_wait:
            print(json.dumps(submitted, indent=2) if args.json else submitted["job_id"])
            return 0
        final = client.wait(submitted["job_id"], timeout=args.timeout)
    except JobFailedError as exc:
        print(f"sais-repro submit: job failed: {exc}", file=sys.stderr)
        return 1
    except (ServeError, ConfigError, OSError) as exc:
        print(f"sais-repro submit: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(final, indent=2))
        return 0
    dedup = submitted.get("dedup")
    print(
        f"sais-repro: {final['job_id']} {final['state']}"
        + (f" (dedup={dedup})" if dedup else ""),
        file=sys.stderr,
    )
    if final.get("result"):
        print(ExperimentResult.from_dict(final["result"]).render())
    return 0


def _run_status(args: argparse.Namespace) -> int:
    import json

    from .errors import JobFailedError, ServeError

    client = _serve_client(args)
    try:
        if args.job_id is None:
            payload: dict[str, t.Any] = {
                "jobs": client.jobs(),
                "metrics": client.metrics(),
                "worker_pids": client.worker_pids(),
            }
        else:
            payload = client.status(args.job_id)
    except JobFailedError as exc:
        print(f"sais-repro status: job failed: {exc}", file=sys.stderr)
        return 1
    except (ServeError, ConfigError, OSError) as exc:
        print(f"sais-repro status: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(payload, indent=2))
        return 0
    if args.job_id is None:
        for job in payload["jobs"]:
            print(
                f"{job['job_id']}  {job['state']:<9} {job['experiment']}"
                f"@{job['scale']}"
                + (f"  dedup={job['dedup']}" if job.get("dedup") else "")
            )
        for name, value in sorted(payload["metrics"].items()):
            print(f"{name} = {value:g}")
        if payload["worker_pids"]:
            print("worker_pids = " + ", ".join(map(str, payload["worker_pids"])))
    else:
        for key, value in payload.items():
            if key in ("ok", "op", "result"):
                continue
            print(f"{key} = {value}")
    return 0


def _run_cancel(args: argparse.Namespace) -> int:
    from .errors import ServeError

    client = _serve_client(args)
    try:
        view = client.cancel(args.job_id)
    except (ServeError, ConfigError, OSError) as exc:
        print(f"sais-repro cancel: {exc}", file=sys.stderr)
        return 2
    print(f"sais-repro: {view['job_id']} {view['state']}", file=sys.stderr)
    return 0


def main(argv: t.Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)

    if args.command == "sweep":
        return _run_sweep(args)
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "submit":
        return _run_submit(args)
    if args.command == "status":
        return _run_status(args)
    if args.command == "cancel":
        return _run_cancel(args)

    if args.command == "list":
        for exp_id in all_experiment_ids():
            print(exp_id)
        return 0

    if args.command == "trace":
        from .obs.trace_cli import run_trace, run_trace_diff

        try:
            if args.experiment == "diff":
                if len(args.inputs) != 2:
                    raise ConfigError(
                        "trace diff needs exactly two trace files: "
                        "sais-repro trace diff A.json B.json"
                    )
                return run_trace_diff(
                    args.inputs[0],
                    args.inputs[1],
                    out=args.out,
                    top=args.top,
                )
            if args.inputs:
                raise ConfigError(
                    "positional trace files are only valid with "
                    "'sais-repro trace diff'"
                )
            return run_trace(
                args.experiment,
                scale=args.scale,
                out=args.out,
                point=args.point,
                policy=args.policy,
                timeline=args.timeline,
            )
        except ConfigError as exc:
            print(f"sais-repro: {exc}", file=sys.stderr)
            return 2

    if args.command == "bench":
        if args.history:
            from .bench.history import main as history_main

            return history_main(args.out)
        from .bench import run_bench

        return run_bench(
            "full" if args.full else "quick",
            out_dir=args.out,
            rev=args.rev,
            baseline=args.baseline,
            threshold=args.threshold / 100.0,
            profile=args.profile,
            profile_top=args.profile_top,
        )

    if args.command == "summary":
        from .metrics.report import render_table

        code = _install_fault_plan(args)
        if code:
            return code
        _install_shards(args)
        summary = _make_runner(args).run_many(
            all_experiment_ids(), scale=args.scale
        )
        rows = []
        for result in summary.results:
            for key, paper_value in result.paper.items():
                measured = result.measured.get(key, float("nan"))
                rows.append(
                    (result.exp_id, key, f"{paper_value:g}", f"{measured:g}")
                )
        print(
            render_table(
                ("experiment", "headline", "paper", "measured"),
                rows,
                title=f"SAIs reproduction summary (scale={args.scale})",
            )
        )
        _report_summary(summary)
        return 0

    ids = list(args.experiments)
    if ids == ["all"]:
        ids = all_experiment_ids()
    unknown = [i for i in ids if i not in all_experiment_ids()]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(all_experiment_ids())}", file=sys.stderr)
        return 2

    code = _install_fault_plan(args)
    if code:
        return code
    _install_shards(args)
    run_summary = _make_runner(args).run_many(ids, scale=args.scale)
    _report_summary(run_summary)
    for report in run_summary.failed:
        first_line = (report.error or "unknown failure").splitlines()[0]
        print(
            f"sais-repro: {report.exp_id} FAILED: {first_line}",
            file=sys.stderr,
        )

    if args.json:
        import json

        payload = [result.to_dict() for result in run_summary.results]
        print(json.dumps(payload, indent=2))
        return 1 if run_summary.failed else 0

    for index, result in enumerate(run_summary.results):
        if index:
            print()
        print(result.render())
        if args.plot:
            from .metrics.ascii_plot import plot_result

            print()
            try:
                print(plot_result(result))
            except ReproError as exc:
                print(f"(no chart: {exc})")
    return 1 if run_summary.failed else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
