"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    sais-repro list                       # show available experiments
    sais-repro run fig5_bandwidth_3g      # regenerate one figure
    sais-repro run all --scale quick      # everything, small runs
    python -m repro ...                   # same thing
"""

from __future__ import annotations

import argparse
import sys
import typing as t

from . import __version__
from .errors import ReproError
from .experiments import all_experiment_ids, run_experiment_by_id
from .experiments.base import SCALES

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="sais-repro",
        description=(
            "Reproduction of 'A Source-aware Interrupt Scheduling for "
            "Modern Parallel I/O Systems' (SAIs, IPPS 2012)."
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    summary = sub.add_parser(
        "summary",
        help="run every experiment and print one paper-vs-measured grid",
    )
    summary.add_argument(
        "--scale", choices=SCALES, default="quick",
        help="run-length preset (default: quick)",
    )

    run = sub.add_parser("run", help="run experiments and print their tables")
    run.add_argument(
        "experiments",
        nargs="+",
        help="experiment ids (or 'all')",
    )
    run.add_argument(
        "--scale",
        choices=SCALES,
        default="default",
        help="run-length preset (quick/default/full)",
    )
    run.add_argument(
        "--plot",
        action="store_true",
        help="also render the figure as terminal bars",
    )
    run.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable JSON instead of tables",
    )
    return parser


def main(argv: t.Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)

    if args.command == "list":
        for exp_id in all_experiment_ids():
            print(exp_id)
        return 0

    if args.command == "summary":
        from .metrics.report import render_table

        rows = []
        for exp_id in all_experiment_ids():
            result = run_experiment_by_id(exp_id, scale=args.scale)
            for key, paper_value in result.paper.items():
                measured = result.measured.get(key, float("nan"))
                rows.append(
                    (exp_id, key, f"{paper_value:g}", f"{measured:g}")
                )
        print(
            render_table(
                ("experiment", "headline", "paper", "measured"),
                rows,
                title=f"SAIs reproduction summary (scale={args.scale})",
            )
        )
        return 0

    ids = list(args.experiments)
    if ids == ["all"]:
        ids = all_experiment_ids()
    unknown = [i for i in ids if i not in all_experiment_ids()]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(all_experiment_ids())}", file=sys.stderr)
        return 2

    if args.json:
        import json

        payload = [
            run_experiment_by_id(exp_id, scale=args.scale).to_dict()
            for exp_id in ids
        ]
        print(json.dumps(payload, indent=2))
        return 0

    for index, exp_id in enumerate(ids):
        if index:
            print()
        result = run_experiment_by_id(exp_id, scale=args.scale)
        print(result.render())
        if args.plot:
            from .metrics.ascii_plot import plot_result

            print()
            try:
                print(plot_result(result))
            except ReproError as exc:
                print(f"(no chart: {exc})")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
