"""The crash-tolerant run-control daemon behind ``sais-repro serve``.

Supervision tree (one process, three thread groups)::

    RunControlDaemon
    ├── TCP accept loop (ThreadingTCPServer, one thread per connection)
    │     parses line-delimited JSON, answers from the JobTable —
    │     malformed input is a typed bad_request response, never a crash
    ├── scheduler thread
    │     dispatches queued runs onto the worker pool, folds task rows
    │     back into results, writes the cache, evicts TTL-expired jobs,
    │     and owns the drain-then-exit shutdown path
    └── SupervisedWorkerPool (repro.runner.supervised)
          ├── worker 0 (heartbeats; restarted on crash/kill/hang)
          └── worker N

Robustness contract, end to end:

* a **SIGKILLed / crashed / hung worker** is detected by heartbeat
  deadline or pipe EOF, replaced, and the interrupted task retried with
  exponential backoff — the submitter still gets a result;
* a task that exhausts ``max_attempts`` fails **only its own jobs** with
  the typed ``job_failed`` error; the daemon keeps serving;
* the submission queue is **bounded**: beyond ``queue_bound`` open runs
  a submission is answered ``queue_full`` (explicit backpressure, never
  a hang), and the bundled client retries with jittered backoff;
* identical submissions are **deduplicated** twice — against the open
  run table and against the content-addressed result cache — so N
  identical submissions cost one simulation;
* results are cached via tmp-file + ``os.replace`` (atomic under
  concurrent daemons sharing a cache dir) and corrupt entries degrade
  to a logged re-run;
* ``shutdown`` drains: submissions are refused (``shutting_down``),
  in-flight runs complete, then workers stop and the socket closes.
"""

from __future__ import annotations

import dataclasses
import socketserver
import sys
import threading
import time
import traceback
import typing as t

from ..errors import (
    ConfigError,
    JobNotFoundError,
    ProtocolError,
    QueueFullError,
)
from ..obs import MetricsRegistry
from ..runner.cache import ResultCache
from ..runner.runner import assemble_plan, plan_experiment, task_kind
from ..runner.supervised import SupervisedWorkerPool
from .jobs import Job, JobTable, RunState
from .protocol import MAX_LINE_BYTES, decode, encode, error_response, ok_response

__all__ = ["ServeConfig", "RunControlDaemon", "DEFAULT_HOST", "DEFAULT_PORT"]

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 7341


@dataclasses.dataclass(frozen=True)
class ServeConfig:
    """Everything that shapes one daemon instance."""

    host: str = DEFAULT_HOST
    port: int = DEFAULT_PORT  # 0 = ephemeral (the bound port is reported)
    workers: int = 2
    #: Max open (queued + executing) runs before ``queue_full``.
    queue_bound: int = 32
    #: Per-task attempt budget before a typed ``job_failed``.
    max_attempts: int = 3
    #: Seconds a finished job's record (and result) stays queryable.
    result_ttl: float = 900.0
    heartbeat_interval: float = 0.1
    #: A worker silent for this long is declared hung and replaced.
    liveness_timeout: float = 5.0
    #: Optional per-task wall budget (None = only liveness guards).
    task_timeout: float | None = None
    backoff_base: float = 0.25
    backoff_cap: float = 5.0
    #: "mp" (real worker processes) or "inproc" (inline; 1-CPU CI).
    pool_transport: str = "mp"
    cache_dir: str | None = None
    use_cache: bool = True


class _ServeTCPServer(socketserver.ThreadingTCPServer):
    daemon_threads = True
    allow_reuse_address = True
    daemon_ref: "RunControlDaemon"


class _Handler(socketserver.StreamRequestHandler):
    """One connection: a loop of request line -> response line."""

    def handle(self) -> None:  # pragma: no cover - exercised via TCP tests
        daemon = self.server.daemon_ref  # type: ignore[attr-defined]
        while True:
            try:
                line = self.rfile.readline(MAX_LINE_BYTES + 1)
            except (ConnectionError, OSError):
                return
            if not line:
                return
            if len(line) > MAX_LINE_BYTES:
                # Cannot resync a partially-read oversized line: answer
                # and drop the connection (the daemon itself is fine).
                self._send(
                    error_response(
                        "bad_request",
                        f"request line exceeds {MAX_LINE_BYTES} bytes",
                    )
                )
                return
            if not line.strip():
                continue
            try:
                message = decode(line)
            except ProtocolError as exc:
                response = error_response("bad_request", str(exc))
            else:
                response = daemon.dispatch(message)
            if not self._send(response):
                return

    def _send(self, response: dict[str, t.Any]) -> bool:
        try:
            self.wfile.write(encode(response))
            self.wfile.flush()
            return True
        except (ConnectionError, OSError):
            return False


class RunControlDaemon:
    """Long-lived run-control service over a supervised worker pool."""

    def __init__(
        self,
        config: ServeConfig | None = None,
        *,
        log: t.Callable[[str], None] | None = None,
    ) -> None:
        self.config = config or ServeConfig()
        self._log_fn = log
        self._started_at = time.monotonic()
        self.table = JobTable(
            queue_bound=self.config.queue_bound,
            result_ttl=self.config.result_ttl,
        )
        self.cache: ResultCache | None = (
            ResultCache(self.config.cache_dir) if self.config.use_cache else None
        )
        self.pool = SupervisedWorkerPool(
            workers=self.config.workers,
            transport=self.config.pool_transport,
            heartbeat_interval=self.config.heartbeat_interval,
            liveness_timeout=self.config.liveness_timeout,
            task_timeout=self.config.task_timeout,
            max_attempts=self.config.max_attempts,
            backoff_base=self.config.backoff_base,
            backoff_cap=self.config.backoff_cap,
            on_event=self._pool_event,
        )
        self.registry = MetricsRegistry()
        self._register_metrics()
        self._draining = False
        self._stop_now = False
        self._scheduler: threading.Thread | None = None
        self._server: _ServeTCPServer | None = None
        self._server_thread: threading.Thread | None = None
        self.address: tuple[str, int] | None = None
        self._ops: dict[str, t.Callable[[dict[str, t.Any]], dict[str, t.Any]]] = {
            "ping": self._op_ping,
            "submit": self._op_submit,
            "status": self._op_status,
            "wait": self._op_wait,
            "cancel": self._op_cancel,
            "jobs": self._op_jobs,
            "metrics": self._op_metrics,
            "shutdown": self._op_shutdown,
        }

    # -- observability -------------------------------------------------

    def _register_metrics(self) -> None:
        table = self.table
        self.registry.register_probe(
            "serve.queue_depth", lambda: float(table.queue_depth())
        )
        self.registry.register_probe(
            "serve.open_runs", lambda: float(table.open_runs())
        )
        self.registry.register_probe(
            "serve.jobs_active", lambda: float(table.active_jobs())
        )
        for name in table.stats:
            self.registry.register_probe(
                f"serve.{name}",
                lambda key=name: float(table.stats[key]),
                kind="counter",
            )
        for name in self.pool.stats:
            self.registry.register_probe(
                f"serve.pool.{name}",
                lambda key=name: float(self.pool.stats[key]),
                kind="counter",
            )

    def _pool_event(self, name: str, detail: dict[str, t.Any]) -> None:
        self._log(f"pool {name}: {detail}")

    def _log(self, message: str) -> None:
        if self._log_fn is not None:
            self._log_fn(message)
        else:
            stamp = time.strftime("%H:%M:%S")
            print(f"serve[{stamp}]: {message}", file=sys.stderr, flush=True)

    # -- lifecycle -----------------------------------------------------

    def start(self) -> tuple[str, int]:
        """Start scheduler + TCP server threads; returns the bound address."""
        import repro.experiments  # noqa: F401 - registration side effects

        self._scheduler = threading.Thread(
            target=self._scheduler_loop, name="serve-scheduler", daemon=True
        )
        self._scheduler.start()
        self._server = _ServeTCPServer(
            (self.config.host, self.config.port), _Handler
        )
        self._server.daemon_ref = self
        self.address = (
            self._server.server_address[0],
            self._server.server_address[1],
        )
        self._server_thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="serve-tcp",
            daemon=True,
        )
        self._server_thread.start()
        self._log(
            f"listening on {self.address[0]}:{self.address[1]} "
            f"({self.pool.n_workers} worker(s), transport={self.pool.transport}, "
            f"queue_bound={self.config.queue_bound})"
        )
        return self.address

    def serve_forever(self) -> None:
        """Start and block until a shutdown request completes the drain."""
        self.start()
        self.join()

    def join(self, timeout: float | None = None) -> None:
        if self._scheduler is not None:
            self._scheduler.join(timeout=timeout)
        if self._server_thread is not None:
            self._server_thread.join(timeout=timeout)

    def request_shutdown(self, drain: bool = True) -> None:
        """Refuse new submissions and (optionally) drain in-flight runs."""
        with self.table.cond:
            self._draining = True
            if not drain:
                self._stop_now = True
            self.table.cond.notify_all()

    def running(self) -> bool:
        return self._scheduler is not None and self._scheduler.is_alive()

    # -- request dispatch (handler threads) ----------------------------

    def dispatch(self, message: dict[str, t.Any]) -> dict[str, t.Any]:
        """``handle_request`` hardened: internal bugs become responses."""
        try:
            return self.handle_request(message)
        except Exception as exc:  # noqa: BLE001 - daemon must not die
            self._log(
                f"internal error handling {message.get('op')!r}: "
                f"{exc!r}\n{traceback.format_exc()}"
            )
            return error_response("internal", f"daemon internal error: {exc!r}")

    def handle_request(self, message: dict[str, t.Any]) -> dict[str, t.Any]:
        """Answer one request object (transport-independent core)."""
        op = message.get("op")
        if not isinstance(op, str):
            return error_response("bad_request", "request needs a string 'op'")
        handler = self._ops.get(op)
        if handler is None:
            return error_response(
                "bad_request",
                f"unknown op {op!r}; expected one of: "
                + ", ".join(sorted(self._ops)),
            )
        try:
            return handler(message)
        except JobNotFoundError as exc:
            return error_response("job_not_found", str(exc))
        except QueueFullError as exc:
            return error_response("queue_full", str(exc))
        except ConfigError as exc:
            return error_response("bad_request", str(exc))

    # -- ops -----------------------------------------------------------

    def _op_ping(self, message: dict[str, t.Any]) -> dict[str, t.Any]:
        import repro

        return ok_response(
            "ping",
            version=repro.__version__,
            uptime_s=round(time.monotonic() - self._started_at, 3),
            workers=self.pool.n_workers,
            transport=self.pool.transport,
            draining=self._draining,
        )

    def _op_submit(self, message: dict[str, t.Any]) -> dict[str, t.Any]:
        from ..experiments.base import get_experiment, resolve_scale

        exp_id = message.get("experiment")
        if not isinstance(exp_id, str) or not exp_id:
            return error_response(
                "bad_request", "submit needs a string 'experiment'"
            )
        scale = message.get("scale", "quick")
        if not isinstance(scale, str):
            return error_response("bad_request", "'scale' must be a string")
        try:
            get_experiment(exp_id)
        except ConfigError as exc:
            return error_response("unknown_experiment", str(exc))
        scale = resolve_scale(scale)  # ConfigError -> bad_request upstream
        raw_tasks: dict[str, tuple[str, t.Any]] = {}
        plan = plan_experiment(exp_id, scale, raw_tasks)
        include_result = bool(message.get("include_result", False))
        tasks = {
            key: (task_kind(key), owner_exp, payload)
            for key, (owner_exp, payload) in raw_tasks.items()
        }
        with self.table.cond:
            if self._draining:
                return error_response(
                    "shutting_down", "daemon is draining; retry elsewhere"
                )
            # The cache check happens under the table lock: a run that
            # completes between an unlocked cache miss and table.submit
            # would otherwise be re-opened (the cache entry is written
            # *before* the run leaves the table, so under the lock one of
            # the two must see the result).
            if self.cache is not None and not self.table.has_open_run(plan.key):
                cached = self.cache.get(plan.key)
                if cached is not None and cached.exp_id == exp_id:
                    job = self.table.submit_cached(
                        exp_id, scale, plan.key, cached.to_dict()
                    )
                    return ok_response(
                        "submit", **job.view(include_result=include_result)
                    )
            job = self.table.submit(exp_id, scale, plan, tasks)
            view = job.view(include_result=include_result)
        self._log(
            f"submit {job.job_id}: {exp_id}@{scale} -> {job.state}"
            + (f" (dedup={job.dedup})" if job.dedup else "")
        )
        return ok_response("submit", **view)

    def _job_response(
        self, op: str, job: Job, *, include_result: bool
    ) -> dict[str, t.Any]:
        if job.state == "failed":
            return error_response(
                "job_failed",
                job.error or "job failed",
                job_id=job.job_id,
                state="failed",
                attempts=job.attempts,
                experiment=job.exp_id,
            )
        view = job.view(include_result=include_result)
        if not job.terminal:
            run = self.table.run_for(job)
            if run is not None:
                view["progress"] = run.progress()
        return ok_response(op, **view)

    def _op_status(self, message: dict[str, t.Any]) -> dict[str, t.Any]:
        job_id = message.get("job_id")
        if not isinstance(job_id, str):
            return error_response("bad_request", "status needs a string 'job_id'")
        include_result = bool(message.get("include_result", False))
        with self.table.cond:
            job = self.table.get(job_id)
            return self._job_response(
                "status", job, include_result=include_result
            )

    def _op_wait(self, message: dict[str, t.Any]) -> dict[str, t.Any]:
        job_id = message.get("job_id")
        if not isinstance(job_id, str):
            return error_response("bad_request", "wait needs a string 'job_id'")
        try:
            timeout = float(message.get("timeout", 30.0))
        except (TypeError, ValueError):
            return error_response("bad_request", "'timeout' must be a number")
        timeout = max(0.0, min(timeout, 300.0))
        include_result = bool(message.get("include_result", True))
        with self.table.cond:
            job = self.table.wait_job(job_id, timeout)
            return self._job_response("wait", job, include_result=include_result)

    def _op_cancel(self, message: dict[str, t.Any]) -> dict[str, t.Any]:
        job_id = message.get("job_id")
        if not isinstance(job_id, str):
            return error_response("bad_request", "cancel needs a string 'job_id'")
        with self.table.cond:
            job = self.table.cancel(job_id)
            return ok_response("cancel", **job.view(include_result=False))

    def _op_jobs(self, message: dict[str, t.Any]) -> dict[str, t.Any]:
        with self.table.cond:
            views = [
                job.view(include_result=False) for job in self.table.jobs()
            ]
        return ok_response("jobs", jobs=views)

    def _op_metrics(self, message: dict[str, t.Any]) -> dict[str, t.Any]:
        return ok_response(
            "metrics",
            metrics=self.registry.as_dict(),
            worker_pids=self.pool.worker_pids(),
        )

    def _op_shutdown(self, message: dict[str, t.Any]) -> dict[str, t.Any]:
        drain = bool(message.get("drain", True))
        self._log(f"shutdown requested (drain={drain})")
        self.request_shutdown(drain=drain)
        return ok_response("shutdown", draining=drain)

    # -- scheduler thread ----------------------------------------------

    def _scheduler_loop(self) -> None:
        table = self.table
        while True:
            with table.cond:
                if self._stop_now:
                    break
                runs = table.next_runs()
            for run in runs:
                self._log(
                    f"run {run.run_key[:12]}: dispatching {len(run.tasks)} "
                    f"task(s) for {run.exp_id}@{run.scale}"
                )
                for key, (kind, exp_id, payload) in run.tasks.items():
                    self.pool.submit(key, kind, exp_id, payload)
            outcomes = self.pool.poll(timeout=0.05)
            for outcome in outcomes:
                if outcome.ok:
                    with table.cond:
                        ready = table.record_row(
                            outcome.key, outcome.row, outcome.attempts
                        )
                    for run in ready:
                        self._finish_run(run)
                else:
                    with table.cond:
                        failed = table.fail_task(
                            outcome.key, outcome.error or "", outcome.attempts
                        )
                    for run in failed:
                        first_line = (outcome.error or "").splitlines()[0]
                        self._log(
                            f"run {run.run_key[:12]} failed after "
                            f"{outcome.attempts} attempt(s): {first_line}"
                        )
            with table.cond:
                table.evict_expired()
                idle = (
                    table.open_runs() == 0 and self.pool.outstanding() == 0
                )
                if self._stop_now or (self._draining and idle):
                    break
                if not runs and not outcomes and self.pool.outstanding() == 0:
                    table.cond.wait(timeout=0.2)
        self._teardown()

    def _finish_run(self, run: RunState) -> None:
        try:
            result = assemble_plan(run.plan, run.scale, run.rows)
        except Exception as exc:  # noqa: BLE001 - surfaced as job_failed
            with self.table.cond:
                self.table.fail_run(run.run_key, f"assembly failed: {exc!r}")
            self._log(f"run {run.run_key[:12]} assembly failed: {exc!r}")
            return
        if self.cache is not None:
            try:
                self.cache.put(run.plan.key, result, run.scale)
            except OSError as exc:
                self._log(f"cache write failed (serving anyway): {exc}")
        with self.table.cond:
            jobs = self.table.complete_run(run.run_key, result.to_dict())
        self._log(
            f"run {run.run_key[:12]} done: {run.exp_id}@{run.scale} "
            f"-> {len(jobs)} job(s) resolved"
        )

    def _teardown(self) -> None:
        with self.table.cond:
            # Anything still non-terminal at hard stop is cancelled.
            for job in self.table.jobs():
                if not job.terminal:
                    job.state = "cancelled"
                    job.finished = time.monotonic()
            self.table.cond.notify_all()
        self.pool.shutdown()
        server = self._server
        if server is not None:
            server.shutdown()
            server.server_close()
        self._log("drained; exiting")
