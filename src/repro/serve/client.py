"""Client for the run-control daemon: typed errors, jittered retry.

``ServeClient`` speaks the line-delimited JSON protocol over one TCP
connection per request (stateless — robust to daemon restarts and to
half-closed sockets).  Error responses are raised as the matching
:mod:`repro.errors` exception via
:func:`repro.serve.protocol.exception_for`; in particular
``queue_full``/``shutting_down`` become
:class:`~repro.errors.QueueFullError`, which :meth:`ServeClient.submit`
absorbs with capped exponential backoff *plus jitter* — a hundred
clients bounced by backpressure must not retry in lockstep.
"""

from __future__ import annotations

import random
import socket
import time
import typing as t

from ..errors import ServeError
from .daemon import DEFAULT_HOST, DEFAULT_PORT
from .protocol import MAX_LINE_BYTES, decode, encode, exception_for

__all__ = ["ServeClient"]


class ServeClient:
    """Talk to a :class:`~repro.serve.daemon.RunControlDaemon`."""

    def __init__(
        self,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        *,
        timeout: float = 30.0,
        submit_retries: int = 8,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        rng: random.Random | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.submit_retries = submit_retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self._rng = rng if rng is not None else random.Random()

    # -- wire ----------------------------------------------------------

    def request(self, message: dict[str, t.Any]) -> dict[str, t.Any]:
        """One raw request/response round trip (no error raising)."""
        with socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        ) as conn:
            conn.sendall(encode(message))
            with conn.makefile("rb") as reader:
                line = reader.readline(MAX_LINE_BYTES + 1)
        if not line:
            raise ServeError(
                f"daemon at {self.host}:{self.port} closed the connection "
                "without a response"
            )
        return decode(line)

    def _checked(self, message: dict[str, t.Any]) -> dict[str, t.Any]:
        """Round trip; raises the typed exception on an error response."""
        response = self.request(message)
        if not response.get("ok", False):
            raise exception_for(response)
        return response

    # -- operations ----------------------------------------------------

    def ping(self) -> dict[str, t.Any]:
        return self._checked({"op": "ping"})

    def metrics(self) -> dict[str, float]:
        return self._checked({"op": "metrics"})["metrics"]

    def jobs(self) -> list[dict[str, t.Any]]:
        return self._checked({"op": "jobs"})["jobs"]

    def worker_pids(self) -> list[int]:
        """PIDs of the daemon's live pool workers (empty under inproc)."""
        return self._checked({"op": "metrics"})["worker_pids"]

    def submit(
        self,
        experiment: str,
        scale: str = "quick",
        *,
        retry_backpressure: bool = True,
    ) -> dict[str, t.Any]:
        """Submit one experiment; absorbs backpressure with jittered retry.

        Returns the submit response (``job_id``, ``state``, ``dedup``,
        ``key``).  A persistent ``queue_full`` beyond the retry budget
        re-raises :class:`~repro.errors.QueueFullError`.
        """
        message = {"op": "submit", "experiment": experiment, "scale": scale}
        attempts = self.submit_retries if retry_backpressure else 0
        for attempt in range(attempts + 1):
            response = self.request(message)
            if response.get("ok", False):
                return response
            retryable = response.get("error") in ("queue_full", "shutting_down")
            if not retryable or attempt >= attempts:
                raise exception_for(response)
            delay = min(self.backoff_cap, self.backoff_base * (2**attempt))
            delay *= 1.0 + self._rng.random()  # full jitter: 1x..2x
            time.sleep(delay)
        raise AssertionError("unreachable")  # pragma: no cover

    def status(
        self, job_id: str, *, include_result: bool = False
    ) -> dict[str, t.Any]:
        """Current job view; raises ``JobFailedError`` for a failed job."""
        return self._checked(
            {"op": "status", "job_id": job_id, "include_result": include_result}
        )

    def wait(self, job_id: str, timeout: float = 120.0) -> dict[str, t.Any]:
        """Block until ``job_id`` is terminal; returns the final view.

        Raises :class:`~repro.errors.JobFailedError` when the job
        exhausted its attempt budget and :class:`~repro.errors.ServeError`
        if ``timeout`` elapses first.
        """
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ServeError(
                    f"timed out after {timeout:.1f}s waiting for {job_id}"
                )
            response = self._checked(
                {
                    "op": "wait",
                    "job_id": job_id,
                    "timeout": min(remaining, 30.0),
                }
            )
            if response.get("state") in ("done", "cancelled"):
                return response

    def submit_and_wait(
        self, experiment: str, scale: str = "quick", timeout: float = 120.0
    ) -> dict[str, t.Any]:
        """Submit + wait; returns the terminal job view (with result)."""
        submitted = self.submit(experiment, scale)
        return self.wait(submitted["job_id"], timeout=timeout)

    def cancel(self, job_id: str) -> dict[str, t.Any]:
        return self._checked({"op": "cancel", "job_id": job_id})

    def shutdown(self, drain: bool = True) -> dict[str, t.Any]:
        return self._checked({"op": "shutdown", "drain": drain})
