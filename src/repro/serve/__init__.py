"""Simulation-as-a-service: the crash-tolerant run-control daemon.

``sais-repro serve`` turns the experiment runner into a long-lived
service: submissions arrive over a line-delimited JSON TCP protocol
(:mod:`repro.serve.protocol`), are deduplicated against both the open
run table and the runner's content-addressed result cache
(:mod:`repro.serve.jobs`), and execute on a supervised warm worker pool
(:class:`repro.runner.supervised.SupervisedWorkerPool`) that restarts
crashed, SIGKILLed and hung workers and retries their tasks with
exponential backoff.

The robustness contract — bounded queue with explicit ``queue_full``
backpressure, typed ``job_failed`` terminal errors, result TTLs,
drain-then-exit shutdown — is documented in
:mod:`repro.serve.daemon` and pinned by ``tests/serve/`` (including a
``chaos`` tier that kills workers mid-run and feeds the socket
garbage).

Quickstart::

    sais-repro serve --workers 2 &
    sais-repro submit fig5_bandwidth_3g --scale quick
    sais-repro status            # daemon metrics snapshot

or in code::

    from repro.serve import RunControlDaemon, ServeClient, ServeConfig

    daemon = RunControlDaemon(ServeConfig(port=0, pool_transport="inproc"))
    host, port = daemon.start()
    client = ServeClient(host, port)
    final = client.submit_and_wait("fig5_bandwidth_3g", scale="quick")
"""

from .client import ServeClient
from .daemon import DEFAULT_HOST, DEFAULT_PORT, RunControlDaemon, ServeConfig
from .jobs import Job, JobTable, RunState
from .protocol import (
    ERROR_CODES,
    JOB_STATES,
    TERMINAL_STATES,
    decode,
    encode,
    error_response,
    exception_for,
    ok_response,
)

__all__ = [
    "RunControlDaemon",
    "ServeConfig",
    "ServeClient",
    "Job",
    "JobTable",
    "RunState",
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "JOB_STATES",
    "TERMINAL_STATES",
    "ERROR_CODES",
    "encode",
    "decode",
    "ok_response",
    "error_response",
    "exception_for",
]
