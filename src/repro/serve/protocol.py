"""Wire protocol of the run-control daemon: line-delimited JSON.

One request per line, one response per line, both JSON objects — the
simplest protocol that ``nc`` can speak and a thread-per-connection
server can serve::

    -> {"op": "submit", "experiment": "fig5_bandwidth_3g", "scale": "quick"}
    <- {"ok": true, "op": "submit", "job_id": "job-000001", "state": "queued",
        "dedup": null, "key": "9f2c..."}

Every response carries ``"ok"``.  Failures are *typed*: ``"error"`` is a
stable machine-readable code from :data:`ERROR_CODES` and ``"message"``
is for humans.  :func:`exception_for` maps a code back to the matching
:mod:`repro.errors` class, so ``ServeClient`` raises
:class:`~repro.errors.QueueFullError` where the daemon answered
``queue_full`` — the same exception taxonomy on both sides of the wire.

Malformed input (bad JSON, non-object, oversized line, unknown op) is a
``bad_request`` *response*, never a daemon crash and never a dropped
connection — chaos tests feed garbage down the socket and assert the
daemon keeps serving.
"""

from __future__ import annotations

import json
import typing as t

from ..errors import (
    ConfigError,
    JobFailedError,
    JobNotFoundError,
    ProtocolError,
    QueueFullError,
    ServeError,
)

__all__ = [
    "MAX_LINE_BYTES",
    "JOB_STATES",
    "TERMINAL_STATES",
    "ERROR_CODES",
    "encode",
    "decode",
    "ok_response",
    "error_response",
    "exception_for",
]

#: Upper bound on one request/response line (1 MiB of JSON is already a
#: pathological submission; beyond it the connection cannot be resynced).
MAX_LINE_BYTES = 1 << 20

#: Job lifecycle: queued -> running -> {done, failed}; queued -> cancelled.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")
TERMINAL_STATES = ("done", "failed", "cancelled")

#: Stable error codes a response may carry.
ERROR_CODES = (
    "bad_request",
    "unknown_experiment",
    "queue_full",
    "shutting_down",
    "job_failed",
    "job_not_found",
    "internal",
)

_CODE_TO_EXC: dict[str, type[Exception]] = {
    "bad_request": ServeError,
    "unknown_experiment": ConfigError,
    "queue_full": QueueFullError,
    "shutting_down": QueueFullError,  # retryable backpressure, same as full
    "job_failed": JobFailedError,
    "job_not_found": JobNotFoundError,
    "internal": ServeError,
}


def encode(message: dict[str, t.Any]) -> bytes:
    """One protocol line: compact JSON + newline."""
    data = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(data) + 1 > MAX_LINE_BYTES:
        raise ProtocolError(
            f"message of {len(data)} bytes exceeds MAX_LINE_BYTES"
        )
    return data + b"\n"


def decode(line: bytes | str) -> dict[str, t.Any]:
    """Parse one line into a request/response object.

    Raises :class:`~repro.errors.ProtocolError` on anything that is not
    a JSON object within the size bound — callers turn that into a
    ``bad_request`` response.
    """
    if isinstance(line, str):
        line = line.encode("utf-8")
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(f"line of {len(line)} bytes exceeds MAX_LINE_BYTES")
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"not valid JSON: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError(
            f"expected a JSON object, got {type(message).__name__}"
        )
    return message


def ok_response(op: str, **fields: t.Any) -> dict[str, t.Any]:
    """A success response for ``op``."""
    return {"ok": True, "op": op, **fields}


def error_response(
    code: str, message: str, **fields: t.Any
) -> dict[str, t.Any]:
    """A typed failure response (``code`` must be in :data:`ERROR_CODES`)."""
    if code not in ERROR_CODES:
        raise ProtocolError(f"unknown error code {code!r}")
    return {"ok": False, "error": code, "message": message, **fields}


def exception_for(response: dict[str, t.Any]) -> Exception:
    """The typed exception a client should raise for an error response."""
    code = str(response.get("error", "internal"))
    message = str(response.get("message", "")) or f"daemon error {code!r}"
    exc_type = _CODE_TO_EXC.get(code, ServeError)
    return exc_type(message)
