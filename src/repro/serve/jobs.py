"""Job and run bookkeeping for the run-control daemon.

Two levels of identity keep a million identical submissions cheap:

* a **job** is one submission — the unit a client polls, waits on and
  cancels; every ``submit`` creates one;
* a **run** is one underlying execution, keyed by the runner's
  content-addressed ``result_key`` (sha256 of experiment id + scale +
  resolved configs + version).  Identical submissions *attach* to the
  already-open run (``dedup: "run"``) or are answered straight from the
  result cache (``dedup: "cache"``); only distinct runs consume queue
  capacity.

The **backpressure contract**: at most ``queue_bound`` runs may be open
(queued + executing).  A submission that would open run number
``queue_bound + 1`` raises :class:`~repro.errors.QueueFullError` — the
daemon answers ``queue_full`` and the client backs off with jitter.
Attaching to an open run never counts against the bound, so dedup
traffic cannot be starved by its own popularity.

Job lifecycle (see :data:`repro.serve.protocol.JOB_STATES`)::

    queued ──▶ running ──▶ done
       │           └─────▶ failed     (attempt budget exhausted)
       └─────▶ cancelled              (cancel while still queued)

Terminal jobs are evicted ``result_ttl`` seconds after finishing; a
status query for an evicted id raises
:class:`~repro.errors.JobNotFoundError` (resubmitting is cheap — the
result cache still holds the run).

All mutating methods must be called with :attr:`JobTable.cond` held;
``locked()`` wraps that for callers.  One condition object serves every
waiter: handler threads block in ``wait_job`` and the scheduler thread
blocks between dispatch rounds.
"""

from __future__ import annotations

import contextlib
import dataclasses
import threading
import time
import typing as t
from collections import deque

from ..errors import JobNotFoundError, QueueFullError, ServeError

__all__ = ["Job", "RunState", "JobTable"]


@dataclasses.dataclass
class Job:
    """One submission's lifecycle record."""

    job_id: str
    exp_id: str
    scale: str
    run_key: str
    state: str = "queued"
    #: How this submission was deduplicated: None (it opened the run),
    #: "run" (attached to an open run) or "cache" (answered from disk).
    dedup: str | None = None
    created: float = 0.0
    finished: float | None = None
    attempts: int = 0
    error: str | None = None
    #: ``ExperimentResult.to_dict()`` payload once done.
    result: dict[str, t.Any] | None = None

    @property
    def terminal(self) -> bool:
        return self.state in ("done", "failed", "cancelled")

    def view(self, *, include_result: bool = True) -> dict[str, t.Any]:
        """The wire-format job status object."""
        view: dict[str, t.Any] = {
            "job_id": self.job_id,
            "experiment": self.exp_id,
            "scale": self.scale,
            "key": self.run_key,
            "state": self.state,
            "dedup": self.dedup,
            "attempts": self.attempts,
        }
        if self.error is not None:
            view["error_detail"] = self.error
        if include_result and self.result is not None:
            view["result"] = self.result
        return view


@dataclasses.dataclass
class RunState:
    """One underlying execution shared by every attached job."""

    run_key: str
    exp_id: str
    scale: str
    plan: t.Any  # repro.runner.runner.ExperimentPlan
    #: task key -> (kind, exp_id, payload), ready for pool submission.
    tasks: dict[str, tuple[str, str, t.Any]]
    job_ids: list[str] = dataclasses.field(default_factory=list)
    rows: dict[str, t.Any] = dataclasses.field(default_factory=dict)
    state: str = "queued"  # queued | running
    attempts: int = 0

    @property
    def complete(self) -> bool:
        return all(key in self.rows for key in self.plan.point_keys)

    def progress(self) -> dict[str, int]:
        return {
            "points_total": len(self.plan.point_keys),
            "points_done": sum(
                1 for key in self.plan.point_keys if key in self.rows
            ),
        }


class JobTable:
    """Thread-safe job/run registry with a bounded run queue and TTLs."""

    def __init__(
        self,
        queue_bound: int = 32,
        result_ttl: float = 900.0,
        clock: t.Callable[[], float] = time.monotonic,
    ) -> None:
        if queue_bound < 1:
            raise ServeError(f"queue_bound must be >= 1, got {queue_bound}")
        self.queue_bound = queue_bound
        self.result_ttl = result_ttl
        self.cond = threading.Condition()
        self._clock = clock
        self._jobs: dict[str, Job] = {}
        self._runs: dict[str, RunState] = {}
        self._run_queue: deque[str] = deque()
        #: task key -> run keys that still need its row.
        self._task_owners: dict[str, set[str]] = {}
        self._counter = 0
        self.stats: dict[str, int] = {
            "jobs_submitted": 0,
            "dedup_cache_hits": 0,
            "dedup_run_hits": 0,
            "queue_rejections": 0,
            "runs_started": 0,
            "runs_completed": 0,
            "runs_failed": 0,
            "jobs_done": 0,
            "jobs_failed": 0,
            "jobs_cancelled": 0,
            "jobs_evicted": 0,
        }

    @contextlib.contextmanager
    def locked(self) -> t.Iterator[None]:
        with self.cond:
            yield

    # -- submission (cond held) ----------------------------------------

    def _new_job(self, exp_id: str, scale: str, run_key: str) -> Job:
        self._counter += 1
        job = Job(
            job_id=f"job-{self._counter:06d}",
            exp_id=exp_id,
            scale=scale,
            run_key=run_key,
            created=self._clock(),
        )
        self._jobs[job.job_id] = job
        self.stats["jobs_submitted"] += 1
        return job

    def submit_cached(
        self, exp_id: str, scale: str, run_key: str, result: dict[str, t.Any]
    ) -> Job:
        """Record a submission answered entirely from the result cache."""
        job = self._new_job(exp_id, scale, run_key)
        job.state = "done"
        job.dedup = "cache"
        job.result = result
        job.finished = self._clock()
        self.stats["dedup_cache_hits"] += 1
        self.stats["jobs_done"] += 1
        self.cond.notify_all()
        return job

    def submit(
        self,
        exp_id: str,
        scale: str,
        plan: t.Any,
        tasks: dict[str, tuple[str, str, t.Any]],
    ) -> Job:
        """Attach to the open run for ``plan.key`` or open a new one.

        Raises :class:`~repro.errors.QueueFullError` when opening a new
        run would exceed ``queue_bound`` open runs.
        """
        run = self._runs.get(plan.key)
        if run is None:
            if len(self._runs) >= self.queue_bound:
                self.stats["queue_rejections"] += 1
                raise QueueFullError(
                    f"submission queue is full ({len(self._runs)}/"
                    f"{self.queue_bound} open runs); retry with backoff"
                )
            run = RunState(
                run_key=plan.key,
                exp_id=exp_id,
                scale=scale,
                plan=plan,
                tasks=tasks,
            )
            self._runs[plan.key] = run
            self._run_queue.append(plan.key)
            self.stats["runs_started"] += 1
            job = self._new_job(exp_id, scale, plan.key)
        else:
            job = self._new_job(exp_id, scale, plan.key)
            job.dedup = "run"
            job.state = run.state if run.state == "running" else "queued"
            self.stats["dedup_run_hits"] += 1
        run.job_ids.append(job.job_id)
        self.cond.notify_all()
        return job

    # -- scheduling (cond held) ----------------------------------------

    def next_runs(self) -> list[RunState]:
        """Pop every queued run for dispatch, marking it running."""
        runs = []
        while self._run_queue:
            run = self._runs.get(self._run_queue.popleft())
            if run is None:  # cancelled while queued
                continue
            run.state = "running"
            for task_key in run.tasks:
                self._task_owners.setdefault(task_key, set()).add(run.run_key)
            for job_id in run.job_ids:
                job = self._jobs.get(job_id)
                if job is not None and job.state == "queued":
                    job.state = "running"
            runs.append(run)
        return runs

    def record_row(
        self, task_key: str, row: t.Any, attempts: int
    ) -> list[RunState]:
        """Attach one completed task row; returns runs now fully rowed."""
        ready = []
        for run_key in sorted(self._task_owners.pop(task_key, ())):
            run = self._runs.get(run_key)
            if run is None:
                continue
            run.rows[task_key] = row
            run.attempts = max(run.attempts, attempts)
            if run.complete:
                ready.append(run)
        return ready

    def fail_task(
        self, task_key: str, error: str, attempts: int
    ) -> list[RunState]:
        """A task exhausted its attempt budget: fail every owning run."""
        failed = []
        for run_key in sorted(self._task_owners.pop(task_key, ())):
            run = self._runs.pop(run_key, None)
            if run is None:
                continue
            run.attempts = max(run.attempts, attempts)
            self._finish_run_jobs(
                run, state="failed", error=error, result=None
            )
            self.stats["runs_failed"] += 1
            failed.append(run)
        return failed

    def complete_run(
        self, run_key: str, result: dict[str, t.Any]
    ) -> list[Job]:
        """Mark a run assembled+cached; resolves every attached job."""
        run = self._runs.pop(run_key, None)
        if run is None:
            return []
        self.stats["runs_completed"] += 1
        return self._finish_run_jobs(
            run, state="done", error=None, result=result
        )

    def fail_run(self, run_key: str, error: str) -> list[Job]:
        """Fail a run outright (e.g. assembly raised)."""
        run = self._runs.pop(run_key, None)
        if run is None:
            return []
        self.stats["runs_failed"] += 1
        return self._finish_run_jobs(run, state="failed", error=error, result=None)

    def _finish_run_jobs(
        self,
        run: RunState,
        state: str,
        error: str | None,
        result: dict[str, t.Any] | None,
    ) -> list[Job]:
        now = self._clock()
        finished = []
        for job_id in run.job_ids:
            job = self._jobs.get(job_id)
            if job is None or job.terminal:
                continue
            job.state = state
            job.error = error
            job.result = result
            job.attempts = run.attempts
            job.finished = now
            self.stats["jobs_done" if state == "done" else "jobs_failed"] += 1
            finished.append(job)
        self.cond.notify_all()
        return finished

    # -- queries (cond held) -------------------------------------------

    def get(self, job_id: str) -> Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise JobNotFoundError(
                f"unknown job id {job_id!r} (never submitted, or evicted "
                f"after its {self.result_ttl:.0f}s result TTL)"
            )
        return job

    def run_for(self, job: Job) -> RunState | None:
        return self._runs.get(job.run_key)

    def has_open_run(self, run_key: str) -> bool:
        return run_key in self._runs

    def wait_job(self, job_id: str, timeout: float) -> Job:
        """Block until ``job_id`` is terminal (or ``timeout`` elapses)."""
        deadline = self._clock() + timeout
        job = self.get(job_id)
        while not job.terminal:
            remaining = deadline - self._clock()
            if remaining <= 0:
                break
            self.cond.wait(timeout=min(remaining, 0.5))
            job = self.get(job_id)
        return job

    def cancel(self, job_id: str) -> Job:
        """Cancel a queued job; running/terminal jobs are left unchanged.

        If the cancelled job was the only one attached to a still-queued
        run, the run is withdrawn too (its queue slot frees up).
        """
        job = self.get(job_id)
        if job.state != "queued":
            return job
        job.state = "cancelled"
        job.finished = self._clock()
        self.stats["jobs_cancelled"] += 1
        run = self._runs.get(job.run_key)
        if run is not None and run.state == "queued":
            live = [
                jid
                for jid in run.job_ids
                if jid != job_id and not self._jobs[jid].terminal
            ]
            if not live:
                self._runs.pop(run.run_key, None)
                with contextlib.suppress(ValueError):
                    self._run_queue.remove(run.run_key)
        self.cond.notify_all()
        return job

    def evict_expired(self) -> int:
        """Drop terminal jobs older than ``result_ttl``; returns count."""
        now = self._clock()
        expired = [
            job_id
            for job_id, job in self._jobs.items()
            if job.terminal
            and job.finished is not None
            and now - job.finished > self.result_ttl
        ]
        for job_id in expired:
            del self._jobs[job_id]
        self.stats["jobs_evicted"] += len(expired)
        return len(expired)

    # -- probes (lock-free reads of ints are fine for gauges) ----------

    def queue_depth(self) -> int:
        """Runs waiting for dispatch."""
        return len(self._run_queue)

    def open_runs(self) -> int:
        """Runs queued or executing (what the bound applies to)."""
        return len(self._runs)

    def active_jobs(self) -> int:
        return sum(1 for job in self._jobs.values() if not job.terminal)

    def jobs(self) -> list[Job]:
        return list(self._jobs.values())
