"""Run the pinned bench suite, record a trajectory file, gate regressions.

Output format (``BENCH_<rev>.json``, schema 1)::

    {
      "schema": 1,
      "rev": "abc1234",
      "created": "2026-08-05T12:00:00+00:00",
      "scale": "quick",
      "python": "3.11.7",
      "entries": [
        {"name": ..., "wall_time_s": ..., "events_processed": ...,
         "events_per_s": ..., "sim_elapsed_s": ..., "bandwidth_mb_s": ...},
        ...
      ],
      "totals": {"wall_time_s": ..., "events_processed": ...}
    }

``events_processed`` is exact and deterministic (it counts calendar pops in
:class:`~repro.des.Environment`); wall time is machine noise, so the
regression gate applies its threshold to *total* wall time and treats event
counts as an exact secondary report.
"""

from __future__ import annotations

import dataclasses
import datetime
import json
import os
import platform
import subprocess
import time
import typing as t
from pathlib import Path

from .suite import BenchEntry, bench_entries

__all__ = [
    "BenchRecord",
    "run_entry",
    "profile_entry_collapsed",
    "run_suite",
    "write_payload",
    "find_baseline",
    "compare_payloads",
    "main",
]


@dataclasses.dataclass(frozen=True)
class BenchRecord:
    """Measured cost of one suite entry."""

    name: str
    title: str
    wall_time_s: float
    events_processed: int
    events_per_s: float
    sim_elapsed_s: float
    bandwidth_mb_s: float
    #: Shard calendars the entry ran on (0 = single calendar).
    shards: int = 0
    #: Server calendars inside the plan (0 = single calendar run).
    server_shards: int = 0
    #: Conservative-protocol rounds (sharded entries only).  The widened
    #: per-kind lookahead shrinks this against earlier trajectories at
    #: the same point — the committed payloads carry the delta.
    rounds: int = 0
    #: Windows executed away from their home worker by the work-stealing
    #: scheduler, plus windows skipped as provably empty.
    steals: int = 0
    windows_skipped: int = 0
    #: Total wall seconds shards spent computing windows.
    busy_s: float = 0.0
    #: Sum over rounds of the slowest shard's window time — the compute
    #: cost of the same run with one core per shard.
    critical_path_s: float = 0.0
    #: ``wall - busy + critical_path``: this entry's wall time had the
    #: shard windows run concurrently.  On a multi-core host running the
    #: ``mp`` transport the measured ``wall_time_s`` already shows the
    #: overlap; on a single core (the ``inproc`` transport) this is the
    #: honest projection, and the trajectory test gates on it.
    projected_wall_s: float = 0.0

    def to_dict(self) -> dict[str, t.Any]:
        return dataclasses.asdict(self)


def run_entry(
    entry: BenchEntry, profile: bool = False, profile_top: int = 15
) -> tuple[BenchRecord, str | None]:
    """Run one entry; returns its record plus an optional profile dump.

    Entries with ``shards`` set run on that many coupled calendars; all
    other entries explicitly clear the ambient ``REPRO_SHARDS`` request so
    the pinned trajectory always measures exactly what it says.
    """
    import os

    from ..shard import ROUNDS_ENV, SERVER_SHARDS_ENV, SHARDS_ENV

    saved = {
        env: os.environ.get(env)
        for env in (SHARDS_ENV, SERVER_SHARDS_ENV, ROUNDS_ENV)
    }
    if entry.shards:
        os.environ[SHARDS_ENV] = str(entry.shards)
    else:
        os.environ.pop(SHARDS_ENV, None)
    if entry.server_shards:
        os.environ[SERVER_SHARDS_ENV] = str(entry.server_shards)
    else:
        os.environ.pop(SERVER_SHARDS_ENV, None)
    rounds_base = saved[ROUNDS_ENV]
    if rounds_base and entry.shards:
        # An ambient --trace-rounds request covers the whole suite; give
        # each sharded entry its own file ("<stem>.<entry>.json") so the
        # fan-in pair doesn't clobber a single timeline.
        stem, ext = os.path.splitext(rounds_base)
        os.environ[ROUNDS_ENV] = f"{stem}.{entry.name}{ext or '.json'}"
    else:
        os.environ.pop(ROUNDS_ENV, None)
    try:
        record, profile_text = _run_entry_timed(entry, profile, profile_top)
    finally:
        for env, value in saved.items():
            if value is None:
                os.environ.pop(env, None)
            else:
                os.environ[env] = value
    return record, profile_text


def _run_entry_timed(
    entry: BenchEntry, profile: bool, profile_top: int
) -> tuple[BenchRecord, str | None]:
    from ..cluster.simulation import Simulation
    from ..units import MiB

    sim = Simulation(entry.config)
    profile_text: str | None = None
    if profile:
        import cProfile
        import io
        import pstats

        profiler = cProfile.Profile()
        started = time.perf_counter()
        profiler.enable()
        metrics = sim.run()
        profiler.disable()
        wall = time.perf_counter() - started
        buffer = io.StringIO()
        stats = pstats.Stats(profiler, stream=buffer)
        stats.sort_stats("cumulative").print_stats(profile_top)
        profile_text = buffer.getvalue()
    else:
        started = time.perf_counter()
        metrics = sim.run()
        wall = time.perf_counter() - started
    # Read through the MetricsRegistry rather than poking env directly —
    # same number, but it keeps the registry on a tested hot path.
    events = int(sim.cluster.metrics.read("des.events_processed"))
    outcome = sim.shard_outcome
    busy = sum(outcome.busy_s) if outcome is not None else 0.0
    critical = outcome.critical_path_s if outcome is not None else 0.0
    record = BenchRecord(
        name=entry.name,
        title=entry.title,
        wall_time_s=wall,
        events_processed=events,
        events_per_s=events / wall if wall > 0 else 0.0,
        sim_elapsed_s=metrics.elapsed,
        bandwidth_mb_s=metrics.bandwidth / MiB,
        shards=entry.shards if outcome is not None else 0,
        server_shards=outcome.server_shards if outcome is not None else 0,
        rounds=outcome.rounds if outcome is not None else 0,
        steals=outcome.steals if outcome is not None else 0,
        windows_skipped=outcome.windows_skipped if outcome is not None else 0,
        busy_s=busy,
        critical_path_s=critical,
        projected_wall_s=max(0.0, wall - busy + critical) if outcome else 0.0,
    )
    return record, profile_text


def profile_entry_collapsed(
    entry: BenchEntry, interval: float = 0.002
) -> list[str]:
    """Re-run one entry under the stack sampler; collapsed-stack lines.

    The output is Brendan Gregg's folded format (``frame;frame count``),
    ready for ``flamegraph.pl`` or speedscope.  Wall-clock sampling is
    inherently nondeterministic, so this runs *separately* from the timed
    measurement — the recorded wall time never includes sampler overhead.
    """
    from ..cluster.simulation import Simulation
    from ..obs.flamegraph import profile_collapsed

    sim = Simulation(entry.config)
    _metrics, lines = profile_collapsed(
        sim.run, interval=interval, strip_prefix="repro."
    )
    return lines


def current_rev() -> str:
    """Short git revision of the working tree, ``-dirty`` suffixed."""
    try:
        rev = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            check=True,
            timeout=10,
        ).stdout.strip()
        dirty = subprocess.run(
            ["git", "status", "--porcelain"],
            capture_output=True,
            text=True,
            check=True,
            timeout=10,
        ).stdout.strip()
        return f"{rev}-dirty" if dirty else rev
    except Exception:  # noqa: BLE001 - no git, shallow CI checkout, ...
        return "unknown"


def run_suite(
    scale: str = "quick",
    *,
    rev: str | None = None,
    profile: bool = False,
    profile_top: int = 15,
    flame_dir: Path | None = None,
    echo: t.Callable[[str], None] | None = None,
) -> dict[str, t.Any]:
    """Run every entry of ``scale``'s suite; returns the payload dict.

    With ``profile`` set and a ``flame_dir``, each entry additionally gets
    a collapsed-stack ``FLAME_<entry>.folded`` file written there (from a
    separate sampled run, so the timed numbers stay clean).
    """
    say = echo or (lambda _msg: None)
    records: list[BenchRecord] = []
    for entry in bench_entries(scale):
        record, profile_text = run_entry(
            entry, profile=profile, profile_top=profile_top
        )
        records.append(record)
        say(
            f"{record.name}: {record.wall_time_s:.3f}s wall, "
            f"{record.events_processed} events "
            f"({record.events_per_s:,.0f}/s), "
            f"{record.bandwidth_mb_s:.1f} MB/s simulated"
        )
        if record.shards:
            say(
                f"{record.name}: {record.shards} shards "
                f"({record.server_shards} server), "
                f"{record.rounds} rounds, "
                f"{record.windows_skipped} skipped, "
                f"{record.steals} steals, critical path "
                f"{record.critical_path_s:.3f}s -> projected wall "
                f"{record.projected_wall_s:.3f}s"
            )
        if profile_text is not None:
            say(f"--- profile: {record.name} ---\n{profile_text}")
        if profile and flame_dir is not None:
            lines = profile_entry_collapsed(entry)
            folded = flame_dir / f"FLAME_{record.name}.folded"
            folded.write_text("\n".join(lines) + ("\n" if lines else ""))
            say(
                f"wrote {folded} ({len(lines)} stacks; feed to "
                "flamegraph.pl or speedscope)"
            )
    return {
        "schema": 1,
        "rev": rev or current_rev(),
        "created": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "scale": scale,
        "python": platform.python_version(),
        "cpu_count": os.cpu_count() or 1,
        "entries": [record.to_dict() for record in records],
        "totals": {
            "wall_time_s": sum(r.wall_time_s for r in records),
            "events_processed": sum(r.events_processed for r in records),
        },
    }


def write_payload(payload: dict[str, t.Any], out_dir: Path) -> Path:
    """Write ``BENCH_<rev>.json`` into ``out_dir``; returns the path."""
    path = out_dir / f"BENCH_{payload['rev']}.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def find_baseline(out_dir: Path, exclude: Path | None = None) -> Path | None:
    """The most recent committed ``BENCH_*.json`` (by recorded ``created``).

    ``exclude`` drops the file the current run just wrote, so a rerun in a
    dirty tree never compares against itself.
    """
    candidates: list[tuple[str, Path]] = []
    for path in sorted(out_dir.glob("BENCH_*.json")):
        if exclude is not None and path.resolve() == exclude.resolve():
            continue
        try:
            payload = json.loads(path.read_text())
            candidates.append((str(payload.get("created", "")), path))
        except (OSError, ValueError):
            continue
    if not candidates:
        return None
    return max(candidates)[1]


@dataclasses.dataclass(frozen=True)
class Comparison:
    """Regression verdict of one payload against a baseline."""

    baseline_rev: str
    #: (entry name, baseline wall, new wall, fractional change) per entry
    #: present in both payloads.
    entries: tuple[tuple[str, float, float, float], ...]
    total_wall_change: float
    #: baseline events / new events over shared entries (>1 = fewer now).
    events_ratio: float
    threshold: float

    @property
    def regressed(self) -> bool:
        return self.total_wall_change > self.threshold


def compare_payloads(
    payload: dict[str, t.Any],
    baseline: dict[str, t.Any],
    threshold: float = 0.30,
) -> Comparison:
    """Compare total wall time over the entries shared with the baseline."""
    base_by_name = {e["name"]: e for e in baseline.get("entries", ())}
    rows: list[tuple[str, float, float, float]] = []
    base_wall = new_wall = 0.0
    base_events = new_events = 0
    for entry in payload["entries"]:
        base = base_by_name.get(entry["name"])
        if base is None:
            continue
        b, n = base["wall_time_s"], entry["wall_time_s"]
        rows.append((entry["name"], b, n, (n - b) / b if b > 0 else 0.0))
        base_wall += b
        new_wall += n
        base_events += base["events_processed"]
        new_events += entry["events_processed"]
    total_change = (
        (new_wall - base_wall) / base_wall if base_wall > 0 else 0.0
    )
    return Comparison(
        baseline_rev=str(baseline.get("rev", "?")),
        entries=tuple(rows),
        total_wall_change=total_change,
        events_ratio=(base_events / new_events) if new_events else 0.0,
        threshold=threshold,
    )


def main(
    scale: str = "quick",
    *,
    out_dir: str | Path = ".",
    rev: str | None = None,
    baseline: str | Path | None = None,
    threshold: float = 0.30,
    profile: bool = False,
    profile_top: int = 15,
    echo: t.Callable[[str], None] = print,
) -> int:
    """Full bench flow: run, write, compare.  Returns a process exit code
    (0 = ok / no baseline to compare, 1 = wall-time regression beyond the
    threshold)."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    payload = run_suite(
        scale,
        rev=rev,
        profile=profile,
        profile_top=profile_top,
        flame_dir=out if profile else None,
        echo=lambda msg: echo(f"bench: {msg}"),
    )
    path = write_payload(payload, out)
    echo(
        f"bench: wrote {path} "
        f"(total {payload['totals']['wall_time_s']:.3f}s wall, "
        f"{payload['totals']['events_processed']} events)"
    )

    if baseline is not None:
        baseline_path: Path | None = Path(baseline)
    else:
        baseline_path = find_baseline(out, exclude=path)
    if baseline_path is None:
        echo("bench: no baseline BENCH_*.json found; nothing to compare")
        return 0
    try:
        baseline_payload = json.loads(Path(baseline_path).read_text())
    except (OSError, ValueError) as exc:
        echo(f"bench: cannot read baseline {baseline_path}: {exc}")
        return 1
    result = compare_payloads(payload, baseline_payload, threshold)
    for name, base_wall, new_wall, change in result.entries:
        echo(
            f"bench: {name}: {base_wall:.3f}s -> {new_wall:.3f}s "
            f"({change:+.1%})"
        )
    echo(
        f"bench: vs {result.baseline_rev}: total wall "
        f"{result.total_wall_change:+.1%} "
        f"(threshold {result.threshold:.0%}), "
        f"events ratio x{result.events_ratio:.2f} "
        f"(baseline/current; >1 = fewer events now)"
    )
    if result.regressed:
        echo("bench: REGRESSION beyond threshold")
        return 1
    return 0
