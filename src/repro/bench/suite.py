"""The pinned benchmark suite.

Each entry is one deterministic simulation point chosen to exercise a
distinct kernel regime:

* ``mtu1500_read`` — standard-Ethernet MSS: every 64 KiB strip travels as
  a ~44-segment train, so per-segment wire/interrupt events dominate.
  This is the regime the coalesced wire fast path targets.
* ``jumbo9k_read`` — jumbo-frame MSS (the resilience sweeps' fabric):
  ~8 segments per strip, an even mix of per-segment and per-strip work.
* ``strip_train_read`` — ``mss=None`` (the paper's one-interrupt-per-strip
  accounting): per-strip events dominate; measures the non-segmented path
  the Fig. 5–11 sweeps spend most of their time in.
* ``micro_read`` — a seconds-scale smoke point small enough for unit tests
  and CI to run the full bench machinery end-to-end.

All entries run fault-free (the fast-path regime) under the ``source_aware``
policy, except where noted; the ``full`` scale adds the irqbalance policy
path, NAPI coalescing and the write path.

The sharded family measures the conservative-window protocol at three
cuts of the same fan-in point: client-only sharding (``shard5``), a
balanced client+server split (``shard8_srv4``), and the maximal one
calendar per node (``shard20``).  All three are byte-identical to the
single-calendar twin — the committed trajectory pins exact event parity —
so the wall/critical-path deltas isolate what each cut buys.  The
``fanin_deep`` pair runs the same fan-in over a deep (1 ms one-way)
fabric, where the wider lookahead collapses the barrier round count and
the N-way cut's projected speedup clears 3x (the committed trajectory
pins that floor too).
"""

from __future__ import annotations

import dataclasses

from ..config import ClusterConfig, NetworkConfig, WorkloadConfig
from ..experiments.grids import nic_config
from ..units import KiB, MiB, USEC

__all__ = ["BenchEntry", "bench_entries", "entry_by_name"]


@dataclasses.dataclass(frozen=True)
class BenchEntry:
    """One pinned benchmark point."""

    name: str
    title: str
    config: ClusterConfig
    #: Included in the quick suite (CI smoke + the committed trajectory).
    quick: bool = True
    #: Run on this many coupled shard calendars (0 = single calendar).
    #: Sharded entries are byte-identical to their single twin — same
    #: ``events_processed`` — which the committed trajectory pins; the
    #: wall/critical-path columns measure what sharding buys.
    shards: int = 0
    #: Server calendars inside the shard plan (0 = the automatic
    #: client-first split, which keeps all servers on one calendar until
    #: every client has its own).  Only meaningful with ``shards`` set.
    server_shards: int = 0


def _point(
    mss: int | None,
    *,
    policy: str = "source_aware",
    transfer: int = 512 * KiB,
    file_size: int = 2 * MiB,
    n_processes: int = 4,
    operation: str = "read",
    napi: bool = False,
) -> ClusterConfig:
    """The suite's common 8-server, 3-Gigabit-client point."""
    client = nic_config(3)
    if napi:
        client = dataclasses.replace(client, napi=True)
    return ClusterConfig(
        n_servers=8,
        client=client,
        network=NetworkConfig(mss=mss),
        workload=WorkloadConfig(
            n_processes=n_processes,
            transfer_size=transfer,
            file_size=file_size,
            operation=operation,
        ),
        policy=policy,
    )


def _fanin_point(
    n_clients: int, latency: float | None = None
) -> ClusterConfig:
    """A full-scale multiclient fan-in: the sharding showcase.

    Many clients each reading from many servers is the regime the shard
    cut targets — every client node is an independent calendar domain, so
    the per-round critical path is one client's work, not all of them.
    MSS 1500 puts the bulk of the events on the client side (per-segment
    NIC/softirq work), where the parallelism lives.

    ``latency`` overrides the one-way fabric latency.  The conservative
    window is bounded by the fabric lookahead, so the default 60 µs
    switch pins the round count near ``elapsed / λ`` regardless of how
    the calendars are cut; a *deep* fabric (multi-tier or campus-scale,
    ~1 ms one way) amortizes the barrier over ~16x fewer rounds and is
    where N-way sharding pays off (the ``fanin_deep`` pair).
    """
    network = (
        NetworkConfig(mss=1500)
        if latency is None
        else NetworkConfig(mss=1500, latency=latency)
    )
    return ClusterConfig(
        n_servers=16,
        n_clients=n_clients,
        client=nic_config(3),
        network=network,
        workload=WorkloadConfig(
            n_processes=4,
            transfer_size=512 * KiB,
            file_size=4 * MiB,
        ),
        policy="source_aware",
    )


def _scenario_point() -> ClusterConfig:
    """One generator-drawn point, pinning scenario expansion in bench.

    Any drift in the generator's draws changes this entry's config (and
    thus its simulated work), so the committed trajectory doubles as a
    byte-reproducibility canary for :mod:`repro.scenarios`.
    """
    from ..scenarios import BUILTIN_SPECS, generate_scenarios

    return generate_scenarios(
        BUILTIN_SPECS["heterogeneous"], 1, seed=3, scale="quick"
    )[0].config


def bench_entries(scale: str = "quick") -> tuple[BenchEntry, ...]:
    """The pinned suite; ``scale`` is ``"quick"`` or ``"full"``."""
    entries = (
        BenchEntry(
            name="mtu1500_read",
            title="read, MSS 1500 (segment-train heavy)",
            config=_point(1500),
        ),
        BenchEntry(
            name="jumbo9k_read",
            title="read, MSS 8960 (jumbo frames)",
            config=_point(8960),
        ),
        BenchEntry(
            name="strip_train_read",
            title="read, coalesced strip trains (mss=None)",
            config=_point(None),
        ),
        BenchEntry(
            name="micro_read",
            title="micro smoke point (tiny file, MSS 1500)",
            config=_point(
                1500, transfer=128 * KiB, file_size=256 * KiB, n_processes=2
            ),
        ),
        BenchEntry(
            name="scenario_mixed",
            title="generated scenario (heterogeneous spec, seed 3)",
            config=_scenario_point(),
        ),
        BenchEntry(
            name="shard2_mtu1500_read",
            title="read, MSS 1500, two shard calendars",
            config=_point(1500),
            shards=2,
        ),
        BenchEntry(
            name="micro_srv2_read",
            title="micro smoke point, split server calendars",
            config=_point(
                1500, transfer=128 * KiB, file_size=256 * KiB, n_processes=2
            ),
            shards=3,
            server_shards=2,
        ),
        BenchEntry(
            name="fanin_multiclient",
            title="4-client fan-in, 16 servers (single calendar)",
            config=_fanin_point(4),
            quick=False,
        ),
        BenchEntry(
            name="fanin_multiclient_shard5",
            title="4-client fan-in, 16 servers, five shard calendars",
            config=_fanin_point(4),
            quick=False,
            shards=5,
        ),
        BenchEntry(
            name="fanin_multiclient_shard8_srv4",
            title="4-client fan-in, 16 servers, 4+4 shard calendars",
            config=_fanin_point(4),
            quick=False,
            shards=8,
            server_shards=4,
        ),
        BenchEntry(
            name="fanin_multiclient_shard20",
            title="4-client fan-in, one calendar per node (4+16)",
            config=_fanin_point(4),
            quick=False,
            shards=20,
            server_shards=16,
        ),
        BenchEntry(
            name="fanin_deep",
            title="4-client fan-in, deep fabric (single calendar)",
            config=_fanin_point(4, latency=1000 * USEC),
            quick=False,
        ),
        BenchEntry(
            name="fanin_deep_shard20",
            title="4-client fan-in, deep fabric, one calendar per node",
            config=_fanin_point(4, latency=1000 * USEC),
            quick=False,
            shards=20,
            server_shards=16,
        ),
        BenchEntry(
            name="irqbalance_jumbo9k",
            title="read, MSS 8960, irqbalance policy",
            config=_point(8960, policy="irqbalance"),
            quick=False,
        ),
        BenchEntry(
            name="napi_mtu1500",
            title="read, MSS 1500, NAPI coalescing",
            config=_point(1500, napi=True),
            quick=False,
        ),
        BenchEntry(
            name="write_path",
            title="write, coalesced strip trains",
            config=_point(None, operation="write"),
            quick=False,
        ),
    )
    if scale == "quick":
        return tuple(e for e in entries if e.quick)
    if scale == "full":
        return entries
    raise ValueError(f"unknown bench scale {scale!r} (quick/full)")


def entry_by_name(name: str, scale: str = "full") -> BenchEntry:
    """Look up one entry by its suite name."""
    for entry in bench_entries(scale):
        if entry.name == name:
            return entry
    known = ", ".join(e.name for e in bench_entries(scale))
    raise KeyError(f"unknown bench entry {name!r} (known: {known})")
