"""``sais-repro bench --history`` — the performance trajectory at a glance.

Every landed optimization commits a ``BENCH_<rev>.json`` next to the last
one, so the repo root accumulates a time series of (revision, wall time,
shard width, projected parallel wall, event count) tuples.  This module
renders that series as a table with
Unicode sparklines: one glance shows whether the DES kernel has been
getting faster (wall time falling) and whether a change silently altered
simulation behavior (``events_processed`` is deterministic — it should
only move when an optimization legitimately removes calendar events, as
the wire fast path did).
"""

from __future__ import annotations

import json
import typing as t
from pathlib import Path

__all__ = ["load_history", "sparkline", "render_history", "main"]

_TICKS = "▁▂▃▄▅▆▇█"


def _totals_usable(totals: t.Any) -> bool:
    """True when ``totals`` can feed :func:`render_history` arithmetic."""
    if not isinstance(totals, dict):
        return False
    for field in ("wall_time_s", "events_processed"):
        value = totals.get(field, 0)
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return False
    return True


def load_history(
    out_dir: Path, warn: t.Callable[[str], None] | None = None
) -> list[dict[str, t.Any]]:
    """Every readable ``BENCH_*.json`` under ``out_dir``, oldest first.

    Ordering uses the recorded ``created`` timestamp (not mtime — a fresh
    checkout resets mtimes).  A snapshot that is empty, unparseable, or
    whose ``totals`` would not survive the arithmetic in
    :func:`render_history` is skipped with one ``warn`` line — a single
    truncated file (e.g. a benchmark killed mid-write) must not take the
    whole history view down.
    """

    def _warn(path: Path, reason: str) -> None:
        if warn is not None:
            warn(f"bench: skipping {path.name}: {reason}")

    entries: list[tuple[str, dict[str, t.Any]]] = []
    for path in sorted(out_dir.glob("BENCH_*.json")):
        try:
            text = path.read_text()
        except OSError as exc:
            _warn(path, f"unreadable ({exc.__class__.__name__})")
            continue
        if not text.strip():
            _warn(path, "empty file")
            continue
        try:
            payload = json.loads(text)
        except ValueError:
            _warn(path, "malformed JSON")
            continue
        if not isinstance(payload, dict) or "totals" not in payload:
            _warn(path, "no 'totals' section")
            continue
        if not _totals_usable(payload["totals"]):
            _warn(path, "non-numeric 'totals'")
            continue
        payload["_path"] = str(path)
        entries.append((str(payload.get("created", "")), payload))
    entries.sort(key=lambda pair: pair[0])
    return [payload for _created, payload in entries]


def sparkline(values: t.Sequence[float]) -> str:
    """Render a numeric series as one Unicode bar per value."""
    if not values:
        return ""
    low, high = min(values), max(values)
    if high <= low:
        return _TICKS[0] * len(values)
    span = high - low
    return "".join(
        _TICKS[min(len(_TICKS) - 1, int((v - low) / span * len(_TICKS)))]
        for v in values
    )


def render_history(history: t.Sequence[dict[str, t.Any]]) -> str:
    """Table + sparklines over a ``load_history`` result."""
    if not history:
        return "bench: no BENCH_*.json files found"
    rows = []
    walls: list[float] = []
    events: list[float] = []
    for payload in history:
        totals = payload.get("totals", {})
        wall = float(totals.get("wall_time_s", 0.0))
        n_events = int(totals.get("events_processed", 0))
        walls.append(wall)
        events.append(float(n_events))
        # Widest shard plan in the snapshot, and the suite wall time had
        # every sharded entry run one shard per core (unsharded entries
        # contribute their measured wall unchanged).  Snapshots predating
        # the sharded columns render as a plain "-" / measured wall.
        entries = payload.get("entries", ())
        max_shards = max(
            (int(e.get("shards", 0)) for e in entries), default=0
        )
        projected = sum(
            float(
                e.get("projected_wall_s", 0.0)
                if e.get("shards", 0)
                else e.get("wall_time_s", 0.0)
            )
            for e in entries
        )
        rows.append(
            (
                str(payload.get("rev", "?")),
                str(payload.get("created", "?"))[:19],
                str(payload.get("scale", "?")),
                str(len(entries)),
                str(max_shards) if max_shards else "-",
                f"{wall:.3f}",
                f"{projected:.3f}" if max_shards else "-",
                f"{n_events:,}",
            )
        )
    from ..metrics.report import render_table

    lines = [
        render_table(
            (
                "rev",
                "created",
                "scale",
                "entries",
                "shards",
                "wall s",
                "proj wall s",
                "events",
            ),
            rows,
            title=f"bench history ({len(history)} snapshots)",
        ),
        "",
        f"wall time  {sparkline(walls)}  "
        f"({walls[0]:.3f}s -> {walls[-1]:.3f}s)",
        f"events     {sparkline(events)}  "
        f"({int(events[0]):,} -> {int(events[-1]):,})",
    ]
    first, last = walls[0], walls[-1]
    if first > 0:
        lines.append(
            f"net wall-time change: {(last - first) / first:+.1%} "
            "(negative = faster; wall time is machine noise, events are "
            "exact)"
        )
    return "\n".join(lines)


def main(
    out_dir: str | Path = ".", echo: t.Callable[[str], None] = print
) -> int:
    """Print the history table; returns a process exit code."""
    import sys

    history = load_history(
        Path(out_dir), warn=lambda line: print(line, file=sys.stderr)
    )
    echo(render_history(history))
    return 0 if history else 1
