"""Kernel benchmark subsystem: measure the simulator, not the paper.

``python -m repro bench`` runs a pinned suite of representative experiment
points (:mod:`repro.bench.suite`), records wall-time / events-processed /
events-per-second into a ``BENCH_<rev>.json`` trajectory file at the repo
root, and compares against the last committed baseline with a configurable
regression threshold (:mod:`repro.bench.runner`).

The suite is *pinned*: entries are fixed configs, never derived from the
experiment registry, so the workload being timed cannot drift when the
figure experiments change.  Event counts are deterministic (the DES kernel
is); wall times are environment noise, which is why the regression gate
compares total wall time with a generous threshold while event counts are
compared exactly.
"""

from .runner import main as run_bench
from .suite import BenchEntry, bench_entries

__all__ = ["BenchEntry", "bench_entries", "run_bench"]
