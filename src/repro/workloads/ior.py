"""An IOR-style parallel workload (the paper's benchmark, Sec. V-B).

Each IOR process synchronously works through its own contiguous segment of
the shared file in ``transfer_size`` chunks.

Read mode (the paper's focus) — per request it

1. issues the read (fan-out to the I/O servers),
2. merges every strip as it arrives (paying the policy-dependent
   local-copy vs migration vs refetch cost),
3. runs the paper's added compute task ("these computing tasks encrypt the
   data collected by every IOR request").

Write mode (implemented to verify the paper's scoping claim that writes
have no interrupt-locality issue) — per request it prepares/encrypts the
buffer, streams the strips out, and waits for the servers' tiny acks; no
data-bearing interrupts arrive, so scheduling policy cannot matter.

Processes are pinned one-per-core (MPI-rank style; SAIs requires the
requester to stay put while blocked).  Setting
``WorkloadConfig.migrate_during_io`` unpins them and lets a process hop to
a random core while a request is outstanding — the Sec. III policy (i) vs
policy (ii) ablation.
"""

from __future__ import annotations

import typing as t

import numpy as np

from ..config import WorkloadConfig
from ..des import Barrier, Process
from ..errors import ConfigError

if t.TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cluster.client_node import ClientNode

__all__ = ["ior_process", "spawn_ior_processes"]


def ior_process(
    node: "ClientNode",
    pid: int,
    core_index: int,
    workload: WorkloadConfig,
    segment_offset: int,
    rng: np.random.Generator | None = None,
    barrier: Barrier | None = None,
) -> t.Generator:
    """One IOR process; returns the bytes it moved when it finishes."""
    migratory = workload.migrate_during_io > 0.0
    randomized = workload.access_pattern == "random"
    if (migratory or randomized) and rng is None:
        raise ConfigError(
            "migrate_during_io / random access need an rng stream"
        )
    if workload.collective and barrier is None:
        raise ConfigError("collective I/O needs a shared barrier")
    node.processes.spawn(pid, core_index, pinned=not migratory)
    transfer = workload.transfer_size
    is_write = workload.operation == "write"
    current_core = core_index
    bytes_done = 0
    order = list(range(workload.requests_per_process))
    if randomized:
        # IOR's random mode: same transfers, shuffled visit order.
        rng.shuffle(order)
    try:
        for k in order:
            if barrier is not None:
                # MPI_File_read_all-style rendezvous: nobody starts
                # iteration k until everyone finished iteration k-1.
                yield barrier.wait()
            offset = segment_offset + k * transfer
            if is_write and workload.compute:
                # Prepare (encrypt) the buffer before sending it out.
                yield from node.compute(current_core, transfer)
            outstanding = yield from node.issue_request(
                offset, transfer, current_core, write=is_write
            )
            if migratory and float(rng.random()) < workload.migrate_during_io:
                # The OS rebalances the blocked process mid-request: the
                # already-sent hint (policy i) now points at a stale core,
                # while a process-locator policy (ii) keeps tracking it.
                new_core = int(rng.integers(0, len(node.cores)))
                if new_core != current_core:
                    node.processes.migrate(pid, new_core)
                    current_core = new_core
                    outstanding.consumer_core = new_core
            for _ in range(outstanding.expected):
                strip = yield outstanding.arrivals.get()
                if not is_write:
                    yield from node.merge_strip(current_core, strip)
            if not is_write and workload.compute:
                yield from node.compute(current_core, transfer)
            node.pfs.retire(outstanding.request.request_id)
            bytes_done += transfer
    finally:
        node.processes.exit(pid)
    return bytes_done


def spawn_ior_processes(
    node: "ClientNode",
    workload: WorkloadConfig,
    pid_base: int = 0,
    segment_base: int = 0,
    rng: np.random.Generator | None = None,
) -> list[Process]:
    """Start the node's IOR processes, pinned round-robin over its cores.

    ``segment_base`` offsets this node's file segments so multiple client
    nodes read disjoint regions (and therefore rotate differently over the
    servers), as in the Fig. 12 multi-client experiment.
    """
    n_cores = len(node.cores)
    if workload.n_processes > n_cores * 64:
        raise ConfigError(
            f"{workload.n_processes} processes on {n_cores} cores is outside "
            "the modeled regime"
        )
    barrier = (
        Barrier(node.env, workload.n_processes) if workload.collective else None
    )
    processes = []
    for local_pid in range(workload.n_processes):
        pid = pid_base + local_pid
        core_index = local_pid % n_cores
        segment_offset = (segment_base + local_pid) * workload.file_size
        processes.append(
            node.env.process(
                ior_process(
                    node,
                    pid,
                    core_index,
                    workload,
                    segment_offset,
                    rng=rng,
                    barrier=barrier,
                )
            )
        )
    return processes
