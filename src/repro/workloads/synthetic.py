"""Open-loop synthetic arrival patterns for component stress tests.

The IOR workload is closed-loop (each process waits for its read).  For
isolating a single resource — e.g. "how deep does the migration queue get
at a given interrupt rate?" — an open-loop Poisson stream is the right
probe; these helpers generate one.
"""

from __future__ import annotations

import typing as t

import numpy as np

from ..des import Environment
from ..errors import ConfigError

__all__ = ["poisson_strip_arrivals"]


def poisson_strip_arrivals(
    env: Environment,
    rate: float,
    count: int,
    handler: t.Callable[[int], t.Any],
    rng: np.random.Generator,
) -> t.Generator:
    """Fire ``handler(i)`` for ``count`` arrivals at Poisson ``rate``/s.

    If ``handler`` returns a generator it is spawned as its own process,
    so slow handlers do not throttle the arrival stream (open loop).
    """
    if rate <= 0:
        raise ConfigError(f"rate must be positive, got {rate}")
    if count < 1:
        raise ConfigError(f"count must be >= 1, got {count}")
    for i in range(count):
        gap = float(rng.exponential(1.0 / rate))
        yield env.timeout(gap)
        result = handler(i)
        if result is not None and hasattr(result, "send"):
            env.process(result)
