"""Workload generators driving the simulated cluster.

* :mod:`~repro.workloads.ior` — the paper's benchmark: IOR-style
  synchronous strided reads with an added per-request encrypt compute
  phase;
* :mod:`~repro.workloads.synthetic` — open-loop arrival patterns for
  stress-testing single components.
"""

from .ior import ior_process, spawn_ior_processes
from .synthetic import poisson_strip_arrivals

__all__ = ["ior_process", "spawn_ior_processes", "poisson_strip_arrivals"]
