"""Collapsed-stack flamegraph emitter for the bench runner.

``repro bench --profile`` wraps each benchmark run in a
:class:`StackSampler`: a daemon thread that snapshots the benchmarked
thread's Python stack via :data:`sys._current_frames` at a fixed cadence.
Samples collapse to Brendan Gregg's folded format — one
``frame;frame;frame count`` line per unique stack — consumable directly
by ``flamegraph.pl`` or https://www.speedscope.app.

This is *profiling* tooling: it measures wall-clock behaviour of the
simulator itself and is deliberately outside the determinism guarantees
of :mod:`repro.obs.spans` (sampling depends on host scheduling).  It
never runs unless ``--profile`` is given.
"""

from __future__ import annotations

import sys
import threading
import time
import typing as t

__all__ = [
    "StackSampler",
    "collapse_stacks",
    "folded_lines",
    "profile_collapsed",
]


def _frames_to_stack(frame: t.Any, strip_prefix: str = "") -> tuple[str, ...]:
    """Walk a frame's callers into a root-first tuple of ``module:func``."""
    parts: list[str] = []
    while frame is not None:
        code = frame.f_code
        name = f"{code.co_filename}:{code.co_name}"
        if strip_prefix and name.startswith(strip_prefix):
            name = name[len(strip_prefix):]
        parts.append(name)
        frame = frame.f_back
    parts.reverse()
    return tuple(parts)


class StackSampler:
    """Samples one thread's Python stack on a background daemon thread."""

    def __init__(
        self,
        interval: float = 0.002,
        target_thread_id: int | None = None,
        strip_prefix: str = "",
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.interval = interval
        self.strip_prefix = strip_prefix
        self._target = (
            threading.get_ident() if target_thread_id is None else target_thread_id
        )
        self.samples: list[tuple[str, ...]] = []
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def start(self) -> "StackSampler":
        self._thread = threading.Thread(
            target=self._run, name="repro-stack-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None

    def __enter__(self) -> "StackSampler":
        return self.start()

    def __exit__(self, *exc: t.Any) -> None:
        self.stop()

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            frame = sys._current_frames().get(self._target)
            if frame is not None:
                self.samples.append(_frames_to_stack(frame, self.strip_prefix))


def collapse_stacks(
    samples: t.Iterable[tuple[str, ...]],
) -> dict[str, int]:
    """Fold raw stack samples into ``{"a;b;c": count}``."""
    folded: dict[str, int] = {}
    for stack in samples:
        key = ";".join(stack)
        folded[key] = folded.get(key, 0) + 1
    return folded


def folded_lines(folded: dict[str, int]) -> list[str]:
    """Format a collapsed mapping as ``.folded`` lines.

    Sorted by descending count then stack text, so the output depends
    only on the sample multiset — never on insertion order.
    """
    return [
        f"{stack} {count}"
        for stack, count in sorted(
            folded.items(), key=lambda kv: (-kv[1], kv[0])
        )
    ]


def profile_collapsed(
    fn: t.Callable[[], t.Any],
    interval: float = 0.002,
    strip_prefix: str = "",
) -> tuple[t.Any, list[str]]:
    """Run ``fn`` under the sampler; return (result, folded-stack lines).

    Lines are ready to write to a ``.folded`` file for ``flamegraph.pl``
    or speedscope.
    """
    sampler = StackSampler(interval=interval, strip_prefix=strip_prefix)
    with sampler:
        result = fn()
    return result, folded_lines(collapse_stacks(sampler.samples))
