"""Unified observability: causal span tracing + a metrics registry.

Two complementary layers, both **zero-cost when disabled**:

* :mod:`repro.obs.spans` — a causal span recorder threaded through the
  whole simulated stack (client fan-out -> PFS server -> switch fabric ->
  NIC wire -> APIC/IRQ -> softirq -> interconnect migration -> consumer
  merge).  Every span carries a parent id, so one logical read
  reconstructs as a tree; IRQ placement and cache-to-cache migrations are
  recorded as flow edges.  Disabled (the default) means *no recorder
  object exists at all*: every instrumentation site is a single
  ``if spans is not None`` guard, no span is allocated, and no calendar
  event is added or reordered — goldens and bench event counts stay
  byte-identical (``tests/obs/test_zero_cost.py``).
* :mod:`repro.obs.registry` — a :class:`MetricsRegistry` unifying the DES
  monitor instruments (``Counter``/``TimeWeighted``), ``sar`` samples and
  the fault/recovery counters behind one labeled snapshot, so experiments,
  the bench runner and the trace exporter pull from a single source.

Exports (:mod:`repro.obs.export`) target Chrome trace-event JSON —
loadable in ui.perfetto.dev or chrome://tracing — plus an ASCII tree/
timeline fallback.  ``python -m repro trace <experiment>`` drives it.

Determinism: span/flow ids are small integers advanced in calendar
(event-dispatch) order, and every timestamp is virtual time — wall clocks
never enter a trace, so traces are byte-reproducible run-to-run.
"""

from .export import (
    ascii_timeline,
    to_trace_events,
    validate_trace,
    validate_trace_file,
    write_trace,
)
from .flamegraph import StackSampler, collapse_stacks, profile_collapsed
from .registry import MetricSample, MetricsRegistry
from .spans import FlowEvent, Span, SpanRecorder, Track

__all__ = [
    "Span",
    "FlowEvent",
    "SpanRecorder",
    "Track",
    "MetricSample",
    "MetricsRegistry",
    "to_trace_events",
    "write_trace",
    "validate_trace",
    "validate_trace_file",
    "ascii_timeline",
    "StackSampler",
    "collapse_stacks",
    "profile_collapsed",
]
