"""Unified observability: causal span tracing + a metrics registry.

Two complementary layers, both **zero-cost when disabled**:

* :mod:`repro.obs.spans` — a causal span recorder threaded through the
  whole simulated stack (client fan-out -> PFS server -> switch fabric ->
  NIC wire -> APIC/IRQ -> softirq -> interconnect migration -> consumer
  merge).  Every span carries a parent id, so one logical read
  reconstructs as a tree; IRQ placement and cache-to-cache migrations are
  recorded as flow edges.  Disabled (the default) means *no recorder
  object exists at all*: every instrumentation site is a single
  ``if spans is not None`` guard, no span is allocated, and no calendar
  event is added or reordered — goldens and bench event counts stay
  byte-identical (``tests/obs/test_zero_cost.py``).
* :mod:`repro.obs.registry` — a :class:`MetricsRegistry` unifying the DES
  monitor instruments (``Counter``/``TimeWeighted``), ``sar`` samples and
  the fault/recovery counters behind one labeled snapshot, so experiments,
  the bench runner and the trace exporter pull from a single source.

Exports (:mod:`repro.obs.export`) target Chrome trace-event JSON —
loadable in ui.perfetto.dev or chrome://tracing — plus an ASCII tree/
timeline fallback.  ``python -m repro trace <experiment>`` drives it.

On top of the recorder sits :mod:`repro.obs.analysis`: stage breakdowns
folded from span trees (reconciled against the lifecycle tracer),
critical-path extraction over parents + flow edges, the
``sais-repro trace diff`` A/B attribution engine, and the shard
round-timeline replay backing ``--trace-rounds``.

Determinism: span/flow ids are small integers advanced in calendar
(event-dispatch) order, and every timestamp is virtual time — wall clocks
never enter a trace, so traces are byte-reproducible run-to-run.
"""

from .analysis import (
    CriticalPath,
    StageBreakdown,
    TraceDiff,
    TraceModel,
    breakdown_from_spans,
    diff_traces,
    load_trace,
    model_from_recorder,
    recompute_projection,
    render_diff,
    run_critical_path,
    stage_breakdown,
    strip_critical_path,
)
from .export import (
    ascii_timeline,
    rounds_to_trace_events,
    to_trace_events,
    validate_trace,
    validate_trace_file,
    write_rounds_trace,
    write_trace,
)
from .flamegraph import (
    StackSampler,
    collapse_stacks,
    folded_lines,
    profile_collapsed,
)
from .registry import MetricSample, MetricsRegistry
from .spans import FlowEvent, Span, SpanRecorder, Track

__all__ = [
    "Span",
    "FlowEvent",
    "SpanRecorder",
    "Track",
    "MetricSample",
    "MetricsRegistry",
    "to_trace_events",
    "write_trace",
    "rounds_to_trace_events",
    "write_rounds_trace",
    "validate_trace",
    "validate_trace_file",
    "ascii_timeline",
    "StackSampler",
    "collapse_stacks",
    "folded_lines",
    "profile_collapsed",
    "TraceModel",
    "model_from_recorder",
    "load_trace",
    "StageBreakdown",
    "stage_breakdown",
    "breakdown_from_spans",
    "CriticalPath",
    "strip_critical_path",
    "run_critical_path",
    "TraceDiff",
    "diff_traces",
    "render_diff",
    "recompute_projection",
]
