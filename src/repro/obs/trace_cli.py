"""``sais-repro trace`` — run one experiment point with span tracing on.

This is the one code path that constructs a :class:`SpanRecorder`: the
normal experiment runner never does, which is what keeps tracing strictly
zero-cost for everything else.  The traced run is a single grid point of a
registered experiment (default: point 0), re-run in-process with the
recorder threaded through the cluster builder, then exported as Chrome
trace-event JSON (Perfetto/``chrome://tracing`` loadable) or rendered as
an ASCII timeline.

The default policy is ``irqbalance`` rather than the experiment's own
default: source-aware scheduling steers every interrupt to the consumer
core, so a source-aware trace contains *no* strip-migration flow edges —
correct, but it hides exactly the mechanism a trace is usually opened to
look at.  Pass ``--policy source_aware`` to see the quiet interconnect.
"""

from __future__ import annotations

import json
import os
import typing as t

from ..config import ClusterConfig
from ..errors import ConfigError
from .export import ascii_timeline, validate_trace_file, write_trace
from .spans import SpanRecorder

__all__ = [
    "resolve_experiment",
    "trace_point_config",
    "run_trace",
    "run_trace_diff",
]


def _ensure_parent(out: str) -> None:
    """Reject an output path whose parent directory does not exist.

    ``open(out, "w")`` would raise a raw ``FileNotFoundError`` traceback;
    a typo'd directory deserves the same uniform exit-2 ConfigError every
    other bad argument gets.
    """
    parent = os.path.dirname(out)
    if parent and not os.path.isdir(parent):
        raise ConfigError(
            f"--out {out!r}: parent directory {parent!r} does not exist"
        )


def resolve_experiment(name: str) -> str:
    """Resolve an experiment id, accepting any unique prefix.

    The registered ids carry suffixes (``fig5_bandwidth_3g``,
    ``sec5c_bandwidth_1g``); the CLI accepts ``fig5_bandwidth`` and
    similar shorthand as long as exactly one id matches.
    """
    from ..experiments import all_experiment_ids

    ids = all_experiment_ids()
    if name in ids:
        return name
    matches = [exp_id for exp_id in ids if exp_id.startswith(name)]
    if len(matches) == 1:
        return matches[0]
    if not matches:
        raise ConfigError(
            f"unknown experiment {name!r}; available: {', '.join(ids)}"
        )
    raise ConfigError(
        f"ambiguous experiment prefix {name!r}: {', '.join(matches)}"
    )


def trace_point_config(
    exp_id: str, scale: str, point: int
) -> tuple[ClusterConfig, int]:
    """The ``point``-th traceable grid point of an experiment.

    Only :class:`ClusterConfig` specs are traceable (some grids carry
    composite comparison specs; those still embed plain configs, but the
    trace CLI keeps to the simple contract).  Returns the config plus the
    number of traceable points, for the CLI's error/summary text.
    """
    from ..experiments.base import (
        get_grid_experiment,
        has_grid_experiment,
        resolve_scale,
    )

    if not has_grid_experiment(exp_id):
        raise ConfigError(
            f"experiment {exp_id!r} has no grid decomposition to trace"
        )
    specs = [
        spec
        for spec in get_grid_experiment(exp_id).grid(resolve_scale(scale))
        if isinstance(spec, ClusterConfig)
    ]
    if not specs:
        raise ConfigError(
            f"experiment {exp_id!r} has no plain-config grid points; "
            "pick one of the fig5/sec5c bandwidth sweeps"
        )
    if not 0 <= point < len(specs):
        raise ConfigError(
            f"--point {point} out of range: {exp_id} at this scale has "
            f"{len(specs)} traceable point(s)"
        )
    return specs[point], len(specs)


def run_trace(
    experiment: str,
    scale: str = "quick",
    out: str | None = None,
    point: int = 0,
    policy: str | None = "irqbalance",
    timeline: bool = False,
    echo: t.Callable[[str], None] = print,
) -> int:
    """Run one traced point; returns a process exit code.

    Writes Chrome trace-event JSON to ``out`` when given (and validates
    the written file), and prints the ASCII timeline when ``timeline`` is
    set or no ``out`` was given.
    """
    from ..cluster.simulation import Simulation

    exp_id = resolve_experiment(experiment)
    config, n_points = trace_point_config(exp_id, scale, point)
    if policy:
        config = config.with_policy(policy)
    if out is not None:
        _ensure_parent(out)

    recorder = SpanRecorder()
    sim = Simulation(config, spans=recorder)
    metrics = sim.run()

    echo(
        f"trace: {exp_id} point {point}/{n_points - 1} "
        f"(scale={scale}, policy={config.policy}): "
        f"{len(recorder.spans)} spans, {len(recorder.flows)} flows, "
        f"{sim.cluster.env.events_processed} events, "
        f"{metrics.elapsed * 1e3:.2f} ms simulated"
    )

    if out is not None:
        n_events = write_trace(
            recorder,
            out,
            meta={
                "experiment": exp_id,
                "point": point,
                "scale": scale,
                "policy": config.policy,
            },
        )
        problems = validate_trace_file(out)
        if problems:
            for problem in problems[:10]:
                echo(f"trace: INVALID: {problem}")
            return 1
        echo(
            f"trace: wrote {out} ({n_events} trace events); open it at "
            "https://ui.perfetto.dev or chrome://tracing"
        )
    if timeline or out is None:
        echo(ascii_timeline(recorder))
    return 0


def run_trace_diff(
    a_path: str,
    b_path: str,
    out: str | None = None,
    top: int = 10,
    echo: t.Callable[[str], None] = print,
) -> int:
    """``sais-repro trace diff A.json B.json``: align and attribute.

    Prints the deterministic ASCII report; ``out`` additionally writes
    the structured diff as JSON (sorted keys, stable order — two
    invocations on the same inputs are byte-identical).
    """
    from .analysis import diff_traces, load_trace, render_diff

    if out is not None:
        _ensure_parent(out)
    diff = diff_traces(load_trace(a_path), load_trace(b_path), top=top)
    echo(render_diff(diff))
    if out is not None:
        with open(out, "w", encoding="utf-8") as fh:
            json.dump(diff.to_dict(), fh, indent=1, sort_keys=True)
            fh.write("\n")
        echo(f"trace diff: wrote {out}")
    return 0
