"""Causal span recording for one simulated cluster.

A :class:`Span` is an interval of virtual time on a *track* (a Perfetto
process/thread pair) with an optional parent span, forming a tree: one
application read reconstructs as ``request -> strip -> {serve, switch,
wire, softirq, merge -> migration}``.  A :class:`FlowEvent` is a directed
edge between two spans — used for the two causal hand-offs the paper's
argument hinges on: *IRQ placement* (NIC wire completion -> the softirq
span on whichever core the policy chose) and *strip migration* (the
handling core's softirq span -> the consumer's merge span).

Determinism: span and flow ids come from plain monotone counters advanced
in event-dispatch order, and all timestamps are ``env.now`` virtual time.
Two runs of the same config produce byte-identical traces (asserted by
``tests/obs/test_trace_export.py``).

Cost discipline: the recorder only ever appends to lists and dicts inside
callbacks that already exist; it never creates, schedules or reorders
calendar events, so enabling it cannot change ``events_processed`` or any
measured metric (asserted by ``tests/obs/test_zero_cost.py``).  When
tracing is off there is no recorder at all — every call site guards with
``if spans is not None``.
"""

from __future__ import annotations

import dataclasses
import typing as t
from itertools import count

from ..errors import SimulationError

if t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..des import Environment

__all__ = [
    "Track",
    "Span",
    "FlowEvent",
    "SpanRecorder",
    "FABRIC_PID",
    "COORD_PID",
    "client_pid",
    "server_pid",
    "PFS_TID",
    "NIC_TID",
    "APIC_TID",
    "BUS_TID",
    "SERVE_TID",
]


class Track(t.NamedTuple):
    """A Perfetto-style (process, thread) lane a span renders on."""

    pid: int
    tid: int


#: The switch fabric's process id.
FABRIC_PID = 1

#: The shard coordinator's process id (round-span tracks; the rounds
#: exporter puts the coordinator lane on tid 0 and shard ``s`` on
#: tid ``s + 1``).  Distinct from every cluster pid by construction.
COORD_PID = 2


def client_pid(client: int) -> int:
    """Trace process id of one client node (cores are its threads)."""
    return 100 + client


def server_pid(server: int) -> int:
    """Trace process id of one I/O server node."""
    return 1000 + server


#: Client-side non-core lanes (core ``i`` occupies tid ``i``).
PFS_TID = 90  # request/strip lifecycle spans (async lane)
NIC_TID = 91  # NIC wire serialization
APIC_TID = 92  # IRQ delivery instants
BUS_TID = 93  # interconnect (strip migration transfers)

#: Server-side lane for serve/storage/transmit spans (async lane).
SERVE_TID = 0


@dataclasses.dataclass(slots=True)
class Span:
    """One interval of virtual time in the causal tree."""

    sid: int
    parent: int | None
    name: str
    cat: str
    track: Track
    start: float
    end: float | None = None
    args: dict[str, t.Any] | None = None
    #: Rendered as an async (``ph: b/e``) pair instead of a complete
    #: ``X`` slice — for lanes where spans legitimately overlap
    #: (concurrent requests on the PFS lane, concurrent serves on one
    #: server).  Core/wire/fabric lanes are serialized and use ``X``.
    overlapping: bool = False


@dataclasses.dataclass(slots=True)
class FlowEvent:
    """A causal edge between two spans (Perfetto ``s``/``f`` flow pair)."""

    fid: int
    name: str
    cat: str
    src_span: int
    src_ts: float
    src_track: Track
    dst_span: int | None = None
    dst_ts: float | None = None
    dst_track: Track | None = None


class SpanRecorder:
    """Collects spans, flow edges and track labels for one cluster run."""

    def __init__(self, env: "Environment | None" = None) -> None:
        #: Bound by the cluster builder (the recorder is constructed
        #: before the Environment exists); see :meth:`bind`.
        self.env = env
        self.spans: list[Span] = []
        self.flows: list[FlowEvent] = []
        #: ``track -> (process label, thread label)``.
        self.track_labels: dict[Track, tuple[str, str]] = {}
        self._sids = count(1)
        self._fids = count(1)
        self._open: dict[int, Span] = {}
        # -- strip correlation state (how layers find their parent span) --
        #: ``(client, strip_id) -> strip span id``.
        self._strip_spans: dict[tuple[int, int], int] = {}
        #: ``(client, request_id) -> request span id``.
        self._request_spans: dict[tuple[int, int], int] = {}
        #: ``(client, strip_id) -> (softirq span id, end ts, core)`` of the
        #: last protocol-processing span — the migration flow's source.
        self._handled: dict[tuple[int, int], tuple[int, float, int]] = {}

    # -- tracks ------------------------------------------------------------

    def label_track(self, track: Track, process: str, thread: str) -> None:
        """Name a (pid, tid) lane for the exporter's metadata events."""
        self.track_labels.setdefault(track, (process, thread))

    # -- generic span API --------------------------------------------------

    def begin(
        self,
        name: str,
        cat: str,
        track: Track,
        parent: int | None = None,
        args: dict[str, t.Any] | None = None,
        start: float | None = None,
        overlapping: bool = False,
    ) -> int:
        """Open a span at ``start`` (default: now); returns its id."""
        span = Span(
            sid=next(self._sids),
            parent=parent,
            name=name,
            cat=cat,
            track=track,
            start=self.env.now if start is None else start,
            args=args,
            overlapping=overlapping,
        )
        self.spans.append(span)
        self._open[span.sid] = span
        return span.sid

    def end(
        self,
        sid: int,
        end: float | None = None,
        args: dict[str, t.Any] | None = None,
    ) -> None:
        """Close an open span at ``end`` (default: now)."""
        span = self._open.pop(sid, None)
        if span is None:
            raise SimulationError(f"span {sid} is not open")
        span.end = self.env.now if end is None else end
        if args:
            span.args = {**(span.args or {}), **args}

    def end_if_open(
        self,
        sid: int,
        end: float | None = None,
        args: dict[str, t.Any] | None = None,
    ) -> bool:
        """Close a span if (and only if) it is still open.

        For sites that may legitimately fire twice — a duplicate strip
        completion under an active fault plan retires the same span the
        original arrival already closed.
        """
        if sid not in self._open:
            return False
        self.end(sid, end=end, args=args)
        return True

    def add(
        self,
        name: str,
        cat: str,
        track: Track,
        start: float,
        end: float,
        parent: int | None = None,
        args: dict[str, t.Any] | None = None,
        overlapping: bool = False,
    ) -> int:
        """Record a complete span with explicit bounds (analytic hops)."""
        span = Span(
            sid=next(self._sids),
            parent=parent,
            name=name,
            cat=cat,
            track=track,
            start=start,
            end=end,
            args=args,
            overlapping=overlapping,
        )
        self.spans.append(span)
        return span.sid

    def instant(
        self,
        name: str,
        cat: str,
        track: Track,
        ts: float | None = None,
        parent: int | None = None,
        args: dict[str, t.Any] | None = None,
    ) -> int:
        """A zero-duration marker (Perfetto instant event)."""
        when = self.env.now if ts is None else ts
        return self.add(
            name, cat, track, when, when, parent=parent, args=args
        )

    # -- flow edges --------------------------------------------------------

    def flow_begin(
        self, name: str, cat: str, src_span: int, ts: float | None = None
    ) -> int:
        """Start a causal edge leaving ``src_span``; returns the flow id."""
        src = self._span_by_id(src_span)
        flow = FlowEvent(
            fid=next(self._fids),
            name=name,
            cat=cat,
            src_span=src_span,
            src_ts=self.env.now if ts is None else ts,
            src_track=src.track,
        )
        self.flows.append(flow)
        return flow.fid

    def flow_end(
        self, fid: int, dst_span: int, ts: float | None = None
    ) -> None:
        """Terminate a causal edge inside ``dst_span``."""
        for flow in reversed(self.flows):
            if flow.fid == fid:
                flow.dst_span = dst_span
                flow.dst_ts = self.env.now if ts is None else ts
                flow.dst_track = self._span_by_id(dst_span).track
                return
        raise SimulationError(f"flow {fid} was never started")

    def flow(
        self,
        name: str,
        cat: str,
        src_span: int,
        src_ts: float,
        dst_span: int,
        dst_ts: float,
    ) -> int:
        """Record a complete edge when both endpoints are already known."""
        fid = self.flow_begin(name, cat, src_span, ts=src_ts)
        self.flow_end(fid, dst_span, ts=dst_ts)
        return fid

    # -- strip correlation -------------------------------------------------

    def request_begin(
        self, client: int, request_id: int, sid: int
    ) -> None:
        """Index an open request span for later strip parenting."""
        self._request_spans[(client, request_id)] = sid

    def request_span(self, client: int, request_id: int) -> int | None:
        return self._request_spans.get((client, request_id))

    def strip_begin(self, client: int, strip_id: int, sid: int) -> None:
        """Index an open strip span; downstream layers parent onto it."""
        self._strip_spans[(client, strip_id)] = sid

    def strip_span(self, client: int, strip_id: int) -> int | None:
        """The strip's span id, or None for untracked traffic."""
        return self._strip_spans.get((client, strip_id))

    def note_handled(
        self, client: int, strip_id: int, sid: int, end: float, core: int
    ) -> None:
        """Remember which softirq span completed a strip (flow source)."""
        self._handled[(client, strip_id)] = (sid, end, core)

    def handled_span(
        self, client: int, strip_id: int
    ) -> tuple[int, float, int] | None:
        return self._handled.get((client, strip_id))

    # -- finalization ------------------------------------------------------

    def close_open_spans(self, at: float | None = None) -> int:
        """Close every still-open span (end of run); returns the count.

        A normally-completed run leaves nothing open; aborted runs (fault
        tripwires, horizons) leave tails, which the exporter pins to the
        final clock so the JSON is always well-formed.
        """
        when = self.env.now if at is None else at
        closed = 0
        for span in list(self._open.values()):
            span.end = max(when, span.start)
            closed += 1
        self._open.clear()
        return closed

    @property
    def open_spans(self) -> int:
        """Number of spans still open."""
        return len(self._open)

    def _span_by_id(self, sid: int) -> Span:
        # Spans are appended in id order: spans[sid-1] unless the list was
        # never compacted (it never is).
        index = sid - 1
        if 0 <= index < len(self.spans) and self.spans[index].sid == sid:
            return self.spans[index]
        for span in self.spans:  # pragma: no cover - defensive fallback
            if span.sid == sid:
                return span
        raise SimulationError(f"unknown span id {sid}")
