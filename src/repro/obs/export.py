"""Chrome trace-event export (Perfetto / chrome://tracing) + ASCII fallback.

The JSON dialect is the Trace Event Format's JSON-object flavor:
``{"traceEvents": [...]}`` where each event carries a phase ``ph`` —

* ``M``   metadata (process/thread names from the recorder's track labels),
* ``X``   complete slices (non-overlapping lanes: cores, NIC wire, fabric),
* ``b``/``e`` async slices (overlapping lanes: PFS request/strip lifecycle,
  concurrent serves on one server),
* ``s``/``f`` flow arrows (IRQ placement, strip migration).

Timestamps are virtual seconds scaled to microseconds (the format's
native unit) — never wall-clock, so exports are byte-reproducible.

:func:`validate_trace` is a lightweight structural checker used by the
test suite and the CI tracing smoke job; it verifies phase/field shape
and that async and flow events pair up, without needing any third-party
schema library.
"""

from __future__ import annotations

import json
import typing as t

from .spans import Span, SpanRecorder, Track

__all__ = [
    "to_trace_events",
    "write_trace",
    "rounds_to_trace_events",
    "write_rounds_trace",
    "validate_trace",
    "validate_trace_file",
    "ascii_timeline",
]

#: Virtual seconds -> trace-event microseconds.
_US = 1e6


def _span_args(span: Span) -> dict[str, t.Any]:
    args: dict[str, t.Any] = {"sid": span.sid}
    if span.parent is not None:
        args["parent"] = span.parent
    if span.args:
        args.update(span.args)
    return args


def to_trace_events(recorder: SpanRecorder) -> list[dict[str, t.Any]]:
    """Render a recorder's spans + flows as trace-event dicts.

    Order is deterministic: metadata first, then spans in id order
    (async ``b``/``e`` pairs emitted together), then flow pairs in id
    order.  Still-open spans are pinned to the final clock first.
    """
    recorder.close_open_spans()
    events: list[dict[str, t.Any]] = []

    for track in sorted(recorder.track_labels):
        process, thread = recorder.track_labels[track]
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": track.pid,
                "tid": 0,
                "args": {"name": process},
            }
        )
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": track.pid,
                "tid": track.tid,
                "args": {"name": thread},
            }
        )

    for span in recorder.spans:
        end = span.start if span.end is None else span.end
        if span.overlapping:
            common = {
                "name": span.name,
                "cat": span.cat,
                "id": span.sid,
                "pid": span.track.pid,
                "tid": span.track.tid,
            }
            events.append(
                {
                    "ph": "b",
                    "ts": span.start * _US,
                    "args": _span_args(span),
                    **common,
                }
            )
            events.append({"ph": "e", "ts": end * _US, **common})
        else:
            events.append(
                {
                    "ph": "X",
                    "name": span.name,
                    "cat": span.cat,
                    "ts": span.start * _US,
                    "dur": (end - span.start) * _US,
                    "pid": span.track.pid,
                    "tid": span.track.tid,
                    "args": _span_args(span),
                }
            )

    for flow in recorder.flows:
        if flow.dst_track is None or flow.dst_ts is None:
            continue  # dangling edge (aborted run); exporter skips it
        events.append(
            {
                "ph": "s",
                "name": flow.name,
                "cat": flow.cat,
                "id": flow.fid,
                "ts": flow.src_ts * _US,
                "pid": flow.src_track.pid,
                "tid": flow.src_track.tid,
                # Endpoint span ids survive the JSON round trip so the
                # analysis loader (repro.obs.analysis) can rebuild the
                # causal graph from an exported file, not just a live
                # recorder.  Perfetto ignores unknown args.
                "args": {"span": flow.src_span},
            }
        )
        events.append(
            {
                "ph": "f",
                "bp": "e",
                "name": flow.name,
                "cat": flow.cat,
                "id": flow.fid,
                "ts": flow.dst_ts * _US,
                "pid": flow.dst_track.pid,
                "tid": flow.dst_track.tid,
                "args": {"span": flow.dst_span},
            }
        )
    return events


def write_trace(
    recorder: SpanRecorder,
    path: str,
    meta: t.Mapping[str, t.Any] | None = None,
) -> int:
    """Write ``{"traceEvents": [...]}`` JSON to ``path``; returns #events.

    ``meta`` (policy, experiment, point, scale ...) lands under a
    top-level ``"sais"`` key — outside ``traceEvents``, so Perfetto and
    catapult ignore it, while ``trace diff`` uses it to label runs.
    """
    events = to_trace_events(recorder)
    payload: dict[str, t.Any] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
    }
    if meta:
        payload["sais"] = dict(meta)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return len(events)


# -- shard-round export ------------------------------------------------------


def rounds_to_trace_events(
    round_log: t.Sequence[t.Any], n_shards: int
) -> list[dict[str, t.Any]]:
    """Render coordinator round records as per-shard Perfetto tracks.

    One process (``COORD_PID``): tid 0 is the coordinator lane — one
    ``X`` slice per round spanning ``[prev_bound, bound)`` in virtual
    time, carrying the LBTS bound, window width, round steal/skip
    counts; tid ``sid + 1`` is shard ``sid``'s lane — its window slice
    per round with busy vs stall seconds (stall = the slowest shard's
    busy minus its own: what it waits at the barrier) and events
    executed.  A shard with no slice in a round sat it out entirely
    (skipped window — nothing below the bound).
    """
    from .spans import COORD_PID

    events: list[dict[str, t.Any]] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": COORD_PID,
            "tid": 0,
            "args": {"name": "shard coordinator"},
        },
        {
            "ph": "M",
            "name": "thread_name",
            "pid": COORD_PID,
            "tid": 0,
            "args": {"name": "rounds"},
        },
    ]
    for sid in range(n_shards):
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": COORD_PID,
                "tid": sid + 1,
                "args": {"name": f"shard {sid}"},
            }
        )
    for record in round_log:
        start = record.prev_bound * _US
        dur = max(0.0, record.bound - record.prev_bound) * _US
        events.append(
            {
                "ph": "X",
                "name": f"round {record.index}",
                "cat": "coord",
                "ts": start,
                "dur": dur,
                "pid": COORD_PID,
                "tid": 0,
                "args": {
                    "round": record.index,
                    "lbts": record.lbts,
                    "bound": record.bound,
                    "width_s": record.bound - record.prev_bound,
                    "round_max_busy_s": record.round_max,
                    "steals": record.steals,
                    "windows_skipped": record.skipped,
                },
            }
        )
        for window in record.windows:
            stall = max(0.0, record.round_max - window.busy_s)
            events.append(
                {
                    "ph": "X",
                    "name": f"window {record.index}",
                    "cat": "shard",
                    "ts": start,
                    "dur": dur,
                    "pid": COORD_PID,
                    "tid": window.sid + 1,
                    "args": {
                        "round": record.index,
                        "shard": window.sid,
                        "busy_s": window.busy_s,
                        "stall_s": stall,
                        "events": window.events,
                    },
                }
            )
    return events


def write_rounds_trace(
    round_log: t.Sequence[t.Any],
    n_shards: int,
    path: str,
    meta: t.Mapping[str, t.Any] | None = None,
) -> int:
    """Write the round timeline as a trace-event file; returns #events."""
    events = rounds_to_trace_events(round_log, n_shards)
    payload: dict[str, t.Any] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
    }
    if meta:
        payload["sais"] = dict(meta)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return len(events)


# -- validation ------------------------------------------------------------

_PHASES = frozenset("MXbesf")


def validate_trace(payload: t.Any) -> list[str]:
    """Structural check of a trace-event JSON object.

    Returns a list of problems (empty = valid).  Checks the shape each
    consumer (Perfetto, catapult) relies on: phases known, required
    fields typed, complete slices non-negative, async ``b``/``e`` and
    flow ``s``/``f`` events paired.
    """
    problems: list[str] = []
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        return ["top level must be an object with a 'traceEvents' array"]
    events = payload["traceEvents"]
    if not isinstance(events, list):
        return ["'traceEvents' must be an array"]

    async_open: dict[tuple[t.Any, t.Any], int] = {}
    flow_starts: dict[t.Any, int] = {}
    flow_ends: dict[t.Any, int] = {}
    for i, event in enumerate(events):
        where = f"event {i}"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph not in _PHASES:
            problems.append(f"{where}: unknown phase {ph!r}")
            continue
        for field in ("pid", "tid"):
            if not isinstance(event.get(field), int):
                problems.append(f"{where}: missing integer {field!r}")
        if ph == "M":
            if event.get("name") not in ("process_name", "thread_name"):
                problems.append(f"{where}: unexpected metadata {event.get('name')!r}")
            continue
        if not isinstance(event.get("ts"), (int, float)):
            problems.append(f"{where}: missing numeric 'ts'")
        if not isinstance(event.get("name"), str):
            problems.append(f"{where}: missing string 'name'")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)):
                problems.append(f"{where}: complete slice missing 'dur'")
            elif dur < 0:
                problems.append(f"{where}: negative duration {dur}")
        elif ph in ("b", "e"):
            key = (event.get("cat"), event.get("id"))
            if event.get("id") is None:
                problems.append(f"{where}: async event missing 'id'")
            elif ph == "b":
                async_open[key] = async_open.get(key, 0) + 1
            else:
                if async_open.get(key, 0) <= 0:
                    problems.append(f"{where}: async end without begin (id={key[1]})")
                else:
                    async_open[key] -= 1
        elif ph in ("s", "f"):
            fid = event.get("id")
            if fid is None:
                problems.append(f"{where}: flow event missing 'id'")
            elif ph == "s":
                flow_starts[fid] = flow_starts.get(fid, 0) + 1
            else:
                flow_ends[fid] = flow_ends.get(fid, 0) + 1

    for key, n in sorted(async_open.items(), key=repr):
        if n > 0:
            problems.append(f"async slice id={key[1]} opened {n}x without end")
    for fid in sorted(flow_starts, key=repr):
        if flow_ends.get(fid, 0) != flow_starts[fid]:
            problems.append(f"flow id={fid} start/finish mismatch")
    for fid in sorted(flow_ends, key=repr):
        if fid not in flow_starts:
            problems.append(f"flow id={fid} finishes without a start")
    return problems


def validate_trace_file(path: str) -> list[str]:
    """Load ``path`` as JSON and :func:`validate_trace` it."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"cannot load {path}: {exc}"]
    return validate_trace(payload)


# -- ASCII fallback --------------------------------------------------------

def ascii_timeline(
    recorder: SpanRecorder,
    width: int = 72,
    max_spans: int = 400,
) -> str:
    """Render the span forest as an indented text tree with time bars.

    For terminals without a Perfetto tab: each line shows the span's
    depth, name, [start..end] in milliseconds, and a proportional bar.
    Flow edges are listed after the tree.
    """
    recorder.close_open_spans()
    spans = recorder.spans
    if not spans:
        return "(no spans recorded)"
    t0 = min(s.start for s in spans)
    t1 = max(s.end if s.end is not None else s.start for s in spans)
    horizon = max(t1 - t0, 1e-12)
    bar_width = max(10, width - 52)

    children: dict[int | None, list[Span]] = {}
    by_id = {s.sid: s for s in spans}
    for span in spans:
        parent = span.parent if span.parent in by_id else None
        children.setdefault(parent, []).append(span)

    lines = [
        f"span timeline: {len(spans)} spans, {len(recorder.flows)} flows, "
        f"{(t1 - t0) * 1e3:.3f} ms"
    ]
    emitted = 0

    def emit(span: Span, depth: int) -> None:
        nonlocal emitted
        if emitted >= max_spans:
            return
        emitted += 1
        end = span.start if span.end is None else span.end
        lo = int((span.start - t0) / horizon * bar_width)
        hi = max(lo + 1, int((end - t0) / horizon * bar_width))
        bar = " " * lo + "#" * min(hi - lo, bar_width - lo)
        label = "  " * depth + span.name
        lines.append(
            f"{label:<34.34} [{(span.start - t0) * 1e3:9.3f}ms "
            f"+{(end - span.start) * 1e6:8.1f}us] |{bar:<{bar_width}}|"
        )
        for child in children.get(span.sid, ()):
            emit(child, depth + 1)

    for root in children.get(None, ()):
        emit(root, 0)
    if emitted >= max_spans:
        lines.append(f"... ({len(spans) - emitted} more spans elided)")

    closed_flows = [f for f in recorder.flows if f.dst_span is not None]
    if closed_flows:
        lines.append("flows:")
        for flow in closed_flows[:50]:
            src = by_id.get(flow.src_span)
            dst = by_id.get(flow.dst_span) if flow.dst_span else None
            lines.append(
                f"  {flow.name}: {src.name if src else flow.src_span} "
                f"-> {dst.name if dst else flow.dst_span} "
                f"(+{(flow.dst_ts - flow.src_ts) * 1e6:.1f}us)"
            )
        if len(closed_flows) > 50:
            lines.append(f"  ... ({len(closed_flows) - 50} more flows elided)")
    return "\n".join(lines)
