"""A unified metrics registry over the simulator's scattered instruments.

The stack grew three telemetry dialects: DES :class:`~repro.des.monitor`
instruments (``Counter``/``TimeWeighted``) on the hardware models, the
``sar`` utilization sampler, and ad-hoc dataclasses
(:class:`~repro.metrics.collectors.ResilienceMetrics`).  The
:class:`MetricsRegistry` gives them one namespace: components *register*
their instruments under labeled names at build time (registration is a
dict insert — no per-event cost), and a :meth:`MetricsRegistry.snapshot`
reads every source lazily at the moment it is taken.

Names are dotted paths (``client0.core2.busy_time``); labels are
key/value pairs carried on the sample for grouping (``{"client": 0,
"core": 2}``).  Snapshots are plain tuples of :class:`MetricSample`, so
they serialize and diff trivially — the bench runner and trace exporter
both consume them.
"""

from __future__ import annotations

import dataclasses
import typing as t

from ..errors import SimulationError

if t.TYPE_CHECKING:  # pragma: no cover - typing only
    from ..des.monitor import Counter, TimeWeighted

__all__ = ["MetricSample", "MetricsRegistry"]


@dataclasses.dataclass(frozen=True, slots=True)
class MetricSample:
    """One named reading taken at snapshot time."""

    name: str
    value: float
    kind: str  # "counter" | "gauge" | "probe"
    labels: tuple[tuple[str, t.Any], ...] = ()

    def label(self, key: str) -> t.Any:
        """The value of one label, or None."""
        for k, v in self.labels:
            if k == key:
                return v
        return None


def _freeze_labels(
    labels: dict[str, t.Any] | None,
) -> tuple[tuple[str, t.Any], ...]:
    if not labels:
        return ()
    return tuple(sorted(labels.items()))


class MetricsRegistry:
    """Named, labeled access to every instrument in one cluster."""

    def __init__(self) -> None:
        # name -> (kind, read-callable, labels)
        self._sources: dict[
            str,
            tuple[str, t.Callable[[], float], tuple[tuple[str, t.Any], ...]],
        ] = {}

    def __len__(self) -> int:
        return len(self._sources)

    def __contains__(self, name: str) -> bool:
        return name in self._sources

    def names(self) -> tuple[str, ...]:
        """All registered metric names, sorted."""
        return tuple(sorted(self._sources))

    # -- registration ------------------------------------------------------

    def _register(
        self,
        name: str,
        kind: str,
        read: t.Callable[[], float],
        labels: dict[str, t.Any] | None,
    ) -> None:
        if name in self._sources:
            raise SimulationError(f"metric {name!r} registered twice")
        self._sources[name] = (kind, read, _freeze_labels(labels))

    def register_counter(
        self,
        name: str,
        counter: "Counter",
        labels: dict[str, t.Any] | None = None,
    ) -> None:
        """Expose a DES monitor :class:`Counter` under ``name``."""
        self._register(name, "counter", lambda: counter.value, labels)

    def register_time_weighted(
        self,
        name: str,
        signal: "TimeWeighted",
        labels: dict[str, t.Any] | None = None,
    ) -> None:
        """Expose a :class:`TimeWeighted` signal's running time-average."""
        self._register(name, "gauge", signal.mean, labels)

    def register_probe(
        self,
        name: str,
        read: t.Callable[[], float],
        kind: str = "gauge",
        labels: dict[str, t.Any] | None = None,
    ) -> None:
        """Expose an arbitrary zero-arg callable (read at snapshot time)."""
        self._register(name, kind, read, labels)

    def ingest_dataclass(
        self,
        prefix: str,
        record: t.Any,
        labels: dict[str, t.Any] | None = None,
    ) -> int:
        """Register every numeric field of a (frozen) dataclass instance.

        Values are captured at ingest time — right for post-run records
        like ``ResilienceMetrics``.  Returns how many fields registered.
        """
        if not dataclasses.is_dataclass(record):
            raise SimulationError(
                f"ingest_dataclass needs a dataclass, got {type(record).__name__}"
            )
        registered = 0
        for field in dataclasses.fields(record):
            value = getattr(record, field.name)
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            frozen = float(value)
            self._register(
                f"{prefix}.{field.name}",
                "counter" if isinstance(value, int) else "gauge",
                lambda v=frozen: v,
                labels,
            )
            registered += 1
        return registered

    # -- reading -----------------------------------------------------------

    def read(self, name: str) -> float:
        """Current value of one metric."""
        try:
            _, read, _ = self._sources[name]
        except KeyError:
            raise SimulationError(f"unknown metric {name!r}") from None
        return read()

    def snapshot(self, prefix: str = "") -> tuple[MetricSample, ...]:
        """Read every (matching) source now, in sorted-name order."""
        samples = []
        for name in sorted(self._sources):
            if prefix and not name.startswith(prefix):
                continue
            kind, read, labels = self._sources[name]
            samples.append(
                MetricSample(name=name, value=read(), kind=kind, labels=labels)
            )
        return tuple(samples)

    def as_dict(self, prefix: str = "") -> dict[str, float]:
        """Snapshot flattened to ``{name: value}`` (JSON-friendly)."""
        return {s.name: s.value for s in self.snapshot(prefix)}
