"""Trace analysis: stage breakdowns, critical paths, and A/B span diffs.

The span recorder (:mod:`repro.obs.spans`) captures *what happened*; this
module answers *where the time went*.  It operates on a normalized
:class:`TraceModel` built either from a live :class:`SpanRecorder`
(float-exact) or from an exported Chrome trace-event JSON file
(microsecond-rounded, but deterministic), and provides three analyses:

* **Stage breakdowns** — every per-strip span tree folds into named stage
  durations (server service, storage, switch, NIC wire, irq, softirq,
  merge, migration/refetch), aggregated per client and per run.
  :func:`breakdown_from_spans` additionally derives the lifecycle
  tracer's five stage timestamps from the spans alone and feeds them
  through the *same* aggregation code as ``metrics/trace.py`` — the
  reconciliation test pins the two within float tolerance, so the span
  instrumentation can never silently drift from the tracer again.
* **Critical-path extraction** — :func:`strip_critical_path` walks span
  parents and FlowEvent edges backward from a strip's last-finishing
  span to produce the longest dependency chain (with per-step wait
  time); :func:`run_critical_path` does the same for whatever strip
  bounds the whole run.
* **A/B trace diff** — :func:`diff_traces` aligns two runs of the same
  point by stable ``(client, strip, stage)`` keys and reports per-stage
  deltas, added/removed migration edges, and the top-N regressed spans.
  Output (ASCII via :func:`render_diff`, JSON via
  :meth:`TraceDiff.to_dict`) is deterministic: two invocations on the
  same inputs are byte-identical.

Shard-round observability rides along: :func:`recompute_projection`
replays the coordinator's busy/critical-path accounting from recorded
round spans (``--trace-rounds``), reproducing ``projected_wall_s``
bit-for-bit — the bench's headline projection is auditable from the
round timeline instead of being a single opaque scalar.
"""

from __future__ import annotations

import dataclasses
import json
import typing as t

from ..errors import ConfigError
from ..metrics.trace import LatencyBreakdown, breakdown_from_records
from .spans import SpanRecorder

__all__ = [
    "STAGE_NAMES",
    "TraceSpan",
    "TraceFlow",
    "TraceModel",
    "model_from_recorder",
    "model_from_events",
    "load_trace",
    "StageStat",
    "StageBreakdown",
    "stage_breakdown",
    "strip_stage_times",
    "breakdown_from_spans",
    "PathStep",
    "CriticalPath",
    "strip_critical_path",
    "run_critical_path",
    "StageDiff",
    "SpanRegression",
    "TraceDiff",
    "diff_traces",
    "render_diff",
    "load_rounds",
    "recompute_projection",
]

#: Span names that fold into named stage durations, in pipeline order.
#: ``serve``/``storage`` live on the server, ``switch`` on the fabric,
#: ``wire``/``irq``/``softirq``/``merge`` on the client, and
#: ``migration``/``memory_fetch`` on the interconnect/memory bus.
STAGE_NAMES = (
    "serve",
    "storage",
    "switch",
    "wire",
    "irq",
    "softirq",
    "merge",
    "migration",
    "memory_fetch",
)

#: Trace-event microseconds -> model seconds.
_US = 1e6


@dataclasses.dataclass(frozen=True)
class TraceSpan:
    """One normalized span, whichever source it was loaded from."""

    sid: int
    parent: int | None
    name: str
    cat: str
    pid: int
    tid: int
    start: float
    end: float
    args: t.Mapping[str, t.Any]

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclasses.dataclass(frozen=True)
class TraceFlow:
    """One causal edge; span links survive the JSON round trip."""

    fid: int
    name: str
    cat: str
    src_ts: float
    dst_ts: float | None
    src_span: int | None = None
    dst_span: int | None = None

    @property
    def closed(self) -> bool:
        return self.dst_ts is not None


class TraceModel:
    """An indexed, immutable view over one run's spans and flows."""

    def __init__(
        self,
        spans: t.Iterable[TraceSpan],
        flows: t.Iterable[TraceFlow],
        meta: t.Mapping[str, t.Any] | None = None,
    ) -> None:
        self.spans: tuple[TraceSpan, ...] = tuple(
            sorted(spans, key=lambda s: s.sid)
        )
        self.flows: tuple[TraceFlow, ...] = tuple(
            sorted(flows, key=lambda f: f.fid)
        )
        #: Run-level metadata (policy, experiment, point, scale) when the
        #: producer recorded it; empty for bare recorders.
        self.meta: dict[str, t.Any] = dict(meta or {})
        self._by_sid: dict[int, TraceSpan] = {s.sid: s for s in self.spans}
        # Strip attribution: walk parents to the nearest span named
        # "strip"; its pid encodes the owning client (client_pid = 100+c)
        # and its args carry the strip id.
        self._strip_of: dict[int, tuple[int, int] | None] = {}
        self.strips: dict[tuple[int, int], list[TraceSpan]] = {}
        self.strip_roots: dict[tuple[int, int], TraceSpan] = {}
        for span in self.spans:
            key = self._resolve_strip(span)
            if key is None:
                continue
            self.strips.setdefault(key, []).append(span)
            if span.name == "strip":
                self.strip_roots[key] = span

    def _resolve_strip(self, span: TraceSpan) -> tuple[int, int] | None:
        cached = self._strip_of.get(span.sid, _MISSING)
        if cached is not _MISSING:
            return cached  # type: ignore[return-value]
        key: tuple[int, int] | None = None
        if span.name == "strip":
            strip_id = span.args.get("strip")
            if isinstance(strip_id, int):
                key = (span.pid - 100, strip_id)
        elif span.parent is not None:
            parent = self._by_sid.get(span.parent)
            if parent is not None:
                key = self._resolve_strip(parent)
        self._strip_of[span.sid] = key
        return key

    def span(self, sid: int) -> TraceSpan | None:
        return self._by_sid.get(sid)

    def strip_of(self, sid: int) -> tuple[int, int] | None:
        """The ``(client, strip)`` a span belongs to, or None."""
        span = self._by_sid.get(sid)
        return self._resolve_strip(span) if span is not None else None

    @property
    def label(self) -> str:
        """Display label for diffs: the recorded policy, else a dash."""
        return str(self.meta.get("policy") or "-")

    def migration_edges(self) -> list[tuple[int, int] | None]:
        """One entry per closed migration flow: its strip key (or None).

        Source-aware runs return ``[]`` — the absence of migration edges
        *is* the paper's mechanism, and the A/B diff reports it.
        """
        edges: list[tuple[int, int] | None] = []
        for flow in self.flows:
            if flow.name != "migration" or not flow.closed:
                continue
            key = (
                self.strip_of(flow.src_span)
                if flow.src_span is not None
                else None
            )
            edges.append(key)
        return edges


class _Missing:
    pass


_MISSING = _Missing()


def model_from_recorder(recorder: SpanRecorder) -> TraceModel:
    """Normalize a live recorder (virtual-second floats, exact)."""
    spans = [
        TraceSpan(
            sid=s.sid,
            parent=s.parent,
            name=s.name,
            cat=s.cat,
            pid=s.track.pid,
            tid=s.track.tid,
            start=s.start,
            end=s.start if s.end is None else s.end,
            args=dict(s.args or {}),
        )
        for s in recorder.spans
    ]
    flows = [
        TraceFlow(
            fid=f.fid,
            name=f.name,
            cat=f.cat,
            src_ts=f.src_ts,
            dst_ts=f.dst_ts,
            src_span=f.src_span,
            dst_span=f.dst_span,
        )
        for f in recorder.flows
    ]
    return TraceModel(spans, flows)


def model_from_events(
    events: t.Sequence[t.Mapping[str, t.Any]],
    meta: t.Mapping[str, t.Any] | None = None,
) -> TraceModel:
    """Normalize exported trace events (microseconds back to seconds)."""
    spans: list[TraceSpan] = []
    open_async: dict[tuple[t.Any, t.Any], dict[str, t.Any]] = {}
    open_flows: dict[t.Any, dict[str, t.Any]] = {}
    flows: list[TraceFlow] = []
    for event in events:
        ph = event.get("ph")
        if ph == "X":
            args = dict(event.get("args") or {})
            sid = args.pop("sid", None)
            if not isinstance(sid, int):
                continue  # foreign trace; only our own spans are modeled
            start = float(event["ts"]) / _US
            spans.append(
                TraceSpan(
                    sid=sid,
                    parent=args.pop("parent", None),
                    name=str(event.get("name")),
                    cat=str(event.get("cat")),
                    pid=int(event["pid"]),
                    tid=int(event["tid"]),
                    start=start,
                    end=start + float(event.get("dur", 0.0)) / _US,
                    args=args,
                )
            )
        elif ph == "b":
            open_async[(event.get("cat"), event.get("id"))] = dict(event)
        elif ph == "e":
            begun = open_async.pop(
                (event.get("cat"), event.get("id")), None
            )
            if begun is None:
                continue
            args = dict(begun.get("args") or {})
            sid = args.pop("sid", None)
            if not isinstance(sid, int):
                continue
            spans.append(
                TraceSpan(
                    sid=sid,
                    parent=args.pop("parent", None),
                    name=str(begun.get("name")),
                    cat=str(begun.get("cat")),
                    pid=int(begun["pid"]),
                    tid=int(begun["tid"]),
                    start=float(begun["ts"]) / _US,
                    end=float(event["ts"]) / _US,
                    args=args,
                )
            )
        elif ph == "s":
            open_flows[event.get("id")] = dict(event)
        elif ph == "f":
            begun = open_flows.pop(event.get("id"), None)
            if begun is None:
                continue
            src_args = begun.get("args") or {}
            dst_args = event.get("args") or {}
            flows.append(
                TraceFlow(
                    fid=int(begun["id"]),
                    name=str(begun.get("name")),
                    cat=str(begun.get("cat")),
                    src_ts=float(begun["ts"]) / _US,
                    dst_ts=float(event["ts"]) / _US,
                    src_span=src_args.get("span"),
                    dst_span=dst_args.get("span"),
                )
            )
    return TraceModel(spans, flows, meta)


def load_trace(path: str) -> TraceModel:
    """Load an exported ``{"traceEvents": [...]}`` file as a model."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except OSError as exc:
        raise ConfigError(f"cannot read trace {path!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ConfigError(f"{path!r} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        raise ConfigError(
            f"{path!r} is not a trace-event file (no 'traceEvents' array)"
        )
    meta = payload.get("sais")
    return model_from_events(
        payload["traceEvents"], meta if isinstance(meta, dict) else None
    )


# -- stage breakdowns --------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class StageStat:
    """One stage's durations aggregated over strips."""

    stage: str
    count: int
    total: float
    mean: float
    p99: float


@dataclasses.dataclass(frozen=True)
class StageBreakdown:
    """Per-stage durations for one run: aggregate plus per-client."""

    policy: str
    strips: int
    per_stage: tuple[StageStat, ...]
    per_client: tuple[tuple[int, tuple[StageStat, ...]], ...]

    def stat(self, stage: str) -> StageStat | None:
        for entry in self.per_stage:
            if entry.stage == stage:
                return entry
        return None

    def to_dict(self) -> dict[str, t.Any]:
        return {
            "policy": self.policy,
            "strips": self.strips,
            "per_stage": [dataclasses.asdict(s) for s in self.per_stage],
            "per_client": [
                {
                    "client": client,
                    "per_stage": [dataclasses.asdict(s) for s in stats],
                }
                for client, stats in self.per_client
            ],
        }


def stage_durations(
    model: TraceModel,
) -> dict[tuple[int, int], dict[str, float]]:
    """Fold every strip's span tree into summed per-stage durations.

    Multi-segment stages (several wire/switch/softirq slices per strip)
    sum; the zero-duration ``irq`` instants contribute 0.0 but mark the
    stage present, so interrupt-free policies are distinguishable from
    traces that merely lack APIC spans.
    """
    folded: dict[tuple[int, int], dict[str, float]] = {}
    for key, spans in sorted(model.strips.items()):
        stages: dict[str, float] = {}
        for span in spans:
            if span.name in STAGE_NAMES:
                stages[span.name] = stages.get(span.name, 0.0) + span.duration
        root = model.strip_roots.get(key)
        if root is not None:
            stages["total"] = root.duration
        folded[key] = stages
    return folded


def _stats_over(
    per_strip: t.Sequence[t.Mapping[str, float]],
) -> tuple[StageStat, ...]:
    stats = []
    for stage in STAGE_NAMES + ("total",):
        values = sorted(
            record[stage] for record in per_strip if stage in record
        )
        if not values:
            continue
        stats.append(
            StageStat(
                stage=stage,
                count=len(values),
                total=sum(values),
                mean=sum(values) / len(values),
                p99=values[min(len(values) - 1, int(0.99 * len(values)))],
            )
        )
    return tuple(stats)


def stage_breakdown(model: TraceModel) -> StageBreakdown:
    """Aggregate stage durations per client and over the whole run."""
    folded = stage_durations(model)
    by_client: dict[int, list[dict[str, float]]] = {}
    for (client, _strip), stages in sorted(folded.items()):
        by_client.setdefault(client, []).append(stages)
    return StageBreakdown(
        policy=model.label,
        strips=len(folded),
        per_stage=_stats_over(list(folded.values())),
        per_client=tuple(
            (client, _stats_over(records))
            for client, records in sorted(by_client.items())
        ),
    )


# -- reconciliation with the lifecycle tracer --------------------------------


def strip_stage_times(
    model: TraceModel,
) -> dict[tuple[int, int], dict[str, float]]:
    """Derive the lifecycle tracer's stage timestamps from spans alone.

    The correspondence (asserted forever by the reconciliation test):

    * ``issued``   = the strip span's start (the fan-out instant);
    * ``served``   = the last ``storage`` span's end (storage access done,
      transmit starting — the instant ``IoServer.serve`` stamps);
    * ``received`` = the last ``wire`` span's end (packet fully off the
      client NIC wire);
    * ``handled``  = the ``handled_at`` argument the completing softirq
      span carries (protocol work done, before any cross-core wake-up
      IPI); interrupt-free stacks have no softirq spans and complete at
      wire end, so ``received`` stands in;
    * ``merged``   = the ``merge`` span's end (consumer copy done).

    Strips missing stages (writes never merge; aborted strips never
    arrive) keep partial records, exactly like the tracer's.
    """
    times: dict[tuple[int, int], dict[str, float]] = {}
    for key, spans in sorted(model.strips.items()):
        root = model.strip_roots.get(key)
        if root is None:
            continue
        record: dict[str, float] = {"issued": root.start}
        storage_ends = [s.end for s in spans if s.name == "storage"]
        if storage_ends:
            record["served"] = max(storage_ends)
        wire_ends = [s.end for s in spans if s.name == "wire"]
        if wire_ends:
            record["received"] = max(wire_ends)
        softirqs = [s for s in spans if s.name == "softirq"]
        handled = [
            s.args["handled_at"]
            for s in softirqs
            if isinstance(s.args.get("handled_at"), (int, float))
        ]
        if handled:
            record["handled"] = max(handled)
        elif not softirqs and wire_ends:
            # Zero-interrupt placement completes synchronously at wire
            # end (rdma_zerointr): handled == received by construction.
            record["handled"] = record["received"]
        merge_ends = [s.end for s in spans if s.name == "merge"]
        if merge_ends:
            record["merged"] = max(merge_ends)
        times[key] = record
    return times


def breakdown_from_spans(model: TraceModel) -> LatencyBreakdown:
    """The tracer-equivalent breakdown, computed purely from spans.

    Shares the aggregation code with ``Tracer.breakdown`` (see
    :func:`repro.metrics.trace.breakdown_from_records`), so comparing the
    two isolates instrumentation drift from arithmetic differences.
    """
    return breakdown_from_records(strip_stage_times(model).values())


# -- critical-path extraction ------------------------------------------------


@dataclasses.dataclass(frozen=True)
class PathStep:
    """One span on a critical path, plus the wait behind its predecessor."""

    name: str
    sid: int
    start: float
    end: float
    wait: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclasses.dataclass(frozen=True)
class CriticalPath:
    """The longest dependency chain bounding one strip (or the run)."""

    client: int
    strip: int
    steps: tuple[PathStep, ...]

    @property
    def elapsed(self) -> float:
        """First start to last end — what the chain pins end-to-end."""
        if not self.steps:
            return 0.0
        return self.steps[-1].end - self.steps[0].start

    @property
    def busy(self) -> float:
        return sum(step.duration for step in self.steps)

    @property
    def wait(self) -> float:
        return sum(step.wait for step in self.steps)

    def to_dict(self) -> dict[str, t.Any]:
        return {
            "client": self.client,
            "strip": self.strip,
            "elapsed_s": self.elapsed,
            "busy_s": self.busy,
            "wait_s": self.wait,
            "steps": [dataclasses.asdict(step) for step in self.steps],
        }


def strip_critical_path(
    model: TraceModel, client: int, strip: int
) -> CriticalPath:
    """Walk parents + flow edges backward from the strip's last span.

    At each step the predecessor is the flow edge landing in the current
    span when one exists (IRQ placement, migration — true causal links),
    otherwise the latest-ending sibling that finished before the current
    span started (pipeline order).  Ties break on span id, so the walk
    is deterministic.
    """
    key = (client, strip)
    spans = model.strips.get(key)
    if not spans:
        raise ConfigError(
            f"no spans recorded for client {client} strip {strip}"
        )
    candidates = [s for s in spans if s.name != "strip"]
    if not candidates:
        raise ConfigError(
            f"strip {strip} of client {client} has no lifecycle spans"
        )
    flows_into: dict[int, list[TraceFlow]] = {}
    for flow in model.flows:
        if flow.closed and flow.dst_span is not None:
            flows_into.setdefault(flow.dst_span, []).append(flow)
    in_strip = {s.sid for s in candidates}

    current = max(candidates, key=lambda s: (s.end, s.sid))
    chain = [current]
    seen = {current.sid}
    while True:
        pred: TraceSpan | None = None
        for flow in flows_into.get(current.sid, ()):
            src = model.span(flow.src_span) if flow.src_span else None
            if src is not None and src.sid not in seen:
                if pred is None or (src.end, src.sid) > (pred.end, pred.sid):
                    pred = src
        if pred is None:
            eps = 1e-12
            for span in candidates:
                if span.sid in seen or span.sid not in in_strip:
                    continue
                if span.end <= current.start + eps:
                    if pred is None or (span.end, span.sid) > (
                        pred.end,
                        pred.sid,
                    ):
                        pred = span
        if pred is None:
            break
        chain.append(pred)
        seen.add(pred.sid)
        current = pred

    chain.reverse()
    steps: list[PathStep] = []
    previous_end: float | None = None
    root = model.strip_roots.get(key)
    if root is not None:
        previous_end = root.start
    for span in chain:
        wait = (
            max(0.0, span.start - previous_end)
            if previous_end is not None
            else 0.0
        )
        steps.append(
            PathStep(
                name=span.name,
                sid=span.sid,
                start=span.start,
                end=span.end,
                wait=wait,
            )
        )
        previous_end = max(
            span.end, previous_end if previous_end is not None else span.end
        )
    return CriticalPath(client=client, strip=strip, steps=tuple(steps))


def run_critical_path(model: TraceModel) -> CriticalPath:
    """The chain of whatever strip finishes last — what bounds the run."""
    if not model.strips:
        raise ConfigError("trace contains no strip spans to analyze")
    last_key = max(
        model.strips,
        key=lambda key: (
            max(s.end for s in model.strips[key]),
            -key[0],
            -key[1],
        ),
    )
    return strip_critical_path(model, *last_key)


# -- A/B trace diff ----------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class StageDiff:
    """One stage's total duration across the aligned strips of two runs."""

    stage: str
    a_total: float
    b_total: float
    count: int

    @property
    def delta(self) -> float:
        return self.b_total - self.a_total


@dataclasses.dataclass(frozen=True)
class SpanRegression:
    """One aligned (client, strip, stage) whose duration moved."""

    client: int
    strip: int
    stage: str
    a: float
    b: float

    @property
    def delta(self) -> float:
        return self.b - self.a


@dataclasses.dataclass(frozen=True)
class TraceDiff:
    """Everything ``sais-repro trace diff`` reports."""

    a_label: str
    b_label: str
    strips_a: int
    strips_b: int
    aligned: int
    only_a: int
    only_b: int
    stages: tuple[StageDiff, ...]
    migration_edges_a: int
    migration_edges_b: int
    added_edges: tuple[tuple[int, int], ...]
    removed_edges: tuple[tuple[int, int], ...]
    regressed: tuple[SpanRegression, ...]
    mean_total_a: float
    mean_total_b: float

    def to_dict(self) -> dict[str, t.Any]:
        return {
            "a_label": self.a_label,
            "b_label": self.b_label,
            "strips": {
                "a": self.strips_a,
                "b": self.strips_b,
                "aligned": self.aligned,
                "only_a": self.only_a,
                "only_b": self.only_b,
            },
            "stages": [
                {
                    "stage": row.stage,
                    "a_total_s": row.a_total,
                    "b_total_s": row.b_total,
                    "delta_s": row.delta,
                    "count": row.count,
                }
                for row in self.stages
            ],
            "migration_edges": {
                "a": self.migration_edges_a,
                "b": self.migration_edges_b,
                "added": [list(edge) for edge in self.added_edges],
                "removed": [list(edge) for edge in self.removed_edges],
            },
            "regressed": [
                {
                    "client": row.client,
                    "strip": row.strip,
                    "stage": row.stage,
                    "a_s": row.a,
                    "b_s": row.b,
                    "delta_s": row.delta,
                }
                for row in self.regressed
            ],
            "mean_total": {
                "a_s": self.mean_total_a,
                "b_s": self.mean_total_b,
                "delta_s": self.mean_total_b - self.mean_total_a,
            },
        }


def _edge_counts(
    edges: t.Sequence[tuple[int, int] | None],
) -> dict[tuple[int, int], int]:
    counts: dict[tuple[int, int], int] = {}
    for key in edges:
        if key is not None:
            counts[key] = counts.get(key, 0) + 1
    return counts


def diff_traces(
    a: TraceModel, b: TraceModel, top: int = 10
) -> TraceDiff:
    """Align two runs of the same point and attribute their latency gap.

    Spans align on stable ``(client, strip, stage)`` keys — strip ids
    are deterministic functions of the workload, so two runs of one grid
    point under different policies align perfectly; strips present in
    only one trace are counted but never silently dropped into the
    stage totals (which cover aligned strips only, apples to apples).
    """
    folded_a = stage_durations(a)
    folded_b = stage_durations(b)
    aligned_keys = sorted(set(folded_a) & set(folded_b))

    stages: list[StageDiff] = []
    for stage in STAGE_NAMES:
        a_total = b_total = 0.0
        count = 0
        for key in aligned_keys:
            in_a = stage in folded_a[key]
            in_b = stage in folded_b[key]
            if not in_a and not in_b:
                continue
            count += 1
            a_total += folded_a[key].get(stage, 0.0)
            b_total += folded_b[key].get(stage, 0.0)
        if count:
            stages.append(
                StageDiff(
                    stage=stage, a_total=a_total, b_total=b_total, count=count
                )
            )

    regressions = [
        SpanRegression(
            client=key[0],
            strip=key[1],
            stage=stage,
            a=folded_a[key].get(stage, 0.0),
            b=folded_b[key].get(stage, 0.0),
        )
        for key in aligned_keys
        for stage in STAGE_NAMES
        if stage in folded_a[key] or stage in folded_b[key]
    ]
    regressions = [row for row in regressions if row.delta != 0.0]
    regressions.sort(
        key=lambda row: (-row.delta, row.client, row.strip, row.stage)
    )

    edges_a = a.migration_edges()
    edges_b = b.migration_edges()
    counts_a = _edge_counts(edges_a)
    counts_b = _edge_counts(edges_b)

    totals_a = [r["total"] for r in folded_a.values() if "total" in r]
    totals_b = [r["total"] for r in folded_b.values() if "total" in r]
    return TraceDiff(
        a_label=a.label,
        b_label=b.label,
        strips_a=len(folded_a),
        strips_b=len(folded_b),
        aligned=len(aligned_keys),
        only_a=len(folded_a) - len(aligned_keys),
        only_b=len(folded_b) - len(aligned_keys),
        stages=tuple(stages),
        migration_edges_a=len(edges_a),
        migration_edges_b=len(edges_b),
        added_edges=tuple(sorted(set(counts_b) - set(counts_a))),
        removed_edges=tuple(sorted(set(counts_a) - set(counts_b))),
        regressed=tuple(regressions[: max(0, top)]),
        mean_total_a=sum(totals_a) / len(totals_a) if totals_a else 0.0,
        mean_total_b=sum(totals_b) / len(totals_b) if totals_b else 0.0,
    )


def _us(seconds: float) -> str:
    return f"{seconds * 1e6:.3f}us"


def render_diff(diff: TraceDiff) -> str:
    """Deterministic ASCII report of one A/B diff."""
    lines = [
        f"trace diff: A={diff.a_label} ({diff.strips_a} strips) vs "
        f"B={diff.b_label} ({diff.strips_b} strips), "
        f"{diff.aligned} aligned"
        + (
            f" ({diff.only_a} only in A, {diff.only_b} only in B)"
            if diff.only_a or diff.only_b
            else ""
        ),
        f"mean strip total: {_us(diff.mean_total_a)} -> "
        f"{_us(diff.mean_total_b)} "
        f"({_us(diff.mean_total_b - diff.mean_total_a)})",
        f"{'stage':<14}{'A total':>14}{'B total':>14}{'delta (B-A)':>16}"
        f"{'strips':>8}",
    ]
    for row in diff.stages:
        lines.append(
            f"{row.stage:<14}{_us(row.a_total):>14}{_us(row.b_total):>14}"
            f"{_us(row.delta):>16}{row.count:>8}"
        )
    lines.append(
        f"migration edges: A={diff.migration_edges_a} "
        f"B={diff.migration_edges_b} "
        f"(added {len(diff.added_edges)}, removed {len(diff.removed_edges)})"
    )
    if diff.regressed:
        lines.append(f"top {len(diff.regressed)} moved spans (B - A):")
        for row in diff.regressed:
            lines.append(
                f"  client {row.client} strip {row.strip} "
                f"{row.stage:<12} {_us(row.a)} -> {_us(row.b)} "
                f"({'+' if row.delta >= 0 else ''}{_us(row.delta)})"
            )
    else:
        lines.append("no aligned span moved")
    return "\n".join(lines)


# -- shard-round accounting --------------------------------------------------


@dataclasses.dataclass(frozen=True)
class _LoadedWindow:
    sid: int
    busy_s: float


@dataclasses.dataclass(frozen=True)
class _LoadedRound:
    index: int
    windows: tuple[_LoadedWindow, ...]


def load_rounds(path: str) -> tuple[tuple[_LoadedRound, ...], int]:
    """Load a ``--trace-rounds`` file back into replayable round records.

    Returns ``(records, n_shards)`` ready for
    :func:`recompute_projection`.  JSON round-trips Python floats
    exactly (shortest-repr encode, exact decode), so the recompute from
    a loaded file still matches the live outcome bit-for-bit.
    """
    try:
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except OSError as exc:
        raise ConfigError(f"cannot read rounds trace {path!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ConfigError(f"{path!r} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        raise ConfigError(
            f"{path!r} is not a trace-event file (no 'traceEvents' array)"
        )
    n_shards = 0
    by_round: dict[int, list[_LoadedWindow]] = {}
    for event in payload["traceEvents"]:
        if event.get("ph") != "X":
            continue
        args = event.get("args") or {}
        if "shard" in args:
            n_shards = max(n_shards, int(args["shard"]) + 1)
            by_round.setdefault(int(args["round"]), []).append(
                _LoadedWindow(
                    sid=int(args["shard"]), busy_s=float(args["busy_s"])
                )
            )
        elif "round" in args:
            by_round.setdefault(int(args["round"]), [])
    records = tuple(
        _LoadedRound(
            index=index,
            windows=tuple(sorted(windows, key=lambda w: w.sid)),
        )
        for index, windows in sorted(by_round.items())
    )
    return records, n_shards


def recompute_projection(
    round_log: t.Sequence[t.Any], n_shards: int, wall: float
) -> tuple[float, float, float]:
    """Replay the coordinator's projection arithmetic from round spans.

    Returns ``(busy_total, critical_path, projected_wall)``.  The loop
    mirrors :func:`repro.shard.coordinator.run_plan` operation for
    operation — same accumulation order, same comparisons — so on the
    log of an actual run the result equals ``ShardOutcome.busy_s`` /
    ``critical_path_s`` and the bench's ``projected_wall_s`` *exactly*
    (float equality, pinned in tests), not merely approximately.
    """
    busy_totals = [0.0] * n_shards
    critical = 0.0
    for record in round_log:
        round_max = 0.0
        for window in record.windows:
            busy_totals[window.sid] += window.busy_s
            if window.busy_s > round_max:
                round_max = window.busy_s
        critical += round_max
    busy = sum(busy_totals)
    return busy, critical, max(0.0, wall - busy + critical)
