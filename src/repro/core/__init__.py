"""The paper's contribution: source-aware interrupt scheduling.

* :mod:`~repro.core.policy` — the policy interface the I/O APIC consults,
  plus a registry keyed by the names used in experiment configs;
* :mod:`~repro.core.policies` — the conventional schemes (round-robin,
  dedicated, least-loaded, irqbalance) and the two source-aware policies of
  Sec. III (request core / current process core);
* :mod:`~repro.core.sais` — the four SAIs components of Fig. 3:
  ``HintMessager``, ``HintCapsuler``, ``SrcParser``, ``IMComposer``;
* :mod:`~repro.core.analysis` — the closed-form cost model of Sec. III,
  equations (1) through (9).
"""

from .analysis import AnalysisParams
from .analysis_sweep import AnalysisGrid, evaluate_grid
from .policies import (
    AdaptiveSourceAwarePolicy,
    DedicatedPolicy,
    FlowDirectorPolicy,
    IrqbalancePolicy,
    LeastLoadedPolicy,
    RdmaZeroInterruptPolicy,
    RoundRobinPolicy,
    RpsRfsPolicy,
    RssPolicy,
    SourceAwarePolicy,
    SourceAwareProcessPolicy,
)
from .policy import (
    InterruptSchedulingPolicy,
    available_policies,
    create_policy,
    list_policies,
    register_policy,
    unregister_policy,
)
from .sais import HintCapsuler, HintMessager, IMComposer, SrcParser

__all__ = [
    "InterruptSchedulingPolicy",
    "register_policy",
    "unregister_policy",
    "create_policy",
    "available_policies",
    "list_policies",
    "RoundRobinPolicy",
    "AdaptiveSourceAwarePolicy",
    "DedicatedPolicy",
    "LeastLoadedPolicy",
    "IrqbalancePolicy",
    "SourceAwarePolicy",
    "SourceAwareProcessPolicy",
    "RssPolicy",
    "FlowDirectorPolicy",
    "RpsRfsPolicy",
    "RdmaZeroInterruptPolicy",
    "HintMessager",
    "HintCapsuler",
    "SrcParser",
    "IMComposer",
    "AnalysisParams",
    "AnalysisGrid",
    "evaluate_grid",
]
