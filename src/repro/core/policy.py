"""The interrupt-scheduling policy interface and registry.

A policy is the function the I/O APIC redirection logic computes: *given an
interrupt (and whatever the hardware/driver can know about it), which core
should handle it?*  Conventional policies look only at core utilization;
source-aware policies read the ``aff_core_id`` the SAIs components planted
in the packet.

Policies are registered by name so experiment configs can select them as
strings (``ClusterConfig.policy``) and ablation benches can sweep the whole
registry.
"""

from __future__ import annotations

import abc
import typing as t

from ..errors import ConfigError

if t.TYPE_CHECKING:  # pragma: no cover - typing only
    from ..hw.apic import InterruptContext, IoApic
    from ..hw.core import Core

__all__ = [
    "InterruptSchedulingPolicy",
    "register_policy",
    "unregister_policy",
    "create_policy",
    "available_policies",
    "list_policies",
    "unknown_policy_error",
]

_REGISTRY: dict[str, type["InterruptSchedulingPolicy"]] = {}


class InterruptSchedulingPolicy(abc.ABC):
    """Chooses the destination core for each device interrupt."""

    #: Registry key; subclasses must set it.
    name: t.ClassVar[str] = ""
    #: True if the policy needs the SAIs hint plumbing (HintMessager on the
    #: client, HintCapsuler on the servers, SrcParser in the NIC driver) to
    #: be installed for it to see ``aff_core_id``.
    requires_hints: t.ClassVar[bool] = False
    #: True if the policy removes interrupts from the receive path entirely
    #: (RDMA-style NIC-driven placement).  The client wires the NIC's
    #: zero-interrupt sink instead of the APIC chain; ``select_core`` is
    #: then only reached on stacks wired without the bypass.
    interrupt_free: t.ClassVar[bool] = False

    def __init__(self) -> None:
        self.ioapic: "IoApic | None" = None

    def bind(self, ioapic: "IoApic") -> None:
        """Called once when the policy is programmed into an I/O APIC."""
        self.ioapic = ioapic

    @abc.abstractmethod
    def select_core(
        self, ctx: "InterruptContext", cores: t.Sequence["Core"]
    ) -> int:
        """Return the index of the core that should handle ``ctx``."""

    def observe_tx(self, server: int, core: int) -> None:
        """Transmit-side sampling hook (Flow Director ATR).

        Called by the client for every outbound strip request with the
        flow identity (the per-server TCP connection) and the core the
        requesting process issued from.  Policies without NIC-side flow
        tables ignore it.
        """

    def enable_degraded_fallback(self) -> None:
        """Arm the policy's graceful-degradation path, if it has one.

        Called by the cluster builder when a fault plan is active (a
        middlebox may be stripping the SAIs option).  Policies that do
        not distinguish hinted from unhinted traffic ignore this.
        """

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


def register_policy(
    cls: type[InterruptSchedulingPolicy],
) -> type[InterruptSchedulingPolicy]:
    """Class decorator adding a policy to the registry under ``cls.name``."""
    if not cls.name:
        raise ConfigError(f"{cls.__name__} must define a non-empty name")
    if cls.name in _REGISTRY:
        raise ConfigError(f"policy name {cls.name!r} is already registered")
    _REGISTRY[cls.name] = cls
    return cls


def unregister_policy(name: str) -> None:
    """Remove a policy from the registry (test isolation hook).

    Tests that register throwaway policies must unregister them in a
    ``finally`` block, or the registry-dynamic steering experiments (and
    their goldens) see the leftover name.
    """
    _REGISTRY.pop(name, None)


def unknown_policy_error(name: str) -> ConfigError:
    """The uniform unknown-policy error every entry point raises.

    Config validation, ``create_policy`` and the CLI ``--policy`` paths
    all funnel through this so the message format — including the full
    list of registered names — stays identical everywhere (the format is
    locked by ``tests/core/test_policy_invariants.py``).
    """
    return ConfigError(
        f"unknown policy {name!r}; available: {', '.join(available_policies())}"
    )


def create_policy(name: str, **kwargs: t.Any) -> InterruptSchedulingPolicy:
    """Instantiate a registered policy by name."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise unknown_policy_error(name) from None
    return cls(**kwargs)


def available_policies() -> list[str]:
    """Sorted names of all registered policies."""
    return sorted(_REGISTRY)


#: Alias used by parameterized test suites and CLI help text.
list_policies = available_policies
