"""Closed-form cost model of Section III, equations (1)-(9).

The paper decomposes the total time of an I/O request stream as

    T = TR + TP + TM - TO                                             (1)

where ``TR`` is network/server time (policy-independent), ``TP`` is strip
processing on the client cores, ``TM = M x #migrations`` is serialized
strip migration (2), and the overlap ``TO`` is proportional to
``min(TP, TM)``.  From this it derives bounds for balanced vs source-aware
scheduling for single requests (3)-(4), request streams (5)-(6), the
client-bandwidth feasibility constraint (7), the multi-program bounds (8)
and the performance gap (9).

These formulas are *bounds*, not predictions of absolute bandwidth; the
test suite and the ``sec3_model`` bench check that the discrete-event
simulator's ordering and scaling agree with them (gap grows with NS, NR and
M-P; vanishes when M≈P or when programs saturate the cores).
"""

from __future__ import annotations

import dataclasses

from ..errors import ConfigError

__all__ = ["AnalysisParams"]


@dataclasses.dataclass(frozen=True)
class AnalysisParams:
    """Symbols of the Sec. III analysis.

    Attributes
    ----------
    n_cores:
        ``NC`` — client cores.
    n_servers:
        ``NS`` — I/O server nodes; the paper assumes ``NS = alpha x NC``
        with integer alpha, but the formulas accept any positive ratio.
    strip_processing:
        ``P`` — seconds to process one strip-sized interrupt.
    strip_migration:
        ``M`` — seconds to move one strip between private caches (M >> P).
    rest_time:
        ``TR`` — network + server time, identical under every policy.
    n_requests:
        ``NR`` — number of I/O requests in the stream.
    n_programs:
        ``NP`` — concurrently running programs on the client.
    """

    n_cores: int
    n_servers: int
    strip_processing: float
    strip_migration: float
    rest_time: float = 0.0
    n_requests: int = 1
    n_programs: int = 1

    def __post_init__(self) -> None:
        if self.n_cores < 1 or self.n_servers < 1:
            raise ConfigError("n_cores and n_servers must be >= 1")
        if self.strip_processing <= 0 or self.strip_migration <= 0:
            raise ConfigError("P and M must be positive")
        if self.rest_time < 0:
            raise ConfigError("TR must be non-negative")
        if self.n_requests < 1 or self.n_programs < 1:
            raise ConfigError("NR and NP must be >= 1")

    # -- derived symbols -----------------------------------------------------

    @property
    def alpha(self) -> float:
        """``alpha = NS / NC`` (strips per core under perfect balance)."""
        return self.n_servers / self.n_cores

    @property
    def migrations_per_request(self) -> float:
        """Expected migrations under balanced scheduling: strips landing on
        the (NC-1)/NC of cores that are not the consumer."""
        return self.n_servers * (self.n_cores - 1) / self.n_cores

    # -- single request (Sec. III-B) ------------------------------------------

    def t_balanced_single(self) -> float:
        """Eq. (3): lower bound on a balanced-scheduling request,
        ``TR + M x alpha x (NC - 1)``."""
        return self.rest_time + self.strip_migration * self.alpha * (
            self.n_cores - 1
        )

    def t_source_aware_single(self) -> float:
        """Eq. (4): ``TR + P x NS`` — all strips processed on one core, no
        migrations."""
        return self.rest_time + self.strip_processing * self.n_servers

    # -- request streams (Sec. III-C) ------------------------------------------

    def t_source_aware_stream(self) -> float:
        """Eq. (5): ``TR + P x NS x NR``."""
        return (
            self.rest_time
            + self.strip_processing * self.n_servers * self.n_requests
        )

    def t_balanced_stream(self) -> float:
        """Eq. (6): lower bound ``TR + M x alpha x (NC - 1) x NR``."""
        return self.rest_time + (
            self.strip_migration * self.alpha * (self.n_cores - 1) * self.n_requests
        )

    @staticmethod
    def max_requests_for_bandwidth(
        n_servers: int, request_size: int, client_bandwidth: float
    ) -> float:
        """Eq. (7) rearranged: the request *rate* the client NIC can carry.

        ``NR x NS x Size_req <= Bandwidth`` couples NS and NR: past the NIC
        ceiling, adding servers must reduce the feasible request rate, which
        is why the SAIs advantage stops growing when the NIC saturates.
        """
        if n_servers < 1 or request_size <= 0 or client_bandwidth <= 0:
            raise ConfigError("invalid eq. (7) inputs")
        return client_bandwidth / (n_servers * request_size)

    # -- multiple programs (Sec. III-D) ----------------------------------------

    def t_source_aware_multiprogram_bounds(self) -> tuple[float, float]:
        """Eq. (8): with NP <= NC programs, source-aware TP parallelizes
        over the NP consuming cores; returns (lower, upper) bounds."""
        base = self.strip_processing * self.n_servers * self.n_requests
        lower = self.rest_time + base / min(self.n_programs, self.n_cores)
        upper = self.rest_time + base
        return lower, upper

    def performance_gap(self) -> float:
        """Eq. (9): ``(NC - 1) x NR x alpha x (M - P)`` — the balanced vs
        source-aware time difference; positive whenever M > P."""
        return (
            (self.n_cores - 1)
            * self.n_requests
            * self.alpha
            * (self.strip_migration - self.strip_processing)
        )

    # -- convenience ------------------------------------------------------------

    def predicted_speedup_stream(self) -> float:
        """Fractional speed-up implied by eqs. (5)-(6): T_bal/T_sa - 1.

        Only meaningful as a *trend* indicator — both inputs are bounds.
        """
        sa = self.t_source_aware_stream()
        bal = self.t_balanced_stream()
        if sa <= 0:
            raise ConfigError("degenerate source-aware time")
        return bal / sa - 1.0

    def cpu_saturated(self) -> bool:
        """Sec. III-D.2: with NP >= NC every core stays busy and the two
        schemes share the same TP lower bound — the advantage vanishes."""
        return self.n_programs >= self.n_cores
