"""The interrupt-scheduling policies compared in the paper.

Conventional (source-unaware) schemes — Sec. II-B / Fig. 1:

* :class:`RoundRobinPolicy` — Fig. 1(a); the Linux/Intel default;
* :class:`DedicatedPolicy` — Fig. 1(b); the Linux/AMD "lowest priority"
  default that funnels everything to the last core;
* :class:`LeastLoadedPolicy` — Sec. III policy (iii), the idealized
  per-interrupt balance scheme;
* :class:`IrqbalancePolicy` — the irqbalance daemon: rx queues are hashed
  per flow and queue→core assignments are rebalanced periodically from
  load statistics.  This is the paper's experimental baseline.

Source-aware schemes — Sec. III policies (i) and (ii):

* :class:`SourceAwarePolicy` — deliver to the core that *issued* the
  request, as carried by the packet's ``aff_core_id`` hint (the SAIs
  prototype the paper implements);
* :class:`SourceAwareProcessPolicy` — deliver to the core the requesting
  process is running on *now* (identical unless the process migrated
  during the blocking I/O, which the paper argues is rare).
"""

from __future__ import annotations

import typing as t

from ..errors import ConfigError
from .policy import InterruptSchedulingPolicy, register_policy

if t.TYPE_CHECKING:  # pragma: no cover - typing only
    from ..hw.apic import InterruptContext
    from ..hw.core import Core

__all__ = [
    "RoundRobinPolicy",
    "AdaptiveSourceAwarePolicy",
    "DedicatedPolicy",
    "LeastLoadedPolicy",
    "IrqbalancePolicy",
    "SourceAwarePolicy",
    "SourceAwareProcessPolicy",
]


def _least_loaded(cores: t.Sequence["Core"]) -> int:
    """Index of the least-loaded core; deterministic tie-break by index."""
    best = 0
    best_load = cores[0].load()
    for core in cores[1:]:
        load = core.load()
        if load < best_load:
            best, best_load = core.index, load
    return best


@register_policy
class RoundRobinPolicy(InterruptSchedulingPolicy):
    """Strict rotation across all cores, one interrupt at a time."""

    name = "round_robin"

    def __init__(self) -> None:
        super().__init__()
        self._next = 0

    def select_core(self, ctx: "InterruptContext", cores: t.Sequence["Core"]) -> int:
        core = self._next % len(cores)
        self._next += 1
        return core


@register_policy
class DedicatedPolicy(InterruptSchedulingPolicy):
    """All interrupts to one fixed core (default: the highest-numbered one,
    matching the paper's observation that the AMD lowest-priority mode lands
    everything on core 7)."""

    name = "dedicated"

    def __init__(self, core_index: int | None = None) -> None:
        super().__init__()
        if core_index is not None and core_index < 0:
            raise ConfigError(f"core_index must be >= 0, got {core_index}")
        self.core_index = core_index

    def select_core(self, ctx: "InterruptContext", cores: t.Sequence["Core"]) -> int:
        if self.core_index is None:
            return len(cores) - 1
        if self.core_index >= len(cores):
            raise ConfigError(
                f"dedicated core {self.core_index} does not exist "
                f"({len(cores)} cores)"
            )
        return self.core_index


@register_policy
class LeastLoadedPolicy(InterruptSchedulingPolicy):
    """Per-interrupt selection of the currently least-loaded core."""

    name = "least_loaded"

    def select_core(self, ctx: "InterruptContext", cores: t.Sequence["Core"]) -> int:
        return _least_loaded(cores)


@register_policy
class IrqbalancePolicy(InterruptSchedulingPolicy):
    """A model of the irqbalance daemon over multi-queue RSS hashing.

    Flows (per-server TCP connections) hash onto ``n_queues`` rx queues;
    each queue is pinned to one core; every ``rebalance_interval`` of
    virtual time the queue→core map is recomputed from core load statistics
    (least-loaded cores get the queues first).  Between rebalances the
    mapping is static — exactly the granularity at which the real daemon
    operates, and the reason strips of one parallel request scatter across
    cores: the request's strips arrive on many *flows*.
    """

    name = "irqbalance"

    def __init__(
        self,
        n_queues: int | None = None,
        rebalance_interval: float = 10e-3,
    ) -> None:
        super().__init__()
        if rebalance_interval <= 0:
            raise ConfigError("rebalance_interval must be positive")
        self.n_queues = n_queues
        self.rebalance_interval = rebalance_interval
        self._assignment: list[int] = []
        self._last_balance = float("-inf")

    def _queues(self, n_cores: int) -> int:
        return self.n_queues if self.n_queues is not None else n_cores

    def _rebalance(self, cores: t.Sequence["Core"]) -> None:
        order = sorted(range(len(cores)), key=lambda i: (cores[i].load(), i))
        n_queues = self._queues(len(cores))
        self._assignment = [order[q % len(order)] for q in range(n_queues)]

    def select_core(self, ctx: "InterruptContext", cores: t.Sequence["Core"]) -> int:
        now = cores[0].env.now
        if not self._assignment or now - self._last_balance >= self.rebalance_interval:
            self._rebalance(cores)
            self._last_balance = now
        flow = getattr(ctx.packet, "src_server", 0)
        queue = flow % len(self._assignment)
        return self._assignment[queue]


@register_policy
class SourceAwarePolicy(InterruptSchedulingPolicy):
    """SAIs policy (i): deliver to the request-issuing core via the hint.

    Reads ``ctx.aff_core_id`` — i.e. whatever ``SrcParser`` decoded from
    the packet's IP options.  Traffic without a hint (servers not running
    ``HintCapsuler``) falls back to least-loaded, making the policy a safe
    drop-in complement to existing scheduling, as the paper positions it.
    """

    name = "source_aware"
    requires_hints = True

    def __init__(self) -> None:
        super().__init__()
        #: Interrupts steered by the no-hint fallback (option-less or
        #: unparseable packets) — the graceful-degradation counter the
        #: resilience metrics report.
        self.fallback_events = 0
        #: Round-robin cursor of the degraded fallback; None until
        #: :meth:`enable_degraded_fallback` arms it.
        self._degraded_rr: int | None = None

    def enable_degraded_fallback(self) -> None:
        """Steer unhinted packets round-robin instead of least-loaded.

        Under an option-stripping middlebox a large fraction of traffic
        arrives unhinted; per-interrupt least-loaded selection would
        chase load statistics packet by packet, while a round-robin
        rotation spreads the blinded traffic predictably — the safe
        degraded mode the fault-aware wiring arms.
        """
        if self._degraded_rr is None:
            self._degraded_rr = 0

    def select_core(self, ctx: "InterruptContext", cores: t.Sequence["Core"]) -> int:
        aff = ctx.aff_core_id
        if aff is not None and 0 <= aff < len(cores):
            return aff
        self.fallback_events += 1
        if self._degraded_rr is not None:
            core = self._degraded_rr % len(cores)
            self._degraded_rr += 1
            return core
        return _least_loaded(cores)


@register_policy
class AdaptiveSourceAwarePolicy(InterruptSchedulingPolicy):
    """The paper's future-work direction: integrate the policies.

    Follows the source-aware hint while the hinted core has CPU headroom,
    but falls back to the least-loaded core when the hinted core is
    saturated — trading locality for balance exactly when Sec. III-D.2
    says locality stops paying (the CPU-saturated regime).
    """

    name = "adaptive_source_aware"
    requires_hints = True

    def __init__(self, load_threshold: float = 2.0) -> None:
        super().__init__()
        if load_threshold <= 0:
            raise ConfigError("load_threshold must be positive")
        #: Hinted-core load (runnable jobs incl. queue) above which the
        #: policy abandons locality for balance.
        self.load_threshold = load_threshold
        self.locality_hits = 0
        self.balance_fallbacks = 0

    def select_core(self, ctx: "InterruptContext", cores: t.Sequence["Core"]) -> int:
        aff = ctx.aff_core_id
        if aff is not None and 0 <= aff < len(cores):
            if cores[aff].load() <= self.load_threshold:
                self.locality_hits += 1
                return aff
        self.balance_fallbacks += 1
        return _least_loaded(cores)


@register_policy
class SourceAwareProcessPolicy(InterruptSchedulingPolicy):
    """SAIs policy (ii): deliver to the core the requester runs on *now*.

    Needs an OS-level oracle (a process locator) because hardware alone
    cannot know where the scheduler moved a blocked process; the cluster
    wiring installs one.  Falls back to the packet hint, then least-loaded.
    """

    name = "source_aware_process"
    requires_hints = True

    def __init__(self) -> None:
        super().__init__()
        self._locator: t.Callable[[int], int | None] | None = None

    def set_process_locator(self, locator: t.Callable[[int], int | None]) -> None:
        """Install ``locator(request_id) -> current core of the requester``."""
        self._locator = locator

    def select_core(self, ctx: "InterruptContext", cores: t.Sequence["Core"]) -> int:
        if self._locator is not None:
            core = self._locator(ctx.packet.request_id)
            if core is not None and 0 <= core < len(cores):
                return core
        aff = ctx.aff_core_id
        if aff is not None and 0 <= aff < len(cores):
            return aff
        return _least_loaded(cores)
