"""The interrupt-scheduling policies compared in the paper.

Conventional (source-unaware) schemes — Sec. II-B / Fig. 1:

* :class:`RoundRobinPolicy` — Fig. 1(a); the Linux/Intel default;
* :class:`DedicatedPolicy` — Fig. 1(b); the Linux/AMD "lowest priority"
  default that funnels everything to the last core;
* :class:`LeastLoadedPolicy` — Sec. III policy (iii), the idealized
  per-interrupt balance scheme;
* :class:`IrqbalancePolicy` — the irqbalance daemon: rx queues are hashed
  per flow and queue→core assignments are rebalanced periodically from
  load statistics.  This is the paper's experimental baseline.

Source-aware schemes — Sec. III policies (i) and (ii):

* :class:`SourceAwarePolicy` — deliver to the core that *issued* the
  request, as carried by the packet's ``aff_core_id`` hint (the SAIs
  prototype the paper implements);
* :class:`SourceAwareProcessPolicy` — deliver to the core the requesting
  process is running on *now* (identical unless the process migrated
  during the blocking I/O, which the paper argues is rare).

Modern steering schemes — the design space that followed the paper:

* :class:`RssPolicy` — receive-side scaling: a Toeplitz hash over the
  flow tuple indexes a static indirection table, so one flow always
  lands on one core (structurally in-order, but source-blind);
* :class:`FlowDirectorPolicy` — Intel Flow Director with ATR: transmits
  are sampled into a per-flow affinity table that the receive side
  follows, reproducing the packet-reordering pathology of arXiv
  1106.0443 when the flow's core repoints mid-flight;
* :class:`RpsRfsPolicy` — Linux RPS/RFS: the hardware IRQ lands on one
  fixed core, which re-steers the softirq work to the flow's consuming
  core over the interconnect (an extra inter-core hop per packet);
* :class:`RdmaZeroInterruptPolicy` — the zero-interrupt upper bound:
  the NIC places data directly into the consumer's cache and never
  interrupts at all.
"""

from __future__ import annotations

import typing as t

from ..errors import ConfigError
from .policy import InterruptSchedulingPolicy, register_policy

if t.TYPE_CHECKING:  # pragma: no cover - typing only
    from ..hw.apic import InterruptContext
    from ..hw.core import Core

__all__ = [
    "RoundRobinPolicy",
    "AdaptiveSourceAwarePolicy",
    "DedicatedPolicy",
    "LeastLoadedPolicy",
    "IrqbalancePolicy",
    "SourceAwarePolicy",
    "SourceAwareProcessPolicy",
    "RssPolicy",
    "FlowDirectorPolicy",
    "RpsRfsPolicy",
    "RdmaZeroInterruptPolicy",
    "toeplitz_hash",
]


def _least_loaded(cores: t.Sequence["Core"]) -> int:
    """Index of the least-loaded core; deterministic tie-break by index."""
    best = 0
    best_load = cores[0].load()
    for core in cores[1:]:
        load = core.load()
        if load < best_load:
            best, best_load = core.index, load
    return best


@register_policy
class RoundRobinPolicy(InterruptSchedulingPolicy):
    """Strict rotation across all cores, one interrupt at a time."""

    name = "round_robin"

    def __init__(self) -> None:
        super().__init__()
        self._next = 0

    def select_core(self, ctx: "InterruptContext", cores: t.Sequence["Core"]) -> int:
        core = self._next % len(cores)
        self._next += 1
        return core


@register_policy
class DedicatedPolicy(InterruptSchedulingPolicy):
    """All interrupts to one fixed core (default: the highest-numbered one,
    matching the paper's observation that the AMD lowest-priority mode lands
    everything on core 7)."""

    name = "dedicated"

    def __init__(self, core_index: int | None = None) -> None:
        super().__init__()
        if core_index is not None and core_index < 0:
            raise ConfigError(f"core_index must be >= 0, got {core_index}")
        self.core_index = core_index

    def select_core(self, ctx: "InterruptContext", cores: t.Sequence["Core"]) -> int:
        if self.core_index is None:
            return len(cores) - 1
        if self.core_index >= len(cores):
            raise ConfigError(
                f"dedicated core {self.core_index} does not exist "
                f"({len(cores)} cores)"
            )
        return self.core_index


@register_policy
class LeastLoadedPolicy(InterruptSchedulingPolicy):
    """Per-interrupt selection of the currently least-loaded core."""

    name = "least_loaded"

    def select_core(self, ctx: "InterruptContext", cores: t.Sequence["Core"]) -> int:
        return _least_loaded(cores)


@register_policy
class IrqbalancePolicy(InterruptSchedulingPolicy):
    """A model of the irqbalance daemon over multi-queue RSS hashing.

    Flows (per-server TCP connections) hash onto ``n_queues`` rx queues;
    each queue is pinned to one core; every ``rebalance_interval`` of
    virtual time the queue→core map is recomputed from core load statistics
    (least-loaded cores get the queues first).  Between rebalances the
    mapping is static — exactly the granularity at which the real daemon
    operates, and the reason strips of one parallel request scatter across
    cores: the request's strips arrive on many *flows*.
    """

    name = "irqbalance"

    def __init__(
        self,
        n_queues: int | None = None,
        rebalance_interval: float = 10e-3,
    ) -> None:
        super().__init__()
        if rebalance_interval <= 0:
            raise ConfigError("rebalance_interval must be positive")
        self.n_queues = n_queues
        self.rebalance_interval = rebalance_interval
        self._assignment: list[int] = []
        self._last_balance = float("-inf")

    def _queues(self, n_cores: int) -> int:
        return self.n_queues if self.n_queues is not None else n_cores

    def _rebalance(self, cores: t.Sequence["Core"]) -> None:
        order = sorted(range(len(cores)), key=lambda i: (cores[i].load(), i))
        n_queues = self._queues(len(cores))
        self._assignment = [order[q % len(order)] for q in range(n_queues)]

    def select_core(self, ctx: "InterruptContext", cores: t.Sequence["Core"]) -> int:
        now = cores[0].env.now
        if not self._assignment or now - self._last_balance >= self.rebalance_interval:
            self._rebalance(cores)
            self._last_balance = now
        flow = getattr(ctx.packet, "src_server", 0)
        queue = flow % len(self._assignment)
        return self._assignment[queue]


@register_policy
class SourceAwarePolicy(InterruptSchedulingPolicy):
    """SAIs policy (i): deliver to the request-issuing core via the hint.

    Reads ``ctx.aff_core_id`` — i.e. whatever ``SrcParser`` decoded from
    the packet's IP options.  Traffic without a hint (servers not running
    ``HintCapsuler``) falls back to least-loaded, making the policy a safe
    drop-in complement to existing scheduling, as the paper positions it.
    """

    name = "source_aware"
    requires_hints = True

    def __init__(self) -> None:
        super().__init__()
        #: Interrupts steered by the no-hint fallback (option-less or
        #: unparseable packets) — the graceful-degradation counter the
        #: resilience metrics report.
        self.fallback_events = 0
        #: Round-robin cursor of the degraded fallback; None until
        #: :meth:`enable_degraded_fallback` arms it.
        self._degraded_rr: int | None = None

    def enable_degraded_fallback(self) -> None:
        """Steer unhinted packets round-robin instead of least-loaded.

        Under an option-stripping middlebox a large fraction of traffic
        arrives unhinted; per-interrupt least-loaded selection would
        chase load statistics packet by packet, while a round-robin
        rotation spreads the blinded traffic predictably — the safe
        degraded mode the fault-aware wiring arms.
        """
        if self._degraded_rr is None:
            self._degraded_rr = 0

    def select_core(self, ctx: "InterruptContext", cores: t.Sequence["Core"]) -> int:
        aff = ctx.aff_core_id
        if aff is not None and 0 <= aff < len(cores):
            return aff
        self.fallback_events += 1
        if self._degraded_rr is not None:
            core = self._degraded_rr % len(cores)
            self._degraded_rr += 1
            return core
        return _least_loaded(cores)


@register_policy
class AdaptiveSourceAwarePolicy(InterruptSchedulingPolicy):
    """The paper's future-work direction: integrate the policies.

    Follows the source-aware hint while the hinted core has CPU headroom,
    but falls back to the least-loaded core when the hinted core is
    saturated — trading locality for balance exactly when Sec. III-D.2
    says locality stops paying (the CPU-saturated regime).
    """

    name = "adaptive_source_aware"
    requires_hints = True

    def __init__(self, load_threshold: float = 2.0) -> None:
        super().__init__()
        if load_threshold <= 0:
            raise ConfigError("load_threshold must be positive")
        #: Hinted-core load (runnable jobs incl. queue) above which the
        #: policy abandons locality for balance.
        self.load_threshold = load_threshold
        self.locality_hits = 0
        self.balance_fallbacks = 0

    def select_core(self, ctx: "InterruptContext", cores: t.Sequence["Core"]) -> int:
        aff = ctx.aff_core_id
        if aff is not None and 0 <= aff < len(cores):
            if cores[aff].load() <= self.load_threshold:
                self.locality_hits += 1
                return aff
        self.balance_fallbacks += 1
        return _least_loaded(cores)


@register_policy
class SourceAwareProcessPolicy(InterruptSchedulingPolicy):
    """SAIs policy (ii): deliver to the core the requester runs on *now*.

    Needs an OS-level oracle (a process locator) because hardware alone
    cannot know where the scheduler moved a blocked process; the cluster
    wiring installs one.  Falls back to the packet hint, then least-loaded.
    """

    name = "source_aware_process"
    requires_hints = True

    def __init__(self) -> None:
        super().__init__()
        self._locator: t.Callable[[int], int | None] | None = None

    def set_process_locator(self, locator: t.Callable[[int], int | None]) -> None:
        """Install ``locator(request_id) -> current core of the requester``."""
        self._locator = locator

    def select_core(self, ctx: "InterruptContext", cores: t.Sequence["Core"]) -> int:
        if self._locator is not None:
            core = self._locator(ctx.packet.request_id)
            if core is not None and 0 <= core < len(cores):
                return core
        aff = ctx.aff_core_id
        if aff is not None and 0 <= aff < len(cores):
            return aff
        return _least_loaded(cores)


# -- modern NIC steering ------------------------------------------------

#: Microsoft's reference RSS hash key (the bytes every driver ships).
_TOEPLITZ_KEY = bytes(
    (
        0x6D, 0x5A, 0x56, 0xDA, 0x25, 0x5B, 0x0E, 0xC2,
        0x41, 0x67, 0x25, 0x3D, 0x43, 0xA3, 0x8F, 0xB0,
        0xD0, 0xCA, 0x2B, 0xCB, 0xAE, 0x7B, 0x30, 0xB4,
        0x77, 0xCB, 0x2D, 0xA3, 0x80, 0x30, 0xF2, 0x0C,
        0x6A, 0x42, 0xB7, 0x3B, 0xBE, 0xAC, 0x01, 0xFA,
    )
)
_TOEPLITZ_KEY_INT = int.from_bytes(_TOEPLITZ_KEY, "big")
_TOEPLITZ_KEY_BITS = len(_TOEPLITZ_KEY) * 8


def toeplitz_hash(data: bytes) -> int:
    """The Toeplitz hash over ``data`` with the reference RSS key.

    Pure integer arithmetic — no Python ``hash()`` (seed-dependent) and
    no RNG — so steering decisions are bit-identical across processes,
    which the determinism/``--jobs`` tiers require.
    """
    n_bits = len(data) * 8
    if n_bits + 32 > _TOEPLITZ_KEY_BITS:
        raise ConfigError(
            f"toeplitz input of {len(data)} bytes exceeds the 40-byte key"
        )
    data_int = int.from_bytes(data, "big")
    result = 0
    for i in range(n_bits):
        if (data_int >> (n_bits - 1 - i)) & 1:
            result ^= (
                _TOEPLITZ_KEY_INT >> (_TOEPLITZ_KEY_BITS - 32 - i)
            ) & 0xFFFFFFFF
    return result


def _flow_tuple_bytes(server: int, client: int) -> bytes:
    """The hashed flow 4-tuple of one (server -> client) TCP connection.

    PVFS runs one connection per (client, server) pair; we synthesize
    the addresses/ports the way a deployment would lay them out: servers
    and clients on one /16, PVFS's listening port against a stable
    per-client ephemeral port.
    """
    src_ip = 0x0A000100 + (server & 0xFF)
    dst_ip = 0x0A000200 + (client & 0xFF)
    src_port = 3334  # PVFS2 default TCP port
    dst_port = 49152 + (client & 0x3FFF)
    return (
        src_ip.to_bytes(4, "big")
        + dst_ip.to_bytes(4, "big")
        + src_port.to_bytes(2, "big")
        + dst_port.to_bytes(2, "big")
    )


@register_policy
class RssPolicy(InterruptSchedulingPolicy):
    """Receive-side scaling: Toeplitz flow hash -> indirection table -> core.

    The hash is computed once per flow (memoized — real hardware hashes
    per packet, but the value is flow-constant by construction), then
    masked into a 128-entry indirection table programmed round-robin
    over the cores, exactly like a stock driver.  One flow therefore
    always lands on one core: source-blind, but structurally immune to
    the Flow Director reordering pathology.
    """

    name = "rss"

    #: Indirection-table size (128 entries is the common hardware default).
    TABLE_SIZE = 128

    def __init__(self) -> None:
        super().__init__()
        self._flow_hash: dict[tuple[int, int], int] = {}

    def _hash_for(self, server: int, client: int) -> int:
        key = (server, client)
        cached = self._flow_hash.get(key)
        if cached is None:
            cached = toeplitz_hash(_flow_tuple_bytes(server, client))
            self._flow_hash[key] = cached
        return cached

    def select_core(self, ctx: "InterruptContext", cores: t.Sequence["Core"]) -> int:
        packet = ctx.packet
        bucket = self._hash_for(
            getattr(packet, "src_server", 0), getattr(packet, "dst_client", 0)
        ) % self.TABLE_SIZE
        # Table entry i is programmed to core i % n_cores (driver default).
        return bucket % len(cores)


@register_policy
class FlowDirectorPolicy(InterruptSchedulingPolicy):
    """Intel Flow Director with ATR (Application Targeted Receive).

    The NIC samples *transmitted* packets and records flow -> core in a
    perfect-match affinity table; received packets of a known flow are
    steered to the recorded core, unknown flows fall back to the RSS
    hash.  Because the table follows wherever the flow was last *sent
    from*, it repoints whenever the consumer moves (or another process
    sharing the connection transmits) — and segments of one strip split
    across two cores' softirq queues then complete out of order.  That
    is the packet-reordering pathology of arXiv 1106.0443, observable
    here as nonzero ``out_of_order_segments``/``dup_acks`` while ``rss``
    stays at zero on the same workload.
    """

    name = "flow_director"

    def __init__(self) -> None:
        super().__init__()
        self._rss = RssPolicy()
        #: Perfect-match filter table: flow (server id) -> sampled core.
        self._flow_table: dict[int, int] = {}
        #: TX samples that *repointed* an existing entry — each one is a
        #: window in which in-flight RX packets of the flow can split
        #: across the old and new core (the reordering hazard).
        self.flow_migrations = 0
        #: Total ATR samples taken (one per outbound strip request).
        self.atr_samples = 0

    def observe_tx(self, server: int, core: int) -> None:
        self.atr_samples += 1
        previous = self._flow_table.get(server)
        if previous != core:
            if previous is not None:
                self.flow_migrations += 1
            self._flow_table[server] = core

    def select_core(self, ctx: "InterruptContext", cores: t.Sequence["Core"]) -> int:
        flow = getattr(ctx.packet, "src_server", 0)
        core = self._flow_table.get(flow)
        if core is not None and 0 <= core < len(cores):
            return core
        return self._rss.select_core(ctx, cores)


@register_policy
class RpsRfsPolicy(InterruptSchedulingPolicy):
    """Linux RPS + RFS: hardware IRQ on one core, software steering after.

    Models a single-queue NIC whose interrupt is pinned to ``hw_core``.
    The hardirq/early-softirq half runs there; Receive Flow Steering
    then looks up the flow's *consuming* core (the kernel's flow table,
    modeled by the process locator the client installs) and hands the
    protocol work to that core's softirq via an inter-processor signal
    on the interconnect — source-aware placement, bought with an extra
    cross-core hop per packet (``CostModel.rps_dispatch_cost`` plus the
    interconnect signal).  Flows without a table entry spread by RSS
    hash, which is plain RPS.
    """

    name = "rps_rfs"

    def __init__(self, hw_core: int = 0) -> None:
        super().__init__()
        if hw_core < 0:
            raise ConfigError(f"hw_core must be >= 0, got {hw_core}")
        #: The core the NIC's single MSI-X vector is pinned to.
        self.hw_core = hw_core
        self._rss = RssPolicy()
        self._locator: t.Callable[[int], int | None] | None = None
        #: Packets whose flow had an RFS table entry.
        self.rfs_hits = 0
        #: Packets steered by the hash fallback (plain RPS).
        self.rps_fallbacks = 0

    def set_process_locator(self, locator: t.Callable[[int], int | None]) -> None:
        """Install the kernel flow table: ``locator(request_id) -> core``."""
        self._locator = locator

    def select_core(self, ctx: "InterruptContext", cores: t.Sequence["Core"]) -> int:
        hw = self.hw_core % len(cores)
        target: int | None = None
        if self._locator is not None:
            target = self._locator(ctx.packet.request_id)
        if target is not None and 0 <= target < len(cores):
            self.rfs_hits += 1
        else:
            target = self._rss.select_core(ctx, cores)
            self.rps_fallbacks += 1
        if target != hw:
            # The handling softirq performs the cross-core handoff.
            ctx.rps_target = target
        return hw


@register_policy
class RdmaZeroInterruptPolicy(InterruptSchedulingPolicy):
    """Zero-interrupt RDMA-style placement: the upper bound.

    The NIC writes each strip directly into the consuming core's cache
    (DDIO-style) and completes without raising any interrupt: no vector
    dispatch, no softirq protocol work, no wake-up IPI.  The client
    wires the NIC's zero-interrupt sink when it sees
    ``interrupt_free``; :meth:`select_core` is only reached on a stack
    wired *without* the bypass, where it degenerates to NIC-driven
    placement through the interrupt path.
    """

    name = "rdma_zerointr"
    interrupt_free = True

    def __init__(self) -> None:
        super().__init__()
        self._locator: t.Callable[[int], int | None] | None = None

    def set_process_locator(self, locator: t.Callable[[int], int | None]) -> None:
        """Install the placement oracle: ``locator(request_id) -> core``."""
        self._locator = locator

    def placement_core(self, packet: t.Any, n_cores: int) -> int:
        """Where the NIC DMA-places ``packet``'s payload."""
        if self._locator is not None:
            core = self._locator(packet.request_id)
            if core is not None and 0 <= core < n_cores:
                return core
        request_core = getattr(packet, "request_core", None)
        if request_core is not None and 0 <= request_core < n_cores:
            return request_core
        return 0

    def select_core(self, ctx: "InterruptContext", cores: t.Sequence["Core"]) -> int:
        return self.placement_core(ctx.packet, len(cores))
