"""The four SAIs components of the paper's Fig. 3 architecture.

Client side:

* :class:`HintMessager` — step 1-2: packs the requesting core's id
  (``aff_core_id``) into the outgoing PVFS request as a ``PVFS_hint``;
* :class:`SrcParser` — step 4: runs in the NIC driver on every inbound
  packet, decoding ``aff_core_id`` from the IP options field;
* :class:`IMComposer` — step 5: composes the interrupt message with
  ``aff_core_id`` as the local-APIC destination address.

Server side:

* :class:`HintCapsuler` — step 3: stamps ``aff_core_id`` into the IP
  options of every returned data packet.

The pieces are deliberately tiny — the paper's point is that source
awareness needs only a hint channel and a driver-level parse, not a new
protocol.
"""

from __future__ import annotations

import typing as t

from ..des.monitor import Counter
from ..errors import CoreIdOutOfRangeError, ProtocolError
from ..hw.apic import InterruptContext
from ..net.ip_options import decode_aff_core_id, encode_aff_core_id

if t.TYPE_CHECKING:  # pragma: no cover - typing only
    from ..net.packet import Packet
    from ..pfs.request import StripRequest

__all__ = ["HintMessager", "HintCapsuler", "SrcParser", "IMComposer"]


class HintMessager:
    """Attaches ``aff_core_id`` to outgoing PVFS requests (PVFS_hint)."""

    def __init__(self) -> None:
        self.hints_attached = Counter("hints_attached")
        #: Requests whose issuing core exceeds the 5-bit wire encoding —
        #: the paper's "maximum 2^5 = 32 cores could be identified by
        #: SAIs" limitation.  These requests travel unhinted and their
        #: interrupts fall back to load-based placement.
        self.hints_unencodable = Counter("hints_unencodable")

    def attach(self, request: "StripRequest", core_index: int) -> bool:
        """Record the issuing core in the request's hint field.

        Returns True if the hint fits the 5-bit wire encoding; for cores
        the encoding cannot express (index >= 32) the request is left
        unhinted and False is returned — SAIs degrades gracefully to
        conventional scheduling for those processes rather than failing.
        """
        try:
            # Validate encodability eagerly; the encoded form is recreated
            # by the server's HintCapsuler per returned packet.
            encode_aff_core_id(core_index)
        except CoreIdOutOfRangeError:
            self.hints_unencodable.add()
            return False
        request.hint_aff_core_id = core_index
        self.hints_attached.add()
        return True


class HintCapsuler:
    """Server side: echoes the request hint into each reply packet's IP
    options field."""

    def __init__(self) -> None:
        self.packets_stamped = Counter("packets_stamped")

    def encapsulate(self, packet: "Packet", hint_aff_core_id: int | None) -> None:
        """Stamp ``packet`` with the hint, if the request carried one."""
        if hint_aff_core_id is None:
            return
        packet.options = encode_aff_core_id(hint_aff_core_id)
        self.packets_stamped.add()


class SrcParser:
    """NIC-driver hook: extracts ``aff_core_id`` before the IRQ is raised.

    ``n_cores`` is the host's core count: a corrupted options field can
    decode to a *syntactically* valid SAIs option naming a core the
    machine does not have, and the driver must treat that exactly like
    any other garbage — count it, return None, never steer there.
    """

    def __init__(self, n_cores: int | None = None) -> None:
        self.n_cores = n_cores
        self.packets_parsed = Counter("packets_parsed")
        self.hints_found = Counter("hints_found")
        #: Packets whose options field could not be decoded.  A driver
        #: must never crash on wire garbage: the packet is treated as
        #: unhinted and interrupt routing falls back to load-based.
        self.parse_errors = Counter("parse_errors")
        #: The subset of parse errors where a well-formed option decoded
        #: to a core id >= ``n_cores`` (corruption fabricating a core).
        self.hints_out_of_range = Counter("hints_out_of_range")

    def parse(self, packet: "Packet") -> int | None:
        """Decode the packet's IP options; None when no SAIs option.

        Malformed options fields (corruption, foreign options) are
        tolerated: the parser counts the error and returns None rather
        than propagating, exactly as a production NIC driver must.
        """
        self.packets_parsed.add()
        try:
            aff = decode_aff_core_id(packet.options, self.n_cores)
        except CoreIdOutOfRangeError:
            self.hints_out_of_range.add()
            self.parse_errors.add()
            return None
        except ProtocolError:
            self.parse_errors.add()
            return None
        if aff is not None:
            self.hints_found.add()
        return aff


class IMComposer:
    """Builds the interrupt message carrying the affinitive destination."""

    def __init__(self) -> None:
        self.messages_composed = Counter("messages_composed")

    def compose(self, packet: "Packet", aff_core_id: int | None) -> InterruptContext:
        """Create the interrupt context delivered to the I/O APIC."""
        self.messages_composed.add()
        return InterruptContext(
            packet=packet,
            aff_core_id=aff_core_id,
            request_core=getattr(packet, "request_core", None),
        )
