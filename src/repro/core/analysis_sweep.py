"""Vectorized grid evaluation of the Sec. III closed forms.

:class:`~repro.core.analysis.AnalysisParams` evaluates one point; this
module evaluates whole parameter grids at once with NumPy — the analytic
counterpart of the simulator sweeps, used for quick what-if exploration
(e.g. "over which (NS, M/P) region does the model predict a >10% win?")
without running any events.
"""

from __future__ import annotations

import dataclasses
import typing as t

import numpy as np

from ..errors import ConfigError

__all__ = ["AnalysisGrid", "evaluate_grid"]


@dataclasses.dataclass(frozen=True)
class AnalysisGrid:
    """Closed-form predictions over an (n_servers x migration-cost) grid.

    All arrays have shape ``(len(n_servers), len(strip_migration))``.
    """

    n_servers: np.ndarray
    strip_migration: np.ndarray
    t_balanced: np.ndarray
    t_source_aware: np.ndarray
    gap: np.ndarray
    predicted_speedup: np.ndarray

    def win_region(self, threshold: float = 0.1) -> np.ndarray:
        """Boolean mask of grid cells with predicted speed-up > threshold."""
        return self.predicted_speedup > threshold


def evaluate_grid(
    n_servers: t.Sequence[int],
    strip_migration: t.Sequence[float],
    n_cores: int,
    strip_processing: float,
    rest_time: float = 0.0,
    n_requests: int = 1,
) -> AnalysisGrid:
    """Evaluate eqs. (5), (6) and (9) over a grid.

    Parameters mirror :class:`~repro.core.analysis.AnalysisParams`, with
    ``n_servers`` and ``strip_migration`` (M) swept as the two axes.
    """
    if n_cores < 1:
        raise ConfigError("n_cores must be >= 1")
    if strip_processing <= 0:
        raise ConfigError("strip_processing must be positive")
    if rest_time < 0:
        raise ConfigError("rest_time must be non-negative")
    if n_requests < 1:
        raise ConfigError("n_requests must be >= 1")

    servers = np.asarray(list(n_servers), dtype=np.float64)
    migration = np.asarray(list(strip_migration), dtype=np.float64)
    if servers.ndim != 1 or migration.ndim != 1 or not len(servers) or not len(
        migration
    ):
        raise ConfigError("n_servers and strip_migration must be 1-D, non-empty")
    if (servers < 1).any():
        raise ConfigError("n_servers entries must be >= 1")
    if (migration <= 0).any():
        raise ConfigError("strip_migration entries must be positive")

    ns = servers[:, np.newaxis]  # broadcast rows
    m = migration[np.newaxis, :]  # broadcast columns
    alpha = ns / n_cores

    # Eq. (6): TR + M x alpha x (NC - 1) x NR  (lower bound, balanced).
    t_balanced = rest_time + m * alpha * (n_cores - 1) * n_requests
    # Eq. (5): TR + P x NS x NR  (source-aware).
    t_source_aware = rest_time + strip_processing * ns * n_requests
    t_source_aware = np.broadcast_to(t_source_aware, t_balanced.shape).copy()
    # Eq. (9): (NC - 1) x NR x alpha x (M - P).
    gap = (n_cores - 1) * n_requests * alpha * (m - strip_processing)
    speedup = t_balanced / t_source_aware - 1.0

    full_servers = np.broadcast_to(ns, t_balanced.shape).copy()
    full_migration = np.broadcast_to(m, t_balanced.shape).copy()
    return AnalysisGrid(
        n_servers=full_servers,
        strip_migration=full_migration,
        t_balanced=t_balanced,
        t_source_aware=t_source_aware,
        gap=gap,
        predicted_speedup=speedup,
    )
