"""Process-wide "ambient" fault plan installed by the CLI.

``--fault-plan``/``--fault-seed`` should degrade *existing* experiments
without every grid builder growing a plan parameter: the CLI installs the
loaded plan here, and the cluster-simulation grid builders route their
configs through :func:`apply_ambient_faults`.

The ambient plan only influences *grid construction* (which happens in
the parent process) — the plan then travels inside the pickled config
specs, so pool workers and cache keys see it without any global state of
their own.  Experiments that build their own fault plans (the resilience
sweeps) and the analytic/memory-model experiments (no cluster simulation)
ignore it.
"""

from __future__ import annotations

import contextlib
import typing as t

if t.TYPE_CHECKING:  # pragma: no cover - typing only
    from ..config import ClusterConfig
    from .plan import FaultPlan

__all__ = [
    "ambient_fault_plan",
    "apply_ambient_faults",
    "set_ambient_fault_plan",
    "using_fault_plan",
]

_AMBIENT: "FaultPlan | None" = None


def set_ambient_fault_plan(plan: "FaultPlan | None") -> None:
    """Install (or clear, with None) the process-wide fault plan."""
    global _AMBIENT
    _AMBIENT = plan


def ambient_fault_plan() -> "FaultPlan | None":
    """The currently-installed ambient plan, if any."""
    return _AMBIENT


def apply_ambient_faults(config: "ClusterConfig") -> "ClusterConfig":
    """Attach the ambient plan to a config that does not carry one.

    A config with its own ``faults`` (the resilience experiments) wins
    over the ambient plan.
    """
    plan = _AMBIENT
    if plan is None or config.faults is not None:
        return config
    return config.replace(faults=plan)


@contextlib.contextmanager
def using_fault_plan(plan: "FaultPlan | None") -> t.Iterator[None]:
    """Scoped ambient-plan installation (tests, embedding callers)."""
    previous = _AMBIENT
    set_ambient_fault_plan(plan)
    try:
        yield
    finally:
        set_ambient_fault_plan(previous)
