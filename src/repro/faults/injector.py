"""The live fault-injection engine built from one :class:`FaultPlan`.

One :class:`FaultInjector` is created per cluster (when the config carries
a non-null plan) and consulted from three places:

* each :class:`~repro.net.links.Link` asks its :class:`LinkFaults` adapter
  whether a transmission attempt is lost and how long to back off;
* the :class:`~repro.net.switch.Switch` runs :meth:`FaultInjector.middlebox`
  on every forwarded packet — option stripping, option corruption, and
  reordering delay all happen "in the middle of the network";
* each :class:`~repro.pfs.server.IoServer` asks for its straggler slowdown
  factor and whether it is inside a transient-failure window.

Every per-packet decision is keyed by :func:`repro.rng.hash_unit` over the
packet's identity (flow, strip, segment, attempt) and the plan's seed —
a property of the *packet*, not of event order.  That makes the fault
pattern (a) byte-reproducible regardless of worker count or scheduling,
and (b) paired across baseline/treatment policy runs, the same trick the
server page-cache model uses for hit patterns.
"""

from __future__ import annotations

import dataclasses
import typing as t

from ..des.monitor import Counter
from ..rng import _stable_hash, hash_unit
from .plan import FaultPlan

if t.TYPE_CHECKING:  # pragma: no cover - typing only
    from ..net.packet import Packet

__all__ = ["FaultInjector", "LinkFaults"]

# Distinct decision-site salts so e.g. the drop draw and the strip draw
# for the same packet are independent.
_SITE_DROP = 0x11
_SITE_STRIP = 0x22
_SITE_CORRUPT = 0x33
_SITE_CORRUPT_BYTE = 0x34
_SITE_REORDER = 0x44
_SITE_REORDER_DELAY = 0x45


def _packet_key(packet: "Packet") -> tuple[int, int, int, int, int]:
    return packet.flow_identity


class LinkFaults:
    """One link's view of the injector: loss decisions + backoff schedule."""

    def __init__(self, injector: "FaultInjector", name: str) -> None:
        self._injector = injector
        self._site = _stable_hash(name)

    def should_drop(self, packet: "Packet", attempt: int) -> bool:
        """Whether transmission ``attempt`` (0-based) of ``packet`` is lost."""
        injector = self._injector
        plan = injector.plan
        if plan.loss_prob <= 0.0:
            return False
        draw = hash_unit(
            plan.seed, _SITE_DROP, self._site, *_packet_key(packet), attempt
        )
        if draw >= plan.loss_prob:
            return False
        injector.packets_dropped.add()
        return True

    def retransmit_delay(self, attempt: int) -> float:
        """Backoff before re-sending after the ``attempt``-th loss (1-based)."""
        plan = self._injector.plan
        delay = plan.retransmit_timeout * plan.retransmit_backoff ** (attempt - 1)
        return min(delay, plan.retransmit_cap)


class FaultInjector:
    """Deterministic fault decisions plus the counters the metrics read."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._stragglers = frozenset(plan.straggler_servers)
        self._windows: dict[int, list[tuple[float, float]]] = {}
        for server, start, end in plan.server_failure_windows:
            self._windows.setdefault(server, []).append((start, end))
        self.packets_dropped = Counter("fault_packets_dropped")
        self.options_stripped = Counter("fault_options_stripped")
        self.options_corrupted = Counter("fault_options_corrupted")
        self.packets_delayed = Counter("fault_packets_delayed")
        self.requests_dropped = Counter("fault_requests_dropped")

    # -- link layer -----------------------------------------------------------

    def link_faults(self, name: str) -> LinkFaults | None:
        """The loss adapter for one link; None when the plan never drops
        (keeps the no-loss transmit path identical to the fault-free one)."""
        if self.plan.loss_prob <= 0.0:
            return None
        return LinkFaults(self, name)

    # -- middlebox (runs on the switch) ---------------------------------------

    def middlebox(self, packet: "Packet") -> tuple["Packet", float]:
        """Apply in-network hazards to one forwarded packet.

        Returns the (possibly replaced) packet and an extra delivery
        delay.  The original packet object is never mutated — a lost
        copy upstream may still be retransmitted.
        """
        plan = self.plan
        key = _packet_key(packet)
        extra_delay = 0.0
        if plan.reorder_prob > 0.0 and (
            hash_unit(plan.seed, _SITE_REORDER, *key) < plan.reorder_prob
        ):
            extra_delay = plan.reorder_window * hash_unit(
                plan.seed, _SITE_REORDER_DELAY, *key
            )
            self.packets_delayed.add()
        if packet.options:
            if plan.strip_option_prob > 0.0 and (
                hash_unit(plan.seed, _SITE_STRIP, *key) < plan.strip_option_prob
            ):
                packet = dataclasses.replace(packet, options=b"")
                self.options_stripped.add()
            elif plan.corrupt_prob > 0.0 and (
                hash_unit(plan.seed, _SITE_CORRUPT, *key) < plan.corrupt_prob
            ):
                garbled = int(
                    hash_unit(plan.seed, _SITE_CORRUPT_BYTE, *key) * 256
                )
                packet = dataclasses.replace(
                    packet, options=bytes([garbled]) + packet.options[1:]
                )
                self.options_corrupted.add()
        return packet, extra_delay

    # -- servers --------------------------------------------------------------

    def server_slowdown(self, server_index: int) -> float:
        """Storage service-time multiplier for one server (1.0 = healthy)."""
        if server_index in self._stragglers:
            return self.plan.straggler_slowdown
        return 1.0

    def server_offline(self, server_index: int, now: float) -> bool:
        """Whether ``server_index`` is inside a transient-failure window."""
        for start, end in self._windows.get(server_index, ()):
            if start <= now < end:
                return True
        return False

    def max_server_index(self) -> int:
        """Highest server index the plan references (build-time validation)."""
        indices = [-1]
        indices.extend(self._stragglers)
        indices.extend(self._windows)
        return max(indices)
