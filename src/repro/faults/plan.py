"""The :class:`FaultPlan` configuration: what can go wrong, and how often.

A fault plan is a frozen, pickleable description of the hazards injected
into one run — packet loss and corruption, reordering delay, an
option-stripping middlebox, straggling and transiently-failing servers —
plus the knobs of the recovery mechanisms that keep the run *completing*
instead of crashing (link retransmission, client-side strip retry).

Like every config dataclass it validates eagerly in ``__post_init__`` and
participates in the runner's content-addressed cache keys, so editing any
field invalidates exactly the results it affects.  ``load_fault_plan``
reads a plan from a JSON file for the CLI's ``--fault-plan`` flag, raising
a uniform :class:`~repro.errors.ConfigError` on anything malformed (the
``resolve_scale()`` hardening pattern).
"""

from __future__ import annotations

import dataclasses
import json
import typing as t

from ..errors import ConfigError

__all__ = [
    "FaultPlan",
    "StripRetryPolicy",
    "fault_plan_from_mapping",
    "load_fault_plan",
]


@dataclasses.dataclass(frozen=True)
class StripRetryPolicy:
    """Client-side per-strip retry knobs handed to ``PfsClient``."""

    #: Seconds to wait for a strip before the first re-submission.
    timeout: float
    #: Multiplier applied to the timeout after every retry.
    backoff: float
    #: Re-submissions before :class:`~repro.errors.StripRetryExhaustedError`.
    max_retries: int


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """Deterministic, seed-driven description of injected faults.

    Per-packet decisions (drop / strip / corrupt / delay) are keyed by
    :func:`repro.rng.hash_unit` on the packet's identity and
    :attr:`seed` — a property of the *packet*, not of event order — so
    the fault pattern is byte-identical across ``--jobs N`` workers and
    paired across baseline/treatment policy runs.
    """

    #: Probability that a link transmission is lost (per attempt).  Lost
    #: packets are recovered by TCP retransmission with exponential
    #: backoff; 1.0 would retransmit forever and is rejected.
    loss_prob: float = 0.0
    #: Probability that the middlebox garbles a packet's IP options
    #: field (first octet randomized; SAIs must tolerate the result).
    corrupt_prob: float = 0.0
    #: Probability that the middlebox holds a packet back by a random
    #: extra delay in (0, ``reorder_window``] — the Flow-Director-style
    #: reordering hazard.
    reorder_prob: float = 0.0
    #: Upper bound of the extra reordering delay, seconds.
    reorder_window: float = 300e-6
    #: Probability that the "option-stripping middlebox" clears a
    #: packet's IP options entirely (unknown options are commonly
    #: dropped by real middleboxes), blinding SAIs for that packet.
    strip_option_prob: float = 0.0
    #: Server indices that run slow for the whole experiment.
    straggler_servers: tuple[int, ...] = ()
    #: Service-time multiplier applied to straggler storage fetches.
    straggler_slowdown: float = 1.0
    #: Transient failures: ``(server, start, end)`` windows of simulated
    #: time during which the server silently drops incoming requests
    #: (client retry recovers them once the window closes).
    server_failure_windows: tuple[tuple[int, float, float], ...] = ()
    #: Salt for all per-packet fault decisions; ``--fault-seed``.
    seed: int = 0
    #: Base link retransmission timeout, seconds.
    retransmit_timeout: float = 1e-3
    #: Exponential backoff factor per retransmission.
    retransmit_backoff: float = 2.0
    #: Cap on any single retransmission backoff delay, seconds.
    retransmit_cap: float = 64e-3
    #: Client-side per-strip retry timeout before the first retry.
    strip_retry_timeout: float = 0.5
    #: Backoff factor per strip retry.
    strip_retry_backoff: float = 2.0
    #: Strip re-submissions before ``StripRetryExhaustedError``.
    max_strip_retries: int = 3

    def __post_init__(self) -> None:
        for name in ("corrupt_prob", "reorder_prob", "strip_option_prob"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1], got {value}")
        if not 0.0 <= self.loss_prob < 1.0:
            raise ConfigError(
                f"loss_prob must be in [0, 1) — 1.0 would retransmit "
                f"forever — got {self.loss_prob}"
            )
        if self.reorder_window <= 0:
            raise ConfigError(
                f"reorder_window must be positive, got {self.reorder_window}"
            )
        if self.straggler_slowdown < 1.0:
            raise ConfigError(
                f"straggler_slowdown must be >= 1, got {self.straggler_slowdown}"
            )
        for server in self.straggler_servers:
            if not isinstance(server, int) or server < 0:
                raise ConfigError(
                    f"straggler server index must be a non-negative int, "
                    f"got {server!r}"
                )
        for window in self.server_failure_windows:
            if len(window) != 3:
                raise ConfigError(
                    f"failure window must be (server, start, end), got {window!r}"
                )
            server, start, end = window
            if not isinstance(server, int) or server < 0:
                raise ConfigError(
                    f"failure-window server must be a non-negative int, "
                    f"got {server!r}"
                )
            if not 0 <= start < end:
                raise ConfigError(
                    f"failure window needs 0 <= start < end, got {window!r}"
                )
        for name in (
            "retransmit_timeout",
            "retransmit_cap",
            "strip_retry_timeout",
        ):
            if getattr(self, name) <= 0:
                raise ConfigError(
                    f"{name} must be positive, got {getattr(self, name)}"
                )
        for name in ("retransmit_backoff", "strip_retry_backoff"):
            if getattr(self, name) < 1.0:
                raise ConfigError(
                    f"{name} must be >= 1, got {getattr(self, name)}"
                )
        if self.max_strip_retries < 0:
            raise ConfigError(
                f"max_strip_retries must be >= 0, got {self.max_strip_retries}"
            )

    @property
    def is_null(self) -> bool:
        """True when the plan injects nothing at all.

        A null plan builds the exact same cluster as ``faults=None`` —
        the zero-cost-when-disabled guarantee the golden-snapshot tests
        pin down.
        """
        return (
            self.loss_prob == 0.0
            and self.corrupt_prob == 0.0
            and self.reorder_prob == 0.0
            and self.strip_option_prob == 0.0
            and (not self.straggler_servers or self.straggler_slowdown == 1.0)
            and not self.server_failure_windows
        )

    def with_seed(self, seed: int) -> "FaultPlan":
        """A copy of this plan under a different fault seed."""
        return dataclasses.replace(self, seed=int(seed))

    def strip_retry_policy(self) -> StripRetryPolicy:
        """The client-side retry knobs as their own little bundle."""
        return StripRetryPolicy(
            timeout=self.strip_retry_timeout,
            backoff=self.strip_retry_backoff,
            max_retries=self.max_strip_retries,
        )


def fault_plan_from_mapping(payload: t.Mapping[str, t.Any]) -> FaultPlan:
    """Build a :class:`FaultPlan` from a parsed-JSON style mapping.

    Unknown keys and wrong-typed values raise
    :class:`~repro.errors.ConfigError`, never a raw ``TypeError``.
    """
    if not isinstance(payload, t.Mapping):
        raise ConfigError(
            f"fault plan must be a JSON object, got {type(payload).__name__}"
        )
    known = {field.name for field in dataclasses.fields(FaultPlan)}
    unknown = sorted(set(payload) - known)
    if unknown:
        raise ConfigError(
            f"unknown fault plan key(s): {', '.join(unknown)}; "
            f"valid keys: {', '.join(sorted(known))}"
        )
    kwargs: dict[str, t.Any] = dict(payload)
    if "straggler_servers" in kwargs:
        servers = kwargs["straggler_servers"]
        if not isinstance(servers, (list, tuple)):
            raise ConfigError(
                f"straggler_servers must be a list, got {servers!r}"
            )
        kwargs["straggler_servers"] = tuple(servers)
    if "server_failure_windows" in kwargs:
        windows = kwargs["server_failure_windows"]
        if not isinstance(windows, (list, tuple)) or not all(
            isinstance(w, (list, tuple)) for w in windows
        ):
            raise ConfigError(
                "server_failure_windows must be a list of "
                f"[server, start, end] triples, got {windows!r}"
            )
        kwargs["server_failure_windows"] = tuple(
            tuple(window) for window in windows
        )
    try:
        return FaultPlan(**kwargs)
    except ConfigError:
        raise
    except (TypeError, ValueError) as exc:
        raise ConfigError(f"invalid fault plan: {exc}") from exc


def load_fault_plan(path: str) -> FaultPlan:
    """Read a :class:`FaultPlan` from a JSON file (CLI ``--fault-plan``).

    Every failure mode — unreadable file, invalid JSON, non-object
    payload, unknown keys, out-of-range values — surfaces as a uniform
    :class:`~repro.errors.ConfigError` naming the file.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as exc:
        raise ConfigError(f"cannot read fault plan {path!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ConfigError(
            f"fault plan {path!r} is not valid JSON: {exc}"
        ) from exc
    try:
        return fault_plan_from_mapping(payload)
    except ConfigError as exc:
        raise ConfigError(f"fault plan {path!r}: {exc}") from exc
