"""Deterministic fault injection and the graceful-degradation machinery.

Real deployments of the paper's design face hazards the base simulator
does not model: middleboxes strip unknown IP options (blinding SAIs),
NIC-level steering reorders packets, links drop frames, and parallel
reads are gated by straggling or transiently-failing servers.  This
package injects exactly those hazards — reproducibly, from a single
seed — and provides the recovery paths that turn them into *degraded
performance* instead of crashes:

* :class:`FaultPlan` — the frozen, cache-keyable description of what is
  injected (probabilities, windows, recovery knobs);
* :class:`FaultInjector` — the live engine the links, switch and servers
  consult, with per-packet decisions keyed by :func:`repro.rng.hash_unit`
  so fault patterns are order-independent and A/B-paired;
* the ambient-plan hooks behind the CLI's ``--fault-plan`` flag.

When a config carries no plan (or a null one), none of this is wired at
all — the fault layer is provably zero-cost when disabled, a property the
golden-snapshot tests pin byte-for-byte.
"""

from .ambient import (
    ambient_fault_plan,
    apply_ambient_faults,
    set_ambient_fault_plan,
    using_fault_plan,
)
from .injector import FaultInjector, LinkFaults
from .plan import (
    FaultPlan,
    StripRetryPolicy,
    fault_plan_from_mapping,
    load_fault_plan,
)

__all__ = [
    "FaultPlan",
    "StripRetryPolicy",
    "FaultInjector",
    "LinkFaults",
    "fault_plan_from_mapping",
    "load_fault_plan",
    "ambient_fault_plan",
    "apply_ambient_faults",
    "set_ambient_fault_plan",
    "using_fault_plan",
]
