"""Domain assignment and eligibility for sharded single-run simulation.

A shard plan partitions one cluster into weakly-coupled *domains*: every
client node (cores, caches, NIC, softirq daemons, PFS client) lives in
exactly one client shard, every I/O server (disk, page cache, uplink) in
exactly one server shard.  The switch fabric belongs to no shard — it is
the boundary, replayed by the coordinator at each conservative barrier
(see :mod:`repro.shard.coordinator`).

The lookahead of the conservative protocol is the switch ingress->egress
latency: no message can cross the boundary and take effect sooner than
one fabric traversal, so a shard that has processed everything below the
global lower-bound-on-timestamp ``B`` may safely advance to ``B + L``.
A zero-latency fabric has zero lookahead and cannot be sharded.
"""

from __future__ import annotations

import dataclasses
import os
import sys

from ..config import ClusterConfig
from ..errors import ConfigError
from ..net.fastpath import fast_wire_enabled

__all__ = [
    "ShardPlan",
    "plan_shards",
    "shard_block_reason",
    "shards_requested",
    "server_shards_requested",
    "transport_requested",
    "rounds_trace_requested",
]

#: Ambient request for sharded runs, set by ``--shards N`` and inherited
#: by ``--jobs`` worker processes (so the two compose with no plumbing).
SHARDS_ENV = "REPRO_SHARDS"
#: Ambient request for the number of *server* shards inside a sharded
#: run, set by ``--server-shards N``.  Unset, ``plan_shards`` keeps all
#: servers on one calendar until every client has its own shard, then
#: auto-splits the overflow across server calendars.
SERVER_SHARDS_ENV = "REPRO_SERVER_SHARDS"
#: Escape hatch: force single-calendar runs even when REPRO_SHARDS is set.
NO_SHARDS_ENV = "REPRO_NO_SHARDS"
#: Round-span capture: a file path set by ``--trace-rounds FILE``.  When
#: set, sharded runs keep per-round records (LBTS bound, per-shard busy
#: vs stall, steals) and export them as a Perfetto round timeline.  An
#: env var rather than a parameter so it composes with ``--jobs`` worker
#: processes the same way ``--shards`` does.
ROUNDS_ENV = "REPRO_TRACE_ROUNDS"
#: Transport override: ``mp`` (multiprocessing workers) or ``inproc``
#: (coordinator drives every shard in-process; used by tests and as the
#: automatic fallback wherever workers cannot be spawned).  Unset, the
#: transport is picked by CPU count: worker processes on a single-core
#: host only add IPC latency to every conservative window.
TRANSPORT_ENV = "REPRO_SHARD_TRANSPORT"


@dataclasses.dataclass(frozen=True)
class ShardPlan:
    """One partition of a cluster into per-domain event calendars."""

    #: Conservative lookahead in seconds (= the switch latency).
    lookahead: float
    #: Client node indices per client shard (contiguous, in order).
    client_groups: tuple[tuple[int, ...], ...]
    #: Server indices per server shard (contiguous, in order).
    server_groups: tuple[tuple[int, ...], ...]

    @property
    def n_shards(self) -> int:
        return len(self.client_groups) + len(self.server_groups)

    @property
    def n_client_shards(self) -> int:
        return len(self.client_groups)

    @property
    def n_server_shards(self) -> int:
        return len(self.server_groups)


def _split(n_items: int, n_groups: int) -> tuple[tuple[int, ...], ...]:
    """Contiguous near-even split of ``range(n_items)`` into ``n_groups``.

    ``n_groups`` is clamped to ``n_items``: an empty group would be a
    shard with an empty calendar forever, which the coordinator would
    dutifully poll every round for nothing.  Zero items yields zero
    groups for the same reason.
    """
    n_groups = min(n_groups, n_items)
    if n_groups <= 0:
        return ()
    base, extra = divmod(n_items, n_groups)
    groups: list[tuple[int, ...]] = []
    start = 0
    for g in range(n_groups):
        size = base + (1 if g < extra else 0)
        groups.append(tuple(range(start, start + size)))
        start += size
    return tuple(groups)


def plan_shards(
    config: ClusterConfig,
    n_shards: int,
    server_shards: int | None = None,
) -> ShardPlan:
    """Partition ``config``'s cluster into ``n_shards`` domains.

    ``server_shards`` pins how many of those domains hold I/O servers
    (``--server-shards N``); the remaining ``n_shards - server_shards``
    hold clients.  Left ``None``, the split is automatic: one server
    shard until every client node has a calendar of its own, then the
    overflow spreads the servers — ``--shards 2`` keeps its natural cut
    (all clients | all servers), and asking for more shards than the
    cluster has nodes to fill clamps rather than erroring.

    Splitting servers is safe for byte-identity because every wire
    record crossing the boundary carries a *rank* naming where its
    departure's event id was assigned — during the previous departure's
    dispatch on the same uplink (period-continuing, ordered by the
    coordinator's own relay sequence) or during its own chain's
    dispatch (period-starting, ordered by the busy-period root, a
    delivery sort key) — and the coordinator's :class:`WireMerge`
    interleaves calendars inside each tie group from those ranks while
    never reordering records of one calendar (DESIGN.md section 10).
    The sharded golden leg re-validates the rules against all 21 quick
    snapshots under a server-split plan.

    Asking for fewer than two shards or sharding a zero-latency fabric
    is a configuration error (zero lookahead admits no conservative
    window); so is a ``server_shards`` request that leaves no room for a
    client shard.
    """
    if n_shards < 2:
        raise ConfigError(
            f"--shards needs at least 2 shards, got {n_shards}"
        )
    if config.network.latency <= 0:
        raise ConfigError(
            "cannot shard a cluster with zero switch latency: the "
            "conservative lookahead equals the fabric latency, and a "
            "zero-lookahead window can never advance"
        )
    if server_shards is not None:
        if server_shards < 1:
            raise ConfigError(
                f"--server-shards needs at least 1, got {server_shards}"
            )
        if server_shards >= n_shards:
            raise ConfigError(
                f"--server-shards {server_shards} leaves no client shard "
                f"out of --shards {n_shards}; need server-shards < shards"
            )
        n_server_shards = min(server_shards, config.n_servers)
        n_client_shards = min(n_shards - n_server_shards, config.n_clients)
    else:
        n_shards = min(n_shards, config.n_clients + config.n_servers)
        # Clients first (they carry the per-segment interrupt work the
        # shard cut targets), overflow into server shards.
        n_client_shards = min(max(1, n_shards - 1), config.n_clients)
        n_server_shards = min(n_shards - n_client_shards, config.n_servers)
    return ShardPlan(
        lookahead=config.network.latency,
        client_groups=_split(config.n_clients, n_client_shards),
        server_groups=_split(config.n_servers, n_server_shards),
    )


def shard_block_reason(
    config: ClusterConfig, spans: object | None = None
) -> str | None:
    """Why this run must stay on a single calendar, or None if shardable.

    Sharding degrades gracefully: an ineligible run silently falls back
    to the single-calendar path (which is always byte-identical anyway),
    so ``--shards`` composes with every other flag.
    """
    if os.environ.get(NO_SHARDS_ENV):
        return f"{NO_SHARDS_ENV} is set"
    if spans is not None:
        return "causal span tracing records cross-shard parent/child links"
    if config.trace:
        return "the per-strip lifecycle tracer is single-calendar"
    if config.faults is not None and not config.faults.is_null:
        return "fault plans need the resource-based wire path"
    if not fast_wire_enabled():
        return "REPRO_NO_WIRE_FASTPATH forces the single-calendar slow path"
    if config.network.latency <= 0:
        return "zero switch latency means zero conservative lookahead"
    return None


def _int_env(env: str, floor: int) -> int:
    """Parse an integer shard request from ``env``; 0 when unset, below
    ``floor``, or malformed.  A malformed value gets one stderr line —
    silently running single-calendar after a typo'd ``REPRO_SHARDS=tow``
    would be indistinguishable from an eligible sharded run."""
    raw = os.environ.get(env, "")
    if not raw:
        return 0
    try:
        n = int(raw)
    except ValueError:
        print(
            f"warning: ignoring malformed {env}={raw!r} (expected an "
            "integer); falling back to the unsharded default",
            file=sys.stderr,
        )
        return 0
    return n if n >= floor else 0


def shards_requested() -> int:
    """The ambient ``REPRO_SHARDS`` request; 0 when unset or malformed."""
    return _int_env(SHARDS_ENV, 2)


def server_shards_requested() -> int | None:
    """The ambient ``REPRO_SERVER_SHARDS`` request; None means auto-split."""
    n = _int_env(SERVER_SHARDS_ENV, 1)
    return n if n else None


def rounds_trace_requested() -> str | None:
    """The ambient ``--trace-rounds`` output path; None when unset."""
    return os.environ.get(ROUNDS_ENV) or None


def transport_requested() -> str:
    """The shard transport to use: the env override, else CPU-count auto.

    ``REPRO_SHARD_TRANSPORT=inproc|mp`` forces a transport.  Unset, the
    default is ``mp`` on a multi-core host and ``inproc`` on a single
    core, where worker processes cannot run concurrently and their pipe
    round-trips would tax every conservative window for nothing.  Both
    transports produce byte-identical results.
    """
    name = os.environ.get(TRANSPORT_ENV, "")
    if name in ("inproc", "mp"):
        return name
    try:
        n_cpus = os.cpu_count() or 1
    except Exception:  # pragma: no cover - platform oddity
        n_cpus = 1
    return "mp" if n_cpus > 1 else "inproc"
