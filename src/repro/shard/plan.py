"""Domain assignment and eligibility for sharded single-run simulation.

A shard plan partitions one cluster into weakly-coupled *domains*: every
client node (cores, caches, NIC, softirq daemons, PFS client) lives in
exactly one client shard, every I/O server (disk, page cache, uplink) in
exactly one server shard.  The switch fabric belongs to no shard — it is
the boundary, replayed by the coordinator at each conservative barrier
(see :mod:`repro.shard.coordinator`).

The lookahead of the conservative protocol is the switch ingress->egress
latency: no message can cross the boundary and take effect sooner than
one fabric traversal, so a shard that has processed everything below the
global lower-bound-on-timestamp ``B`` may safely advance to ``B + L``.
A zero-latency fabric has zero lookahead and cannot be sharded.
"""

from __future__ import annotations

import dataclasses
import os

from ..config import ClusterConfig
from ..errors import ConfigError
from ..net.fastpath import fast_wire_enabled

__all__ = [
    "ShardPlan",
    "plan_shards",
    "shard_block_reason",
    "shards_requested",
    "transport_requested",
]

#: Ambient request for sharded runs, set by ``--shards N`` and inherited
#: by ``--jobs`` worker processes (so the two compose with no plumbing).
SHARDS_ENV = "REPRO_SHARDS"
#: Escape hatch: force single-calendar runs even when REPRO_SHARDS is set.
NO_SHARDS_ENV = "REPRO_NO_SHARDS"
#: Transport override: ``mp`` (multiprocessing workers) or ``inproc``
#: (coordinator drives every shard in-process; used by tests and as the
#: automatic fallback wherever workers cannot be spawned).  Unset, the
#: transport is picked by CPU count: worker processes on a single-core
#: host only add IPC latency to every conservative window.
TRANSPORT_ENV = "REPRO_SHARD_TRANSPORT"


@dataclasses.dataclass(frozen=True)
class ShardPlan:
    """One partition of a cluster into per-domain event calendars."""

    #: Conservative lookahead in seconds (= the switch latency).
    lookahead: float
    #: Client node indices per client shard (contiguous, in order).
    client_groups: tuple[tuple[int, ...], ...]
    #: Server indices per server shard (contiguous, in order).
    server_groups: tuple[tuple[int, ...], ...]

    @property
    def n_shards(self) -> int:
        return len(self.client_groups) + len(self.server_groups)


def _split(n_items: int, n_groups: int) -> tuple[tuple[int, ...], ...]:
    """Contiguous near-even split of ``range(n_items)`` into ``n_groups``."""
    base, extra = divmod(n_items, n_groups)
    groups: list[tuple[int, ...]] = []
    start = 0
    for g in range(n_groups):
        size = base + (1 if g < extra else 0)
        groups.append(tuple(range(start, start + size)))
        start += size
    return tuple(groups)


def plan_shards(config: ClusterConfig, n_shards: int) -> ShardPlan:
    """Partition ``config``'s cluster into ``n_shards`` domains.

    Clients are spread over ``n_shards - 1`` shards; the server domain
    always shares **one** calendar.  That asymmetry is what makes the
    byte-identity guarantee robust: same-instant uplink departures from
    different *servers* are ordered by the single calendar's event ids,
    whose order traces through an unbounded history of insertion instants
    (disk starts, cache hits, wire grants) — reproducible across
    calendars only by keeping those servers *on the same calendar*, where
    dispatch order is event-id order by construction.  Client nodes need
    no such care: they are homogeneous IOR instances whose same-instant
    handoffs are symmetric, so the (client, strip) key orders them
    exactly (DESIGN.md section 10).  With ``--shards 2`` this is the
    natural cut: all clients on one calendar, all servers on the other.
    ``n_shards`` is clamped to ``n_clients + 1``; asking for fewer than
    two shards or sharding a zero-latency fabric is a configuration
    error (zero lookahead admits no conservative window).
    """
    if n_shards < 2:
        raise ConfigError(
            f"--shards needs at least 2 shards, got {n_shards}"
        )
    if config.network.latency <= 0:
        raise ConfigError(
            "cannot shard a cluster with zero switch latency: the "
            "conservative lookahead equals the fabric latency, and a "
            "zero-lookahead window can never advance"
        )
    n_shards = min(n_shards, config.n_clients + 1)
    n_client_shards = max(1, n_shards - 1)
    return ShardPlan(
        lookahead=config.network.latency,
        client_groups=_split(config.n_clients, n_client_shards),
        server_groups=(tuple(range(config.n_servers)),),
    )


def shard_block_reason(
    config: ClusterConfig, spans: object | None = None
) -> str | None:
    """Why this run must stay on a single calendar, or None if shardable.

    Sharding degrades gracefully: an ineligible run silently falls back
    to the single-calendar path (which is always byte-identical anyway),
    so ``--shards`` composes with every other flag.
    """
    if os.environ.get(NO_SHARDS_ENV):
        return f"{NO_SHARDS_ENV} is set"
    if spans is not None:
        return "causal span tracing records cross-shard parent/child links"
    if config.trace:
        return "the per-strip lifecycle tracer is single-calendar"
    if config.faults is not None and not config.faults.is_null:
        return "fault plans need the resource-based wire path"
    if not fast_wire_enabled():
        return "REPRO_NO_WIRE_FASTPATH forces the single-calendar slow path"
    if config.network.latency <= 0:
        return "zero switch latency means zero conservative lookahead"
    return None


def shards_requested() -> int:
    """The ambient ``REPRO_SHARDS`` request; 0 when unset or malformed."""
    raw = os.environ.get(SHARDS_ENV, "")
    try:
        n = int(raw)
    except ValueError:
        return 0
    return n if n >= 2 else 0


def transport_requested() -> str:
    """The shard transport to use: the env override, else CPU-count auto.

    ``REPRO_SHARD_TRANSPORT=inproc|mp`` forces a transport.  Unset, the
    default is ``mp`` on a multi-core host and ``inproc`` on a single
    core, where worker processes cannot run concurrently and their pipe
    round-trips would tax every conservative window for nothing.  Both
    transports produce byte-identical results.
    """
    name = os.environ.get(TRANSPORT_ENV, "")
    if name in ("inproc", "mp"):
        return name
    try:
        n_cpus = os.cpu_count() or 1
    except Exception:  # pragma: no cover - platform oddity
        n_cpus = 1
    return "mp" if n_cpus > 1 else "inproc"
