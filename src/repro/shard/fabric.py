"""The coordinator-resident switch fabric.

In a sharded run the switch backplane cannot live inside any shard: every
shard's wire traffic shares it, so per-shard copies would drift.  Instead
the coordinator replays :meth:`repro.net.switch.Switch.relay`'s FIFO
recurrence over *all* shards' uplink departures, merged into global
departure order, once per conservative window::

    depart = max(free, arrival) + size / backplane_bandwidth;  free = depart

This is safe precisely because of the lookahead argument (DESIGN.md
section 10): every handoff generated inside window ``[B, B + L)`` has a
true departure ``a`` in that window, so its fabric output takes effect at
``depart + L >= a + L >= B + L`` — never inside any window a shard has
already run.  And it is *exact* because the single-calendar fast path
also applies the recurrence in global uplink-departure order; replaying
the same arithmetic on the same floats in the same order yields the same
bits.
"""

from __future__ import annotations

__all__ = ["FabricRelay"]


class FabricRelay:
    """The analytic backplane FIFO, detached from any event calendar."""

    def __init__(self, backplane_bandwidth: float) -> None:
        if backplane_bandwidth <= 0:
            raise ValueError(
                f"backplane_bandwidth must be positive, got {backplane_bandwidth}"
            )
        self.backplane_bandwidth = backplane_bandwidth
        #: Next-free instant of the backplane (identical arithmetic to
        #: ``Switch._fabric_free`` — same operands, same order).
        self.free = 0.0
        self.bytes_switched = 0
        self.packets_switched = 0

    def relay(self, nbytes: int, arrival: float) -> float:
        """Carry ``nbytes`` arriving at ``arrival`` across the backplane.

        Byte-for-byte the arithmetic of :meth:`Switch.relay`, with the
        explicit ``arrival`` standing in for ``env.now`` (the coordinator
        has no clock; the caller passes the handoff's true departure).
        """
        start = self.free
        if start < arrival:
            start = arrival
        departure = start + nbytes / self.backplane_bandwidth
        self.free = departure
        self.bytes_switched += nbytes
        self.packets_switched += 1
        return departure
