"""The coordinator-resident switch fabric.

In a sharded run the switch backplane cannot live inside any shard: every
shard's wire traffic shares it, so per-shard copies would drift.  Instead
the coordinator replays :meth:`repro.net.switch.Switch.relay`'s FIFO
recurrence over *all* shards' uplink departures, merged into global
departure order, once per conservative window::

    depart = max(free, arrival) + size / backplane_bandwidth;  free = depart

This is safe precisely because of the lookahead argument (DESIGN.md
section 10): every handoff generated inside window ``[B, B + L)`` has a
true departure ``a`` in that window, so its fabric output takes effect at
``depart + L >= a + L >= B + L`` — never inside any window a shard has
already run.  And it is *exact* because the single-calendar fast path
also applies the recurrence in global uplink-departure order; replaying
the same arithmetic on the same floats in the same order yields the same
bits.
"""

from __future__ import annotations

__all__ = ["FabricRelay", "WireMerge", "delivery_key", "merge_key"]


def _wire_root(rec: tuple) -> tuple:
    """The busy-period root a wire record's rank carries (either kind)."""
    rank = rec[4]
    return rank[1] if rank[0] == "r" else rank[2]


def merge_key(rec: tuple) -> tuple:
    """First-pass global FIFO order of uplink departures entering the
    fabric: ``(departure, grant, kind, ...)``.

    The single calendar processes same-instant departures in event-id
    order, which traces through an unbounded history of insertion
    instants.  The plan makes that order reproducible without replaying
    the history (DESIGN.md section 10):

    * ``wire`` records (server data/acks) carry **no** tie-break term
      here: a stable sort leaves every (departure, grant) tie group in
      outbox order, which within one server calendar already *is* the
      single calendar's dispatch order.  Interleaving ties across
      calendars is :class:`WireMerge`'s job, using the rank each record
      carries.
    * ``write`` records come from client shards; clients are homogeneous
      IOR instances whose same-instant write departures are symmetric,
      and the single calendar's event-id order for them is issue order —
      ``(client, strip id)``.

    The grant instant separates most cross-kind ties (the serialization
    timeouts' event ids were assigned at wire-grant time); a residual
    exact tie between a ``wire`` and a ``write`` record orders data
    before write strips.
    """
    tag, departure, grant = rec[0], rec[1], rec[2]
    if tag == "wire":  # data/ack packet out of a server shard
        return (departure, grant, 0)
    # "write": a write strip out of a client shard
    payload = rec[3]
    return (departure, grant, 1, payload.client, payload.strip_id)


class WireMerge:
    """Stateful cross-calendar merge of uplink departures.

    Within one server calendar, same-instant departures already dispatch
    in the single calendar's order — that is the byte-identity invariant
    each shard maintains locally — so their outbox order is ground truth
    and must never be disturbed.  The only open question is how to
    *interleave* calendars inside a (departure, grant) tie group, and
    the answer depends on where each departure's event id was assigned
    (the rank its record carries, see
    :class:`~repro.net.fastpath.ShardWirePort`):

    * a period-**continuing** departure's id was assigned during the
      dispatch of the previous departure on its own uplink (the wire
      resource hands over inside that dispatch cascade), so two
      continuations order exactly as the single calendar dispatched
      those previous departures — which is this merge's own output
      order, one step earlier.  The coordinator numbers every relayed
      wire record and compares each uplink's previous relay position.
    * a period-**starting** departure's id was assigned during its own
      chain's dispatch, and period-starting chains dispatch in chain
      creation order — the busy-period root (a delivery sort key).
      Root order also covers the mixed starting/continuing comparison,
      where a continuation stands in for its whole busy period.

    Each tie group is resolved as a k-way merge of the per-calendar
    runs: local order is preserved unconditionally, and the rank rules
    decide only which calendar contributes next.  The sharded golden
    leg and the fan-in equivalence tests validate the result against
    the single calendar.
    """

    __slots__ = ("_seq", "_last")

    def __init__(self) -> None:
        self._seq = 0
        #: Per-uplink (server index) relay position of the last departure.
        self._last: dict[int, int] = {}

    def _before(self, a: tuple, b: tuple) -> bool:
        """Does record ``a`` dispatch before ``b`` inside a tie group?"""
        rank_a, rank_b = a[4], b[4]
        if rank_a[0] == "d" and rank_b[0] == "d":
            last = self._last
            return last[a[3].src_server] < last[b[3].src_server]
        return _wire_root(a) < _wire_root(b)

    def _resolve(self, group: list) -> list:
        """Interleave one tie group's per-calendar runs (k-way merge)."""
        runs: dict[int, list] = {}
        for rec, sid in group:
            runs.setdefault(sid, []).append(rec)
        if len(runs) == 1:
            return [rec for rec, _sid in group]
        heads = list(runs.values())
        out: list = []
        while heads:
            best = 0
            for k in range(1, len(heads)):
                if self._before(heads[k][0], heads[best][0]):
                    best = k
            run = heads[best]
            out.append(run.pop(0))
            if not run:
                heads.pop(best)
        return out

    def order(self, tagged: list) -> list:
        """One round's fabric inputs, as ``(record, shard id)`` pairs, in
        global relay order.  Returns the bare records."""
        tagged.sort(key=lambda pair: merge_key(pair[0]))
        last = self._last
        out: list = []
        n = len(tagged)
        i = 0
        while i < n:
            rec = tagged[i][0]
            j = i + 1
            if rec[0] == "wire":
                dep, grant = rec[1], rec[2]
                while (
                    j < n
                    and tagged[j][0][0] == "wire"
                    and tagged[j][0][1] == dep
                    and tagged[j][0][2] == grant
                ):
                    j += 1
                if j - i > 1:
                    group = self._resolve(tagged[i:j])
                else:
                    group = [rec]
                for g in group:
                    last[g[3].src_server] = self._seq
                    self._seq += 1
                    out.append(g)
            else:
                out.append(rec)
            i = j
        return out


def delivery_key(rec: tuple) -> tuple:
    """Insertion order of same-round deliveries into one shard's calendar."""
    kind, gen, when, payload = rec
    client = payload.dst_client if kind == "rx" else payload.client
    strip = payload.strip_id
    segment = payload.segment if kind == "rx" else 0
    return (when, gen, client, strip, segment)


class FabricRelay:
    """The analytic backplane FIFO, detached from any event calendar."""

    def __init__(self, backplane_bandwidth: float) -> None:
        if backplane_bandwidth <= 0:
            raise ValueError(
                f"backplane_bandwidth must be positive, got {backplane_bandwidth}"
            )
        self.backplane_bandwidth = backplane_bandwidth
        #: Next-free instant of the backplane (identical arithmetic to
        #: ``Switch._fabric_free`` — same operands, same order).
        self.free = 0.0
        self.bytes_switched = 0
        self.packets_switched = 0

    def relay(self, nbytes: int, arrival: float) -> float:
        """Carry ``nbytes`` arriving at ``arrival`` across the backplane.

        Byte-for-byte the arithmetic of :meth:`Switch.relay`, with the
        explicit ``arrival`` standing in for ``env.now`` (the coordinator
        has no clock; the caller passes the handoff's true departure).
        """
        start = self.free
        if start < arrival:
            start = arrival
        departure = start + nbytes / self.backplane_bandwidth
        self.free = departure
        self.bytes_switched += nbytes
        self.packets_switched += 1
        return departure
