"""Shard transports: who executes a shard's windows, and where.

``inproc``
    The coordinator constructs every runtime in its own process and
    drives them through one :class:`~repro.shard.scheduler.WindowExecutor`.
    Used by the equivalence tests (bit-identical by construction, zero
    spawn cost) and as the automatic fallback when worker processes
    cannot be spawned.

``mp``
    A pool of ``multiprocessing`` workers, each hosting one *or more*
    shard runtimes and speaking the windowed protocol over a duplex
    pipe.  The coordinator posts each round's ready windows to every
    worker before collecting any reply, so windows execute concurrently
    across workers; a worker hosting several runtimes (more shards than
    cores) runs its batch through its own embedded ``WindowExecutor``,
    so colocated calendars share the worker via the same work-stealing
    discipline the coordinator uses in-process.

Both transports run the identical runtime code in the identical window
order, so they produce identical bytes; only wall-clock differs.  Shard
ids are positions in the plan's spec list (client groups first, then
server groups), and every handle answers for the set of ids it hosts.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import typing as t

from ..config import ClusterConfig
from ..errors import SimulationError
from .plan import ShardPlan
from .runtime import build_runtime
from .scheduler import WindowExecutor, workers_requested

__all__ = ["start_shards"]


class _InprocHandle:
    """Synchronous handle: every runtime lives in the coordinator process."""

    def __init__(
        self,
        config: ClusterConfig,
        specs: list[tuple[int, str, tuple[int, ...]]],
    ) -> None:
        self.shards = tuple(sid for sid, _kind, _indices in specs)
        self._executor = WindowExecutor(
            {
                sid: build_runtime(config, kind, indices)
                for sid, kind, indices in specs
            }
        )
        self._reply: t.Any = None

    def initial_peeks(self) -> dict[int, float]:
        return {
            sid: runtime.initial_peek()
            for sid, runtime in self._executor.runtimes.items()
        }

    def post_advance(self, tasks: list[tuple[int, float, list]]) -> None:
        self._reply = (self._executor.run_round(tasks), self._executor.steals)
        self._executor.steals = 0

    def post_finalize(self, t_end: float) -> None:
        self._reply = (self._executor.finalize(t_end), 0)

    def recv(self) -> t.Any:
        reply, self._reply = self._reply, None
        return reply

    def close(self) -> None:
        pass


def _worker_main(
    conn: t.Any,
    config: ClusterConfig,
    specs: list[tuple[int, str, tuple[int, ...]]],
    n_threads: int,
) -> None:
    """Worker loop: build this worker's runtimes, then serve windows."""
    try:
        executor = WindowExecutor(
            {
                sid: build_runtime(config, kind, indices)
                for sid, kind, indices in specs
            },
            n_workers=n_threads,
        )
        conn.send(
            (
                "ok",
                {
                    sid: runtime.initial_peek()
                    for sid, runtime in executor.runtimes.items()
                },
            )
        )
        while True:
            msg = conn.recv()
            cmd = msg[0]
            if cmd == "advance":
                replies = executor.run_round(msg[1])
                steals, executor.steals = executor.steals, 0
                conn.send(("ok", (replies, steals)))
            elif cmd == "finalize":
                conn.send(("ok", (executor.finalize(msg[1]), 0)))
            elif cmd == "stop":
                break
    except EOFError:  # coordinator died; nothing to report to
        pass
    except BaseException as exc:  # noqa: BLE001 - forwarded to coordinator
        import traceback

        try:
            conn.send(("error", f"{exc!r}\n{traceback.format_exc()}"))
        except (BrokenPipeError, OSError):
            pass
    finally:
        conn.close()


class _MpHandle:
    """One worker process hosting a group of runtimes over a duplex pipe."""

    def __init__(
        self,
        ctx: t.Any,
        config: ClusterConfig,
        specs: list[tuple[int, str, tuple[int, ...]]],
        n_threads: int,
    ) -> None:
        self.shards = tuple(sid for sid, _kind, _indices in specs)
        self._conn, child = ctx.Pipe(duplex=True)
        self._proc = ctx.Process(
            target=_worker_main,
            args=(child, config, specs, n_threads),
            daemon=True,
        )
        self._proc.start()
        child.close()

    def initial_peeks(self) -> dict[int, float]:
        return self._recv_raw()

    def _recv_raw(self) -> t.Any:
        try:
            tag, payload = self._conn.recv()
        except EOFError:
            raise SimulationError(
                f"shard worker (shards {self.shards}) exited without a reply"
            ) from None
        if tag == "error":
            raise SimulationError(
                f"shard worker (shards {self.shards}) failed:\n{payload}"
            )
        return payload

    def post_advance(self, tasks: list[tuple[int, float, list]]) -> None:
        self._conn.send(("advance", tasks))

    def post_finalize(self, t_end: float) -> None:
        self._conn.send(("finalize", t_end))

    def recv(self) -> t.Any:
        return self._recv_raw()

    def close(self) -> None:
        try:
            self._conn.send(("stop",))
        except (BrokenPipeError, OSError):
            pass
        self._conn.close()
        self._proc.join(timeout=5.0)
        if self._proc.is_alive():  # pragma: no cover - defensive
            self._proc.terminate()
            self._proc.join(timeout=5.0)


def _specs(plan: ShardPlan) -> list[tuple[int, str, tuple[int, ...]]]:
    specs: list[tuple[int, str, tuple[int, ...]]] = []
    for group in plan.client_groups:
        specs.append((len(specs), "client", group))
    for group in plan.server_groups:
        specs.append((len(specs), "server", group))
    return specs


def _partition(
    specs: list[tuple[int, str, tuple[int, ...]]], n_workers: int
) -> list[list[tuple[int, str, tuple[int, ...]]]]:
    """LPT split of shard specs over ``n_workers`` worker processes."""
    n_workers = max(1, min(n_workers, len(specs)))
    groups: list[list[tuple[int, str, tuple[int, ...]]]] = [
        [] for _ in range(n_workers)
    ]
    loads = [0] * n_workers
    for spec in sorted(specs, key=lambda s: (-len(s[2]), s[0])):
        worker = min(range(n_workers), key=lambda w: (loads[w], w))
        groups[worker].append(spec)
        loads[worker] += len(spec[2]) or 1
    return [sorted(group) for group in groups if group]


def start_shards(
    config: ClusterConfig, plan: ShardPlan, transport: str
) -> tuple[list[t.Any], list[float]]:
    """Start every shard on ``transport``; returns (handles, initial peeks).

    Peeks are indexed by shard id.  A failure to spawn workers
    (restricted environments) falls back to the in-process transport
    rather than failing the run — the bytes are the same either way.
    """
    specs = _specs(plan)
    handles: list[t.Any] = []
    if transport == "mp":
        n_workers = workers_requested() or (os.cpu_count() or 1)
        try:
            ctx = mp.get_context()
            parts = _partition(specs, n_workers)
            # Colocated runtimes get one thread each up to the worker's
            # fair share of cores; a worker hosting one runtime needs none.
            for part in parts:
                handles.append(_MpHandle(ctx, config, part, len(part)))
        except (OSError, ValueError):
            handles = []  # fall through to inproc
    if not handles:
        handles = [_InprocHandle(config, specs)]
    peeks = [0.0] * len(specs)
    for handle in handles:
        for sid, peek in handle.initial_peeks().items():
            peeks[sid] = peek
    return handles, peeks
