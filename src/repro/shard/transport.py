"""Shard transports: who executes a shard's windows, and where.

``inproc``
    The coordinator constructs every runtime in its own process and
    drives them synchronously.  No parallelism — used by the equivalence
    tests (bit-identical by construction, zero spawn cost) and as the
    automatic fallback when worker processes cannot be spawned.

``mp``
    One ``multiprocessing`` worker per shard, speaking the windowed
    protocol over a duplex pipe.  The coordinator posts ``advance`` to
    every worker before collecting any reply, so shard windows execute
    concurrently; the per-round synchronization cost is one pipe
    round-trip, amortized over every event in the window.

Both transports run the identical runtime code, so they produce the
identical bytes; only wall-clock differs.
"""

from __future__ import annotations

import multiprocessing as mp
import typing as t

from ..config import ClusterConfig
from ..errors import SimulationError
from .plan import ShardPlan
from .runtime import build_runtime

__all__ = ["start_shards"]


class _InprocHandle:
    """Synchronous handle: the runtime lives in the coordinator process."""

    def __init__(self, runtime: t.Any) -> None:
        self.runtime = runtime
        self.kind = runtime.kind
        self._reply: t.Any = None

    def initial_peek(self) -> float:
        return self.runtime.initial_peek()

    def post_advance(self, bound: float, deliveries: list) -> None:
        self._reply = self.runtime.advance(bound, deliveries)

    def post_finalize(self, t_end: float) -> None:
        self._reply = self.runtime.finalize(t_end)

    def recv(self) -> t.Any:
        reply, self._reply = self._reply, None
        return reply

    def close(self) -> None:
        pass


def _worker_main(
    conn: t.Any, config: ClusterConfig, kind: str, indices: tuple[int, ...]
) -> None:
    """Worker loop: build the runtime, then serve windowed commands."""
    try:
        runtime = build_runtime(config, kind, indices)
        conn.send(("ok", runtime.initial_peek()))
        while True:
            msg = conn.recv()
            cmd = msg[0]
            if cmd == "advance":
                conn.send(("ok", runtime.advance(msg[1], msg[2])))
            elif cmd == "finalize":
                conn.send(("ok", runtime.finalize(msg[1])))
            elif cmd == "stop":
                break
    except EOFError:  # coordinator died; nothing to report to
        pass
    except BaseException as exc:  # noqa: BLE001 - forwarded to coordinator
        import traceback

        try:
            conn.send(("error", f"{exc!r}\n{traceback.format_exc()}"))
        except (BrokenPipeError, OSError):
            pass
    finally:
        conn.close()


class _MpHandle:
    """One worker process driven over a duplex pipe."""

    def __init__(
        self,
        ctx: t.Any,
        config: ClusterConfig,
        kind: str,
        indices: tuple[int, ...],
    ) -> None:
        self.kind = kind
        self._conn, child = ctx.Pipe(duplex=True)
        self._proc = ctx.Process(
            target=_worker_main,
            args=(child, config, kind, indices),
            daemon=True,
        )
        self._proc.start()
        child.close()

    def initial_peek(self) -> float:
        return self.recv()

    def post_advance(self, bound: float, deliveries: list) -> None:
        self._conn.send(("advance", bound, deliveries))

    def post_finalize(self, t_end: float) -> None:
        self._conn.send(("finalize", t_end))

    def recv(self) -> t.Any:
        try:
            tag, payload = self._conn.recv()
        except EOFError:
            raise SimulationError(
                f"shard worker ({self.kind}) exited without a reply"
            ) from None
        if tag == "error":
            raise SimulationError(f"shard worker ({self.kind}) failed:\n{payload}")
        return payload

    def close(self) -> None:
        try:
            self._conn.send(("stop",))
        except (BrokenPipeError, OSError):
            pass
        self._conn.close()
        self._proc.join(timeout=5.0)
        if self._proc.is_alive():  # pragma: no cover - defensive
            self._proc.terminate()
            self._proc.join(timeout=5.0)


def _specs(plan: ShardPlan) -> list[tuple[str, tuple[int, ...]]]:
    return [("client", group) for group in plan.client_groups] + [
        ("server", group) for group in plan.server_groups
    ]


def start_shards(
    config: ClusterConfig, plan: ShardPlan, transport: str
) -> tuple[list[t.Any], list[float]]:
    """Start every shard on ``transport``; returns (handles, initial peeks).

    A failure to spawn workers (restricted environments) falls back to
    the in-process transport rather than failing the run — the bytes are
    the same either way.
    """
    if transport == "mp":
        try:
            ctx = mp.get_context()
            handles: list[t.Any] = [
                _MpHandle(ctx, config, kind, indices)
                for kind, indices in _specs(plan)
            ]
            return handles, [handle.initial_peek() for handle in handles]
        except (OSError, ValueError):
            pass  # fall through to inproc
    handles = [
        _InprocHandle(build_runtime(config, kind, indices))
        for kind, indices in _specs(plan)
    ]
    return handles, [handle.initial_peek() for handle in handles]
