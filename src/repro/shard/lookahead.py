"""Per-shard-pair lookahead bounds for the conservative window protocol.

PR 5's coordinator used the weakest safe bound — one fabric traversal:
``bound = LBTS + latency`` with LBTS the global minimum over shard peeks
and in-flight message times.  That is correct but pessimistic in two
ways this module repairs:

1. **Direction matters.**  A client shard's next event can reach a
   server shard after one fabric latency (a read request spawns
   ``serve`` at exactly ``t_issue + latency``).  But a *server* shard's
   next event cannot touch a client shard that fast: every
   server-to-client message is a packet that must serialize through the
   switch backplane **and** the client NIC wire before its first
   calendar event (``complete_rx``) exists.  The per-pair lookahead is
   therefore ``latency`` on client->server edges and
   ``latency + wire_floor`` on server->client edges, where
   ``wire_floor`` is the backplane + NIC wire time of the smallest
   packet the fabric can carry.  Same-kind pairs (client->client,
   server->server) only interact through a shard of the other kind, so
   their lookahead is the two-hop sum — never the binding term, but it
   is what makes a pure one-kind LBTS safe.

2. **In-flight messages bound by *effect*, not by generation.**  A
   delivered-but-unprocessed server->client packet's first calendar
   event is ``complete_rx`` at ``max(nic_free, arrival) + wire_time``,
   never ``arrival`` itself; counting it at ``arrival + size/bandwidth``
   (a strict lower bound on its NIC wire time) widens every window that
   is currently limited by packets already in flight — the common state
   of a fan-in read.

Both refinements feed one *global* round bound::

    bound = min over shards j of  T_j + outgoing_lookahead(kind_j)
    T_j   = min(peek_j, effect_lower of every pending message to j)

A single global bound (rather than per-shard windows) is what keeps the
byte-identity machinery of DESIGN.md section 10 untouched: every shard
shares the same horizon each round, so cross-round ties remain
impossible, fabric handoffs stay globally monotone across rounds, and
deliveries never straddle a tie.  The widening shows up directly as
fewer ``rounds`` in the bench payload (BENCH_serversharded.json).

Safety of the ``wire_floor`` term: a server output generated at ``g``
reaches a client calendar at
``fabric_departure + latency + nic_wire >= g + size/backplane + latency
+ size/nic >= g + latency + wire_floor`` because ``wire_floor`` uses the
*minimum* packet size and the raw (framing-free) rates.  Influence
through shared resources (one request delaying another on a disk or
uplink queue) can only push events later, and the influenced departure
itself happens no earlier than the influencing instant, so the same
bound covers it.
"""

from __future__ import annotations

import typing as t

from ..config import ClusterConfig
from .plan import ShardPlan

__all__ = ["LookaheadBounds", "MIN_WIRE_PACKET"]

INF = float("inf")

#: Smallest packet the lookahead floor assumes can cross the fabric.
#: Write acknowledgements are 1024 bytes (``IoServer.ACK_SIZE``); read
#: data segments are MSS-sized except for arbitrarily small tail
#: extents, so the universally safe floor is one byte.  The floor only
#: shapes the static matrix — in-flight messages use their true sizes.
MIN_WIRE_PACKET = 1


class LookaheadBounds:
    """The per-shard-pair lookahead matrix, folded per source kind."""

    def __init__(self, config: ClusterConfig, plan: ShardPlan) -> None:
        lam = plan.lookahead
        self.latency = lam
        #: Raw per-byte rates (no framing overhead: overhead only adds
        #: time, so omitting it keeps every bound a true lower bound).
        self._nic_rate = config.client.nic_bandwidth
        backplane = config.network.switch_bandwidth
        self.wire_floor = MIN_WIRE_PACKET * (
            1.0 / backplane + 1.0 / self._nic_rate
        )
        # Folded outgoing lookahead per source kind: the tightest edge
        # leaving a shard of that kind.  Client shards reach servers in
        # one bare latency; server shards cannot touch anyone without a
        # backplane + NIC traversal on top.
        self._out = {
            "client": lam,
            "server": lam + self.wire_floor,
        }
        self.kinds: tuple[str, ...] = tuple(
            ["client"] * plan.n_client_shards
            + ["server"] * plan.n_server_shards
        )

    def effect_lower(self, rec: tuple) -> float:
        """Earliest calendar event a pending delivery can create.

        ``serve`` and ``serve_write`` deliveries spawn a process at
        exactly their recorded instant; an ``rx`` delivery's first event
        is ``complete_rx``, at least one NIC wire time after arrival.
        """
        kind = rec[0]
        when = rec[2]
        if kind == "rx":
            return when + rec[3].size / self._nic_rate
        return when

    def round_bound(
        self, peeks: t.Sequence[float], pending: t.Sequence[t.Sequence[tuple]]
    ) -> tuple[float, float]:
        """The global window bound for one round, and its LBTS.

        Returns ``(lbts, bound)``: ``lbts`` is the classic global lower
        bound on any future event (used for deadlock detection and the
        end-of-run check); ``bound`` folds each shard's outgoing
        lookahead into it and is never below ``lbts + latency`` — the
        PR 5 bound — because every outgoing edge is at least ``latency``
        wide.
        """
        lbts = INF
        bound = INF
        for j, kind in enumerate(self.kinds):
            t_j = peeks[j]
            for rec in pending[j]:
                eff = self.effect_lower(rec)
                if eff < t_j:
                    t_j = eff
            if t_j < lbts:
                lbts = t_j
            b_j = t_j + self._out[kind]
            if b_j < bound:
                bound = b_j
        return lbts, bound
