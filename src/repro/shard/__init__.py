"""Sharded event calendars: multi-process simulation of one large run.

``repro.runner --jobs`` parallelizes *across* experiment points; this
package parallelizes *within* one run.  The cluster is partitioned into
weakly-coupled domains — client nodes in client shards, I/O servers in
server shards — each advancing its own :class:`~repro.des.Environment`
window by window under a conservative-lookahead protocol whose lookahead
is the switch ingress->egress latency.  The switch fabric itself is the
shard boundary, replayed by the coordinator between windows
(:mod:`repro.shard.fabric`).

The headline guarantee is **byte-identity**: a sharded run produces the
same metrics, the same elapsed time, and the same (corrected) event count
as the single-calendar run — pinned by re-running every quick-scale
golden snapshot under ``--shards 2`` and by the shard entries of the
bench suite.  See DESIGN.md section 10 for the safety and equivalence
argument, and docs/ARCHITECTURE.md for the module tour.

Usage: ``sais-repro run <exp> --shards 4`` (or ``repro bench`` entries
with ``shards`` set), composing freely with ``--jobs`` because the
request travels in the ``REPRO_SHARDS`` environment variable, which
worker processes inherit.  ``REPRO_NO_SHARDS=1`` is the escape hatch
that forces every run back onto a single calendar.
"""

from __future__ import annotations

import typing as t

from .coordinator import RoundRecord, ShardOutcome, ShardWindow, run_plan
from .fabric import FabricRelay
from .lookahead import LookaheadBounds
from .plan import (
    NO_SHARDS_ENV,
    ROUNDS_ENV,
    SERVER_SHARDS_ENV,
    SHARDS_ENV,
    TRANSPORT_ENV,
    ShardPlan,
    plan_shards,
    rounds_trace_requested,
    server_shards_requested,
    shard_block_reason,
    shards_requested,
    transport_requested,
)
from .runtime import ClientShardRuntime, ServerShardRuntime, build_runtime
from .scheduler import WindowExecutor, workers_requested
from .transport import start_shards

if t.TYPE_CHECKING:  # pragma: no cover - typing only
    from ..config import ClusterConfig

__all__ = [
    "ShardPlan",
    "ShardOutcome",
    "ShardWindow",
    "RoundRecord",
    "FabricRelay",
    "LookaheadBounds",
    "WindowExecutor",
    "plan_shards",
    "shard_block_reason",
    "shards_requested",
    "server_shards_requested",
    "transport_requested",
    "rounds_trace_requested",
    "workers_requested",
    "run_sharded",
    "build_runtime",
    "ClientShardRuntime",
    "ServerShardRuntime",
    "start_shards",
    "run_plan",
    "SHARDS_ENV",
    "SERVER_SHARDS_ENV",
    "NO_SHARDS_ENV",
    "TRANSPORT_ENV",
    "ROUNDS_ENV",
]


def run_sharded(
    config: "ClusterConfig",
    n_shards: int,
    transport: str | None = None,
    server_shards: int | None = None,
) -> ShardOutcome:
    """Run one cluster workload across ``n_shards`` coupled calendars.

    ``server_shards`` pins the number of server calendars in the plan
    (``--server-shards``); ``None`` reads the ambient
    ``REPRO_SERVER_SHARDS`` request, falling back to the automatic
    client-first split.  Raises :class:`~repro.errors.ConfigError` for an
    unshardable request (fewer than two shards, zero-latency fabric, no
    room for a client shard).  Callers wanting the graceful ambient path
    should consult :func:`shard_block_reason` first — this function
    assumes eligibility.
    """
    if server_shards is None:
        server_shards = server_shards_requested()
    plan = plan_shards(config, n_shards, server_shards)
    handles, peeks = start_shards(
        config, plan, transport or transport_requested()
    )
    rounds_path = rounds_trace_requested()
    try:
        outcome = run_plan(
            config,
            plan,
            handles,
            peeks,
            capture_rounds=rounds_path is not None,
        )
    finally:
        for handle in handles:
            handle.close()
    if rounds_path is not None:
        # Lazy import: obs depends on nothing in shard, but keeping the
        # exporter out of the hot path mirrors the zero-cost discipline.
        from ..obs.export import write_rounds_trace

        write_rounds_trace(
            outcome.round_log,
            plan.n_shards,
            rounds_path,
            meta={
                "policy": config.policy,
                "shards": plan.n_shards,
                "server_shards": plan.n_server_shards,
                "rounds": outcome.rounds,
                "elapsed_s": outcome.elapsed,
                "critical_path_s": outcome.critical_path_s,
            },
        )
    return outcome
