"""The conservative-lookahead coordinator for sharded single runs.

One round of the protocol (DESIGN.md section 10):

1. **Bound.**  The global window bound folds each shard's *outgoing*
   lookahead into the classic LBTS: a client shard's next event can
   reach another calendar after one fabric latency, a server shard's
   only after fabric latency plus the backplane + NIC wire time of the
   smallest possible packet, and messages already in flight count at the
   time of the first calendar event they can create, not their fabric
   arrival (:mod:`repro.shard.lookahead`).  Nothing anywhere can cross a
   shard boundary and take effect below the bound.
2. **Windows.**  Every shard with calendar work or deliveries below the
   bound dispatches its events strictly below it and returns the
   boundary handoffs that window generated: read requests leaving
   clients, uplink departures entering the fabric.  Idle shards are
   skipped entirely — no pipe round-trip, no empty window.  Hosts with
   several runtimes run their batch through the work-stealing
   :class:`~repro.shard.scheduler.WindowExecutor`.
3. **Fabric.**  The coordinator merges all handoffs into global uplink-
   departure order — ties broken exactly as the single calendar's event
   ids dispatch them: busy-period roots for period-starting server
   data/acks, previous-departure relay position for period-continuing
   ones, issue order for client write strips (see
   :class:`~repro.shard.fabric.WireMerge`) — and replays
   the switch FIFO recurrence over them.  Each output is queued for
   delivery at the start of the next round, at the exact float instant
   the single-calendar fast path computes.
4. Repeat until every client shard's workload-complete event has fired;
   the global elapsed time is the latest of those instants, exactly as
   ``run(until=AllOf(...))`` would have reported.

Event accounting: the sum of per-shard ``events_processed`` equals the
single calendar's count after two corrections — the single run dispatches
*one* workload AllOf where K client shards dispatch K, and a write run's
final window may dispatch asynchronous disk-flush tails past the global
end that the single calendar never reached (discounted via the stamp
lists the server shards return).
"""

from __future__ import annotations

import dataclasses
import typing as t

from ..config import ClusterConfig
from ..errors import SimulationError
from ..metrics.collectors import ClientMetrics
from .fabric import FabricRelay, WireMerge, delivery_key
from .lookahead import LookaheadBounds
from .plan import ShardPlan
from .runtime import INF

__all__ = ["ShardWindow", "RoundRecord", "ShardOutcome", "run_plan"]

#: Test hook: when set to a list, every wire record is appended in the
#: exact order the coordinator replays it through the fabric recurrence.
#: The equivalence tests diff this sequence against an instrumented
#: single-calendar run to localize any tie-ordering divergence.
_RELAY_LOG: list | None = None


@dataclasses.dataclass(frozen=True)
class ShardWindow:
    """One shard's window inside one round (``--trace-rounds``)."""

    sid: int
    #: Wall seconds this shard spent computing the window.
    busy_s: float
    #: Calendar events the window dispatched.
    events: int


@dataclasses.dataclass(frozen=True)
class RoundRecord:
    """One conservative round, as the coordinator drove it.

    ``windows`` holds the participating shards in ascending shard-id
    order — the exact order the coordinator folds their busy times into
    ``busy_s`` and ``critical_path_s`` — so replaying the records
    (:func:`repro.obs.analysis.recompute_projection`) reproduces the
    outcome's floats operation for operation, not just approximately.
    """

    index: int
    #: Previous round's LBTS bound (0.0 for the first round): together
    #: with ``bound`` this is the round's extent in virtual time.
    prev_bound: float
    #: This round's window bound (LBTS + lookahead).
    bound: float
    #: The raw lower bound on timestamp the bound was derived from.
    lbts: float
    #: Slowest participating shard's busy seconds — the round's
    #: contribution to the critical path.
    round_max: float
    #: Windows executed away from their home worker this round.
    steals: int
    #: Shard windows skipped this round (no work below the bound).
    skipped: int
    windows: tuple[ShardWindow, ...]


@dataclasses.dataclass(frozen=True)
class ShardOutcome:
    """Everything a sharded run produces, ready for RunMetrics assembly."""

    elapsed: float
    clients: tuple[ClientMetrics, ...]
    total_bytes: int
    #: The single-calendar-equivalent event count (see module docstring).
    model_events: int
    #: Raw sum of per-shard dispatch counts, before corrections.
    raw_events: int
    rounds: int
    fabric_bytes: int
    fabric_packets: int
    #: Wall seconds each shard spent computing windows, in shard-id order.
    busy_s: tuple[float, ...] = ()
    #: Sum over rounds of the slowest shard's window time — what the
    #: compute would cost if every shard ran on its own core.  On a
    #: single-core host this is the honest stand-in for parallel wall
    #: time (the bench records both; see ``repro.bench``).
    critical_path_s: float = 0.0
    #: Server calendars in the plan (1 = the PR 5 single-server-shard cut).
    server_shards: int = 1
    #: Windows executed away from their home worker by the work-stealing
    #: scheduler, summed over every executor in the run.
    steals: int = 0
    #: Shard windows skipped because they had no work below the bound.
    windows_skipped: int = 0
    #: Per-round records when capture was requested (``--trace-rounds``);
    #: empty otherwise — keeping them is O(rounds × shards) and off by
    #: default for the same zero-cost discipline as span tracing.
    round_log: tuple[RoundRecord, ...] = ()


def run_plan(
    config: ClusterConfig,
    plan: ShardPlan,
    handles: t.Sequence[t.Any],
    peeks: t.Sequence[float],
    capture_rounds: bool = False,
) -> ShardOutcome:
    """Drive one sharded run over started shard ``handles`` to completion.

    ``capture_rounds`` keeps a :class:`RoundRecord` per round on the
    outcome (the ``--trace-rounds`` timeline); it observes the existing
    accounting without adding any coordination, so results are identical
    either way.
    """
    lookahead = plan.lookahead
    bounds = LookaheadBounds(config, plan)
    fabric = FabricRelay(config.network.switch_bandwidth)
    merge = WireMerge()
    n_client_shards = plan.n_client_shards
    n_shards = plan.n_shards

    client_shard_of: dict[int, int] = {}
    for pos, group in enumerate(plan.client_groups):
        for c in group:
            client_shard_of[c] = pos
    server_shard_of: dict[int, int] = {}
    for pos, group in enumerate(plan.server_groups):
        for s in group:
            server_shard_of[s] = n_client_shards + pos

    peeks = list(peeks)
    pending: list[list[tuple]] = [[] for _ in range(n_shards)]
    done: dict[int, float] = {}
    last_stamps: dict[int, list[float]] = {}
    rounds = 0
    steals = 0
    windows_skipped = 0
    busy_totals = [0.0] * n_shards
    critical_path = 0.0
    round_log: list[RoundRecord] = []
    prev_bound = 0.0

    while len(done) < n_client_shards:
        lbts, bound = bounds.round_bound(peeks, pending)
        if lbts == INF:
            raise SimulationError(
                "sharded simulation deadlocked: every shard calendar is "
                "empty and no cross-shard messages are in flight, but the "
                "workload has not completed"
            )
        rounds += 1
        skipped_before = windows_skipped
        steals_before = steals
        # Ready windows: a shard participates when it holds deliveries
        # (which may carry side effects even past a client's AllOf) or
        # calendar work below the bound.  Everyone else sits the round
        # out — their peek cannot change without a delivery.
        posted: list[t.Any] = []
        for handle in handles:
            tasks: list[tuple[int, float, list]] = []
            for sid in handle.shards:
                queue = pending[sid]
                if not queue and peeks[sid] >= bound:
                    windows_skipped += 1
                    continue
                if queue:
                    queue.sort(key=delivery_key)
                    pending[sid] = []
                tasks.append((sid, bound, queue))
            if tasks:
                handle.post_advance(tasks)
                posted.append(handle)
        replies: dict[int, t.Any] = {}
        for handle in posted:
            handle_replies, handle_steals = handle.recv()
            replies.update(handle_replies)
            steals += handle_steals
        wire_inputs: list[tuple] = []
        round_max = 0.0
        windows: list[ShardWindow] = []
        for sid in sorted(replies):
            outbox, peek, done_at, stamps, busy, events = replies[sid]
            busy_totals[sid] += busy
            if busy > round_max:
                round_max = busy
            if capture_rounds:
                windows.append(
                    ShardWindow(sid=sid, busy_s=busy, events=events)
                )
            peeks[sid] = peek
            if done_at is not None and sid not in done:
                done[sid] = done_at
            if stamps is not None:
                last_stamps[sid] = stamps
            for rec in outbox:
                if rec[0] == "req":
                    # Client -> server read request: one fabric latency,
                    # no serialization (exactly builder.make_submit).
                    _tag, t_issue, request = rec
                    pending[server_shard_of[request.server]].append(
                        ("serve", t_issue, t_issue + lookahead, request)
                    )
                else:
                    wire_inputs.append((rec, sid))
        wire_inputs = merge.order(wire_inputs)
        if _RELAY_LOG is not None:
            _RELAY_LOG.extend(wire_inputs)
        for rec in wire_inputs:
            tag, departure, payload = rec[0], rec[1], rec[3]
            fabric_departure = fabric.relay(payload.size, departure)
            if tag == "wire":
                arrival = fabric_departure + lookahead
                pending[client_shard_of[payload.dst_client]].append(
                    ("rx", departure, arrival, payload)
                )
            else:
                # Replicate transmit_to_server's now + ((dep + L) - now)
                # float arithmetic bit-for-bit (it is *not* dep + L).
                start = departure + (
                    (fabric_departure + lookahead) - departure
                )
                pending[server_shard_of[payload.server]].append(
                    ("serve_write", departure, start, payload)
                )
        critical_path += round_max
        if capture_rounds:
            round_log.append(
                RoundRecord(
                    index=rounds,
                    prev_bound=prev_bound,
                    bound=bound,
                    lbts=lbts,
                    round_max=round_max,
                    steals=steals - steals_before,
                    skipped=windows_skipped - skipped_before,
                    windows=tuple(windows),
                )
            )
        prev_bound = bound

    t_end = max(done.values())
    if t_end <= 0:
        raise SimulationError("workload finished in zero simulated time")

    for handle in handles:
        handle.post_finalize(t_end)
    rows: list[tuple[int, ClientMetrics, int]] = []
    raw_events = 0
    for handle in handles:
        finals, _steals = handle.recv()
        for sid in sorted(finals):
            reply = finals[sid]
            if reply[0] == "client":
                rows.extend(reply[1])
                raw_events += reply[2]
            else:
                raw_events += reply[1]

    overrun = 0
    for sid, stamps in last_stamps.items():
        if sid >= n_client_shards:
            overrun += sum(1 for when in stamps if when > t_end)
    model_events = raw_events - (n_client_shards - 1) - overrun

    rows.sort(key=lambda row: row[0])
    clients = tuple(row[1] for row in rows)
    total_bytes = sum(row[2] for row in rows)
    return ShardOutcome(
        elapsed=t_end,
        clients=clients,
        total_bytes=total_bytes,
        model_events=model_events,
        raw_events=raw_events,
        rounds=rounds,
        fabric_bytes=fabric.bytes_switched,
        fabric_packets=fabric.packets_switched,
        busy_s=tuple(busy_totals),
        critical_path_s=critical_path,
        server_shards=plan.n_server_shards,
        steals=steals,
        windows_skipped=windows_skipped,
        round_log=tuple(round_log),
    )
