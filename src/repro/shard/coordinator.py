"""The conservative-lookahead coordinator for sharded single runs.

One round of the protocol (DESIGN.md section 10):

1. **LBTS.**  The global lower bound on any future event is the minimum
   over every shard's next local timestamp and every undelivered
   cross-shard message's effect time.  Nothing anywhere can happen
   earlier, and no cross-shard message generated from now on can take
   effect before ``LBTS + L`` (``L`` = switch latency = the lookahead).
2. **Window.**  Every shard dispatches its events strictly below
   ``LBTS + L`` and returns the boundary handoffs that window generated:
   read requests leaving clients, uplink departures entering the fabric.
3. **Fabric.**  The coordinator merges all handoffs into global uplink-
   departure order (ties broken by destination client and the client's
   own strip-issue order — the same order the single calendar's
   event ids encode) and replays the switch FIFO recurrence over them.
   Each output is queued for delivery at the start of the next round, at
   the exact float instant the single-calendar fast path computes.
4. Repeat until every client shard's workload-complete event has fired;
   the global elapsed time is the latest of those instants, exactly as
   ``run(until=AllOf(...))`` would have reported.

Event accounting: the sum of per-shard ``events_processed`` equals the
single calendar's count after two corrections — the single run dispatches
*one* workload AllOf where K client shards dispatch K, and a write run's
final window may dispatch asynchronous disk-flush tails past the global
end that the single calendar never reached (discounted via the stamp
lists the server shards return).
"""

from __future__ import annotations

import dataclasses
import typing as t

from ..config import ClusterConfig
from ..errors import SimulationError
from ..metrics.collectors import ClientMetrics
from .fabric import FabricRelay
from .plan import ShardPlan
from .runtime import INF

__all__ = ["ShardOutcome", "run_plan"]


@dataclasses.dataclass(frozen=True)
class ShardOutcome:
    """Everything a sharded run produces, ready for RunMetrics assembly."""

    elapsed: float
    clients: tuple[ClientMetrics, ...]
    total_bytes: int
    #: The single-calendar-equivalent event count (see module docstring).
    model_events: int
    #: Raw sum of per-shard dispatch counts, before corrections.
    raw_events: int
    rounds: int
    fabric_bytes: int
    fabric_packets: int
    #: Wall seconds each shard spent computing windows, in handle order.
    busy_s: tuple[float, ...] = ()
    #: Sum over rounds of the slowest shard's window time — what the
    #: compute would cost if every shard ran on its own core.  On a
    #: single-core host this is the honest stand-in for parallel wall
    #: time (the bench records both; see ``repro.bench``).
    critical_path_s: float = 0.0


def _fabric_key(rec: tuple) -> tuple:
    """Global FIFO order of uplink departures entering the fabric.

    The single calendar processes same-instant departures in event-id
    order, which traces through an unbounded history of insertion
    instants.  The plan makes that order reproducible without replaying
    the history (see :func:`~repro.shard.plan.plan_shards`):

    * ``wire`` records (server data/acks) all come from the one server
      shard, whose dispatch order *is* the single calendar's event-id
      order for those events — so the sort must preserve their arrival
      order on ties, which Python's stable sort does exactly because
      the key deliberately stops at ``(departure, grant)``.
    * ``write`` records come from many client shards, but clients are
      homogeneous IOR instances: same-instant write departures are
      symmetric, and the single calendar's event-id order for them is
      issue order — ``(client, strip id)``.

    The grant instant separates most cross-kind ties (the serialization
    timeouts' event ids were assigned at wire-grant time); a residual
    exact tie between a ``wire`` and a ``write`` record orders data
    before write strips.
    """
    tag, departure, grant, payload = rec
    if tag == "wire":  # data/ack packet out of the server shard
        return (departure, grant, 0)
    # "write": a write strip out of a client shard
    return (departure, grant, 1, payload.client, payload.strip_id)


def _delivery_key(rec: tuple) -> tuple:
    """Insertion order of same-round deliveries into one shard's calendar."""
    kind, gen, when, payload = rec
    client = payload.dst_client if kind == "rx" else payload.client
    strip = payload.strip_id
    segment = payload.segment if kind == "rx" else 0
    return (when, gen, client, strip, segment)


def run_plan(
    config: ClusterConfig,
    plan: ShardPlan,
    handles: t.Sequence[t.Any],
    peeks: t.Sequence[float],
) -> ShardOutcome:
    """Drive one sharded run over started shard ``handles`` to completion."""
    lookahead = plan.lookahead
    fabric = FabricRelay(config.network.switch_bandwidth)
    n_client_shards = len(plan.client_groups)

    client_shard_of: dict[int, int] = {}
    for pos, group in enumerate(plan.client_groups):
        for c in group:
            client_shard_of[c] = pos
    server_shard_of: dict[int, int] = {}
    for pos, group in enumerate(plan.server_groups):
        for s in group:
            server_shard_of[s] = n_client_shards + pos

    peeks = list(peeks)
    pending: list[list[tuple]] = [[] for _ in handles]
    done: dict[int, float] = {}
    last_stamps: dict[int, list[float]] = {}
    rounds = 0
    busy_totals = [0.0] * len(handles)
    critical_path = 0.0

    while len(done) < n_client_shards:
        lbts = min(peeks)
        for queue in pending:
            for rec in queue:
                when = rec[2]
                if when < lbts:
                    lbts = when
        if lbts == INF:
            raise SimulationError(
                "sharded simulation deadlocked: every shard calendar is "
                "empty and no cross-shard messages are in flight, but the "
                "workload has not completed"
            )
        bound = lbts + lookahead
        rounds += 1
        for i, handle in enumerate(handles):
            queue = pending[i]
            if queue:
                queue.sort(key=_delivery_key)
                pending[i] = []
            handle.post_advance(bound, queue)
        wire_inputs: list[tuple] = []
        round_max = 0.0
        for i, handle in enumerate(handles):
            outbox, peek, done_at, stamps, busy = handle.recv()
            busy_totals[i] += busy
            if busy > round_max:
                round_max = busy
            peeks[i] = peek
            if done_at is not None and i not in done:
                done[i] = done_at
            if stamps is not None:
                last_stamps[i] = stamps
            for rec in outbox:
                if rec[0] == "req":
                    # Client -> server read request: one fabric latency,
                    # no serialization (exactly builder.make_submit).
                    _tag, t_issue, request = rec
                    pending[server_shard_of[request.server]].append(
                        ("serve", t_issue, t_issue + lookahead, request)
                    )
                else:
                    wire_inputs.append(rec)
        wire_inputs.sort(key=_fabric_key)
        for tag, departure, _grant, payload in wire_inputs:
            fabric_departure = fabric.relay(payload.size, departure)
            if tag == "wire":
                arrival = fabric_departure + lookahead
                pending[client_shard_of[payload.dst_client]].append(
                    ("rx", departure, arrival, payload)
                )
            else:
                # Replicate transmit_to_server's now + ((dep + L) - now)
                # float arithmetic bit-for-bit (it is *not* dep + L).
                start = departure + (
                    (fabric_departure + lookahead) - departure
                )
                pending[server_shard_of[payload.server]].append(
                    ("serve_write", departure, start, payload)
                )
        critical_path += round_max

    t_end = max(done.values())
    if t_end <= 0:
        raise SimulationError("workload finished in zero simulated time")

    for handle in handles:
        handle.post_finalize(t_end)
    rows: list[tuple[int, ClientMetrics, int]] = []
    raw_events = 0
    for handle in handles:
        reply = handle.recv()
        if reply[0] == "client":
            rows.extend(reply[1])
            raw_events += reply[2]
        else:
            raw_events += reply[1]

    overrun = 0
    for i, stamps in last_stamps.items():
        if i >= n_client_shards:
            overrun += sum(1 for when in stamps if when > t_end)
    model_events = raw_events - (n_client_shards - 1) - overrun

    rows.sort(key=lambda row: row[0])
    clients = tuple(row[1] for row in rows)
    total_bytes = sum(row[2] for row in rows)
    return ShardOutcome(
        elapsed=t_end,
        clients=clients,
        total_bytes=total_bytes,
        model_events=model_events,
        raw_events=raw_events,
        rounds=rounds,
        fabric_bytes=fabric.bytes_switched,
        fabric_packets=fabric.packets_switched,
        busy_s=tuple(busy_totals),
        critical_path_s=critical_path,
    )
