"""The work-stealing window scheduler shared by both shard transports.

One conservative round produces a batch of *ready windows* — (shard,
bound, deliveries) tasks for every shard that has calendar work or fresh
deliveries below the round bound.  Whoever hosts more than one runtime
(the ``inproc`` coordinator hosts all of them; an ``mp`` worker hosts a
group when there are more shards than worker processes) executes its
batch through a :class:`WindowExecutor`:

* every runtime has a **home worker** (LPT assignment by domain size, so
  a five-node client group and a one-node server group don't land on the
  same worker while another sits idle);
* each worker drains its own deque front-to-back, and when it runs dry
  it **steals** the tail of the most loaded worker's deque — the classic
  work-stealing discipline, here over whole conservative windows;
* heterogeneous rounds therefore never serialize on the slowest
  calendar's home worker: an idle worker picks the loaded worker's
  queued windows up instead of waiting for the barrier.

Stealing cannot perturb results: a window task touches exactly one
runtime (its own event calendar), tasks in one round are pairwise
independent (that is what the conservative bound guarantees), and the
coordinator merges replies by shard id — so execution order, worker
count, and steal decisions are all invisible to the simulation bytes.
The ``steals`` counter is surfaced through ``ShardOutcome`` so the bench
payload records how often the scheduler rebalanced, and per-round steal
deltas land on the ``--trace-rounds`` timeline (each transport resets
the counter after reporting a round, so the coordinator sees deltas).

Worker count: ``REPRO_SHARD_WORKERS`` when set; otherwise one worker per
CPU core (capped by the number of runtimes), degrading to plain serial
execution on a single-core host where extra threads only add switching
cost under the GIL.
"""

from __future__ import annotations

import os
import threading
import typing as t

__all__ = ["WindowExecutor", "workers_requested"]

#: Worker-thread override for window execution (tests pin this to
#: exercise the stealing path deterministically on any host).
WORKERS_ENV = "REPRO_SHARD_WORKERS"


def workers_requested() -> int:
    """The ``REPRO_SHARD_WORKERS`` override; 0 means auto (CPU count)."""
    raw = os.environ.get(WORKERS_ENV, "")
    try:
        n = int(raw)
    except ValueError:
        return 0
    return n if n >= 1 else 0


class WindowExecutor:
    """Executes one round's window tasks over work-stealing workers."""

    def __init__(
        self,
        runtimes: t.Mapping[int, t.Any],
        n_workers: int | None = None,
    ) -> None:
        self.runtimes = dict(runtimes)
        if n_workers is None:
            n_workers = workers_requested() or (os.cpu_count() or 1)
        self.n_workers = max(1, min(n_workers, len(self.runtimes) or 1))
        #: Windows executed by a worker other than the task's home.
        self.steals = 0
        # LPT home assignment: heaviest runtime first onto the least
        # loaded worker.  Weight = nodes on the calendar (client nodes or
        # servers) — a proxy for events per window that needs no
        # profiling and keeps the assignment deterministic.
        self._home: dict[int, int] = {}
        loads = [0.0] * self.n_workers
        by_weight = sorted(
            self.runtimes.items(),
            key=lambda item: (-self._weight(item[1]), item[0]),
        )
        for sid, _runtime in by_weight:
            worker = min(range(self.n_workers), key=lambda w: (loads[w], w))
            self._home[sid] = worker
            loads[worker] += self._weight(self.runtimes[sid])

    @staticmethod
    def _weight(runtime: t.Any) -> float:
        indices = getattr(runtime, "client_indices", None)
        if indices is None:
            indices = getattr(runtime, "server_indices", ())
        return float(len(indices) or 1)

    def run_round(
        self, tasks: t.Sequence[tuple[int, float, list]]
    ) -> dict[int, t.Any]:
        """Run ``(sid, bound, deliveries)`` tasks; replies keyed by sid."""
        if self.n_workers == 1 or len(tasks) <= 1:
            return {
                sid: self.runtimes[sid].advance(bound, deliveries)
                for sid, bound, deliveries in tasks
            }
        return self._run_stealing(tasks)

    def _run_stealing(
        self, tasks: t.Sequence[tuple[int, float, list]]
    ) -> dict[int, t.Any]:
        deques: list[list[tuple[int, float, list]]] = [
            [] for _ in range(self.n_workers)
        ]
        for task in tasks:
            deques[self._home[task[0]]].append(task)
        replies: dict[int, t.Any] = {}
        lock = threading.Lock()
        steals = 0

        def next_task(worker: int) -> tuple[int, float, list] | None:
            nonlocal steals
            with lock:
                if deques[worker]:
                    return deques[worker].pop(0)
                victim = max(
                    range(self.n_workers), key=lambda w: (len(deques[w]), -w)
                )
                if deques[victim]:
                    steals += 1
                    return deques[victim].pop()
                return None

        def work(worker: int) -> None:
            while True:
                task = next_task(worker)
                if task is None:
                    return
                sid, bound, deliveries = task
                reply = self.runtimes[sid].advance(bound, deliveries)
                with lock:
                    replies[sid] = reply

        threads = [
            threading.Thread(target=work, args=(w,), daemon=True)
            for w in range(1, self.n_workers)
        ]
        for thread in threads:
            thread.start()
        work(0)
        for thread in threads:
            thread.join()
        self.steals += steals
        return replies

    def finalize(self, t_end: float) -> dict[int, t.Any]:
        """Collect every runtime's finalize reply, keyed by sid."""
        return {
            sid: runtime.finalize(t_end)
            for sid, runtime in sorted(self.runtimes.items())
        }
