"""Per-shard event calendars: one domain of the cluster, windowed.

Each runtime owns a fresh :class:`~repro.des.Environment` holding exactly
one domain of the cluster — client nodes or I/O servers — built with the
*same* constructors the single-calendar builder uses
(:func:`~repro.cluster.builder.make_server` and friends), the same
name-keyed RNG streams, and the same workload spawn order.  Because RNG
streams are keyed by name (not draw order) and every cross-boundary
message is re-injected at the exact float instant the single-calendar run
computed, the events a domain processes are bit-identical in both modes;
only their distribution over calendars differs.

The runtime speaks a tiny windowed protocol (driven by a transport):

``advance(bound, deliveries)``
    insert the coordinator's deliveries, dispatch every local event
    strictly below ``bound``, and return the handoffs generated plus the
    next local timestamp.
``finalize(t_end)``
    pin the clock to the global end time and collect metrics.
"""

from __future__ import annotations

import time
import typing as t

from ..cluster.builder import (
    make_client_uplink,
    make_server,
    make_server_uplink,
)
from ..cluster.client_node import ClientNode
from ..config import ClusterConfig
from ..core.policy import create_policy
from ..des import AllOf, Environment, Event, Process
from ..metrics.collectors import ClientMetrics, collect_client_metrics
from ..net.fastpath import ShardWirePort
from ..pfs.layout import StripeLayout
from ..pfs.request import StripRequest
from ..rng import RngFactory
from ..workloads.ior import spawn_ior_processes

__all__ = [
    "ClientShardRuntime",
    "ServerShardRuntime",
    "build_runtime",
    "AdvanceReply",
    "INF",
]

INF = float("inf")

#: (outbox, next local event time, done-at or None, overrun stamps or None,
#: wall seconds this shard spent computing the window, events dispatched
#: in this window).  The busy time feeds the coordinator's critical-path
#: accounting: on a single-core host the bench can still report what a
#: truly parallel execution of the same windows would have cost.  The
#: per-window event count feeds the ``--trace-rounds`` round timeline
#: (which shard did the work each round, not just how long it took).
AdvanceReply = t.Tuple[
    t.List[tuple],
    float,
    t.Optional[float],
    t.Optional[t.List[float]],
    float,
    int,
]


def _boundary_deliver(packet: t.Any) -> t.Any:  # pragma: no cover - guard
    raise AssertionError(
        "a sharded server must transmit through its ShardWirePort; the "
        "resource-based deliver path never runs inside a shard"
    )


class ClientShardRuntime:
    """One or more client nodes (plus their uplinks) on a private calendar."""

    kind = "client"

    def __init__(self, config: ClusterConfig, client_indices: t.Sequence[int]) -> None:
        self.config = config
        self.client_indices = tuple(client_indices)
        env = Environment()
        self.env = env
        rngs = RngFactory(config.seed)
        layout = StripeLayout(config.strip_size, config.n_servers)
        net = config.network
        workload = config.workload
        self.port = ShardWirePort(env)
        #: Read requests awaiting pickup, as ``("req", t_issue, request)``.
        self.outbox: list[tuple] = []

        self._nodes: dict[int, ClientNode] = {}
        self._procs: dict[int, list[Process]] = {}
        all_procs: list[Process] = []
        for index in self.client_indices:
            policy = create_policy(config.policy)
            node = ClientNode(env, index, config, policy, layout)
            self._nodes[index] = node
            uplink = make_client_uplink(env, config, index)
            node.connect(self._make_submit(uplink))
            # Same spawn bases and the same name-keyed migration RNG
            # stream as Simulation.run — byte-identical IOR behaviour.
            procs = spawn_ior_processes(
                node,
                workload,
                pid_base=index * workload.n_processes,
                segment_base=index * workload.n_processes,
                rng=rngs.stream(f"migration_client{index}"),
            )
            self._procs[index] = procs
            all_procs.extend(procs)
        self._latency = net.latency
        self._allof: Event = AllOf(env, all_procs)
        # Persistent stop latch: one subscription for the thousands of
        # windows this runtime will advance (see Environment.window_stop).
        self._stop = env.window_stop(self._allof)
        self._done_at: float | None = None

    def _make_submit(self, uplink: t.Any) -> t.Callable[[StripRequest], None]:
        env = self.env
        port = self.port

        def submit(request: StripRequest) -> None:
            if not request.is_write:
                # The single-calendar run spawns serve() at now + latency;
                # here the request crosses the boundary and the server
                # shard spawns it at that exact instant instead.  Attribute
                # lookup (not a captured local): advance() rebinds outbox
                # when draining it.
                self.outbox.append(("req", env.now, request))
                return
            env.process(
                port.transmit_to_server(uplink, request.size, request),
                quiet=True,
            )

        return submit

    def initial_peek(self) -> float:
        return self.env.peek()

    def advance(self, bound: float, deliveries: t.Sequence[tuple]) -> AdvanceReply:
        started = time.perf_counter()
        env = self.env
        events_before = env.events_processed
        for _kind, _gen, arrival, packet in deliveries:
            # The tail of WireFastPath.transmit_to_client, replayed at the
            # barrier: admit may run early because fabric departures (and
            # hence NIC arrivals) are globally monotone across windows.
            node = self._nodes[packet.dst_client]
            nic = node.nic
            done = nic.admit(packet.size, arrival)
            env.call_at(done, nic.complete_rx, packet)
        if self._done_at is None:
            if env.run_window(bound, stop=self._stop):
                # Stop exactly at the AllOf dispatch, as run(until=AllOf)
                # does; residual calendar entries are never dispatched.
                self._done_at = env.now
        outbox = self.outbox + self.port.outbox
        self.outbox = []
        self.port.outbox = []
        peek = INF if self._done_at is not None else env.peek()
        busy = time.perf_counter() - started
        events = env.events_processed - events_before
        return outbox, peek, self._done_at, None, busy, events

    def finalize(self, t_end: float) -> tuple:
        env = self.env
        # Metrics sample time-weighted monitors at env.now; the global end
        # time is what the single calendar would read there.
        if t_end > env._now:
            env._now = t_end
        rows: list[tuple[int, ClientMetrics, int]] = []
        for index in self.client_indices:
            procs = self._procs[index]
            bytes_read = sum(int(proc.value) for proc in procs)
            rows.append(
                (
                    index,
                    collect_client_metrics(self._nodes[index], t_end, bytes_read),
                    bytes_read,
                )
            )
        return ("client", rows, env.events_processed)


class ServerShardRuntime:
    """A group of I/O servers (plus uplinks) on a private calendar."""

    kind = "server"

    def __init__(self, config: ClusterConfig, server_indices: t.Sequence[int]) -> None:
        self.config = config
        self.server_indices = tuple(server_indices)
        env = Environment()
        self.env = env
        rngs = RngFactory(config.seed)
        sais_enabled = create_policy(config.policy).requires_hints
        self.port = ShardWirePort(env)
        self._servers: dict[int, t.Any] = {}
        for index in self.server_indices:
            uplink = make_server_uplink(env, config, index)
            self._servers[index] = make_server(
                env,
                config,
                index,
                uplink,
                _boundary_deliver,
                rngs.stream(f"server{index}"),
                sais_enabled,
                fastpath=self.port,
            )
        # Write runs leave asynchronous disk-flush tails on the calendar;
        # the final window may dispatch tails past the global end time the
        # single calendar never reached.  Stamping (one float append per
        # event) lets the coordinator discount them; read runs go idle
        # before the clients finish, so they skip the cost entirely.
        self._stamp: list[float] | None = (
            [] if config.workload.operation == "write" else None
        )

    def initial_peek(self) -> float:
        return self.env.peek()

    def advance(self, bound: float, deliveries: t.Sequence[tuple]) -> AdvanceReply:
        started = time.perf_counter()
        env = self.env
        events_before = env.events_processed
        for item in deliveries:
            kind, gen, when, request = item
            server = self._servers[request.server]
            # The chain's origin key (== the coordinator's delivery sort
            # key): the busy-period root its wire departures will carry
            # across the shard boundary (see ShardWirePort).
            self.port.chain_roots[
                (request.client, request.request_id, request.strip_id)
            ] = (when, gen, request.client, request.strip_id, 0)
            if kind == "serve":
                env.process(server.serve(request), quiet=True, start_at=when)
            else:
                env.process(
                    server.serve_write(request), quiet=True, start_at=when
                )
        stamp = self._stamp
        if stamp is not None:
            stamp.clear()
        env.run_window(bound, stamp=stamp)
        outbox = self.port.outbox
        self.port.outbox = []
        stamps = list(stamp) if stamp is not None else None
        busy = time.perf_counter() - started
        events = env.events_processed - events_before
        return outbox, env.peek(), None, stamps, busy, events

    def finalize(self, t_end: float) -> tuple:
        env = self.env
        if t_end > env._now:
            env._now = t_end
        return ("server", env.events_processed)


def build_runtime(
    config: ClusterConfig, kind: str, indices: t.Sequence[int]
) -> "ClientShardRuntime | ServerShardRuntime":
    """Construct one shard's runtime from its picklable spec."""
    if kind == "client":
        return ClientShardRuntime(config, indices)
    if kind == "server":
        return ServerShardRuntime(config, indices)
    raise ValueError(f"unknown shard kind {kind!r}")
