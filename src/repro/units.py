"""Units and quantity helpers.

Internal conventions used throughout the simulator:

* **time** is measured in seconds (floats on the virtual clock);
* **sizes** are measured in bytes (ints);
* **bandwidth** is measured in bytes/second;
* **frequency** is measured in Hz.

This module provides constants and small parsing helpers so experiment
configurations can be written the way the paper writes them ("64KB strip",
"1 Gigabit NIC", "2M transfer size").

The paper (and IOR) use the storage convention where K/M/G size suffixes are
binary (KiB/MiB/GiB) while network bandwidths are decimal (1 Gigabit =
1e9 bit/s); we follow both conventions.
"""

from __future__ import annotations

import re

from .errors import ConfigError

__all__ = [
    "KiB",
    "MiB",
    "GiB",
    "KB",
    "MB",
    "GB",
    "Kbit",
    "Mbit",
    "Gbit",
    "USEC",
    "MSEC",
    "GHz",
    "MHz",
    "parse_size",
    "format_size",
    "format_bandwidth",
    "format_time",
    "bits_per_sec",
]

# Binary size units (storage sizes, strip/transfer sizes).
KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB

# Decimal size units (rarely used, provided for completeness).
KB = 1000
MB = 1000 * KB
GB = 1000 * MB

# Network bandwidth units, expressed in *bytes per second* so they can be
# assigned directly to link/NIC bandwidth fields.
Kbit = 1000 / 8
Mbit = 1000 * Kbit
Gbit = 1000 * Mbit

# Time units in seconds.
USEC = 1e-6
MSEC = 1e-3

# Frequency units in Hz.
MHz = 1e6
GHz = 1e9

_SIZE_RE = re.compile(
    r"^\s*(?P<num>\d+(?:\.\d+)?)\s*(?P<suffix>[KkMmGgTt]?)(?:i?[Bb])?\s*$"
)

_SUFFIX_FACTOR = {
    "": 1,
    "K": KiB,
    "M": MiB,
    "G": GiB,
    "T": 1024 * GiB,
}


def parse_size(text: str | int) -> int:
    """Parse a size like ``"64K"``, ``"1M"``, ``"2MB"`` or ``"10GB"`` to bytes.

    Integers pass through unchanged.  Suffixes follow the storage (binary)
    convention the paper uses for strip and transfer sizes: ``K`` = KiB,
    ``M`` = MiB, ``G`` = GiB.

    >>> parse_size("64K")
    65536
    >>> parse_size("1M")
    1048576
    >>> parse_size(512)
    512
    """
    if isinstance(text, int):
        if text < 0:
            raise ConfigError(f"size must be non-negative, got {text}")
        return text
    match = _SIZE_RE.match(text)
    if match is None:
        raise ConfigError(f"unparseable size: {text!r}")
    value = float(match.group("num")) * _SUFFIX_FACTOR[match.group("suffix").upper()]
    if value != int(value):
        raise ConfigError(f"size {text!r} is not a whole number of bytes")
    return int(value)


def format_size(nbytes: int) -> str:
    """Render a byte count the way the paper labels its x-axes (128K, 1M...)."""
    if nbytes < 0:
        raise ConfigError(f"size must be non-negative, got {nbytes}")
    for factor, suffix in ((GiB, "G"), (MiB, "M"), (KiB, "K")):
        if nbytes >= factor and nbytes % factor == 0:
            return f"{nbytes // factor}{suffix}"
    if nbytes >= KiB:
        return f"{nbytes / MiB:.2f}M"
    return f"{nbytes}B"


def format_bandwidth(bytes_per_sec: float) -> str:
    """Render a bandwidth in MB/s, matching the paper's figures."""
    return f"{bytes_per_sec / MiB:.2f} MB/s"


def format_time(seconds: float) -> str:
    """Render a duration with an adaptive unit."""
    if seconds >= 1.0:
        return f"{seconds:.3f} s"
    if seconds >= MSEC:
        return f"{seconds / MSEC:.3f} ms"
    return f"{seconds / USEC:.3f} us"


def bits_per_sec(bytes_per_sec: float) -> float:
    """Convert a bytes/second bandwidth to bits/second."""
    return bytes_per_sec * 8.0
