"""The shared memory bus (DRAM bandwidth).

Used for two things in the client model:

* refetching strips that were evicted from every private cache before the
  application consumed them (the paper's high-bandwidth "swapped out of
  L1/L2" penalty), and
* the Section VI memory simulation, where the "I/O servers" are files on a
  RAM disk and every strip read streams over this bus.

Transfers serialize FIFO at the configured peak bandwidth — a deliberate
simplification of DDR2 channel interleaving that preserves the property the
experiments need: aggregate memory traffic cannot exceed the JESD79-2F peak
(5333 MB/s for the paper's head node).
"""

from __future__ import annotations

import typing as t

from ..des import Environment, Resource
from ..des.monitor import Counter

__all__ = ["MemoryBus"]


class MemoryBus:
    """Unit-capacity FIFO pipe with a bytes/second service rate."""

    def __init__(self, env: Environment, bandwidth: float, latency: float = 0.0) -> None:
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        self.env = env
        self.bandwidth = bandwidth
        self.latency = latency
        self._bus = Resource(env, capacity=1)
        self.bytes_moved = Counter("memory_bytes")
        self.transfers = Counter("memory_transfers")
        self.wait_time = Counter("memory_wait")

    def transfer(self, nbytes: int) -> t.Generator:
        """Stream ``nbytes`` through the bus; the caller blocks."""
        yield from self.transfer_at(nbytes, self.bandwidth)

    def transfer_at(self, nbytes: int, rate: float) -> t.Generator:
        """Stream ``nbytes`` at an accessor-limited ``rate``.

        A single core cannot issue loads fast enough to use the full DDR2
        channel bandwidth, but its transfer still *occupies* the shared bus
        — so the occupancy is charged at ``min(rate, bandwidth)``.
        """
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        effective = min(rate, self.bandwidth)
        started = self.env.now
        with self._bus.request() as req:
            yield req
            self.wait_time.add(self.env.now - started)
            yield self.env.timeout(self.latency + nbytes / effective)
        self.bytes_moved.add(nbytes)
        self.transfers.add()

    @property
    def total_busy_time(self) -> float:
        """Seconds the bus has been streaming data."""
        return (
            self.transfers.value * self.latency
            + self.bytes_moved.value / self.bandwidth
        )
