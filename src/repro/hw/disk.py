"""A storage device: positioning cost plus streaming transfer.

Used by the PVFS I/O servers (7.2K-RPM SATA in the paper's compute nodes).
Requests serialize FIFO on the spindle.  Page-cache behaviour lives in the
server model (:mod:`repro.pfs.server`), not here — the disk itself is purely
mechanical.
"""

from __future__ import annotations

import typing as t

import numpy as np

from ..des import Environment, Resource
from ..des.monitor import Counter

__all__ = ["Disk"]


class Disk:
    """FIFO spindle with seek + streaming-rate service."""

    def __init__(
        self,
        env: Environment,
        rate: float,
        seek: float,
        rng: np.random.Generator | None = None,
        seek_jitter: float = 0.25,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if seek < 0:
            raise ValueError(f"seek must be non-negative, got {seek}")
        self.env = env
        self.rate = rate
        self.seek = seek
        self.seek_jitter = seek_jitter
        self._rng = rng
        self._spindle = Resource(env, capacity=1)
        self.bytes_read = Counter("disk_bytes")
        self.bytes_written = Counter("disk_bytes_written")
        self.requests = Counter("disk_requests")

    def _seek_time(self) -> float:
        if self.seek == 0.0:
            return 0.0
        if self._rng is None or self.seek_jitter == 0.0:
            return self.seek
        # Mild multiplicative jitter around the nominal positioning cost;
        # keeps repeated A/B runs paired (same rng stream -> same draws).
        factor = 1.0 + self.seek_jitter * (2.0 * float(self._rng.random()) - 1.0)
        return self.seek * factor

    def read(self, nbytes: int, sequential: bool = False) -> t.Generator:
        """Read ``nbytes``; blocks the calling process until data is off
        the platter.  ``sequential`` skips the positioning cost (the head
        is already there)."""
        with self._spindle.request() as req:
            yield req
            seek = 0.0 if sequential else self._seek_time()
            yield self.env.timeout(seek + nbytes / self.rate)
        self.bytes_read.add(nbytes)
        self.requests.add()

    def write(self, nbytes: int, sequential: bool = False) -> t.Generator:
        """Write ``nbytes``; mechanically identical to a read at this level
        (positioning + streaming), tracked separately."""
        with self._spindle.request() as req:
            yield req
            seek = 0.0 if sequential else self._seek_time()
            yield self.env.timeout(seek + nbytes / self.rate)
        self.bytes_written.add(nbytes)
        self.requests.add()
