"""A CPU core: a unit-capacity priority-run-queue with cycle accounting.

Work is expressed as *occupancy intervals*: a component process acquires the
core (at softirq or application priority), holds it for the modeled duration
and releases it.  The core tracks total busy time (for utilization and the
Oprofile-style ``CPU_CLK_UNHALTED`` event) and a per-category breakdown
(softirq, migration stall, copy, compute, ...) used by the experiment
reports.
"""

from __future__ import annotations

import math
import typing as t
from collections import defaultdict

from ..des import Environment, PriorityResource
from ..des.monitor import IntervalAccumulator

__all__ = ["Core", "SOFTIRQ_PRIORITY", "APP_PRIORITY"]

#: Softirq (interrupt bottom-half) work outranks queued application work,
#: mirroring Linux where softirqs run ahead of the preempted task.
SOFTIRQ_PRIORITY = 0
#: Ordinary application (IOR process) work.
APP_PRIORITY = 10


class Core:
    """One processor core.

    Parameters
    ----------
    env:
        Simulation environment.
    index:
        Core id within the client (0-based; this is what ``aff_core_id``
        encodes on the wire).
    clock_hz:
        Core clock, used only to convert busy seconds into "unhalted
        cycles" for the Fig. 10/11 metric.
    """

    def __init__(self, env: Environment, index: int, clock_hz: float) -> None:
        self.env = env
        self.index = index
        self.clock_hz = clock_hz
        self._slot = PriorityResource(env, capacity=1, inline_grant=True)
        self._busy = IntervalAccumulator(env)
        #: Busy seconds per work category.
        self.busy_by_category: dict[str, float] = defaultdict(float)
        #: Exponentially-weighted recent load estimate, maintained lazily;
        #: this is what load-based policies (irqbalance) observe.
        self._load_estimate = 0.0
        self._load_updated = env.now
        #: Busy state over the interval since the last load update.
        self._load_state = False
        #: Load-decay time constant (seconds).  Matches the ~10 Hz cadence
        #: at which irqbalance-style daemons sample /proc/stat.
        self.load_tau = 0.1

    def __repr__(self) -> str:
        return f"<Core {self.index}>"

    # -- execution ----------------------------------------------------------

    def run(
        self, duration: float, category: str, priority: int = APP_PRIORITY
    ) -> t.Generator:
        """Occupy this core for ``duration`` seconds of ``category`` work.

        Usage: ``yield from core.run(12e-6, "softirq", SOFTIRQ_PRIORITY)``.
        The calling process queues behind whatever currently holds the core.
        """
        with self._slot.request(priority=priority) as req:
            yield req
            yield from self.run_locked(duration, category)

    def run_locked(self, duration: float, category: str) -> t.Generator:
        """Account ``duration`` of busy time while *already holding* the core.

        For multi-phase work that must not be preempted between phases:
        acquire once via ``request()`` and call this per phase.
        """
        self._busy.begin()
        self._note_load(busy=True)
        try:
            yield self.env.timeout(duration)
        finally:
            self._busy.end()
            self._note_load(busy=False)
            self.busy_by_category[category] += duration

    def request(self, priority: int = APP_PRIORITY):
        """Raw slot request, for callers composing multi-phase occupancy."""
        return self._slot.request(priority=priority)

    def run_while(self, inner: t.Generator, category: str) -> t.Generator:
        """Stay busy for however long ``inner`` takes (core already held).

        Models a core *stalled* on an external resource (a cache-to-cache
        transfer, a DRAM refetch): the pipeline spins on the loads, so the
        time counts as unhalted/busy even though the work is elsewhere.
        """
        started = self.env.now
        self._busy.begin()
        self._note_load(busy=True)
        try:
            yield from inner
        finally:
            self._busy.end()
            self._note_load(self._busy.active)
            self.busy_by_category[category] += self.env.now - started

    # -- accounting -----------------------------------------------------------

    @property
    def busy_time(self) -> float:
        """Total busy seconds so far (including a currently-running job)."""
        return self._busy.current_total()

    @property
    def is_busy(self) -> bool:
        """Whether the core is executing something right now."""
        return self._busy.active

    @property
    def run_queue_length(self) -> int:
        """Jobs waiting for this core (excluding the one running)."""
        return self._slot.queue_length

    def unhalted_cycles(self) -> float:
        """Oprofile ``CPU_CLK_UNHALTED``: busy seconds x clock."""
        return self.busy_time * self.clock_hz

    def register_metrics(self, registry: t.Any, prefix: str) -> None:
        """Expose this core's accounting in a :class:`MetricsRegistry`."""
        labels = {"core": self.index}
        registry.register_probe(
            f"{prefix}.busy_time", lambda: self.busy_time, labels=labels
        )
        registry.register_probe(
            f"{prefix}.unhalted_cycles", self.unhalted_cycles, labels=labels
        )
        registry.register_probe(
            f"{prefix}.run_queue",
            lambda: float(self.run_queue_length),
            labels=labels,
        )

    def utilization(self, elapsed: float | None = None) -> float:
        """Busy fraction over ``elapsed`` (defaults to time since t=0)."""
        span = self.env.now if elapsed is None else elapsed
        if span <= 0:
            return 0.0
        return min(1.0, self.busy_time / span)

    # -- load estimate (policy-visible) --------------------------------------

    def _note_load(self, busy: bool) -> None:
        """Fold the elapsed interval (at its previous busy state) into the
        EWMA, then record the new state."""
        now = self.env.now
        dt = now - self._load_updated
        if dt > 0:
            decay = math.exp(-dt / self.load_tau)
            was_busy = 1.0 if self._load_state else 0.0
            self._load_estimate = (
                self._load_estimate * decay + was_busy * (1.0 - decay)
            )
            self._load_updated = now
        self._load_state = busy

    def load(self) -> float:
        """Recent-load estimate in [0, 1] plus queued work pressure.

        This is the quantity balance policies minimize: smoothed busy
        fraction plus the number of queued jobs (each queued job counts as
        a full core of pressure).
        """
        self._note_load(self._busy.active)
        queued = self._slot.queue_length + (1 if self._busy.active else 0)
        return self._load_estimate + queued
