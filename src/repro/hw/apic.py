"""The interrupt routing fabric: I/O APIC and per-core local APICs.

On the paper's x86 testbed the I/O APIC receives device interrupts and
routes them to local APICs according to its redirection table; interrupt
scheduling schemes (irqbalance, SAIs' ``IMComposer``) differ only in *which
destination core* ends up in the interrupt message.  We model exactly that
seam: the :class:`IoApic` consults a pluggable policy object for every
interrupt and delivers an :class:`InterruptContext` to the chosen core's
:class:`LocalApic`, which hands it to the kernel's softirq layer.
"""

from __future__ import annotations

import dataclasses
import typing as t

from ..des import Environment
from ..des.monitor import Counter
from ..errors import SimulationError

if t.TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.policy import InterruptSchedulingPolicy
    from .core import Core

__all__ = ["InterruptContext", "LocalApic", "IoApic"]


@dataclasses.dataclass(slots=True)
class InterruptContext:
    """Everything the interrupt path knows when an interrupt is raised.

    ``aff_core_id`` is only non-None when the NIC driver's ``SrcParser``
    extracted a source-aware hint from the packet's IP options — i.e. when
    both ends run SAIs.  Policies that ignore it (round-robin, irqbalance)
    reproduce conventional behaviour.
    """

    #: The network packet (repro.net.packet.Packet) that caused the IRQ.
    packet: t.Any
    #: Parsed affinitive core id, if the driver found one.
    aff_core_id: int | None = None
    #: Core the requesting process was running on when the request was
    #: issued (used by oracle/ablation policies, not available to real
    #: hardware without SAIs' hint).
    request_core: int | None = None
    #: Set by RPS/RFS-style policies: the core the handling softirq
    #: should *re-steer* the protocol work to after the hardirq half
    #: (the hardware delivered to one fixed core; software moves the
    #: rest of the work to the flow's consumer).  None for policies
    #: that place the interrupt directly.
    rps_target: int | None = None
    #: When set, this is a NAPI poll request: the handling core should
    #: drain the NIC's pending queue (via ``napi_poll``) rather than
    #: process only ``packet``.  ``packet`` is the train head that
    #: triggered the interrupt (and what hint-based policies route by).
    napi_source: t.Any | None = None
    #: Open observability flow id (the IRQ-placement edge from the NIC
    #: wire span); the handling softirq terminates it.  None unless span
    #: tracing is enabled (:mod:`repro.obs`).  Pure bookkeeping — never
    #: consulted by any policy or timing decision.
    obs_flow: int | None = None


class LocalApic:
    """Per-core interrupt sink: counts deliveries and invokes the kernel."""

    def __init__(self, env: Environment, core_index: int) -> None:
        self.env = env
        self.core_index = core_index
        self.interrupts = Counter(f"lapic{core_index}_interrupts")
        self._handler: t.Callable[[InterruptContext], None] | None = None

    def install_handler(self, handler: t.Callable[[InterruptContext], None]) -> None:
        """The kernel installs its IRQ entry point here."""
        self._handler = handler

    def deliver(self, ctx: InterruptContext) -> None:
        """Accept an interrupt message from the I/O APIC."""
        if self._handler is None:
            raise SimulationError(
                f"no interrupt handler installed on core {self.core_index}"
            )
        self.interrupts.add()
        self._handler(ctx)


class IoApic:
    """Routes device interrupts to local APICs via a scheduling policy."""

    def __init__(
        self,
        env: Environment,
        cores: t.Sequence["Core"],
        policy: "InterruptSchedulingPolicy",
        spans: t.Any | None = None,
        obs_track: t.Any | None = None,
    ) -> None:
        if not cores:
            raise SimulationError("IoApic needs at least one core")
        self.env = env
        self.cores = list(cores)
        self.policy = policy
        self.local_apics = [LocalApic(env, core.index) for core in self.cores]
        self.interrupts_raised = Counter("ioapic_interrupts")
        #: Per-destination-core delivery histogram (policy diagnostics).
        self.deliveries: list[int] = [0] * len(self.cores)
        #: Span recorder + this client's APIC lane (repro.obs); None off.
        self.spans = spans
        self.obs_track = obs_track
        policy.bind(self)

    def raise_interrupt(self, ctx: InterruptContext) -> None:
        """Route one device interrupt according to the installed policy."""
        core_index = self.policy.select_core(ctx, self.cores)
        if not 0 <= core_index < len(self.cores):
            raise SimulationError(
                f"policy {self.policy.name!r} chose invalid core {core_index}"
            )
        self.interrupts_raised.add()
        self.deliveries[core_index] += 1
        if self.spans is not None:
            packet = ctx.packet
            self.spans.instant(
                "irq",
                "irq",
                self.obs_track,
                parent=self.spans.strip_span(
                    packet.dst_client, packet.strip_id
                ),
                args={
                    "core": core_index,
                    "policy": self.policy.name,
                    "aff_core_id": ctx.aff_core_id,
                    "strip": packet.strip_id,
                },
            )
        self.local_apics[core_index].deliver(ctx)
