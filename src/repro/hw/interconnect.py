"""The inter-core interconnect: the serialized strip-migration path.

The paper's quantitative analysis rests on the observation that *"in most
CPU design, only one strip migration can happen at any time"* (Sec. III-A),
i.e. cache-to-cache transfers between private caches serialize on the
coherent interconnect.  This is the mechanism that makes balanced interrupt
scheduling pay ``TM = M x #migrations`` while source-aware scheduling pays
none, and it is why the advantage grows with the number of I/O servers
(more concurrent arrivals -> deeper migration queue).
"""

from __future__ import annotations

import typing as t

from ..config import CostModel
from ..des import Environment, Resource
from ..des.monitor import Counter, TimeWeighted

__all__ = ["InterconnectBus"]


class InterconnectBus:
    """Unit-capacity FIFO bus carrying cache-to-cache strip transfers."""

    def __init__(self, env: Environment, costs: CostModel) -> None:
        self.env = env
        self.costs = costs
        self._bus = Resource(env, capacity=1)
        #: Number of strip migrations carried.
        self.migrations = Counter("migrations")
        #: Bytes moved cache-to-cache.
        self.bytes_moved = Counter("migration_bytes")
        #: Time transfers spent *waiting* for the bus (queueing) — the
        #: contention signal that grows with server count.
        self.wait_time = Counter("migration_wait")
        #: Instantaneous queue depth (for diagnostics).
        self.queue_depth = TimeWeighted(env, 0.0)
        #: Small cross-core control messages carried (RPS/RFS softirq
        #: handoffs) — deliberately separate from :attr:`migrations`,
        #: which counts only strip-data transfers.
        self.signals = Counter("interconnect_signals")
        self._busy_total = 0.0

    def acquire(self):
        """Request the bus (context-managed).  Queueing happens here.

        The waiting consumer is de-scheduled while queued (its stall
        overlaps other cores' transfers), so queue wait is *not* busy
        time; only the granted transfer (``transfer_locked``) stalls the
        core.  Callers should pair this with
        :meth:`Core.run_while`::

            with bus.acquire() as grant:
                yield grant
                yield from core.run_while(bus.transfer_locked(n), "migration")
        """
        self.queue_depth.add(1.0)
        return _TrackedRequest(self)

    def transfer_locked(self, nbytes: int, rate: float | None = None) -> t.Generator:
        """Carry one strip while already holding the bus.

        With the default ``rate`` the duration is the paper's
        ``M = c2c_latency + nbytes / c2c_rate`` (a dirty cache-to-cache
        strip).  A caller may pass a different per-line demand-miss rate —
        e.g. refetching an evicted strip from DRAM — but the transfer
        still serializes on this bus: it is the same per-socket coherence/
        fill path, which is exactly the paper's "only one strip migration
        can happen at any time".
        """
        if rate is None:
            duration = self.costs.strip_migration_time(nbytes)
        else:
            duration = self.costs.c2c_latency + nbytes / rate
        yield self.env.timeout(duration)
        self._busy_total += duration
        self.migrations.add()
        self.bytes_moved.add(nbytes)

    def transfer(self, nbytes: int, rate: float | None = None) -> t.Generator:
        """Acquire + carry in one call; the caller blocks for both phases."""
        with self.acquire() as grant:
            yield grant
            yield from self.transfer_locked(nbytes, rate)

    def signal(self) -> t.Generator:
        """One small inter-processor control message (an RPS/RFS IPI).

        Costs a single coherence round trip (``c2c_latency``) and rides
        the same serialized path as strip transfers — but is counted in
        :attr:`signals`, never in :attr:`migrations`, and bypasses the
        queue-wait instrumentation so ``migration_wait`` keeps measuring
        strip traffic only.
        """
        with self._bus.request() as req:
            yield req
            duration = self.costs.c2c_latency
            yield self.env.timeout(duration)
            self._busy_total += duration
            self.signals.add()

    @property
    def total_busy_time(self) -> float:
        """Seconds of pure transfer time carried so far (excludes waits)."""
        return self._busy_total

    def register_metrics(self, registry: t.Any, prefix: str) -> None:
        """Expose the bus instruments in a :class:`MetricsRegistry`."""
        registry.register_counter(f"{prefix}.migrations", self.migrations)
        registry.register_counter(f"{prefix}.signals", self.signals)
        registry.register_counter(f"{prefix}.bytes_moved", self.bytes_moved)
        registry.register_counter(f"{prefix}.wait_time", self.wait_time)
        registry.register_time_weighted(
            f"{prefix}.queue_depth", self.queue_depth
        )
        registry.register_probe(
            f"{prefix}.busy_time", lambda: self.total_busy_time
        )


class _TrackedRequest:
    """Context manager pairing a bus grant with queue-depth/wait tracking."""

    def __init__(self, bus: "InterconnectBus") -> None:
        self._bus = bus
        started = bus.env.now
        self._request = bus._bus.request()
        callbacks = self._request.callbacks
        if callbacks is not None:
            callbacks.append(
                lambda _ev: bus.wait_time.add(bus.env.now - started)
            )

    def __enter__(self):
        return self._request.__enter__()

    def __exit__(self, *exc_info: t.Any) -> None:
        self._bus.queue_depth.add(-1.0)
        self._request.__exit__(*exc_info)
