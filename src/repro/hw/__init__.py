"""Hardware component models for the simulated I/O client and servers.

Each class wraps a DES resource with the accounting the paper's metrics
need (busy cycles, cache accesses/misses, bus occupancy):

* :class:`~repro.hw.core.Core` — one CPU core (priority run queue,
  ``CPU_CLK_UNHALTED`` accounting);
* :class:`~repro.hw.cache.CacheSystem` — per-core private L2 caches with a
  residency directory and line-level access/miss counters;
* :class:`~repro.hw.interconnect.InterconnectBus` — the serialized
  cache-to-cache transfer path (the paper's "only one strip migration can
  happen at any time");
* :class:`~repro.hw.memory.MemoryBus` — shared DRAM bandwidth;
* :class:`~repro.hw.nic.Nic` — receive-side serialization, coalescing and
  the driver hook where ``SrcParser`` runs;
* :class:`~repro.hw.apic.IoApic` / :class:`~repro.hw.apic.LocalApic` — the
  interrupt routing fabric a scheduling policy programs;
* :class:`~repro.hw.disk.Disk` — seek + streaming storage model.
"""

from .apic import InterruptContext, IoApic, LocalApic
from .cache import CacheAccessModel, CacheSystem, Location
from .core import APP_PRIORITY, SOFTIRQ_PRIORITY, Core
from .disk import Disk
from .interconnect import InterconnectBus
from .memory import MemoryBus
from .nic import Nic

__all__ = [
    "Core",
    "SOFTIRQ_PRIORITY",
    "APP_PRIORITY",
    "CacheSystem",
    "CacheAccessModel",
    "Location",
    "InterconnectBus",
    "MemoryBus",
    "Nic",
    "IoApic",
    "LocalApic",
    "InterruptContext",
    "Disk",
]
