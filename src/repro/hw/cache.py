"""Per-core private caches with a strip-granularity residency directory.

The unit of tracking is a *strip* (the PVFS striping unit, 64 KiB by
default): interrupt handling installs the strip's lines into the handling
core's private L2; consumption looks the strip up and classifies the access
as

* ``LOCAL``  — resident in the consuming core's own cache (the source-aware
  happy path),
* ``REMOTE`` — resident in another core's cache, requiring a cache-to-cache
  transfer over the serialized interconnect (the paper's "data migration"),
* ``MEMORY`` — evicted to DRAM before consumption (the paper's "swapped out
  of the L1/L2 cache" high-bandwidth effect),
* ``ABSENT`` — never installed (cold read from DRAM).

Line-level access and miss counters implement the paper's L2 miss-rate
metric (# misses / # accesses, Sec. V-D).  The *fractions* of lines that
hit/miss per event are the :class:`CacheAccessModel` calibration constants.
"""

from __future__ import annotations

import dataclasses
import enum
import typing as t
from collections import OrderedDict

from ..des.monitor import Counter
from ..errors import ConfigError, SimulationError

__all__ = ["Location", "CacheAccessModel", "CacheSystem", "PrivateCache"]


class Location(enum.Enum):
    """Where a strip was found at consumption time."""

    LOCAL = "local"
    REMOTE = "remote"
    MEMORY = "memory"
    ABSENT = "absent"


@dataclasses.dataclass(frozen=True)
class CacheAccessModel:
    """Per-line hit/miss fractions for each access type.

    These express how many of a strip's cache lines miss during each phase;
    they are calibration constants (DESIGN.md §5) chosen so the emergent L2
    miss rates land in the paper's reported bands.
    """

    #: Fraction of lines missing while the softirq touches freshly-DMA'd
    #: packet data (headers + checksum + skb copy).  Paid under *every*
    #: policy — DMA lands in DRAM, never in any core's cache.
    dma_touch_miss: float = 0.6
    #: Fraction of lines missing when the consumer pulls a strip out of a
    #: *remote* cache (adjacent-line prefetching hides a little of it).
    remote_miss: float = 0.85
    #: Fraction of lines missing when the strip was evicted to memory.
    memory_miss: float = 1.0
    #: Fraction of lines missing on a local, cache-resident consume.
    local_miss: float = 0.02
    #: How many times the compute (encrypt) phase touches each line of the
    #: request buffer.  These are mostly hits and provide the access-count
    #: denominator that keeps absolute miss rates in the paper's 5–25% band.
    compute_accesses_per_line: float = 5.0
    #: Fraction of compute accesses that miss (streaming out-of-cache parts
    #: of large transfers).
    compute_miss: float = 0.03

    def __post_init__(self) -> None:
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if value < 0:
                raise ConfigError(f"{field.name} must be >= 0, got {value}")
        for name in (
            "dma_touch_miss",
            "remote_miss",
            "memory_miss",
            "local_miss",
            "compute_miss",
        ):
            if getattr(self, name) > 1.0:
                raise ConfigError(f"{name} is a fraction, got {getattr(self, name)}")


class PrivateCache:
    """One core's private L2: an LRU set of resident strips."""

    def __init__(self, core_index: int, capacity_strips: int) -> None:
        if capacity_strips < 1:
            raise ConfigError(
                f"cache must hold at least one strip, got {capacity_strips}"
            )
        self.core_index = core_index
        self.capacity_strips = capacity_strips
        self._resident: OrderedDict[int, None] = OrderedDict()

    def __contains__(self, strip_id: int) -> bool:
        return strip_id in self._resident

    def __len__(self) -> int:
        return len(self._resident)

    def touch(self, strip_id: int) -> None:
        """Refresh LRU position of a resident strip."""
        self._resident.move_to_end(strip_id)

    def insert(self, strip_id: int) -> list[int]:
        """Install a strip; returns the strip ids evicted to make room."""
        evicted: list[int] = []
        if strip_id in self._resident:
            self._resident.move_to_end(strip_id)
            return evicted
        while len(self._resident) >= self.capacity_strips:
            victim, _ = self._resident.popitem(last=False)
            evicted.append(victim)
        self._resident[strip_id] = None
        return evicted

    def remove(self, strip_id: int) -> None:
        """Drop a strip (it moved to another cache or was invalidated)."""
        self._resident.pop(strip_id, None)


class CacheSystem:
    """Directory of strip residency across all private caches.

    Also owns the line-granularity access/miss counters that feed the L2
    miss-rate metric.
    """

    #: Directory value meaning "in DRAM only".
    IN_MEMORY = -1

    def __init__(
        self,
        n_cores: int,
        l2_bytes: int,
        strip_size: int,
        cache_line: int = 64,
        model: CacheAccessModel | None = None,
    ) -> None:
        if strip_size <= 0 or cache_line <= 0:
            raise ConfigError("strip_size and cache_line must be positive")
        capacity = max(1, l2_bytes // strip_size)
        self.n_cores = n_cores
        self.strip_size = strip_size
        self.cache_line = cache_line
        self.lines_per_strip = max(1, strip_size // cache_line)
        self.model = model or CacheAccessModel()
        self.caches = [PrivateCache(i, capacity) for i in range(n_cores)]
        self._directory: dict[int, int] = {}
        # Metric counters (line granularity).
        self.accesses = Counter("l2_accesses")
        self.misses = Counter("l2_misses")
        self.consume_by_location = {loc: Counter(loc.value) for loc in Location}
        self.evictions = Counter("evictions")

    # -- residency ------------------------------------------------------------

    def owner(self, strip_id: int) -> int | None:
        """Core index holding the strip, ``IN_MEMORY``, or None if unknown."""
        return self._directory.get(strip_id)

    def install(self, core_index: int, strip_id: int) -> None:
        """Softirq on ``core_index`` wrote the strip into its cache.

        Accounts the DMA-touch accesses and any capacity evictions.
        """
        self._check_core(core_index)
        lines = self.lines_per_strip
        self.accesses.add(lines)
        self.misses.add(lines * self.model.dma_touch_miss)
        previous = self._directory.get(strip_id)
        if previous is not None and previous >= 0 and previous != core_index:
            self.caches[previous].remove(strip_id)
        for victim in self.caches[core_index].insert(strip_id):
            self._directory[victim] = self.IN_MEMORY
            self.evictions.add()
        self._directory[strip_id] = core_index

    def consume(self, core_index: int, strip_id: int) -> Location:
        """The application on ``core_index`` reads the strip (merge copy).

        Returns where the strip was found; updates counters and moves the
        strip into the consumer's cache (the data now lives there).
        """
        self._check_core(core_index)
        where = self._directory.get(strip_id)
        if where is None:
            location = Location.ABSENT
        elif where == self.IN_MEMORY:
            location = Location.MEMORY
        elif where == core_index:
            location = Location.LOCAL
        else:
            location = Location.REMOTE

        lines = self.lines_per_strip
        self.accesses.add(lines)
        model = self.model
        miss_fraction = {
            Location.LOCAL: model.local_miss,
            Location.REMOTE: model.remote_miss,
            Location.MEMORY: model.memory_miss,
            Location.ABSENT: model.memory_miss,
        }[location]
        self.misses.add(lines * miss_fraction)
        self.consume_by_location[location].add()

        if location is Location.LOCAL:
            self.caches[core_index].touch(strip_id)
        else:
            if location is Location.REMOTE:
                assert where is not None and where >= 0
                self.caches[where].remove(strip_id)
            for victim in self.caches[core_index].insert(strip_id):
                self._directory[victim] = self.IN_MEMORY
                self.evictions.add()
            self._directory[strip_id] = core_index
        return location

    def compute_pass(self, core_index: int, nbytes: int) -> None:
        """Account the encrypt phase touching ``nbytes`` of resident data."""
        self._check_core(core_index)
        lines = max(1, nbytes // self.cache_line)
        accesses = lines * self.model.compute_accesses_per_line
        self.accesses.add(accesses)
        self.misses.add(accesses * self.model.compute_miss)

    def discard(self, strip_id: int) -> None:
        """Forget a strip entirely (request buffer released)."""
        where = self._directory.pop(strip_id, None)
        if where is not None and where >= 0:
            self.caches[where].remove(strip_id)

    # -- metrics ---------------------------------------------------------------

    def miss_rate(self) -> float:
        """L2 miss rate = misses / accesses (the Fig. 6/7 metric)."""
        if self.accesses.value <= 0:
            return 0.0
        return self.misses.value / self.accesses.value

    def _check_core(self, core_index: int) -> None:
        if not 0 <= core_index < self.n_cores:
            raise SimulationError(f"core index {core_index} out of range")
