"""The client NIC: receive serialization, coalescing and the driver hook.

Wire behaviour: all inbound packets serialize through the (bonded) link at
the aggregate port bandwidth — this is what makes the 1-Gigabit
configuration interrupt-sparse and the 3-Gigabit configuration
interrupt-dense, which in turn controls how much migration queueing the
balanced policies suffer.

Driver behaviour: after a packet is fully received, the driver hook runs.
With SAIs installed, the hook is ``SrcParser.parse`` — it reads the IP
options field and extracts ``aff_core_id`` *before the interrupt message is
composed* (paper Sec. IV-B, steps 4-5).  The NIC then asks the I/O APIC to
raise the interrupt with that context.

Interrupt coalescing: PVFS data strips arrive as trains of MTU frames.  By
default the model raises one interrupt per strip train (the paper's
accounting); with ``NetworkConfig.mss`` set each segment interrupts
separately; and with ``napi=True`` the NIC runs Linux-NAPI style —
interrupts are disabled while a poll is in progress and the polling core
drains up to ``napi_budget`` pending packets per interrupt, which batches
under load and (deliberately) fights per-packet source-aware steering.
"""

from __future__ import annotations

import typing as t
from collections import deque

from ..des import Environment, Resource
from ..des.monitor import Counter
from .apic import InterruptContext, IoApic

if t.TYPE_CHECKING:  # pragma: no cover - typing only
    from ..net.packet import Packet

__all__ = ["Nic"]


class Nic:
    """Receive path of the client's (possibly bonded) NIC."""

    def __init__(
        self,
        env: Environment,
        bandwidth: float,
        ioapic: IoApic,
        framing_overhead: float = 0.0,
        driver_hook: t.Callable[["Packet"], int | None] | None = None,
        composer: t.Callable[["Packet", int | None], InterruptContext] | None = None,
        tracer: t.Any | None = None,
        napi: bool = False,
        napi_budget: int = 64,
        rx_observer: t.Callable[["Packet"], None] | None = None,
        spans: t.Any | None = None,
        obs_track: t.Any | None = None,
    ) -> None:
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        self.env = env
        self.bandwidth = bandwidth
        self.ioapic = ioapic
        self.framing_overhead = framing_overhead
        #: Wire-arrival hook run on every received packet before the
        #: interrupt path sees it — the TCP layer's per-strip ordering
        #: tripwire (``PfsClient.observe_wire``).  Pure bookkeeping: it
        #: never yields, so it costs no simulated time.
        self.rx_observer = rx_observer
        #: Driver-level parser (SAIs ``SrcParser``), or None for a stock
        #: driver that composes interrupt messages without a hint.
        self.driver_hook = driver_hook
        #: Interrupt-message composer (SAIs ``IMComposer.compose``), or
        #: None for the stock message format.
        self.composer = composer
        #: Optional per-strip lifecycle tracer.
        self.tracer = tracer
        #: Zero-interrupt receive sink (RDMA-style NIC-driven placement):
        #: when installed, a fully-received packet is handed to the sink
        #: *instead of* raising any interrupt — no vector dispatch, no
        #: softirq.  Wired by the client when the policy declares
        #: ``interrupt_free``; None on every interrupting stack.
        self.zero_interrupt_sink: t.Callable[["Packet"], None] | None = None
        #: NAPI mode: interrupts are disabled while a poll is in progress;
        #: packets accumulate in :attr:`pending` and the polling core
        #: drains up to ``napi_budget`` of them per interrupt.
        self.napi = napi
        if napi_budget < 1:
            raise ValueError(f"napi_budget must be >= 1, got {napi_budget}")
        self.napi_budget = napi_budget
        self._pending: deque["Packet"] = deque()
        self._irq_armed = True
        #: Span recorder + this client's NIC-wire lane (repro.obs);
        #: None when tracing is off (the default — zero cost).
        self.spans = spans
        self.obs_track = obs_track
        #: Wire span ids keyed (strip, segment), consumed when the
        #: packet's interrupt is raised (the IRQ-placement flow source).
        self._rx_spans: dict[tuple[int, int], int] = {}
        self._wire = Resource(env, capacity=1)
        #: Analytic next-free time of the bonded wire (fast path only; see
        #: :mod:`repro.net.fastpath`).
        self._wire_free = 0.0
        self.bytes_received = Counter("nic_rx_bytes")
        self.packets_received = Counter("nic_rx_packets")
        self.interrupts_raised = Counter("nic_interrupts")

    def wire_time(self, nbytes: int) -> float:
        """Serialization time of ``nbytes`` of payload on the bonded link."""
        return nbytes * (1.0 + self.framing_overhead) / self.bandwidth

    def receive(self, packet: "Packet") -> t.Generator:
        """Receive one packet off the wire, then raise its interrupt.

        The caller (the network fabric) drives this as a process; it blocks
        for queueing + serialization, mirroring store-and-forward delivery.
        """
        with self._wire.request() as req:
            yield req
            yield self.env.timeout(self.wire_time(packet.size))
        self.complete_rx(packet)

    def admit(self, nbytes: int, arrival: float) -> float:
        """Reserve the wire analytically for a packet landing at ``arrival``.

        Closed form of :meth:`receive`'s wire resource: the packet queues
        behind the wire's drain time, serializes, and is fully received at
        the returned instant.  ``arrival`` may be in the future (the fast
        path reserves at upstream-departure time); this stays exact because
        upstream departures are monotone, so reservation order equals
        arrival order.  The caller schedules :meth:`complete_rx` at the
        returned time.  Fast-path use only — never mix with
        :meth:`receive` on the same instance.
        """
        start = self._wire_free
        if start < arrival:
            start = arrival
        done = start + self.wire_time(nbytes)
        self._wire_free = done
        return done

    def complete_rx(self, packet: "Packet") -> None:
        """Post-wire receive half: counters, tracer, tripwire, interrupt.

        Runs at the instant the packet is fully off the wire — from
        :meth:`receive` directly, or via a fast-path callback scheduled at
        the :meth:`admit` completion time.
        """
        self.bytes_received.add(packet.size)
        self.packets_received.add()
        if self.spans is not None:
            # The span is reconstructed from the (deterministic) wire
            # time, so the fast path's admit/call_at delivery and the
            # slow path's resource grant record identical bounds.
            now = self.env.now
            self._rx_spans[(packet.strip_id, packet.segment)] = self.spans.add(
                "wire",
                "nic",
                self.obs_track,
                start=now - self.wire_time(packet.size),
                end=now,
                parent=self.spans.strip_span(
                    packet.dst_client, packet.strip_id
                ),
                args={"strip": packet.strip_id, "segment": packet.segment},
            )
        if self.tracer is not None:
            self.tracer.record(
                packet.dst_client, packet.strip_id, "received", self.env.now
            )
        if self.rx_observer is not None:
            self.rx_observer(packet)
        if self.zero_interrupt_sink is not None:
            # RDMA-style completion: data is already placed; nothing to
            # interrupt.  interrupts_raised stays at zero by construction.
            self.zero_interrupt_sink(packet)
            return
        if self.napi:
            self._pending.append(packet)
            if self._irq_armed:
                self._irq_armed = False
                self._raise(packet, napi=True)
        else:
            self._raise(packet)

    # -- NAPI poll interface (called by the handling softirq) ----------------

    def napi_poll(self) -> "Packet | None":
        """Next pending packet, or None (poll done, interrupts re-armed)."""
        if self._pending:
            return self._pending.popleft()
        self._irq_armed = True
        return None

    def napi_reschedule(self) -> None:
        """Budget exhausted with work left: raise a fresh poll interrupt."""
        if not self._pending:  # drained in the meantime
            self._irq_armed = True
            return
        self._raise(self._pending[0], napi=True)

    @property
    def pending_packets(self) -> int:
        """Packets waiting for a NAPI poll."""
        return len(self._pending)

    def _raise(self, packet: "Packet", napi: bool = False) -> None:
        aff_core_id: int | None = None
        if self.driver_hook is not None:
            aff_core_id = self.driver_hook(packet)
        if self.composer is not None:
            ctx = self.composer(packet, aff_core_id)
        else:
            ctx = InterruptContext(
                packet=packet,
                aff_core_id=aff_core_id,
                request_core=getattr(packet, "request_core", None),
            )
        if napi:
            ctx.napi_source = self
        if self.spans is not None:
            wire_sid = self._rx_spans.pop(
                (packet.strip_id, packet.segment), None
            )
            if wire_sid is not None:
                # IRQ-placement edge: wire completion -> whichever core's
                # softirq span ends up handling this interrupt.
                ctx.obs_flow = self.spans.flow_begin(
                    "irq-placement", "irq", wire_sid
                )
        self.interrupts_raised.add()
        self.ioapic.raise_interrupt(ctx)

    @property
    def utilization_time(self) -> float:
        """Total wire-busy seconds so far."""
        return (
            self.bytes_received.value
            * (1.0 + self.framing_overhead)
            / self.bandwidth
        )
