#!/usr/bin/env python
"""Server-scaling campaign: how the SAIs advantage grows with PVFS size.

Reproduces the Fig. 5 story interactively: sweep the number of I/O server
nodes at a fixed transfer size and watch (a) absolute bandwidth climb
toward the NIC ceiling and (b) the SAIs speed-up grow as the conventional
scheduler's serialized strip migrations become the client-side bottleneck.

Run:  python examples/server_scaling_campaign.py [--nic-gigabits 3]
"""

import argparse

from repro import ClientConfig, ClusterConfig, WorkloadConfig, compare_policies
from repro.metrics import render_table
from repro.units import MiB, bits_per_sec


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nic-gigabits", type=int, default=3, choices=(1, 3))
    parser.add_argument("--transfer-mib", type=int, default=1)
    parser.add_argument("--processes", type=int, default=8)
    args = parser.parse_args()

    rows = []
    for n_servers in (8, 16, 32, 48, 64):
        config = ClusterConfig(
            n_servers=n_servers,
            client=ClientConfig(nic_ports=args.nic_gigabits),
            workload=WorkloadConfig(
                n_processes=args.processes,
                transfer_size=args.transfer_mib * MiB,
                file_size=max(8 * MiB, 4 * args.transfer_mib * MiB),
            ),
        )
        result = compare_policies(config)
        rows.append(
            (
                n_servers,
                f"{result.baseline.bandwidth / MiB:.1f}",
                f"{result.treatment.bandwidth / MiB:.1f}",
                f"{result.bandwidth_speedup:+.2%}",
                f"{result.baseline.migrations}",
                f"{result.baseline.clients[0].migration_wait * 1e3:.1f} ms",
            )
        )

    nic = args.nic_gigabits * 1e9
    print(
        render_table(
            (
                "servers",
                "irqbalance MB/s",
                "SAIs MB/s",
                "speed-up",
                "migrations",
                "migration queue wait",
            ),
            rows,
            title=(
                f"IOR read, {args.processes} processes, "
                f"{args.transfer_mib} MiB transfers, "
                f"{args.nic_gigabits}-Gigabit NIC "
                f"(ceiling {nic / 8 / MiB:.0f} MB/s)"
            ),
        )
    )
    print()
    print(
        "Reading the table: more servers -> more concurrent strip arrivals "
        "-> deeper migration queue under irqbalance -> bigger SAIs win, "
        "until the NIC (not the CPU) caps both."
    )
    assert bits_per_sec(1.0) == 8.0  # sanity: units helper wired correctly


if __name__ == "__main__":
    main()
