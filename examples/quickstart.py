#!/usr/bin/env python
"""Quickstart: compare irqbalance against SAIs on one cluster config.

Builds the paper's testbed (8-core client, 3-Gigabit bonded NIC, 48 PVFS
I/O servers), runs the IOR read workload under both interrupt-scheduling
policies, and prints the four metrics the paper evaluates.

Run:  python examples/quickstart.py
"""

from repro import ClientConfig, ClusterConfig, WorkloadConfig, compare_policies
from repro.units import MiB


def main() -> None:
    config = ClusterConfig(
        n_servers=48,
        client=ClientConfig(nic_ports=3),  # 3 x 1-Gigabit bonded
        workload=WorkloadConfig(
            n_processes=8,          # one IOR process per core
            transfer_size=1 * MiB,  # the IOR transfer size
            file_size=16 * MiB,     # per-process bytes (scaled-down 10 GB)
        ),
    )

    result = compare_policies(
        config, baseline="irqbalance", treatment="source_aware"
    )
    irq, sais = result.baseline, result.treatment

    print("metric                      irqbalance      SAIs")
    print("-" * 55)
    print(
        f"bandwidth            {irq.bandwidth / MiB:12.1f} MB/s "
        f"{sais.bandwidth / MiB:9.1f} MB/s"
    )
    print(
        f"L2 miss rate         {irq.l2_miss_rate:12.2%}      "
        f"{sais.l2_miss_rate:9.2%}"
    )
    print(
        f"CPU utilization      {irq.cpu_utilization:12.2%}      "
        f"{sais.cpu_utilization:9.2%}"
    )
    print(
        f"unhalted cycles      {irq.unhalted_cycles:12.3e}      "
        f"{sais.unhalted_cycles:9.3e}"
    )
    print(
        f"strip migrations     {irq.migrations:12d}      "
        f"{sais.migrations:9d}"
    )
    print()
    print(f"bandwidth speed-up:        {result.bandwidth_speedup:+.2%}")
    print(f"L2 miss-rate reduction:    {result.miss_rate_reduction:+.2%}")
    print(f"unhalted-cycle reduction:  {result.unhalted_reduction:+.2%}")
    print()
    print(
        "(paper headline: +23.57% bandwidth at 48 servers on a 3-Gigabit "
        "NIC; ~40% miss-rate cut; up to 48.57% fewer unhalted cycles)"
    )


if __name__ == "__main__":
    main()
