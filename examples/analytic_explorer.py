#!/usr/bin/env python
"""Analytic explorer: where does the Sec. III model predict a win?

Evaluates the paper's closed forms (eqs. 5/6/9) over a grid of server
counts and migration costs — no simulation events, just NumPy — and
renders the predicted-win region.  Use it to pick interesting operating
points before spending simulator time on them.

Run:  python examples/analytic_explorer.py
"""

import numpy as np

from repro.config import CostModel
from repro.core import evaluate_grid
from repro.metrics import render_table
from repro.units import KiB


def main() -> None:
    costs = CostModel()
    strip = 64 * KiB
    p_cost = costs.strip_processing_time(strip)

    # Sweep M from "as cheap as P" to 4x the calibrated cross-socket cost.
    m_values = [p_cost * factor for factor in (1, 2, 5, 10, 19, 40)]
    servers = [4, 8, 16, 32, 48, 64]
    grid = evaluate_grid(
        servers,
        m_values,
        n_cores=8,
        strip_processing=p_cost,
        rest_time=0.0,
        n_requests=16,
    )

    header = ["servers \\ M/P"] + [
        f"{m / p_cost:.0f}x" for m in m_values
    ]
    rows = []
    wins = grid.win_region(threshold=0.10)
    for i, n_servers in enumerate(servers):
        cells = []
        for j in range(len(m_values)):
            marker = "WIN " if wins[i, j] else "    "
            cells.append(f"{marker}{grid.predicted_speedup[i, j]:+7.0%}")
        rows.append([n_servers, *cells])

    print(
        render_table(
            header,
            rows,
            title=(
                "Predicted balanced-vs-source-aware speed-up "
                "(eqs. 5/6; upper envelope, TR = 0)"
            ),
        )
    )
    print()
    calibrated = costs.strip_migration_time(strip) / p_cost
    print(
        f"The calibrated testbed sits at M/P = {calibrated:.0f}x "
        f"(cross-socket).  Everything at M/P <= 1 predicts a loss — the "
        f"analysis' own statement that without M >> P, balanced "
        f"scheduling's parallel processing wins."
    )
    print(
        "Note the rows are identical: in the closed forms both sides "
        "scale linearly with NS, so the *ratio* depends only on M/P while "
        "the absolute gap (eq. 9) grows with NS — in the simulator the "
        "ratio grows with NS too, because TR (ignored here) shrinks as "
        "servers are added."
    )
    share = float(np.mean(wins))
    print(f"Fraction of the grid with a predicted >10% win: {share:.0%}")


if __name__ == "__main__":
    main()
