#!/usr/bin/env python
"""Memory-wall probe: the Section VI experiment as an interactive sweep.

Removes the NIC from the picture entirely (RAM-disk "servers") and asks:
how much parallel-I/O bandwidth can this client sustain, and how much of
it does source-unaware data placement burn?  Prints the Si-SAIs vs
Si-Irqbalance curves and the memory-bus occupancy that explains them.

Run:  python examples/memory_wall_probe.py
"""

from repro.memsim import MemsimConfig, sweep_applications
from repro.metrics import render_table
from repro.units import MiB


def main() -> None:
    config = MemsimConfig(per_app_bytes=16 * MiB)
    counts = (1, 2, 3, 4, 6, 8, 12, 16)
    results = sweep_applications(counts, config)

    rows = []
    for sais, irq in zip(results["si_sais"], results["si_irqbalance"]):
        rows.append(
            (
                sais.n_apps,
                f"{irq.bandwidth / MiB:.0f}",
                f"{sais.bandwidth / MiB:.0f}",
                f"{sais.bandwidth / irq.bandwidth - 1:+.1%}",
                f"{sais.cpu_utilization:.0%}/{irq.cpu_utilization:.0%}",
                f"{sais.membus_busy_fraction:.0%}/{irq.membus_busy_fraction:.0%}",
            )
        )

    print(
        render_table(
            (
                "apps",
                "Si-Irqbalance MB/s",
                "Si-SAIs MB/s",
                "speed-up",
                "CPU util (sais/irq)",
                "membus busy (sais/irq)",
            ),
            rows,
            title=(
                "Memory-backed parallel I/O on the 8-core head node "
                f"(DDR2 peak {config.memory_bandwidth / MiB:.0f} MB/s)"
            ),
        )
    )
    print()
    peak = max(results["si_sais"], key=lambda m: m.bandwidth)
    print(
        f"Si-SAIs peak: {peak.bandwidth / MiB:.0f} MB/s "
        f"({peak.bandwidth * 8 / 1e9:.2f} Gigabit/s) at {peak.n_apps} apps — "
        "the client could absorb an order of magnitude more network "
        "bandwidth than its 3-Gigabit NIC delivers, which is why the "
        "wire experiments understate the source-aware win."
    )


if __name__ == "__main__":
    main()
