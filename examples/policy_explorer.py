#!/usr/bin/env python
"""Policy explorer: all six interrupt-scheduling policies side by side.

Runs the same IOR workload under every registered policy — the paper's
Sec. III taxonomy: (i) request core [SAIs], (ii) current process core,
(iii) least-loaded, (iv) dedicated, plus round-robin and the irqbalance
baseline — and shows how interrupt placement drives data locality.

Run:  python examples/policy_explorer.py
"""

from repro import (
    ClientConfig,
    ClusterConfig,
    WorkloadConfig,
    available_policies,
)
from repro.cluster.builder import build_cluster
from repro.des import AllOf
from repro.metrics import core_heatmap, render_table
from repro.metrics.collectors import collect_client_metrics
from repro.metrics.sar import SarSampler
from repro.units import MiB
from repro.workloads import spawn_ior_processes


def run_sampled(config):
    """Run one policy with a sar sampler attached; returns metrics + strips."""
    cluster = build_cluster(config)
    client = cluster.clients[0]
    sampler = SarSampler(cluster.env, client.cores, interval=10e-3)
    procs = spawn_ior_processes(client, config.workload)
    cluster.env.run(until=AllOf(cluster.env, procs))
    bytes_read = sum(int(p.value) for p in procs)
    metrics = collect_client_metrics(client, cluster.env.now, bytes_read)
    per_core = list(
        zip(*(sample.per_core for sample in sampler.samples))
    )
    return metrics, per_core


def main() -> None:
    config = ClusterConfig(
        n_servers=32,
        client=ClientConfig(nic_ports=3),
        workload=WorkloadConfig(
            n_processes=8, transfer_size=1 * MiB, file_size=8 * MiB
        ),
    )

    rows = []
    heatmaps = {}
    baseline_bw = None
    for policy in available_policies():
        metrics, per_core = run_sampled(config.with_policy(policy))
        client = metrics
        if policy == "irqbalance":
            baseline_bw = metrics.bandwidth
        if policy in ("irqbalance", "source_aware", "dedicated"):
            heatmaps[policy] = per_core
        rows.append(
            (
                policy,
                f"{metrics.bandwidth / MiB:.1f}",
                f"{metrics.l2_miss_rate:.2%}",
                f"{client.consume_locations['local']}",
                f"{client.consume_locations['remote']}",
                f"{client.consume_locations['memory']}",
                f"{client.interrupt_spread:.0%}",
            )
        )

    print(
        render_table(
            (
                "policy",
                "MB/s",
                "L2 miss",
                "local",
                "remote",
                "evicted",
                "cores hit",
            ),
            rows,
            title="Where each policy leaves the data (32 servers, 3-Gigabit NIC)",
        )
    )
    assert baseline_bw is not None
    print()
    print(
        "The 'local' column is the whole story: source-aware policies "
        "deliver every strip to the consuming core's cache; the balanced "
        "policies leave almost everything remote and pay a serialized "
        "cache-to-cache migration per strip."
    )
    print()
    print("Per-core load over time (10 ms sar intervals, dark = busy):")
    for policy, per_core in heatmaps.items():
        print()
        print(f"[{policy}]")
        print(core_heatmap([series[:72] for series in per_core]))


if __name__ == "__main__":
    main()
