#!/usr/bin/env python
"""Multi-client saturation study (the Fig. 12 scenario, interactive).

Fixes the PVFS tier at 8 page-cache-hot servers and grows the number of
client nodes, printing aggregate bandwidth under both policies.  Shows
the three regimes the paper's eq. (5)-(7) predict:

1. client-bound — each client's interrupt path limits it; SAIs wins big;
2. the saturation knee — the server uplinks fill; the win peaks;
3. server-bound — per-client request rate NR collapses, and with it the
   SAIs advantage.

Run:  python examples/multi_client_saturation.py
"""

from repro import ClientConfig, ClusterConfig, ServerConfig, WorkloadConfig
from repro.cluster import compare_policies
from repro.metrics import render_table
from repro.units import Gbit, MiB


def main() -> None:
    server = ServerConfig(cache_hit_ratio=0.98, nic_bandwidth=3 * Gbit)
    rows = []
    for n_clients in (2, 4, 8, 16, 32):
        config = ClusterConfig(
            n_servers=8,
            n_clients=n_clients,
            client=ClientConfig(nic_ports=3),
            server=server,
            workload=WorkloadConfig(
                n_processes=4, transfer_size=1 * MiB, file_size=4 * MiB
            ),
        )
        result = compare_policies(config)
        per_client = result.treatment.bandwidth / n_clients / MiB
        rows.append(
            (
                n_clients,
                f"{result.baseline.bandwidth / MiB:.0f}",
                f"{result.treatment.bandwidth / MiB:.0f}",
                f"{per_client:.0f}",
                f"{result.bandwidth_speedup:+.2%}",
            )
        )

    print(
        render_table(
            (
                "clients",
                "irqbalance aggregate MB/s",
                "SAIs aggregate MB/s",
                "SAIs per-client MB/s",
                "speed-up",
            ),
            rows,
            title="Aggregate bandwidth vs client count (8 cache-hot servers)",
        )
    )
    print()
    print(
        "Once per-client bandwidth collapses, strips arrive too slowly to "
        "queue behind one another and conventional scheduling stops "
        "hurting — exactly why the paper's Fig. 12 speed-up decays toward "
        "1.39% at 56 clients."
    )


if __name__ == "__main__":
    main()
