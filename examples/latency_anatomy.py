#!/usr/bin/env python
"""Latency anatomy: where a strip's time goes under each policy.

Traces every strip through the pipeline (issued -> served -> received ->
handled -> merged) and prints the per-stage mean latency for irqbalance
and SAIs.  The stages map onto the paper's eq. (1) decomposition: the
issued..received span is TR (servers + network, policy-independent), the
received..handled span is interrupt handling (P plus queueing), and the
handled..merged span carries the migration cost TM that SAIs eliminates.

Run:  python examples/latency_anatomy.py
"""

from repro import ClusterConfig, WorkloadConfig
from repro.cluster.simulation import Simulation
from repro.metrics import render_table
from repro.metrics.trace import STAGES
from repro.units import MiB, format_time


def traced_breakdown(policy: str):
    config = ClusterConfig(
        n_servers=32,
        policy=policy,
        trace=True,
        workload=WorkloadConfig(
            n_processes=8, transfer_size=1 * MiB, file_size=8 * MiB
        ),
    )
    sim = Simulation(config)
    metrics = sim.run()
    return sim.cluster.tracer.breakdown(), metrics


def main() -> None:
    irq_breakdown, irq_metrics = traced_breakdown("irqbalance")
    sais_breakdown, sais_metrics = traced_breakdown("source_aware")

    rows = []
    for a, b in zip(STAGES, STAGES[1:]):
        irq_mean = irq_breakdown.mean_of(a, b)
        sais_mean = sais_breakdown.mean_of(a, b)
        rows.append(
            (
                f"{a} -> {b}",
                format_time(irq_mean),
                format_time(sais_mean),
                f"{(sais_mean - irq_mean) / irq_mean:+.0%}" if irq_mean else "-",
            )
        )
    rows.append(
        (
            "TOTAL",
            format_time(irq_breakdown.mean_total),
            format_time(sais_breakdown.mean_total),
            "",
        )
    )

    print(
        render_table(
            ("stage", "irqbalance", "SAIs", "SAIs delta"),
            rows,
            title="Mean per-strip latency by pipeline stage (32 servers, 3 Gb)",
        )
    )
    print()
    print(
        f"bandwidth: irqbalance {irq_metrics.bandwidth / MiB:.1f} MB/s, "
        f"SAIs {sais_metrics.bandwidth / MiB:.1f} MB/s "
        f"({sais_metrics.bandwidth / irq_metrics.bandwidth - 1:+.1%})"
    )
    print(
        "Reading the table: received->handled is interrupt handling (P "
        "plus softirq queueing) and handled->merged carries the paper's "
        "TM — the serialized cache-to-cache migration that source-aware "
        "delivery removes almost entirely.  SAIs' larger served->received "
        "span is the flip side of its higher throughput: it pushes the "
        "NIC to saturation, so strips queue on the wire instead of in "
        "the migration path."
    )


if __name__ == "__main__":
    main()
