"""Repo-level pytest configuration: test tiers and golden-file updates.

Tiers (see CONTRIBUTING.md):

* ``tier1`` — the fast default suite; auto-applied to every test that is
  marked neither ``slow`` nor ``chaos``.
* ``slow`` — scale-stress, calibration and long example campaigns.
* ``chaos`` — fault-injection tests that kill worker processes, wedge
  them with SIGSTOP, or feed the serve daemon malformed input
  (``pytest -m chaos``).  They are deterministic in outcome but
  process-heavy; a chaos test that is also fast and signal-free can opt
  back into the default suite with an explicit ``@pytest.mark.tier1``.

``--update-goldens`` rewrites the snapshot files consumed by
``tests/experiments/test_golden_snapshots.py`` instead of asserting
against them.
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite golden snapshot files instead of comparing",
    )


def pytest_collection_modifyitems(
    config: pytest.Config, items: list[pytest.Item]
) -> None:
    for item in items:
        if (
            item.get_closest_marker("slow") is None
            and item.get_closest_marker("chaos") is None
        ):
            item.add_marker(pytest.mark.tier1)
