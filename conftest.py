"""Repo-level pytest configuration: test tiers and golden-file updates.

Tiers (see CONTRIBUTING.md):

* ``tier1`` — the fast default suite; auto-applied to every test that is
  not marked ``slow``, so ``pytest -m tier1`` and ``pytest -m "not slow"``
  select the same set.
* ``slow`` — scale-stress, calibration and long example campaigns.

``--update-goldens`` rewrites the snapshot files consumed by
``tests/experiments/test_golden_snapshots.py`` instead of asserting
against them.
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite golden snapshot files instead of comparing",
    )


def pytest_collection_modifyitems(
    config: pytest.Config, items: list[pytest.Item]
) -> None:
    for item in items:
        if item.get_closest_marker("slow") is None:
            item.add_marker(pytest.mark.tier1)
