"""Legacy setup shim.

Kept so ``pip install -e .`` works on environments without the ``wheel``
package (PEP 517 editable installs need ``bdist_wheel``); all real metadata
lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
