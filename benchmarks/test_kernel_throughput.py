"""Microbenchmarks of the DES kernel itself.

Everything in this reproduction runs on the event kernel, so its raw
event throughput bounds how big a campaign is practical.  These are true
microbenchmarks (multiple rounds), unlike the single-shot figure benches.
"""

from repro.des import Environment, Resource


def test_timeout_throughput(benchmark):
    """Schedule-and-fire rate for bare timeouts."""

    def run():
        env = Environment()
        for i in range(10_000):
            env.timeout(float(i % 97))
        env.run()
        return env.now

    result = benchmark(run)
    assert result == 96.0


def test_process_switch_throughput(benchmark):
    """Generator suspend/resume rate through the scheduler."""

    def run():
        env = Environment()

        def ticker(env, steps):
            for _ in range(steps):
                yield env.timeout(1.0)

        for _ in range(10):
            env.process(ticker(env, 500))
        env.run()
        return env.now

    result = benchmark(run)
    assert result == 500.0


def test_contended_resource_throughput(benchmark):
    """Request/grant/release cycling on a contended resource."""

    def run():
        env = Environment()
        resource = Resource(env, capacity=2)

        def worker(env):
            for _ in range(100):
                with resource.request() as req:
                    yield req
                    yield env.timeout(0.001)

        for _ in range(20):
            env.process(worker(env))
        env.run()
        return resource.in_use

    assert benchmark(run) == 0
