"""Bench: regenerate Fig. 6 — L2 miss rate, 1-Gigabit NIC.

Paper: SAIs' L2 miss rate is below irqbalance's at every grid point.
"""


def test_fig6_missrate_1g(figure):
    result = figure("fig6_missrate_1g")
    assert result.measured["sais_always_lower"] == 1.0
    assert 25 <= result.measured["max_reduction_pct"] <= 65
