"""Bench: regenerate Fig. 9 — CPU utilization, 3-Gigabit NIC.

Paper: irqbalance employs more CPU cycles on data movement than SAIs at
every point, and utilization scales roughly linearly with NIC speed.
"""


def test_fig9_cpuutil_3g(figure):
    result = figure("fig9_cpuutil_3g")
    assert result.measured["irqbalance_higher_everywhere"] == 1.0
    # "a possible linear relation between CPU capacity and network speed":
    # 3x the NIC should give utilization in the 1.5x-4x range of 1 Gb.
    assert 1.5 <= result.measured["util_ratio_3g_over_1g"] <= 4.0
