"""Bench: Sec. III analytic bounds (eqs. 3-9) and the simulator cross-check.

Paper: T_balanced - TR >> T_source-aware - TR whenever M >> P, the gap
grows with NS/NR/(M-P), and the simulator's measured ordering agrees.
"""


def test_sec3_analysis(figure):
    result = figure("sec3_model")

    assert result.measured["m_over_p_much_greater_1"] == 1.0
    assert result.measured["m_over_p"] > 3.0
    assert result.measured["gap_grows_with_servers"] == 1.0

    # Simulator cross-check: measured speed-up ordered like the analytic
    # gap (48 servers >= 16 servers), and both positive.
    assert result.measured["sim_speedup_48_pct"] >= (
        result.measured["sim_speedup_16_pct"] - 2.0
    )
    assert result.measured["sim_speedup_16_pct"] > 5.0
