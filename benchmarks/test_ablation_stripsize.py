"""Bench: SAIs advantage across PVFS strip sizes.

The paper fixes a 64 KiB strip; this ablation shows the conclusion does
not hinge on that choice — M and the interrupt inter-arrival both scale
with the strip, so the saturation structure (and the win) persists.
"""


def test_ablation_stripsize(figure):
    result = figure("ablation_stripsize")
    # Wherever the client is the contended side (>= 32 KiB strips here),
    # the win persists and is roughly flat.
    assert result.measured["speedup_positive_at_client_bound_sizes"] == 1.0
    assert result.measured["speedup_spread_pct"] < 10.0
    # Tiny strips shift the bottleneck to the storage tier (per-request
    # positioning) and the policies tie — the expected regime change.
    assert result.measured["speedup_at_16k_pct"] < 5.0
