"""Bench: regenerate Fig. 11 — CPU_CLK_UNHALTED, 3-Gigabit NIC.

Paper: maximum 48.57% reduction — SAIs removes the stall cycles the
application core spends waiting on data that missed in its cache.
"""


def test_fig11_unhalted_3g(figure):
    result = figure("fig11_unhalted_3g")
    assert 35 <= result.measured["max_reduction_pct"] <= 60
    assert result.measured["mean_reduction_pct"] > 25
