"""Bench: parallel-I/O writes — interrupt scheduling must not matter.

Paper (Sec. I): "there is not a data locality issue associated with
interrupt scheduling in parallel I/O write operations"; this run verifies
the claim that motivated scoping the whole study to reads.
"""


def test_ablation_write_path(figure):
    result = figure("ablation_write_path")
    # Policies tie to well under a percent on writes.
    assert result.measured["write_speedup_pct"] <= 1.0
    # And no data strips ever migrated between caches.
    assert all(int(row[4]) == 0 for row in result.rows)
