"""Bench: regenerate Fig. 14 — the memory simulation sweep.

Paper: Si-SAIs peaks at 3576.58 MB/s with a 53.23% speed-up and a 51.37%
L2 miss-rate reduction; both schemes converge to ~2500 MB/s once
applications saturate the cores.
"""

from repro.units import MiB


def test_fig14_memsim(figure):
    result = figure("fig14_memsim")

    assert 3000 <= result.measured["peak_sais_mbs"] <= 4200
    assert 40 <= result.measured["peak_speedup_pct"] <= 65
    assert 40 <= result.measured["miss_reduction_at_peak_pct"] <= 60
    assert 1900 <= result.measured["converged_mbs"] <= 3000

    # The speed-up decays toward zero at the right edge of the sweep.
    last_speedup = float(result.rows[-1][3].rstrip("%").lstrip("+"))
    assert last_speedup < 10
