"""Bench: regenerate Fig. 5 — IOR bandwidth + speed-up, 3-Gigabit NIC.

Paper: SAIs improves bandwidth in all (non-server-bound) cases; speed-up
grows with the number of I/O servers to a maximum of 23.57% at 48 nodes;
absolute bandwidth never exceeds 3 Gigabit/s.
"""


def test_fig5_bandwidth_3g(figure):
    result = figure("fig5_bandwidth_3g")

    # Shape 1: the peak speed-up lands in the paper's band.
    assert 10 <= result.measured["max_speedup_pct"] <= 35

    # Shape 2: bandwidth never exceeds the 3-Gigabit line.
    assert result.measured["bandwidth_below_gbit"] < 3.0

    # Shape 3: the speed-up at the largest server count is close to the
    # grid-wide maximum (the win grows with servers).
    assert (
        result.measured["speedup_at_most_servers_pct"]
        >= 0.7 * result.measured["max_speedup_pct"]
    )
