"""Bench: policy (i) vs policy (ii) under migration-during-blocking-I/O.

Paper (Sec. III): "since the process migration rarely happens during a
blocking I/O, the expected performance difference between the first two
policies is trivial" — but policy (ii) should pull ahead as migration
becomes common, because the wire hint goes stale while the process
locator keeps tracking the consumer.
"""


def test_ablation_migration(figure):
    result = figure("ablation_migration")

    # No migrations -> the two policies tie (paper's "trivial" claim).
    assert result.measured["gap_trivial_when_migration_rare_pct"] <= 1.0

    # Frequent migrations -> the locator policy pulls ahead.
    assert result.measured["gain_at_30pct_migration_pct"] > 1.0

    # The mechanism, deterministically: policy (i)'s stale hints force
    # strip migrations in proportion to the hop rate, while policy (ii)
    # never migrates a strip at any rate.
    policy_i_migrations = [int(row[4]) for row in result.rows]
    policy_ii_migrations = [int(row[5]) for row in result.rows]
    assert policy_i_migrations == sorted(policy_i_migrations)
    assert policy_i_migrations[-1] > policy_i_migrations[0]
    assert all(count == 0 for count in policy_ii_migrations)
