"""Bench: the source-aware win across hardware generations.

Extension of the paper's conclusion: NIC bandwidth grew 25-100x since
2008 while per-line coherence latency improved ~3x, so the serialized
migration path dominates harder and the source-aware win must grow.
"""


def test_extension_modern_hw(figure):
    result = figure("extension_modern_hw")
    assert result.measured["win_grows_with_network_speed"] == 1.0
    # Paper-era point reproduces the Fig. 5 magnitude...
    assert 10 <= result.measured["paper_era_speedup_pct"] <= 35
    # ...and the modern point dwarfs it.
    assert result.measured["modern_25g_speedup_pct"] > 2 * (
        result.measured["paper_era_speedup_pct"]
    )
