"""Bench: regenerate Fig. 12 — multi-client scalability, 8 I/O servers.

Paper: the aggregate speed-up peaks at 20.46% (8 clients), then decays
as the servers saturate and the per-client request rate NR collapses —
down to 1.39% at 56 clients — while never going meaningfully negative.
"""


def test_fig12_multiclient(figure):
    result = figure("fig12_multiclient")

    # Peak in the paper's band, at or before the saturation knee.
    assert 10 <= result.measured["peak_speedup_pct"] <= 30
    assert result.measured["peak_at_clients"] <= 8

    # Decay: the most-saturated points show only a residual win.
    assert -1.0 <= result.measured["min_speedup_pct"] <= 5.0

    # Aggregate bandwidth grows monotonically-ish toward saturation.
    bandwidths = [float(row[2]) for row in result.rows]
    assert bandwidths[-1] > bandwidths[0]
