"""Bench: sensitivity of the SAIs advantage to M/P and NIC bandwidth.

Paper (Sec. VI): SAIs' effectiveness "depends on the assumption that the
underlying system is I/O intensive and that the system has plenty of
network bandwidth" — and the whole analysis rests on M >> P.  Shrinking
either must shrink the win.
"""


def test_ablation_costmodel(figure):
    result = figure("ablation_costmodel")
    assert result.measured["advantage_needs_m_much_greater_p"] == 1.0
    assert result.measured["advantage_needs_bandwidth"] == 1.0
