"""Bench: regenerate Fig. 10 — CPU_CLK_UNHALTED, 1-Gigabit NIC.

Paper: SAIs cuts the unhalted-cycle cost of the fixed read workload by
up to 27.14% (our per-strip stall costs are rate-independent, so the
modeled reduction sits nearer the 3-Gigabit figure; see EXPERIMENTS.md).
"""


def test_fig10_unhalted_1g(figure):
    result = figure("fig10_unhalted_1g")
    # SAIs spends meaningfully fewer cycles per byte read.
    assert 15 <= result.measured["max_reduction_pct"] <= 60
    assert result.measured["mean_reduction_pct"] > 10
