"""Bench: regenerate Fig. 7 — L2 miss rate, 3-Gigabit NIC.

Paper: rates rise with network bandwidth, and SAIs cuts the miss rate by
almost 40%.
"""

from repro.experiments import run_experiment_by_id


def test_fig7_missrate_3g(figure):
    result = figure("fig7_missrate_3g")
    assert result.measured["sais_always_lower"] == 1.0
    # Paper: "the L2 miss rate is reduced almost 40% by SAIs".
    assert 30 <= result.measured["max_reduction_pct"] <= 65


def test_missrate_rises_with_bandwidth(benchmark):
    """Fig. 7 vs Fig. 6: more NIC bandwidth -> no lower absolute miss rates."""

    def both():
        return (
            run_experiment_by_id("fig6_missrate_1g", scale="quick"),
            run_experiment_by_id("fig7_missrate_3g", scale="quick"),
        )

    one_g, three_g = benchmark.pedantic(both, rounds=1, iterations=1)

    def mean_baseline_rate(result):
        rates = [float(row[2].rstrip("%")) for row in result.rows]
        return sum(rates) / len(rates)

    assert mean_baseline_rate(three_g) >= mean_baseline_rate(one_g) * 0.95
