"""Shared helpers for the figure-regeneration benches.

Every bench runs one experiment through pytest-benchmark (a single
round — these are simulation campaigns, not microbenchmarks), prints the
regenerated table, records it under ``benchmarks/results/`` and returns
the :class:`~repro.experiments.base.ExperimentResult` so the test body
can assert the paper's shape claims.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.experiments import run_experiment_by_id

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Benches default to the 'default' scale; set REPRO_BENCH_SCALE=quick for
#: a fast smoke pass or =full for longer runs.
SCALE = os.environ.get("REPRO_BENCH_SCALE", "default")

#: Opt-in cache reuse: set REPRO_BENCH_CACHE=1 to route the benches
#: through the parallel runner's on-disk result cache (default dir), or
#: to a path to use that directory.  Off by default — a bench should
#: normally measure the simulation, not a cache read.
BENCH_CACHE = os.environ.get("REPRO_BENCH_CACHE", "")


def _run_for_bench(exp_id: str, scale: str):
    if not BENCH_CACHE:
        return run_experiment_by_id(exp_id, scale=scale)
    from repro.runner import ExperimentRunner

    cache_dir = None if BENCH_CACHE == "1" else BENCH_CACHE
    return ExperimentRunner(jobs=1, cache_dir=cache_dir).run(exp_id, scale)


@pytest.fixture
def figure(benchmark):
    """Run one experiment under pytest-benchmark and persist its table."""

    def run(exp_id: str):
        result = benchmark.pedantic(
            _run_for_bench,
            args=(exp_id, SCALE),
            rounds=1,
            iterations=1,
        )
        rendered = result.render()
        print()
        print(rendered)
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{exp_id}.txt").write_text(rendered + "\n")
        return result

    return run
