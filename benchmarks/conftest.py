"""Shared helpers for the figure-regeneration benches.

Every bench runs one experiment through pytest-benchmark (a single
round — these are simulation campaigns, not microbenchmarks), prints the
regenerated table, records it under ``benchmarks/results/`` and returns
the :class:`~repro.experiments.base.ExperimentResult` so the test body
can assert the paper's shape claims.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.experiments import run_experiment_by_id

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Benches default to the 'default' scale; set REPRO_BENCH_SCALE=quick for
#: a fast smoke pass or =full for longer runs.
SCALE = os.environ.get("REPRO_BENCH_SCALE", "default")


@pytest.fixture
def figure(benchmark):
    """Run one experiment under pytest-benchmark and persist its table."""

    def run(exp_id: str):
        result = benchmark.pedantic(
            run_experiment_by_id,
            args=(exp_id,),
            kwargs={"scale": SCALE},
            rounds=1,
            iterations=1,
        )
        rendered = result.render()
        print()
        print(rendered)
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{exp_id}.txt").write_text(rendered + "\n")
        return result

    return run
