"""Bench: regenerate Fig. 8 — CPU utilization, single app, 1-Gigabit NIC.

Paper: utilization stays low (max 15.13%) under either policy because
the NIC — not the CPU — is the bottleneck; idle cycles wait for the NIC.
"""


def test_fig8_cpuutil_1g(figure):
    result = figure("fig8_cpuutil_1g")
    # Far below saturation, same order as the paper's 15%.
    assert result.measured["max_util_pct"] <= 20.0
    assert result.measured["max_util_pct"] >= 1.0
