"""Bench: regenerate Sec. V-C — 1-Gigabit NIC bandwidth comparison.

Paper: the 1-Gigabit link is the bottleneck, so the improvement is small
(peak 6.05%).  In our model the link saturates fully and the policies
essentially tie; the shape claim is "NIC-bound => no meaningful win".
"""


def test_sec5c_bandwidth_1g(figure):
    result = figure("sec5c_bandwidth_1g")

    # Small-to-none speed-up, never a meaningful regression.
    assert -2.0 <= result.measured["peak_speedup_pct"] <= 8.0

    # Bandwidth rides just under the 1-Gigabit line.
    assert 0.8 <= result.measured["bandwidth_below_gbit"] < 1.0
