"""Bench: the four Sec. III scheduling policies head to head.

Paper: policy (ii) ["current process core"] should be nearly identical to
policy (i) ["request core"] because processes rarely migrate during a
blocking I/O; both source-aware policies beat the conventional ones.
"""


def test_ablation_policies(figure):
    result = figure("ablation_policies")

    # Policies (i) and (ii) within a couple of percent of each other.
    assert result.measured["policy_i_vs_ii_gap_pct_max"] <= 2.0

    # Source-aware beats every conventional policy.
    assert result.measured["source_aware_beats_conventional"] == 1.0
