"""Benches: SAIs vs real receive/workload mechanisms (NAPI, collective I/O)."""


def test_extension_napi(figure):
    result = figure("extension_napi")
    assert result.measured["win_survives_napi"] == 1.0
    # NAPI may shave a few points but not flip or erase the result.
    assert (
        result.measured["speedup_with_napi_pct"]
        > 0.4 * result.measured["speedup_without_napi_pct"]
    )


def test_extension_collective(figure):
    result = figure("extension_collective")
    assert result.measured["collective_costs_bandwidth"] == 1.0
    assert result.measured["win_survives_collective"] == 1.0
