#!/usr/bin/env python
"""Docs hygiene checker: broken links, stale CLI flags, API coverage.

Three fast, dependency-free checks over the user-facing markdown
(README.md, DESIGN.md, EXPERIMENTS.md, CONTRIBUTING.md, docs/*.md):

1. **Links** — every relative markdown link/image target must exist in
   the repository (anchors are stripped; external schemes are skipped).
2. **Flags** — every ``--flag`` token the docs mention must be defined
   by the ``sais-repro`` argument parser (or be a known external tool's
   flag, e.g. pytest's ``--update-goldens``), so renamed or removed
   options can't linger in prose.
3. **API coverage** — ``docs/API.md`` must mention every ``src/repro``
   subsystem as ``repro.<name>``.

Run from the repository root::

    PYTHONPATH=src python scripts/check_docs.py

Exits non-zero listing every problem; CI runs this as a fast job.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parents[1]

DOC_FILES = [
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "CONTRIBUTING.md",
    "ROADMAP.md",
    *sorted(str(p.relative_to(ROOT)) for p in (ROOT / "docs").glob("*.md")),
]

#: Flags the docs legitimately mention that belong to other tools.
EXTERNAL_FLAGS = {
    "--benchmark-only",   # pytest-benchmark
    "--update-goldens",   # our pytest conftest option
    "--cov",              # pytest-cov (CONTRIBUTING)
}

LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
FLAG_RE = re.compile(r"(?<![\w/-])--[a-z][a-z0-9-]+")


def parser_flags() -> set[str]:
    """Every ``--option`` the sais-repro CLI defines, plus pytest's own."""
    from repro.cli import _build_parser

    flags: set[str] = set()

    def walk(parser: argparse.ArgumentParser) -> None:
        for action in parser._actions:
            flags.update(
                opt for opt in action.option_strings if opt.startswith("--")
            )
            if isinstance(action, argparse._SubParsersAction):
                for sub in action.choices.values():
                    walk(sub)

    walk(_build_parser())
    return flags


def check_links(problems: list[str]) -> None:
    for rel in DOC_FILES:
        path = ROOT / rel
        if not path.exists():
            problems.append(f"{rel}: listed in DOC_FILES but missing")
            continue
        for target in LINK_RE.findall(path.read_text(encoding="utf-8")):
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, mailto:
                continue
            target = target.split("#", 1)[0]
            if not target:
                continue  # pure in-page anchor
            resolved = (path.parent / target).resolve()
            if not resolved.exists():
                problems.append(f"{rel}: broken link -> {target}")


def check_flags(problems: list[str]) -> None:
    known = parser_flags() | EXTERNAL_FLAGS
    for rel in DOC_FILES:
        path = ROOT / rel
        if not path.exists():
            continue
        for line_no, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            for flag in FLAG_RE.findall(line):
                if flag not in known:
                    problems.append(
                        f"{rel}:{line_no}: documents unknown flag {flag}"
                    )


def check_api_coverage(problems: list[str]) -> None:
    api = (ROOT / "docs" / "API.md").read_text(encoding="utf-8")
    src = ROOT / "src" / "repro"
    subsystems = sorted(
        entry.stem
        for entry in src.iterdir()
        if not entry.name.startswith("_")
        and (entry.is_dir() or entry.suffix == ".py")
    )
    for name in subsystems:
        if f"repro.{name}" not in api:
            problems.append(f"docs/API.md: subsystem repro.{name} not mentioned")


def main() -> int:
    problems: list[str] = []
    check_links(problems)
    check_flags(problems)
    check_api_coverage(problems)
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        print(f"check_docs: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    print(f"check_docs: OK ({len(DOC_FILES)} files)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
