"""SAIs on clients with more cores than the 5-bit hint can address.

The paper's Fig. 4 encoding identifies at most 32 cores.  On a larger
client, requests issued from cores >= 32 travel unhinted and their
interrupts fall back to load-based placement — SAIs degrades gracefully
instead of failing, and processes on encodable cores keep their full
locality benefit.
"""

import pytest

from repro import ClientConfig, ClusterConfig, WorkloadConfig, run_experiment
from repro.cluster.simulation import Simulation
from repro.hw.cache import Location
from repro.net.ip_options import MAX_ENCODABLE_CORES
from repro.units import KiB, MiB


def many_core_config(n_cores=40, n_processes=40):
    return ClusterConfig(
        n_servers=8,
        policy="source_aware",
        # Single-socket topology so odd core counts are valid.
        client=ClientConfig(n_cores=n_cores, n_sockets=1),
        workload=WorkloadConfig(
            n_processes=n_processes, transfer_size=256 * KiB, file_size=512 * KiB
        ),
    )


class TestManyCoreClient:
    def test_run_completes_without_error(self):
        metrics = run_experiment(many_core_config())
        assert metrics.bytes_read == 40 * 512 * KiB

    def test_unencodable_hints_counted(self):
        sim = Simulation(many_core_config())
        sim.run()
        client = sim.cluster.clients[0]
        # 8 of 40 processes sit on cores 32..39: 2 requests x 8 strips each.
        assert client.hint_messager.hints_unencodable.value > 0
        assert client.hint_messager.hints_attached.value > 0

    def test_encodable_cores_keep_locality(self):
        sim = Simulation(many_core_config())
        sim.run()
        client = sim.cluster.clients[0]
        consumed = client.cache.consume_by_location
        # Strips for cores < 32 stay local; only the unhinted tail of
        # processes pays remote consumes.
        assert consumed[Location.LOCAL].value > consumed[Location.REMOTE].value

    def test_exactly_32_cores_fully_hinted(self):
        config = many_core_config(
            n_cores=MAX_ENCODABLE_CORES, n_processes=MAX_ENCODABLE_CORES
        )
        sim = Simulation(config)
        metrics = sim.run()
        client = sim.cluster.clients[0]
        assert client.hint_messager.hints_unencodable.value == 0
        assert metrics.migrations == 0

    def test_33rd_core_is_the_first_unhinted(self):
        config = many_core_config(n_cores=33, n_processes=33)
        sim = Simulation(config)
        sim.run()
        client = sim.cluster.clients[0]
        # Exactly one process (core 32) is unhinted: 2 requests x strips.
        strips_per_request = 256 * KiB // config.strip_size
        requests = 512 * KiB // (256 * KiB)
        assert client.hint_messager.hints_unencodable.value == (
            strips_per_request * requests
        )
