"""Calibration: the emergent headline numbers stay in the paper's bands.

These are the contract between the cost-model constants (DESIGN.md §5)
and the reproduced figures.  If a model change moves a headline out of
band, this suite fails before the benches do.
"""

import pytest

from repro import ClientConfig, ClusterConfig, WorkloadConfig, compare_policies
from repro.memsim import MemsimConfig, run_memsim_point
from repro.units import MiB

pytestmark = pytest.mark.slow


def fig5_config(n_servers, nic_ports=3):
    return ClusterConfig(
        n_servers=n_servers,
        client=ClientConfig(nic_ports=nic_ports),
        workload=WorkloadConfig(
            n_processes=8, transfer_size=1 * MiB, file_size=8 * MiB
        ),
    )


@pytest.fixture(scope="module")
def comparison_48():
    return compare_policies(fig5_config(48))


@pytest.fixture(scope="module")
def comparison_16():
    return compare_policies(fig5_config(16))


class TestFig5Band:
    def test_peak_speedup_in_band(self, comparison_48):
        # Paper: 23.57% at 48 servers.
        assert 0.12 <= comparison_48.bandwidth_speedup <= 0.35

    def test_speedup_grows_with_servers(self, comparison_16, comparison_48):
        assert (
            comparison_48.bandwidth_speedup
            >= comparison_16.bandwidth_speedup - 0.02
        )

    def test_bandwidth_stays_below_nic(self, comparison_48):
        nic = fig5_config(48).client.nic_bandwidth
        assert comparison_48.treatment.bandwidth < nic

    def test_sais_wins(self, comparison_48):
        assert (
            comparison_48.treatment.bandwidth
            > comparison_48.baseline.bandwidth
        )


class TestOneGigabitBand:
    def test_nic_bound_policies_tie(self):
        comparison = compare_policies(fig5_config(16, nic_ports=1))
        # Paper: at most 6.05%; ours is NIC-saturated, so ~0-6%.
        assert -0.02 <= comparison.bandwidth_speedup <= 0.08

    def test_bandwidth_near_line_rate(self):
        comparison = compare_policies(fig5_config(16, nic_ports=1))
        nic = fig5_config(16, nic_ports=1).client.nic_bandwidth
        assert comparison.treatment.bandwidth > 0.8 * nic


class TestMissRateBand:
    def test_reduction_in_band(self, comparison_48):
        # Paper: L2 miss rate reduced by almost 40% (3 Gb).
        assert 0.30 <= comparison_48.miss_rate_reduction <= 0.65

    def test_absolute_rates_plausible(self, comparison_48):
        # Paper figures plot rates in the ~4-27% range.
        assert 0.02 <= comparison_48.treatment.l2_miss_rate <= 0.30
        assert 0.05 <= comparison_48.baseline.l2_miss_rate <= 0.35


class TestUtilizationBand:
    def test_3g_utilization_moderate(self, comparison_48):
        # Paper Fig. 9: ~12-22%; CPU is never the bottleneck.
        assert comparison_48.baseline.cpu_utilization < 0.40
        assert comparison_48.treatment.cpu_utilization < 0.30

    def test_irqbalance_burns_more_cpu(self, comparison_48):
        assert (
            comparison_48.baseline.cpu_utilization
            > comparison_48.treatment.cpu_utilization
        )


class TestUnhaltedBand:
    def test_reduction_in_band(self, comparison_48):
        # Paper: up to 48.57% at 3 Gb.
        assert 0.30 <= comparison_48.unhalted_reduction <= 0.60


class TestMemsimBand:
    def test_peak_bandwidth_and_speedup(self):
        cfg = MemsimConfig(per_app_bytes=8 * MiB)
        sais = run_memsim_point("si_sais", 4, cfg)
        irq = run_memsim_point("si_irqbalance", 4, cfg)
        speedup = sais.bandwidth / irq.bandwidth - 1
        # Paper: 3576.58 MB/s and 53.23%.
        assert 3000 * MiB <= sais.bandwidth <= 4200 * MiB
        assert 0.35 <= speedup <= 0.70

    def test_convergence_at_saturation(self):
        cfg = MemsimConfig(per_app_bytes=8 * MiB)
        sais = run_memsim_point("si_sais", 16, cfg)
        irq = run_memsim_point("si_irqbalance", 16, cfg)
        # Paper: both sustain ~2500 MB/s once the CPU saturates.
        assert abs(sais.bandwidth / irq.bandwidth - 1) < 0.10
        assert 1800 * MiB <= sais.bandwidth <= 3200 * MiB

    def test_saturated_utilization(self):
        cfg = MemsimConfig(per_app_bytes=8 * MiB)
        sais = run_memsim_point("si_sais", 16, cfg)
        # Paper: 99.47% when applications saturate the cores.
        assert sais.cpu_utilization > 0.90
