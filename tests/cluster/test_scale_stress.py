"""Scale stress: big configurations complete and keep their invariants."""

import pytest

from repro import ClientConfig, ClusterConfig, WorkloadConfig
from repro.cluster.simulation import Simulation
from repro.units import KiB, MiB


@pytest.mark.slow
def test_large_cluster_completes_with_invariants():
    """64 servers, 32 oversubscribed processes, 4 clients — one big run."""
    config = ClusterConfig(
        n_servers=64,
        n_clients=4,
        workload=WorkloadConfig(
            n_processes=32,  # 4x oversubscribed on 8 cores
            transfer_size=512 * KiB,
            file_size=1 * MiB,
        ),
    )
    sim = Simulation(config)
    metrics = sim.run()

    expected = 4 * 32 * 1 * MiB
    assert metrics.bytes_read == expected

    for client in sim.cluster.clients:
        # Conservation per client.
        handled = sum(d.handled.value for d in client.daemons)
        consumed = sum(
            c.value for c in client.cache.consume_by_location.values()
        )
        assert handled == consumed
        assert client.pfs.in_flight == 0
        # No negative or >1 utilizations anywhere.
        for core in client.cores:
            assert 0 <= core.utilization() <= 1.0


@pytest.mark.slow
def test_single_core_client_degenerate_case():
    """Everything lands on one core: source-aware == every other policy."""
    from repro import compare_policies

    config = ClusterConfig(
        n_servers=8,
        client=ClientConfig(n_cores=1, n_sockets=1),
        workload=WorkloadConfig(
            n_processes=2, transfer_size=256 * KiB, file_size=512 * KiB
        ),
    )
    comparison = compare_policies(config)
    assert comparison.baseline.migrations == 0
    assert comparison.treatment.migrations == 0
    assert abs(comparison.bandwidth_speedup) < 0.01


@pytest.mark.slow
def test_tiny_transfer_many_requests():
    """One-strip transfers: the degenerate no-parallel-I/O case."""
    config = ClusterConfig(
        n_servers=16,
        workload=WorkloadConfig(
            n_processes=4, transfer_size=64 * KiB, file_size=2 * MiB
        ),
    )
    metrics = Simulation(config).run()
    assert metrics.bytes_read == 4 * 2 * MiB
