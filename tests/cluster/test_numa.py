"""Two-socket NUMA topology: intra- vs cross-socket migration costs."""

import pytest

from repro import ClientConfig, ClusterConfig, CostModel, WorkloadConfig
from repro.cluster.simulation import Simulation, run_experiment
from repro.errors import ConfigError
from repro.units import KiB, MiB


class TestTopologyConfig:
    def test_default_two_quad_core_sockets(self):
        client = ClientConfig()
        assert client.n_sockets == 2
        assert client.cores_per_socket == 4
        assert client.socket_of(0) == 0
        assert client.socket_of(3) == 0
        assert client.socket_of(4) == 1
        assert client.socket_of(7) == 1

    def test_uneven_split_rejected(self):
        with pytest.raises(ConfigError):
            ClientConfig(n_cores=6, n_sockets=4)

    def test_socket_of_bounds(self):
        with pytest.raises(ConfigError):
            ClientConfig().socket_of(8)

    def test_single_socket_topology(self):
        client = ClientConfig(n_cores=8, n_sockets=1)
        assert all(client.socket_of(i) == 0 for i in range(8))


class TestMigrationCosts:
    def test_intra_socket_cheaper_than_cross(self):
        costs = CostModel()
        strip = 64 * KiB
        assert costs.strip_migration_time(strip, same_socket=True) < (
            0.6 * costs.strip_migration_time(strip, same_socket=False)
        )

    def test_calibrated_mean_preserved(self):
        """(3/7) intra + (4/7) cross ~ the DESIGN.md 250 us mean M."""
        costs = CostModel()
        strip = 64 * KiB
        mean = (3 / 7) * costs.strip_migration_time(strip, True) + (
            4 / 7
        ) * costs.strip_migration_time(strip, False)
        assert mean == pytest.approx(250e-6, rel=0.08)


class TestNumaInSimulation:
    def test_same_socket_handling_is_faster(self):
        """Consumer on core 0: handling on core 3 (same socket) must beat
        handling on core 7 (other socket)."""
        from repro.cluster.builder import build_cluster
        from repro.workloads import spawn_ior_processes
        from repro.des import AllOf

        def run_with_dedicated(core_index):
            config = ClusterConfig(
                n_servers=8,
                policy="dedicated",
                workload=WorkloadConfig(
                    n_processes=1, transfer_size=512 * KiB, file_size=2 * MiB
                ),
            )
            cluster = build_cluster(config)
            # Repin the dedicated policy to the requested handler core.
            for client in cluster.clients:
                client.policy.core_index = core_index
            procs = spawn_ior_processes(
                cluster.clients[0], config.workload
            )
            cluster.env.run(until=AllOf(cluster.env, procs))
            return cluster.env.now

        same_socket_time = run_with_dedicated(3)
        cross_socket_time = run_with_dedicated(7)
        assert same_socket_time < cross_socket_time

    def test_sais_unaffected_by_topology(self):
        wide = ClientConfig(n_sockets=1)
        config = ClusterConfig(
            n_servers=16,
            policy="source_aware",
            workload=WorkloadConfig(
                n_processes=4, transfer_size=512 * KiB, file_size=2 * MiB
            ),
        )
        two_socket = run_experiment(config)
        one_socket = run_experiment(config.replace(client=wide))
        # No migrations under SAIs, so socket layout changes nothing.
        assert two_socket.bandwidth == pytest.approx(
            one_socket.bandwidth, rel=0.02
        )

    def test_migration_categories_present_under_irqbalance(self):
        sim = Simulation(
            ClusterConfig(
                n_servers=16,
                policy="irqbalance",
                workload=WorkloadConfig(
                    n_processes=8, transfer_size=1 * MiB, file_size=4 * MiB
                ),
            )
        )
        sim.run()
        busy = {}
        for core in sim.cluster.clients[0].cores:
            for k, v in core.busy_by_category.items():
                busy[k] = busy.get(k, 0.0) + v
        assert busy.get("migration", 0) > 0
