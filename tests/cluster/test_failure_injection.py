"""Failure injection: the system degrades, it does not break.

Scenarios a production deployment of SAIs would face: corrupted IP
options on the wire, a straggling I/O server, and seed-to-seed
variability of the headline result.
"""

import dataclasses

import pytest

from repro import ClusterConfig, ServerConfig, WorkloadConfig, compare_policies
from repro.cluster.builder import build_cluster
from repro.core.sais import SrcParser
from repro.des import AllOf
from repro.net import Packet
from repro.units import KiB, MiB
from repro.workloads import spawn_ior_processes


class TestCorruptedOptions:
    def make_packet(self, options):
        return Packet(
            size=64 * KiB,
            src_server=0,
            dst_client=0,
            request_id=1,
            strip_id=0,
            options=options,
        )

    @pytest.mark.parametrize(
        "garbage",
        [
            bytes([0x44]),            # unknown option class
            bytes([0x7F, 0x7F]),      # copied=0 junk
            bytes([0x01, 0x02, 0x03]),  # NOP then unknown
        ],
    )
    def test_parser_survives_garbage(self, garbage):
        parser = SrcParser()
        assert parser.parse(self.make_packet(garbage)) is None
        assert parser.parse_errors.value == 1

    def test_corrupted_flow_in_full_cluster(self):
        """Corrupt every packet from one server: run completes, only that
        server's strips lose locality."""
        config = ClusterConfig(
            n_servers=4,
            policy="source_aware",
            workload=WorkloadConfig(
                n_processes=2, transfer_size=256 * KiB, file_size=512 * KiB
            ),
        )
        cluster = build_cluster(config)
        victim = cluster.servers[0]
        original = victim.capsuler.encapsulate

        def corrupt(packet, hint):
            original(packet, hint)
            if packet.options:
                packet.options = bytes([0x44]) + packet.options[1:]

        victim.capsuler.encapsulate = corrupt
        procs = spawn_ior_processes(cluster.clients[0], config.workload)
        cluster.env.run(until=AllOf(cluster.env, procs))

        client = cluster.clients[0]
        assert client.src_parser.parse_errors.value > 0
        # All data still delivered.
        total = sum(int(p.value) for p in procs)
        assert total == 2 * 512 * KiB
        # Non-corrupted servers' strips still found their core: not every
        # consume degenerated.
        locations = {
            loc.value: int(c.value)
            for loc, c in client.cache.consume_by_location.items()
        }
        assert locations["local"] > 0


class TestStragglerServer:
    def run_with_straggler(self, policy):
        config = ClusterConfig(
            n_servers=8,
            policy=policy,
            workload=WorkloadConfig(
                n_processes=4, transfer_size=512 * KiB, file_size=1 * MiB
            ),
        )
        cluster = build_cluster(config)
        # Server 0's disk is 20x slower and its page cache useless.
        slow = dataclasses.replace(
            config.server, disk_rate=config.server.disk_rate / 20,
            cache_hit_ratio=0.0,
        )
        cluster.servers[0].config = slow
        cluster.servers[0].disk.rate = slow.disk_rate
        procs = spawn_ior_processes(cluster.clients[0], config.workload)
        cluster.env.run(until=AllOf(cluster.env, procs))
        total = sum(int(p.value) for p in procs)
        return total, cluster.env.now

    def test_run_completes_despite_straggler(self):
        total, elapsed = self.run_with_straggler("source_aware")
        assert total == 4 * 1 * MiB
        assert elapsed > 0

    def test_straggler_hurts_but_ordering_survives(self):
        _, sais_time = self.run_with_straggler("source_aware")
        _, irq_time = self.run_with_straggler("irqbalance")
        # Both are straggler-dominated; SAIs is never slower by much.
        assert sais_time <= irq_time * 1.05


class TestSeedRobustness:
    def test_headline_stable_across_seeds(self):
        speedups = []
        for seed in (1, 2, 3, 4, 5):
            config = ClusterConfig(
                n_servers=32,
                seed=seed,
                workload=WorkloadConfig(
                    n_processes=8, transfer_size=1 * MiB, file_size=4 * MiB
                ),
            )
            speedups.append(compare_policies(config).bandwidth_speedup)
        assert min(speedups) > 0.08
        assert max(speedups) - min(speedups) < 0.12
