"""MSS-segmented flows through the full cluster path.

With ``NetworkConfig.mss`` set, each strip travels as a train of
per-segment packets, each raising its own interrupt; the consumer is
woken only when the strip reassembles.  The IP option's copied flag puts
the SAIs hint on every segment, so source-aware routing still works.
"""

import pytest

from repro import ClusterConfig, NetworkConfig, WorkloadConfig, compare_policies
from repro.cluster.simulation import Simulation
from repro.units import KiB, MiB


def config(mss, policy="irqbalance", **kwargs):
    defaults = dict(
        n_servers=8,
        policy=policy,
        network=NetworkConfig(mss=mss),
        workload=WorkloadConfig(
            n_processes=2, transfer_size=512 * KiB, file_size=1 * MiB
        ),
    )
    defaults.update(kwargs)
    return ClusterConfig(**defaults)


STRIPS = 2 * 1 * MiB // (64 * KiB)  # processes x file / strip


class TestSegmentedFlows:
    def test_all_bytes_delivered(self):
        sim = Simulation(config(mss=8960))
        metrics = sim.run()
        assert metrics.bytes_read == 2 * MiB

    def test_interrupt_count_scales_with_segments(self):
        unsegmented = Simulation(config(mss=None))
        unsegmented.run()
        segmented = Simulation(config(mss=8960))
        segmented.run()
        irqs_plain = unsegmented.cluster.clients[0].nic.interrupts_raised.value
        irqs_seg = segmented.cluster.clients[0].nic.interrupts_raised.value
        # 64 KiB strip over 8960-byte segments -> 8 interrupts per strip.
        assert irqs_plain == STRIPS
        assert irqs_seg == 8 * STRIPS

    def test_consumer_woken_once_per_strip(self):
        sim = Simulation(config(mss=8960))
        sim.run()
        client = sim.cluster.clients[0]
        consumed = sum(
            counter.value
            for counter in client.cache.consume_by_location.values()
        )
        assert consumed == STRIPS

    def test_hint_parsed_on_every_segment(self):
        sim = Simulation(config(mss=8960, policy="source_aware"))
        sim.run()
        parser = sim.cluster.clients[0].src_parser
        assert parser.hints_found.value == 8 * STRIPS

    def test_sais_stays_local_under_segmentation(self):
        sim = Simulation(config(mss=8960, policy="source_aware"))
        metrics = sim.run()
        assert metrics.migrations == 0
        locations = metrics.clients[0].consume_locations
        assert locations["remote"] == 0

    def test_segmentation_costs_bandwidth(self):
        plain = Simulation(config(mss=None)).run()
        segmented = Simulation(config(mss=1448)).run()
        # Per-segment fixed interrupt costs make segmented flows slower.
        assert segmented.bandwidth <= plain.bandwidth

    def test_sais_still_wins_when_segmented(self):
        comparison_config = config(
            mss=8960,
            workload=WorkloadConfig(
                n_processes=8, transfer_size=1 * MiB, file_size=4 * MiB
            ),
            n_servers=16,
        )
        result = compare_policies(comparison_config)
        assert result.bandwidth_speedup > 0.05

    def test_odd_mss_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            NetworkConfig(mss=0)
