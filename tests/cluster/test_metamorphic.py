"""Metamorphic system-level relations.

Rather than pinning absolute numbers, these assert how the *whole system*
must respond to config changes — the relations a reviewer would use to
sanity-check the model.
"""

import dataclasses

import pytest

from repro import (
    ClientConfig,
    ClusterConfig,
    CostModel,
    NetworkConfig,
    ServerConfig,
    WorkloadConfig,
    compare_policies,
    run_experiment,
)
from repro.units import KiB, MiB


def base_config(**kwargs):
    defaults = dict(
        n_servers=16,
        workload=WorkloadConfig(
            n_processes=8, transfer_size=1 * MiB, file_size=4 * MiB
        ),
    )
    defaults.update(kwargs)
    return ClusterConfig(**defaults)


class TestBandwidthMonotonicity:
    def test_more_nic_never_hurts(self):
        one = run_experiment(base_config(client=ClientConfig(nic_ports=1)))
        three = run_experiment(base_config(client=ClientConfig(nic_ports=3)))
        assert three.bandwidth >= one.bandwidth * 0.98

    def test_more_servers_never_hurt_sais(self):
        few = run_experiment(base_config(n_servers=8, policy="source_aware"))
        many = run_experiment(base_config(n_servers=32, policy="source_aware"))
        assert many.bandwidth >= few.bandwidth * 0.98

    def test_faster_disks_never_hurt(self):
        slow = run_experiment(
            base_config(server=ServerConfig(disk_seek=8e-3))
        )
        fast = run_experiment(
            base_config(server=ServerConfig(disk_seek=1e-3))
        )
        assert fast.bandwidth >= slow.bandwidth * 0.98

    def test_compute_phase_costs_bandwidth(self):
        workload = WorkloadConfig(
            n_processes=2, transfer_size=512 * KiB, file_size=2 * MiB
        )
        with_compute = run_experiment(base_config(workload=workload))
        without = run_experiment(
            base_config(
                workload=dataclasses.replace(workload, compute=False)
            )
        )
        assert without.bandwidth >= with_compute.bandwidth


class TestSpeedupResponses:
    def test_cheaper_migration_shrinks_the_win(self):
        expensive = compare_policies(base_config())
        cheap_costs = CostModel(c2c_rate=2.0e9, mem_fetch_rate=2.0e9)
        cheap = compare_policies(base_config(costs=cheap_costs))
        assert cheap.bandwidth_speedup < expensive.bandwidth_speedup

    def test_oversubscribed_switch_caps_everything(self):
        # A 1-Gigabit backplane makes the network the bottleneck (TR
        # dominates) and the policy gap collapses.
        choked = compare_policies(
            base_config(
                network=NetworkConfig(switch_bandwidth=125_000_000.0)
            )
        )
        assert abs(choked.bandwidth_speedup) < 0.05

    def test_sais_never_loses_meaningfully(self):
        for n_servers in (8, 16, 32):
            comparison = compare_policies(base_config(n_servers=n_servers))
            assert comparison.bandwidth_speedup > -0.05


class TestConservationAcrossConfigs:
    @pytest.mark.parametrize("policy", ["irqbalance", "source_aware", "dedicated"])
    def test_bytes_conserved(self, policy):
        config = base_config(policy=policy)
        metrics = run_experiment(config)
        expected = config.workload.n_processes * config.workload.file_size
        assert metrics.bytes_read == expected

    def test_unhalted_cycles_scale_with_clock(self):
        slow = run_experiment(
            base_config(client=ClientConfig(clock_hz=1.35e9))
        )
        fast = run_experiment(
            base_config(client=ClientConfig(clock_hz=2.7e9))
        )
        # Same busy seconds, double the clock -> ~double the cycles.
        assert fast.unhalted_cycles == pytest.approx(
            2 * slow.unhalted_cycles, rel=0.02
        )
