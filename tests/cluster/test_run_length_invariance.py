"""Bandwidth is a steady-state rate: run length must not change the story.

This is what justifies scaling the paper's 10 GB reads down to tens of
megabytes in the benches (DESIGN.md §5).
"""

import pytest

from repro import ClusterConfig, WorkloadConfig, compare_policies, run_experiment
from repro.units import MiB


def config(file_size, policy="irqbalance"):
    # The standard figure workload (8 pinned processes); per-process file
    # sizes of 8 MiB and up are past the synchronized-start transient.
    return ClusterConfig(
        n_servers=16,
        policy=policy,
        workload=WorkloadConfig(
            n_processes=8, transfer_size=1 * MiB, file_size=file_size
        ),
    )


def test_bandwidth_stable_across_run_lengths():
    short = run_experiment(config(8 * MiB))
    long = run_experiment(config(32 * MiB))
    assert short.bandwidth == pytest.approx(long.bandwidth, rel=0.15)


def test_speedup_stable_across_run_lengths():
    short = compare_policies(config(8 * MiB))
    long = compare_policies(config(32 * MiB))
    assert short.bandwidth_speedup == pytest.approx(
        long.bandwidth_speedup, abs=0.05
    )


def test_miss_rate_stable_across_run_lengths():
    short = run_experiment(config(8 * MiB))
    long = run_experiment(config(32 * MiB))
    assert short.l2_miss_rate == pytest.approx(long.l2_miss_rate, rel=0.10)


def test_longer_runs_move_more_bytes_proportionally():
    short = run_experiment(config(8 * MiB))
    long = run_experiment(config(32 * MiB))
    assert long.bytes_read == 4 * short.bytes_read
    assert long.elapsed == pytest.approx(4 * short.elapsed, rel=0.20)
